// Population-scale deployment simulation (DESIGN.md §11): a day of traffic
// from a large user population against one shared Vroom front-end, swept
// over offered load levels.
//
//   $ ./example_deployment_scale
//
// Knobs: VROOM_BENCH_PAGES caps the corpus, VROOM_DEPLOY_ARRIVALS caps
// arrivals per level, VROOM_DEPLOY_WINDOW_HOURS shortens the traffic
// window, VROOM_JOBS sizes the micro-table worker pool (stdout and CSV are
// bit-identical for any worker count), VROOM_OUT_DIR exports the tables as
// CSV, VROOM_TRACE writes one Chrome-trace JSON per load level with the
// front-end's cache/stale/recrawl events.
#include <cstdio>
#include <string>

#include "deploy/scenario.h"
#include "harness/env.h"
#include "harness/export.h"
#include "harness/report.h"
#include "web/corpus.h"

int main() {
  using namespace vroom;
  constexpr std::uint64_t kSeed = 42;

  const int pages = harness::effective_page_count(30);
  const web::Corpus corpus = web::Corpus::mixed400_sample(kSeed, pages);

  deploy::ScenarioConfig cfg;
  cfg.seed = kSeed;
  const harness::Env env = harness::Env::from_environment();
  if (env.trace_enabled()) {
    const std::string dir = env.trace_dir;
    cfg.trace_sink = [dir](int level, const trace::Recorder& rec) {
      rec.write_json(dir + "/deploy_level_" + std::to_string(level) +
                     ".json");
    };
  }

  std::printf("Deployment-scale simulation: %d pages, %d users\n", pages,
              cfg.population.users);
  const deploy::DeploymentReport report =
      deploy::run_deployment(corpus, cfg);
  std::printf(
      "%.0fh window, origin links %.2f Mbps, hint cache %d entries, "
      "crawl refresh %.1fh\n\n",
      sim::to_seconds(report.window) / 3600.0, report.origin_link_mbps,
      cfg.front_end.hint_cache_entries,
      sim::to_seconds(report.effective_recrawl) / 3600.0);

  // --- Offered-load sweep: throughput and tail latency. ---
  std::printf(
      "%9s %9s %8s %8s %8s %7s %7s %7s %9s %9s %6s\n", "offered/s",
      "served/s", "arrivals", "timeouts", "p50 PLT", "p99 PLT", "hit%",
      "stale%", "hintless%", "origin-s", "util%");
  for (const deploy::LevelReport& l : report.levels) {
    std::printf(
        "%9.2f %9.2f %8lld %8lld %7.2fs %6.2fs %6.1f%% %6.1f%% %8.1f%% "
        "%9.2f %5.0f%%\n",
        l.offered_per_sec, l.served_per_sec,
        static_cast<long long>(l.arrivals),
        static_cast<long long>(l.timeouts), l.p50_plt_s, l.p99_plt_s,
        100.0 * l.hit_ratio, 100.0 * l.stale_frac, 100.0 * l.hintless_frac,
        l.mean_origin_wait_s, 100.0 * l.max_link_utilization);
  }
  std::printf(
      "\np99 PLT climbs once the hottest origins' links saturate; loads that\n"
      "exceed the %.0fs timeout are counted but not served.\n\n",
      sim::to_seconds(cfg.micro.timeout));

  // --- PLT distribution per level. ---
  std::vector<harness::Series> cdf;
  for (const deploy::LevelReport& l : report.levels) {
    char label[32];
    std::snprintf(label, sizeof label, "%.2f/s offered", l.offered_per_sec);
    cdf.push_back({label, l.plt_seconds});
  }
  harness::print_cdf_table("Deployment PLT vs offered load", "s", cdf);
  harness::maybe_export("Deployment PLT vs offered load", cdf);

  // --- Hint staleness priced against content persistence (Fig 7 axis). ---
  std::printf("\n%10s %12s %10s %14s\n", "hint age", "persistence",
              "serves", "mean micro PLT");
  for (const deploy::StaleBucketReport& b : report.stale_buckets) {
    std::printf("%9.1fh %11.1f%% %10lld %13.2fs\n",
                sim::to_seconds(b.age) / 3600.0, 100.0 * b.persistence,
                static_cast<long long>(b.serves), b.mean_micro_plt_s);
  }
  long long hintless_serves = 0;
  for (const deploy::LevelReport& l : report.levels) {
    hintless_serves += l.front_end.hintless_serves;
  }
  double hintless_sum = 0;
  long long hintless_n = 0;
  const auto hb = static_cast<std::size_t>(report.micro.hintless_bucket());
  for (const auto& device_rows : report.micro.plt) {
    for (const sim::Time plt : device_rows[hb]) {
      hintless_sum += sim::to_seconds(plt);
      ++hintless_n;
    }
  }
  std::printf("%10s %12s %10lld %13.2fs\n", "no hints", "-", hintless_serves,
              hintless_n > 0 ? hintless_sum / static_cast<double>(hintless_n)
                             : 0.0);
  std::printf(
      "\nStaler hints reference rotated-out URLs (ghost fetches), so the\n"
      "micro PLT cost tracks the persistence falloff of Figure 7.\n");

  // --- CSV of the sweep itself. ---
  std::vector<harness::Series> sweep{
      {"offered_per_sec", {}}, {"served_per_sec", {}},  {"p50_plt_s", {}},
      {"p99_plt_s", {}},       {"hit_ratio", {}},       {"stale_frac", {}},
      {"hintless_frac", {}},   {"mean_staleness_s", {}},
      {"mean_origin_wait_s", {}}, {"max_link_utilization", {}},
      {"timeouts", {}}};
  for (const deploy::LevelReport& l : report.levels) {
    sweep[0].second.push_back(l.offered_per_sec);
    sweep[1].second.push_back(l.served_per_sec);
    sweep[2].second.push_back(l.p50_plt_s);
    sweep[3].second.push_back(l.p99_plt_s);
    sweep[4].second.push_back(l.hit_ratio);
    sweep[5].second.push_back(l.stale_frac);
    sweep[6].second.push_back(l.hintless_frac);
    sweep[7].second.push_back(l.mean_staleness_s);
    sweep[8].second.push_back(l.mean_origin_wait_s);
    sweep[9].second.push_back(l.max_link_utilization);
    sweep[10].second.push_back(static_cast<double>(l.timeouts));
  }
  harness::maybe_export("Deployment offered load sweep", sweep);

  std::vector<harness::Series> stale{
      {"hint_age_hours", {}}, {"persistence", {}}, {"serves", {}},
      {"mean_micro_plt_s", {}}};
  for (const deploy::StaleBucketReport& b : report.stale_buckets) {
    stale[0].second.push_back(sim::to_seconds(b.age) / 3600.0);
    stale[1].second.push_back(b.persistence);
    stale[2].second.push_back(static_cast<double>(b.serves));
    stale[3].second.push_back(b.mean_micro_plt_s);
  }
  harness::maybe_export("Deployment hint staleness", stale);
  return 0;
}
