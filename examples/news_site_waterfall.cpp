// News-site deep dive: print a request waterfall and a critical-path
// breakdown for one complex page under HTTP/2 and under Vroom — the view a
// web-performance engineer would use to see *why* Vroom wins.
//
//   $ ./example_news_site_waterfall [page_id]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/strategies.h"
#include "harness/experiment.h"
#include "harness/export.h"
#include "web/page_generator.h"

namespace {

using namespace vroom;

void print_waterfall(const char* title, const browser::LoadResult& r,
                     int max_rows) {
  std::printf("\n--- %s: PLT %.2fs, net-wait %.0f%%, %d requests, %.0f KB "
              "(%.0f KB wasted) ---\n",
              title, sim::to_seconds(r.plt), 100 * r.net_wait_fraction(),
              r.requests, r.bytes_fetched / 1e3, r.wasted_bytes / 1e3);
  std::vector<const browser::ResourceTiming*> rows;
  for (const auto& t : r.timings) {
    if (t.requested != sim::kNever) rows.push_back(&t);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto* a, const auto* b) {
              return a->requested < b->requested;
            });
  std::printf("%-42s %9s %9s %9s %5s %5s %5s\n", "url", "disc(ms)",
              "start(ms)", "done(ms)", "hint", "push", "ref");
  int shown = 0;
  for (const auto* t : rows) {
    if (shown++ >= max_rows) break;
    std::printf("%-42.42s %9.0f %9.0f %9.0f %5s %5s %5s\n", t->url.c_str(),
                t->discovered == sim::kNever ? -1 : sim::to_ms(t->discovered),
                sim::to_ms(t->requested),
                t->complete == sim::kNever ? -1 : sim::to_ms(t->complete),
                t->hinted ? "y" : "", t->pushed ? "y" : "",
                t->referenced ? "y" : "ghost");
  }
  if (static_cast<int>(rows.size()) > max_rows) {
    std::printf("  … %zu more requests\n", rows.size() - max_rows);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t page_id =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;
  const web::PageModel page =
      web::generate_page(42, page_id, web::PageClass::News);
  harness::RunOptions opt;

  std::printf("Loading %s (%zu resources) on a simulated Nexus 6 over LTE\n",
              page.first_party().c_str(), page.size());

  const auto h2 = harness::run_page_load(page, baselines::http2_baseline(),
                                         opt, 1);
  const auto vr = harness::run_page_load(page, baselines::vroom(), opt, 1);

  print_waterfall("HTTP/2 Baseline", h2, 25);
  print_waterfall("Vroom", vr, 25);

  std::printf("\nDiscovery completed: %.2fs (HTTP/2) vs %.2fs (Vroom); "
              "high-priority fetches done: %.2fs vs %.2fs\n",
              sim::to_seconds(h2.all_discovered),
              sim::to_seconds(vr.all_discovered),
              sim::to_seconds(h2.high_prio_fetched),
              sim::to_seconds(vr.high_prio_fetched));

  // Full per-resource timing dumps for spreadsheet analysis.
  if (harness::write_csv("/tmp/waterfall_http2.csv",
                         harness::timings_to_csv(h2)) &&
      harness::write_csv("/tmp/waterfall_vroom.csv",
                         harness::timings_to_csv(vr))) {
    std::printf("Wrote /tmp/waterfall_http2.csv and /tmp/waterfall_vroom.csv\n");
  }
  return 0;
}
