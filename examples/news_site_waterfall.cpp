// News-site deep dive: print a request waterfall and a critical-path
// breakdown for one complex page under HTTP/2 and under Vroom — the view a
// web-performance engineer would use to see *why* Vroom wins.
//
//   $ ./example_news_site_waterfall [page_id]
//
// Set VROOM_TRACE=<dir> to additionally write one Chrome-trace JSON file
// per load (open in Perfetto / chrome://tracing).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/strategies.h"
#include "harness/env.h"
#include "harness/experiment.h"
#include "harness/export.h"
#include "trace/waterfall.h"
#include "web/page_generator.h"

int main(int argc, char** argv) {
  using namespace vroom;
  const std::uint32_t page_id =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;
  const web::PageModel page =
      web::generate_page(42, page_id, web::PageClass::News);
  harness::RunOptions opt;

  std::printf("Loading %s (%zu resources) on a simulated Nexus 6 over LTE\n",
              page.first_party().c_str(), page.size());

  const auto h2 = harness::run_page_load(page, baselines::http2_baseline(),
                                         opt, 1);
  const auto vr = harness::run_page_load(page, baselines::vroom(), opt, 1);

  std::printf("\n%s", trace::waterfall_table("HTTP/2 Baseline", h2).c_str());
  std::printf("\n%s", trace::waterfall_table("Vroom", vr).c_str());

  std::printf("\nDiscovery completed: %.2fs (HTTP/2) vs %.2fs (Vroom); "
              "high-priority fetches done: %.2fs vs %.2fs\n",
              sim::to_seconds(h2.all_discovered),
              sim::to_seconds(vr.all_discovered),
              sim::to_seconds(h2.high_prio_fetched),
              sim::to_seconds(vr.high_prio_fetched));

  // Full per-resource timing dumps for spreadsheet analysis.
  if (harness::write_csv("/tmp/waterfall_http2.csv",
                         harness::timings_to_csv(h2)) &&
      harness::write_csv("/tmp/waterfall_vroom.csv",
                         harness::timings_to_csv(vr))) {
    std::printf("Wrote /tmp/waterfall_http2.csv and /tmp/waterfall_vroom.csv\n");
  }
  const harness::Env env = harness::Env::from_environment();
  if (env.trace_enabled()) {
    std::printf("Wrote Chrome-trace JSON to %s/ — load a file in\n"
                "https://ui.perfetto.dev or chrome://tracing\n",
                env.trace_dir.c_str());
  }
  return 0;
}
