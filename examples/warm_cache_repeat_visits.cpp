// Repeat-visit scenario (Figure 20): a user returns to the same page after
// a minute, a day, and a week. Shows cache interaction with Vroom's pushes
// (already-cached resources are never pushed) and with content rotation.
//
//   $ ./example_warm_cache_repeat_visits
#include <cstdio>

#include "baselines/strategies.h"
#include "browser/cache.h"
#include "harness/experiment.h"
#include "web/page_generator.h"

int main() {
  using namespace vroom;
  const web::PageModel page = web::generate_page(42, 11, web::PageClass::News);

  const struct {
    const char* label;
    sim::Time gap;
  } gaps[] = {{"back-to-back", sim::minutes(1)},
              {"one day later", sim::days(1)},
              {"one week later", sim::days(7)}};

  for (const auto& strategy :
       {baselines::vroom(), baselines::http2_baseline()}) {
    std::printf("\n=== %s ===\n", strategy.name.c_str());
    for (const auto& g : gaps) {
      browser::Cache cache;
      harness::RunOptions opt;
      opt.cache = &cache;
      const auto cold = harness::run_page_load(page, strategy, opt, 1);
      opt.when += g.gap;
      const auto warm = harness::run_page_load(page, strategy, opt, 2);
      std::printf(
          "%-15s cold %.2fs -> warm %.2fs  (%3d cache hits, %4.0f KB vs "
          "%4.0f KB over the air)\n",
          g.label, sim::to_seconds(cold.plt), sim::to_seconds(warm.plt),
          warm.cache_hits, warm.bytes_fetched / 1e3, cold.bytes_fetched / 1e3);
    }
  }
  std::printf(
      "\nLonger gaps rotate more content out of the cache, so warm-load\n"
      "times drift back toward cold-load times — but Vroom keeps its edge\n"
      "because hints cover exactly the resources that did change.\n");
  return 0;
}
