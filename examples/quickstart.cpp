// Quickstart: load one page twice — plain HTTP/2, then with Vroom — and
// print the headline metrics side by side.
//
//   $ ./example_quickstart
//
// Walks through the public API end to end: generate a page template,
// realize a load instance, run it under two strategies, read the result.
#include <cstdio>

#include "baselines/strategies.h"
#include "harness/experiment.h"
#include "web/page_generator.h"

int main() {
  using namespace vroom;

  // 1. A synthetic News landing page (deterministic for a given seed).
  const web::PageModel page = web::generate_page(/*corpus_seed=*/42,
                                                 /*page_id=*/3,
                                                 web::PageClass::News);
  std::printf("Page: %s — %zu resources, %.0f KB total (%.0f%% processable)\n",
              page.first_party().c_str(), page.size(),
              page.total_bytes() / 1e3,
              100.0 * static_cast<double>(page.processable_bytes()) /
                  static_cast<double>(page.total_bytes()));

  // 2. Load it on a simulated Nexus 6 over LTE under each strategy.
  harness::RunOptions opt;
  const baselines::Strategy strategies[] = {
      baselines::http11(), baselines::http2_baseline(), baselines::vroom()};

  std::printf("\n%-18s %9s %9s %12s %10s %9s\n", "strategy", "PLT(s)",
              "AFT(s)", "SpeedIdx(ms)", "bytes(KB)", "requests");
  for (const auto& s : strategies) {
    const browser::LoadResult r = harness::run_page_median(page, s, opt);
    std::printf("%-18s %9.2f %9.2f %12.0f %10.0f %9d\n", s.name.c_str(),
                sim::to_seconds(r.plt), sim::to_seconds(r.aft),
                r.speed_index_ms, r.bytes_fetched / 1e3, r.requests);
  }

  std::printf(
      "\nVroom decouples discovery from processing: servers push local\n"
      "high-priority content and hint everything else, so the client's\n"
      "CPU and radio stay busy simultaneously.\n");
  return 0;
}
