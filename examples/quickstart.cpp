// Quickstart: load one page twice — plain HTTP/2, then with Vroom — and
// print the headline metrics side by side.
//
//   $ ./example_quickstart
//
// Walks through the public API end to end: generate a page template,
// realize a load instance, run it under two strategies, read the result.
// Set VROOM_TRACE=<dir> to also write Chrome-trace JSON files (open in
// Perfetto / chrome://tracing).
#include <cstdio>
#include <utility>

#include "baselines/strategies.h"
#include "harness/env.h"
#include "harness/experiment.h"
#include "trace/waterfall.h"
#include "web/page_generator.h"

int main() {
  using namespace vroom;

  // 1. A synthetic News landing page (deterministic for a given seed).
  const web::PageModel page = web::generate_page(/*corpus_seed=*/42,
                                                 /*page_id=*/3,
                                                 web::PageClass::News);
  std::printf("Page: %s — %zu resources, %.0f KB total (%.0f%% processable)\n",
              page.first_party().c_str(), page.size(),
              page.total_bytes() / 1e3,
              100.0 * static_cast<double>(page.processable_bytes()) /
                  static_cast<double>(page.total_bytes()));

  // 2. Load it on a simulated Nexus 6 over LTE under each strategy.
  harness::RunOptions opt;
  const baselines::Strategy strategies[] = {
      baselines::http11(), baselines::http2_baseline(), baselines::vroom()};

  std::printf("\n%-18s %9s %9s %12s %10s %9s\n", "strategy", "PLT(s)",
              "AFT(s)", "SpeedIdx(ms)", "bytes(KB)", "requests");
  browser::LoadResult vroom_load;
  for (const auto& s : strategies) {
    browser::LoadResult r = harness::run_page_median(page, s, opt);
    std::printf("%-18s %9.2f %9.2f %12.0f %10.0f %9d\n", s.name.c_str(),
                sim::to_seconds(r.plt), sim::to_seconds(r.aft),
                r.speed_index_ms, r.bytes_fetched / 1e3, r.requests);
    if (&s == &strategies[2]) vroom_load = std::move(r);
  }

  // 3. The per-request waterfall of the Vroom load (first 12 requests).
  trace::WaterfallOptions wf;
  wf.max_rows = 12;
  std::printf("\n%s", trace::waterfall_table("Vroom", vroom_load, wf).c_str());
  const harness::Env env = harness::Env::from_environment();
  if (env.trace_enabled()) {
    std::printf("\nWrote Chrome-trace JSON to %s/ — load a file in\n"
                "https://ui.perfetto.dev or chrome://tracing\n",
                env.trace_dir.c_str());
  }

  std::printf(
      "\nVroom decouples discovery from processing: servers push local\n"
      "high-priority content and hint everything else, so the client's\n"
      "CPU and radio stay busy simultaneously.\n");
  return 0;
}
