// vroom-sim command-line driver: run custom sweeps without writing C++.
//
//   vroom_cli [--class news|sports|top100|mixed400] [--pages N] [--seed S]
//             [--strategy NAME]... [--network lte|wifi|3g|loaded]
//             [--loss RATE] [--rrc MS] [--loads N]
//             [--trace FILE]        # load one page from a trace instead
//             [--dump-trace FILE]   # write the first generated page and exit
//             [--csv FILE]          # also write per-page PLTs as CSV
//             [--list]              # list strategy names and exit
//
// Examples:
//   vroom_cli --class news --pages 25 --strategy vroom --strategy http2
//   vroom_cli --network 3g --loss 0.01 --strategy vroom
//   vroom_cli --dump-trace page.trace && vim page.trace && \
//       vroom_cli --trace page.trace --strategy vroom --strategy http2
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/strategies.h"
#include "harness/experiment.h"
#include "harness/export.h"
#include "harness/report.h"
#include "web/corpus.h"
#include "web/trace_io.h"

namespace {

using namespace vroom;

struct NamedStrategy {
  const char* name;
  baselines::Strategy (*make)();
};

const NamedStrategy kStrategies[] = {
    {"http1", baselines::http11},
    {"http2", baselines::http2_baseline},
    {"push-all-static", baselines::push_all_static},
    {"vroom", baselines::vroom},
    {"vroom-first-party", baselines::vroom_first_party_only},
    {"vroom-prev-load", baselines::vroom_prev_load_deps},
    {"vroom-offline-only", baselines::vroom_offline_only},
    {"vroom-online-only", baselines::vroom_online_only},
    {"push-high-prio", baselines::push_high_prio_no_hints},
    {"push-all", baselines::push_all_no_hints},
    {"push-all-fetch-asap", baselines::push_all_fetch_asap},
    {"polaris", baselines::polaris},
    {"vroom-polaris", baselines::vroom_plus_polaris},
    {"lower-bound-net", baselines::lower_bound_network},
    {"lower-bound-cpu", baselines::lower_bound_cpu},
};

std::optional<baselines::Strategy> strategy_by_name(const std::string& n) {
  for (const auto& s : kStrategies) {
    if (n == s.name) return s.make();
  }
  return std::nullopt;
}

std::optional<web::PageClass> class_by_name(const std::string& n) {
  if (n == "top100") return web::PageClass::Top100;
  if (n == "news") return web::PageClass::News;
  if (n == "sports") return web::PageClass::Sports;
  if (n == "mixed400") return web::PageClass::Mixed400;
  return std::nullopt;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--class C] [--pages N] [--seed S] [--strategy "
               "NAME]... [--network lte|wifi|3g|loaded] [--loss RATE] "
               "[--rrc MS] [--loads N] [--trace FILE] [--dump-trace FILE] "
               "[--csv FILE] [--list]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  web::PageClass cls = web::PageClass::News;
  int pages = 20;
  std::uint64_t seed = 42;
  std::vector<baselines::Strategy> strategies;
  net::NetworkConfig network = net::NetworkConfig::lte();
  harness::RunOptions opt;
  std::string trace_file, dump_trace, csv_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& s : kStrategies) std::printf("%s\n", s.name);
      return 0;
    } else if (arg == "--class") {
      const char* v = next();
      auto c = v ? class_by_name(v) : std::nullopt;
      if (!c) return usage(argv[0]);
      cls = *c;
    } else if (arg == "--pages") {
      const char* v = next();
      if (!v || (pages = std::atoi(v)) <= 0) return usage(argv[0]);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--strategy") {
      const char* v = next();
      auto s = v ? strategy_by_name(v) : std::nullopt;
      if (!s) {
        std::fprintf(stderr, "unknown strategy; try --list\n");
        return 2;
      }
      strategies.push_back(*s);
    } else if (arg == "--network") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const std::string n = v;
      if (n == "lte") network = net::NetworkConfig::lte();
      else if (n == "wifi") network = net::NetworkConfig::wifi();
      else if (n == "3g") network = net::NetworkConfig::threeg();
      else if (n == "loaded") network = net::NetworkConfig::lte_loaded();
      else return usage(argv[0]);
    } else if (arg == "--loss") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      network.loss_rate = std::atof(v);
    } else if (arg == "--rrc") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      network.radio_promotion = sim::ms(std::atoi(v));
    } else if (arg == "--loads") {
      const char* v = next();
      if (!v || (opt.loads_per_page = std::atoi(v)) <= 0) return usage(argv[0]);
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      trace_file = v;
    } else if (arg == "--dump-trace") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      dump_trace = v;
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      csv_file = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (strategies.empty()) {
    strategies = {baselines::vroom(), baselines::http2_baseline()};
  }
  opt.seed = seed;
  opt.network = network;

  // Assemble the page set.
  std::vector<web::PageModel> page_set;
  if (!trace_file.empty()) {
    std::ifstream f(trace_file);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", trace_file.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    std::string error;
    auto page = web::page_from_trace(buf.str(), &error);
    if (!page) {
      std::fprintf(stderr, "trace parse error: %s\n", error.c_str());
      return 1;
    }
    page_set.push_back(std::move(*page));
  } else {
    for (int i = 0; i < pages; ++i) {
      page_set.push_back(
          web::generate_page(seed, static_cast<std::uint32_t>(i), cls));
    }
  }

  if (!dump_trace.empty()) {
    std::ofstream f(dump_trace);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", dump_trace.c_str());
      return 1;
    }
    web::write_trace(f, page_set.front());
    std::printf("wrote %s (%zu resources)\n", dump_trace.c_str(),
                page_set.front().size());
    return 0;
  }

  std::vector<harness::Series> plt_series;
  for (const auto& strategy : strategies) {
    std::vector<double> plts;
    for (const auto& page : page_set) {
      const auto r = harness::run_page_median(page, strategy, opt);
      plts.push_back(sim::to_seconds(r.plt));
    }
    plt_series.emplace_back(strategy.name, std::move(plts));
  }
  harness::print_cdf_table("Page Load Time", "seconds", plt_series);
  harness::print_quartile_bars("Page Load Time", "seconds", plt_series);

  if (!csv_file.empty()) {
    if (harness::write_csv(csv_file, harness::series_to_csv(plt_series))) {
      std::printf("\nwrote %s\n", csv_file.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", csv_file.c_str());
      return 1;
    }
  }
  return 0;
}
