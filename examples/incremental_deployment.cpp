// Incremental deployment (§6.1): what does a single organization gain by
// adopting Vroom on its own domains while every third party stays plain
// HTTP/2?
//
//   $ ./example_incremental_deployment [num_pages]
#include <cstdio>
#include <cstdlib>

#include "baselines/strategies.h"
#include "fleet/fleet.h"
#include "harness/experiment.h"
#include "harness/stats.h"
#include "web/corpus.h"

int main(int argc, char** argv) {
  using namespace vroom;
  const int pages = argc > 1 ? std::atoi(argv[1]) : 20;

  web::Corpus corpus("news+sports", 42);
  corpus.add_pages(web::PageClass::News, pages / 2);
  corpus.add_pages(web::PageClass::Sports, pages - pages / 2, 100);

  harness::RunOptions opt;
  opt.loads_per_page = 1;

  std::printf("Comparing deployment levels across %d News/Sports pages…\n\n",
              pages);
  const std::vector<baselines::Strategy> levels = {
      baselines::http2_baseline(),
      baselines::vroom_first_party_only(),
      baselines::vroom(),
  };
  // All three deployment levels fan through one shared worker pool instead
  // of one pool (and one straggler tail) per level.
  fleet::Telemetry telemetry;
  fleet::FleetOptions fo;
  fo.telemetry = &telemetry;
  const auto results = fleet::run_matrix(corpus, levels, opt, fo);
  telemetry.print(stderr);
  std::printf("%-28s %10s %10s %10s\n", "deployment", "p25(s)", "median(s)",
              "p75(s)");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto q = harness::quartiles(results[i].plt_seconds());
    std::printf("%-28s %10.2f %10.2f %10.2f\n", levels[i].name.c_str(), q.p25,
                q.p50, q.p75);
  }
  std::printf(
      "\nTakeaway: the first party alone captures most of Vroom's benefit —\n"
      "it serves the root HTML, so its hints cover third-party resources\n"
      "even when those third parties never change a line of code.\n");
  return 0;
}
