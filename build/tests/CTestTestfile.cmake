# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/web_test[1]_include.cmake")
include("/root/repo/build/tests/browser_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
