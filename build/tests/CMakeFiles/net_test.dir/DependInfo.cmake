
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/net_test.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vroom_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
