file(REMOVE_RECURSE
  "CMakeFiles/vroom_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/vroom_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/vroom_harness.dir/harness/export.cpp.o"
  "CMakeFiles/vroom_harness.dir/harness/export.cpp.o.d"
  "CMakeFiles/vroom_harness.dir/harness/report.cpp.o"
  "CMakeFiles/vroom_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/vroom_harness.dir/harness/stats.cpp.o"
  "CMakeFiles/vroom_harness.dir/harness/stats.cpp.o.d"
  "libvroom_harness.a"
  "libvroom_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vroom_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
