file(REMOVE_RECURSE
  "libvroom_harness.a"
)
