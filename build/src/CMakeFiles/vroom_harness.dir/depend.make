# Empty dependencies file for vroom_harness.
# This may be replaced when dependencies are built.
