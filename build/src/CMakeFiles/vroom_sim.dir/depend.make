# Empty dependencies file for vroom_sim.
# This may be replaced when dependencies are built.
