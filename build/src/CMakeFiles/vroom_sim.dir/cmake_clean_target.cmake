file(REMOVE_RECURSE
  "libvroom_sim.a"
)
