file(REMOVE_RECURSE
  "CMakeFiles/vroom_sim.dir/sim/event_loop.cpp.o"
  "CMakeFiles/vroom_sim.dir/sim/event_loop.cpp.o.d"
  "CMakeFiles/vroom_sim.dir/sim/random.cpp.o"
  "CMakeFiles/vroom_sim.dir/sim/random.cpp.o.d"
  "libvroom_sim.a"
  "libvroom_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vroom_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
