# Empty dependencies file for vroom_baselines.
# This may be replaced when dependencies are built.
