
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/lower_bound.cpp" "src/CMakeFiles/vroom_baselines.dir/baselines/lower_bound.cpp.o" "gcc" "src/CMakeFiles/vroom_baselines.dir/baselines/lower_bound.cpp.o.d"
  "/root/repo/src/baselines/polaris.cpp" "src/CMakeFiles/vroom_baselines.dir/baselines/polaris.cpp.o" "gcc" "src/CMakeFiles/vroom_baselines.dir/baselines/polaris.cpp.o.d"
  "/root/repo/src/baselines/strategies.cpp" "src/CMakeFiles/vroom_baselines.dir/baselines/strategies.cpp.o" "gcc" "src/CMakeFiles/vroom_baselines.dir/baselines/strategies.cpp.o.d"
  "/root/repo/src/baselines/vroom_polaris.cpp" "src/CMakeFiles/vroom_baselines.dir/baselines/vroom_polaris.cpp.o" "gcc" "src/CMakeFiles/vroom_baselines.dir/baselines/vroom_polaris.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vroom_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
