file(REMOVE_RECURSE
  "CMakeFiles/vroom_baselines.dir/baselines/lower_bound.cpp.o"
  "CMakeFiles/vroom_baselines.dir/baselines/lower_bound.cpp.o.d"
  "CMakeFiles/vroom_baselines.dir/baselines/polaris.cpp.o"
  "CMakeFiles/vroom_baselines.dir/baselines/polaris.cpp.o.d"
  "CMakeFiles/vroom_baselines.dir/baselines/strategies.cpp.o"
  "CMakeFiles/vroom_baselines.dir/baselines/strategies.cpp.o.d"
  "CMakeFiles/vroom_baselines.dir/baselines/vroom_polaris.cpp.o"
  "CMakeFiles/vroom_baselines.dir/baselines/vroom_polaris.cpp.o.d"
  "libvroom_baselines.a"
  "libvroom_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vroom_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
