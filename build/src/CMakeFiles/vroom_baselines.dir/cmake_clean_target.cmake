file(REMOVE_RECURSE
  "libvroom_baselines.a"
)
