file(REMOVE_RECURSE
  "libvroom_browser.a"
)
