# Empty compiler generated dependencies file for vroom_browser.
# This may be replaced when dependencies are built.
