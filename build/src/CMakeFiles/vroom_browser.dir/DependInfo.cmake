
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/browser/browser.cpp" "src/CMakeFiles/vroom_browser.dir/browser/browser.cpp.o" "gcc" "src/CMakeFiles/vroom_browser.dir/browser/browser.cpp.o.d"
  "/root/repo/src/browser/cache.cpp" "src/CMakeFiles/vroom_browser.dir/browser/cache.cpp.o" "gcc" "src/CMakeFiles/vroom_browser.dir/browser/cache.cpp.o.d"
  "/root/repo/src/browser/cpu_model.cpp" "src/CMakeFiles/vroom_browser.dir/browser/cpu_model.cpp.o" "gcc" "src/CMakeFiles/vroom_browser.dir/browser/cpu_model.cpp.o.d"
  "/root/repo/src/browser/critical_path.cpp" "src/CMakeFiles/vroom_browser.dir/browser/critical_path.cpp.o" "gcc" "src/CMakeFiles/vroom_browser.dir/browser/critical_path.cpp.o.d"
  "/root/repo/src/browser/metrics.cpp" "src/CMakeFiles/vroom_browser.dir/browser/metrics.cpp.o" "gcc" "src/CMakeFiles/vroom_browser.dir/browser/metrics.cpp.o.d"
  "/root/repo/src/browser/task_queue.cpp" "src/CMakeFiles/vroom_browser.dir/browser/task_queue.cpp.o" "gcc" "src/CMakeFiles/vroom_browser.dir/browser/task_queue.cpp.o.d"
  "/root/repo/src/browser/wprof.cpp" "src/CMakeFiles/vroom_browser.dir/browser/wprof.cpp.o" "gcc" "src/CMakeFiles/vroom_browser.dir/browser/wprof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vroom_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
