file(REMOVE_RECURSE
  "CMakeFiles/vroom_browser.dir/browser/browser.cpp.o"
  "CMakeFiles/vroom_browser.dir/browser/browser.cpp.o.d"
  "CMakeFiles/vroom_browser.dir/browser/cache.cpp.o"
  "CMakeFiles/vroom_browser.dir/browser/cache.cpp.o.d"
  "CMakeFiles/vroom_browser.dir/browser/cpu_model.cpp.o"
  "CMakeFiles/vroom_browser.dir/browser/cpu_model.cpp.o.d"
  "CMakeFiles/vroom_browser.dir/browser/critical_path.cpp.o"
  "CMakeFiles/vroom_browser.dir/browser/critical_path.cpp.o.d"
  "CMakeFiles/vroom_browser.dir/browser/metrics.cpp.o"
  "CMakeFiles/vroom_browser.dir/browser/metrics.cpp.o.d"
  "CMakeFiles/vroom_browser.dir/browser/task_queue.cpp.o"
  "CMakeFiles/vroom_browser.dir/browser/task_queue.cpp.o.d"
  "CMakeFiles/vroom_browser.dir/browser/wprof.cpp.o"
  "CMakeFiles/vroom_browser.dir/browser/wprof.cpp.o.d"
  "libvroom_browser.a"
  "libvroom_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vroom_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
