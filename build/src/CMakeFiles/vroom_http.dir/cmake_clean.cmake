file(REMOVE_RECURSE
  "CMakeFiles/vroom_http.dir/http/connection_pool.cpp.o"
  "CMakeFiles/vroom_http.dir/http/connection_pool.cpp.o.d"
  "CMakeFiles/vroom_http.dir/http/headers.cpp.o"
  "CMakeFiles/vroom_http.dir/http/headers.cpp.o.d"
  "CMakeFiles/vroom_http.dir/http/http1.cpp.o"
  "CMakeFiles/vroom_http.dir/http/http1.cpp.o.d"
  "CMakeFiles/vroom_http.dir/http/http2.cpp.o"
  "CMakeFiles/vroom_http.dir/http/http2.cpp.o.d"
  "CMakeFiles/vroom_http.dir/http/message.cpp.o"
  "CMakeFiles/vroom_http.dir/http/message.cpp.o.d"
  "libvroom_http.a"
  "libvroom_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vroom_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
