
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/connection_pool.cpp" "src/CMakeFiles/vroom_http.dir/http/connection_pool.cpp.o" "gcc" "src/CMakeFiles/vroom_http.dir/http/connection_pool.cpp.o.d"
  "/root/repo/src/http/headers.cpp" "src/CMakeFiles/vroom_http.dir/http/headers.cpp.o" "gcc" "src/CMakeFiles/vroom_http.dir/http/headers.cpp.o.d"
  "/root/repo/src/http/http1.cpp" "src/CMakeFiles/vroom_http.dir/http/http1.cpp.o" "gcc" "src/CMakeFiles/vroom_http.dir/http/http1.cpp.o.d"
  "/root/repo/src/http/http2.cpp" "src/CMakeFiles/vroom_http.dir/http/http2.cpp.o" "gcc" "src/CMakeFiles/vroom_http.dir/http/http2.cpp.o.d"
  "/root/repo/src/http/message.cpp" "src/CMakeFiles/vroom_http.dir/http/message.cpp.o" "gcc" "src/CMakeFiles/vroom_http.dir/http/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vroom_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
