file(REMOVE_RECURSE
  "libvroom_http.a"
)
