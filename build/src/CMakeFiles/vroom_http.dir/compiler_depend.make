# Empty compiler generated dependencies file for vroom_http.
# This may be replaced when dependencies are built.
