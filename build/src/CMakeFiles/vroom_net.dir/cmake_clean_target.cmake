file(REMOVE_RECURSE
  "libvroom_net.a"
)
