# Empty dependencies file for vroom_net.
# This may be replaced when dependencies are built.
