file(REMOVE_RECURSE
  "CMakeFiles/vroom_net.dir/net/link.cpp.o"
  "CMakeFiles/vroom_net.dir/net/link.cpp.o.d"
  "CMakeFiles/vroom_net.dir/net/network.cpp.o"
  "CMakeFiles/vroom_net.dir/net/network.cpp.o.d"
  "CMakeFiles/vroom_net.dir/net/tcp.cpp.o"
  "CMakeFiles/vroom_net.dir/net/tcp.cpp.o.d"
  "libvroom_net.a"
  "libvroom_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vroom_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
