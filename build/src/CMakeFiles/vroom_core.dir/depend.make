# Empty dependencies file for vroom_core.
# This may be replaced when dependencies are built.
