file(REMOVE_RECURSE
  "libvroom_core.a"
)
