
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cpp" "src/CMakeFiles/vroom_core.dir/core/accuracy.cpp.o" "gcc" "src/CMakeFiles/vroom_core.dir/core/accuracy.cpp.o.d"
  "/root/repo/src/core/client_scheduler.cpp" "src/CMakeFiles/vroom_core.dir/core/client_scheduler.cpp.o" "gcc" "src/CMakeFiles/vroom_core.dir/core/client_scheduler.cpp.o.d"
  "/root/repo/src/core/hint_generator.cpp" "src/CMakeFiles/vroom_core.dir/core/hint_generator.cpp.o" "gcc" "src/CMakeFiles/vroom_core.dir/core/hint_generator.cpp.o.d"
  "/root/repo/src/core/offline_resolver.cpp" "src/CMakeFiles/vroom_core.dir/core/offline_resolver.cpp.o" "gcc" "src/CMakeFiles/vroom_core.dir/core/offline_resolver.cpp.o.d"
  "/root/repo/src/core/online_analyzer.cpp" "src/CMakeFiles/vroom_core.dir/core/online_analyzer.cpp.o" "gcc" "src/CMakeFiles/vroom_core.dir/core/online_analyzer.cpp.o.d"
  "/root/repo/src/core/type_sharing.cpp" "src/CMakeFiles/vroom_core.dir/core/type_sharing.cpp.o" "gcc" "src/CMakeFiles/vroom_core.dir/core/type_sharing.cpp.o.d"
  "/root/repo/src/core/vroom_provider.cpp" "src/CMakeFiles/vroom_core.dir/core/vroom_provider.cpp.o" "gcc" "src/CMakeFiles/vroom_core.dir/core/vroom_provider.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vroom_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vroom_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
