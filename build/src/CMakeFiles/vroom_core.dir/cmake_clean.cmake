file(REMOVE_RECURSE
  "CMakeFiles/vroom_core.dir/core/accuracy.cpp.o"
  "CMakeFiles/vroom_core.dir/core/accuracy.cpp.o.d"
  "CMakeFiles/vroom_core.dir/core/client_scheduler.cpp.o"
  "CMakeFiles/vroom_core.dir/core/client_scheduler.cpp.o.d"
  "CMakeFiles/vroom_core.dir/core/hint_generator.cpp.o"
  "CMakeFiles/vroom_core.dir/core/hint_generator.cpp.o.d"
  "CMakeFiles/vroom_core.dir/core/offline_resolver.cpp.o"
  "CMakeFiles/vroom_core.dir/core/offline_resolver.cpp.o.d"
  "CMakeFiles/vroom_core.dir/core/online_analyzer.cpp.o"
  "CMakeFiles/vroom_core.dir/core/online_analyzer.cpp.o.d"
  "CMakeFiles/vroom_core.dir/core/type_sharing.cpp.o"
  "CMakeFiles/vroom_core.dir/core/type_sharing.cpp.o.d"
  "CMakeFiles/vroom_core.dir/core/vroom_provider.cpp.o"
  "CMakeFiles/vroom_core.dir/core/vroom_provider.cpp.o.d"
  "libvroom_core.a"
  "libvroom_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vroom_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
