
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/amp.cpp" "src/CMakeFiles/vroom_web.dir/web/amp.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/amp.cpp.o.d"
  "/root/repo/src/web/corpus.cpp" "src/CMakeFiles/vroom_web.dir/web/corpus.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/corpus.cpp.o.d"
  "/root/repo/src/web/device.cpp" "src/CMakeFiles/vroom_web.dir/web/device.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/device.cpp.o.d"
  "/root/repo/src/web/html_scanner.cpp" "src/CMakeFiles/vroom_web.dir/web/html_scanner.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/html_scanner.cpp.o.d"
  "/root/repo/src/web/page_generator.cpp" "src/CMakeFiles/vroom_web.dir/web/page_generator.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/page_generator.cpp.o.d"
  "/root/repo/src/web/page_instance.cpp" "src/CMakeFiles/vroom_web.dir/web/page_instance.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/page_instance.cpp.o.d"
  "/root/repo/src/web/page_model.cpp" "src/CMakeFiles/vroom_web.dir/web/page_model.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/page_model.cpp.o.d"
  "/root/repo/src/web/resource.cpp" "src/CMakeFiles/vroom_web.dir/web/resource.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/resource.cpp.o.d"
  "/root/repo/src/web/trace_io.cpp" "src/CMakeFiles/vroom_web.dir/web/trace_io.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/trace_io.cpp.o.d"
  "/root/repo/src/web/url.cpp" "src/CMakeFiles/vroom_web.dir/web/url.cpp.o" "gcc" "src/CMakeFiles/vroom_web.dir/web/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vroom_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
