file(REMOVE_RECURSE
  "CMakeFiles/vroom_web.dir/web/amp.cpp.o"
  "CMakeFiles/vroom_web.dir/web/amp.cpp.o.d"
  "CMakeFiles/vroom_web.dir/web/corpus.cpp.o"
  "CMakeFiles/vroom_web.dir/web/corpus.cpp.o.d"
  "CMakeFiles/vroom_web.dir/web/device.cpp.o"
  "CMakeFiles/vroom_web.dir/web/device.cpp.o.d"
  "CMakeFiles/vroom_web.dir/web/html_scanner.cpp.o"
  "CMakeFiles/vroom_web.dir/web/html_scanner.cpp.o.d"
  "CMakeFiles/vroom_web.dir/web/page_generator.cpp.o"
  "CMakeFiles/vroom_web.dir/web/page_generator.cpp.o.d"
  "CMakeFiles/vroom_web.dir/web/page_instance.cpp.o"
  "CMakeFiles/vroom_web.dir/web/page_instance.cpp.o.d"
  "CMakeFiles/vroom_web.dir/web/page_model.cpp.o"
  "CMakeFiles/vroom_web.dir/web/page_model.cpp.o.d"
  "CMakeFiles/vroom_web.dir/web/resource.cpp.o"
  "CMakeFiles/vroom_web.dir/web/resource.cpp.o.d"
  "CMakeFiles/vroom_web.dir/web/trace_io.cpp.o"
  "CMakeFiles/vroom_web.dir/web/trace_io.cpp.o.d"
  "CMakeFiles/vroom_web.dir/web/url.cpp.o"
  "CMakeFiles/vroom_web.dir/web/url.cpp.o.d"
  "libvroom_web.a"
  "libvroom_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vroom_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
