file(REMOVE_RECURSE
  "libvroom_web.a"
)
