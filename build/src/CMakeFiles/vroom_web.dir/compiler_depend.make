# Empty compiler generated dependencies file for vroom_web.
# This may be replaced when dependencies are built.
