file(REMOVE_RECURSE
  "libvroom_server.a"
)
