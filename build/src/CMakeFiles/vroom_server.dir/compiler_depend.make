# Empty compiler generated dependencies file for vroom_server.
# This may be replaced when dependencies are built.
