file(REMOVE_RECURSE
  "CMakeFiles/vroom_server.dir/server/origin_server.cpp.o"
  "CMakeFiles/vroom_server.dir/server/origin_server.cpp.o.d"
  "CMakeFiles/vroom_server.dir/server/replay_store.cpp.o"
  "CMakeFiles/vroom_server.dir/server/replay_store.cpp.o.d"
  "libvroom_server.a"
  "libvroom_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vroom_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
