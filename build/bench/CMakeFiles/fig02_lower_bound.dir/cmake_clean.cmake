file(REMOVE_RECURSE
  "CMakeFiles/fig02_lower_bound.dir/fig02_lower_bound.cpp.o"
  "CMakeFiles/fig02_lower_bound.dir/fig02_lower_bound.cpp.o.d"
  "fig02_lower_bound"
  "fig02_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
