# Empty dependencies file for fig02_lower_bound.
# This may be replaced when dependencies are built.
