# Empty dependencies file for fig07_persistence.
# This may be replaced when dependencies are built.
