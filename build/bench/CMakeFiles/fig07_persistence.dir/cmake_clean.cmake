file(REMOVE_RECURSE
  "CMakeFiles/fig07_persistence.dir/fig07_persistence.cpp.o"
  "CMakeFiles/fig07_persistence.dir/fig07_persistence.cpp.o.d"
  "fig07_persistence"
  "fig07_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
