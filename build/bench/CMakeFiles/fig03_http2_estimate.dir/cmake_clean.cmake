file(REMOVE_RECURSE
  "CMakeFiles/fig03_http2_estimate.dir/fig03_http2_estimate.cpp.o"
  "CMakeFiles/fig03_http2_estimate.dir/fig03_http2_estimate.cpp.o.d"
  "fig03_http2_estimate"
  "fig03_http2_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_http2_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
