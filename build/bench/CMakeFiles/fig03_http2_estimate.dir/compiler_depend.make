# Empty compiler generated dependencies file for fig03_http2_estimate.
# This may be replaced when dependencies are built.
