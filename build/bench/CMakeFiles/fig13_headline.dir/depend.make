# Empty dependencies file for fig13_headline.
# This may be replaced when dependencies are built.
