file(REMOVE_RECURSE
  "CMakeFiles/fig13_headline.dir/fig13_headline.cpp.o"
  "CMakeFiles/fig13_headline.dir/fig13_headline.cpp.o.d"
  "fig13_headline"
  "fig13_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
