# Empty dependencies file for tab_online_overhead.
# This may be replaced when dependencies are built.
