file(REMOVE_RECURSE
  "CMakeFiles/tab_online_overhead.dir/tab_online_overhead.cpp.o"
  "CMakeFiles/tab_online_overhead.dir/tab_online_overhead.cpp.o.d"
  "tab_online_overhead"
  "tab_online_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_online_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
