# Empty compiler generated dependencies file for fig01_status_quo.
# This may be replaced when dependencies are built.
