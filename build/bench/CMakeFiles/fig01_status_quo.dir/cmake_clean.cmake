file(REMOVE_RECURSE
  "CMakeFiles/fig01_status_quo.dir/fig01_status_quo.cpp.o"
  "CMakeFiles/fig01_status_quo.dir/fig01_status_quo.cpp.o.d"
  "fig01_status_quo"
  "fig01_status_quo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_status_quo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
