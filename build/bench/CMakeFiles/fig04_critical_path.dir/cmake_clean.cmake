file(REMOVE_RECURSE
  "CMakeFiles/fig04_critical_path.dir/fig04_critical_path.cpp.o"
  "CMakeFiles/fig04_critical_path.dir/fig04_critical_path.cpp.o.d"
  "fig04_critical_path"
  "fig04_critical_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_critical_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
