# Empty dependencies file for fig04_critical_path.
# This may be replaced when dependencies are built.
