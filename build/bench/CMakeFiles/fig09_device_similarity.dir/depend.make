# Empty dependencies file for fig09_device_similarity.
# This may be replaced when dependencies are built.
