file(REMOVE_RECURSE
  "CMakeFiles/fig09_device_similarity.dir/fig09_device_similarity.cpp.o"
  "CMakeFiles/fig09_device_similarity.dir/fig09_device_similarity.cpp.o.d"
  "fig09_device_similarity"
  "fig09_device_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_device_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
