# Empty compiler generated dependencies file for fig14_polaris.
# This may be replaced when dependencies are built.
