file(REMOVE_RECURSE
  "CMakeFiles/fig14_polaris.dir/fig14_polaris.cpp.o"
  "CMakeFiles/fig14_polaris.dir/fig14_polaris.cpp.o.d"
  "fig14_polaris"
  "fig14_polaris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_polaris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
