file(REMOVE_RECURSE
  "CMakeFiles/ext_amp.dir/ext_amp.cpp.o"
  "CMakeFiles/ext_amp.dir/ext_amp.cpp.o.d"
  "ext_amp"
  "ext_amp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
