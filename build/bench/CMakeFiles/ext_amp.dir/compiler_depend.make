# Empty compiler generated dependencies file for ext_amp.
# This may be replaced when dependencies are built.
