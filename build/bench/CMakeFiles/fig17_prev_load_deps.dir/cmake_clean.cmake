file(REMOVE_RECURSE
  "CMakeFiles/fig17_prev_load_deps.dir/fig17_prev_load_deps.cpp.o"
  "CMakeFiles/fig17_prev_load_deps.dir/fig17_prev_load_deps.cpp.o.d"
  "fig17_prev_load_deps"
  "fig17_prev_load_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_prev_load_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
