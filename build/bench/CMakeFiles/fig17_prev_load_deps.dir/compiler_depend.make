# Empty compiler generated dependencies file for fig17_prev_load_deps.
# This may be replaced when dependencies are built.
