# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig17_prev_load_deps.
