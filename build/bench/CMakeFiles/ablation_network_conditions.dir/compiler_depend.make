# Empty compiler generated dependencies file for ablation_network_conditions.
# This may be replaced when dependencies are built.
