file(REMOVE_RECURSE
  "CMakeFiles/ablation_network_conditions.dir/ablation_network_conditions.cpp.o"
  "CMakeFiles/ablation_network_conditions.dir/ablation_network_conditions.cpp.o.d"
  "ablation_network_conditions"
  "ablation_network_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_network_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
