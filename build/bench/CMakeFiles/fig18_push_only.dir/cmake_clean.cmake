file(REMOVE_RECURSE
  "CMakeFiles/fig18_push_only.dir/fig18_push_only.cpp.o"
  "CMakeFiles/fig18_push_only.dir/fig18_push_only.cpp.o.d"
  "fig18_push_only"
  "fig18_push_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_push_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
