# Empty compiler generated dependencies file for fig18_push_only.
# This may be replaced when dependencies are built.
