# Empty dependencies file for fig19_scheduling.
# This may be replaced when dependencies are built.
