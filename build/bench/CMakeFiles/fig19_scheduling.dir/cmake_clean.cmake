file(REMOVE_RECURSE
  "CMakeFiles/fig19_scheduling.dir/fig19_scheduling.cpp.o"
  "CMakeFiles/fig19_scheduling.dir/fig19_scheduling.cpp.o.d"
  "fig19_scheduling"
  "fig19_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
