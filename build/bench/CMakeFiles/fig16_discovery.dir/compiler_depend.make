# Empty compiler generated dependencies file for fig16_discovery.
# This may be replaced when dependencies are built.
