file(REMOVE_RECURSE
  "CMakeFiles/fig16_discovery.dir/fig16_discovery.cpp.o"
  "CMakeFiles/fig16_discovery.dir/fig16_discovery.cpp.o.d"
  "fig16_discovery"
  "fig16_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
