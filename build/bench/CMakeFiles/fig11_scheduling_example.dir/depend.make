# Empty dependencies file for fig11_scheduling_example.
# This may be replaced when dependencies are built.
