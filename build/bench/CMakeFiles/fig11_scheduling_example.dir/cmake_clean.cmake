file(REMOVE_RECURSE
  "CMakeFiles/fig11_scheduling_example.dir/fig11_scheduling_example.cpp.o"
  "CMakeFiles/fig11_scheduling_example.dir/fig11_scheduling_example.cpp.o.d"
  "fig11_scheduling_example"
  "fig11_scheduling_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scheduling_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
