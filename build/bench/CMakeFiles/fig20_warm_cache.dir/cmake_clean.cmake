file(REMOVE_RECURSE
  "CMakeFiles/fig20_warm_cache.dir/fig20_warm_cache.cpp.o"
  "CMakeFiles/fig20_warm_cache.dir/fig20_warm_cache.cpp.o.d"
  "fig20_warm_cache"
  "fig20_warm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_warm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
