# Empty compiler generated dependencies file for fig20_warm_cache.
# This may be replaced when dependencies are built.
