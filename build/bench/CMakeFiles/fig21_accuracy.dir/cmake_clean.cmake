file(REMOVE_RECURSE
  "CMakeFiles/fig21_accuracy.dir/fig21_accuracy.cpp.o"
  "CMakeFiles/fig21_accuracy.dir/fig21_accuracy.cpp.o.d"
  "fig21_accuracy"
  "fig21_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
