# Empty dependencies file for fig21_accuracy.
# This may be replaced when dependencies are built.
