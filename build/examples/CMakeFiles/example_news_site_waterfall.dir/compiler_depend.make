# Empty compiler generated dependencies file for example_news_site_waterfall.
# This may be replaced when dependencies are built.
