file(REMOVE_RECURSE
  "CMakeFiles/example_news_site_waterfall.dir/news_site_waterfall.cpp.o"
  "CMakeFiles/example_news_site_waterfall.dir/news_site_waterfall.cpp.o.d"
  "example_news_site_waterfall"
  "example_news_site_waterfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_news_site_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
