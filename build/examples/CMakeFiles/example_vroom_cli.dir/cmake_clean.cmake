file(REMOVE_RECURSE
  "CMakeFiles/example_vroom_cli.dir/vroom_cli.cpp.o"
  "CMakeFiles/example_vroom_cli.dir/vroom_cli.cpp.o.d"
  "example_vroom_cli"
  "example_vroom_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vroom_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
