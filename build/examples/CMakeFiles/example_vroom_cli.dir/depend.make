# Empty dependencies file for example_vroom_cli.
# This may be replaced when dependencies are built.
