# Empty dependencies file for example_incremental_deployment.
# This may be replaced when dependencies are built.
