file(REMOVE_RECURSE
  "CMakeFiles/example_incremental_deployment.dir/incremental_deployment.cpp.o"
  "CMakeFiles/example_incremental_deployment.dir/incremental_deployment.cpp.o.d"
  "example_incremental_deployment"
  "example_incremental_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_incremental_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
