# Empty dependencies file for example_warm_cache_repeat_visits.
# This may be replaced when dependencies are built.
