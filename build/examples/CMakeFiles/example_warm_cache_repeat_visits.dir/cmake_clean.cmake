file(REMOVE_RECURSE
  "CMakeFiles/example_warm_cache_repeat_visits.dir/warm_cache_repeat_visits.cpp.o"
  "CMakeFiles/example_warm_cache_repeat_visits.dir/warm_cache_repeat_visits.cpp.o.d"
  "example_warm_cache_repeat_visits"
  "example_warm_cache_repeat_visits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_warm_cache_repeat_visits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
