// Figure 3: estimated improvement from global HTTP/2 adoption, with and
// without the first party pushing all of its static resources, against
// HTTP/1.1 replay (which tracks real web loads).
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 3", "HTTP/2 adoption estimate");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  harness::print_cdf_table(
      "Page Load Time", "seconds",
      bench::plt_matrix(ns,
                        {baselines::http2_baseline(),
                         baselines::push_all_static(), baselines::http11()},
                        opt));
  return 0;
}
