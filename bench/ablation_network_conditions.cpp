// Network-condition sensitivity (the §4.3 caveat: Vroom's scheduler is
// tailored to LTE where the CPU is the bottleneck; other regimes move the
// bottleneck). Sweeps WiFi / LTE / loaded-cell / 3G profiles, then adds the
// pieces the paper's good-signal replay excluded: segment loss (HTTP/2's
// single connection suffers most — related work [24]) and LTE RRC radio
// promotion.
#include "bench_common.h"

namespace {

using namespace vroom;

void sweep(const char* label, const net::NetworkConfig& cfg,
           const web::Corpus& corpus) {
  harness::RunOptions opt = bench::default_options();
  opt.network = cfg;
  opt.loads_per_page = 1;
  const auto results = bench::run_matrix(
      corpus,
      {baselines::vroom(), baselines::http2_baseline(), baselines::http11()},
      opt);
  std::vector<harness::Series> series;
  for (const auto& r : results) series.push_back({r.strategy, r.plt_seconds()});
  harness::print_quartile_bars(label, "seconds PLT", series);
}

}  // namespace

int main() {
  bench::banner("Ablation: network conditions",
                "access-network sensitivity of Vroom's gains");
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  sweep("WiFi (40 Mbps, 10 ms)", net::NetworkConfig::wifi(), ns);
  sweep("LTE, good signal (paper setting)", net::NetworkConfig::lte(), ns);
  sweep("LTE, loaded cell (3 Mbps, 90 ms)", net::NetworkConfig::lte_loaded(),
        ns);
  sweep("3G (1.6 Mbps, 150 ms)", net::NetworkConfig::threeg(), ns);

  net::NetworkConfig lossy = net::NetworkConfig::lte();
  lossy.loss_rate = 0.01;
  sweep("LTE with 1% segment loss", lossy, ns);

  net::NetworkConfig rrc = net::NetworkConfig::lte();
  rrc.radio_promotion = sim::ms(250);
  sweep("LTE with RRC idle promotion (250 ms)", rrc, ns);
  return 0;
}
