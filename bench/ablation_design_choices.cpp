// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out: hint staging, push selection, offline crawl-window length, and
// device-equivalence handling.
//
// All five ablation blocks share one SweepPlan pool: the unmodified Vroom
// baseline runs once and its series is reused by every block that shows it,
// and no block's sweep serializes behind another's straggler.
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Ablations", "Vroom design-choice sensitivity");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  std::vector<baselines::Strategy> grid;
  grid.push_back(baselines::vroom());  // shared baseline (blocks 1 and 2)

  // 1. Client staging on/off (hints identical, scheduling differs).
  {
    baselines::Strategy unstaged = baselines::vroom();
    unstaged.name = "Vroom, unstaged client";
    unstaged.sched = baselines::Strategy::Sched::FetchAsap;
    grid.push_back(std::move(unstaged));
  }

  // 2. Push selection: none / high-priority-local / all-local.
  {
    baselines::Strategy no_push = baselines::vroom();
    no_push.name = "Vroom, hints only (no push)";
    no_push.provider.push = core::PushSelection::None;
    grid.push_back(std::move(no_push));
    baselines::Strategy push_all = baselines::vroom();
    push_all.name = "Vroom, push all local";
    push_all.provider.push = core::PushSelection::AllLocal;
    grid.push_back(std::move(push_all));
  }

  // 3. Offline crawl-window length (number of hourly loads intersected).
  for (int loads : {1, 3, 6}) {
    baselines::Strategy s = baselines::vroom();
    s.name = "Vroom, " + std::to_string(loads) + " crawl(s)";
    s.provider.offline.loads = loads;
    grid.push_back(std::move(s));
  }

  // 4. Hint budget: how many hint URLs per response are enough?
  for (int budget : {0, 80, 40, 15}) {
    baselines::Strategy s = baselines::vroom();
    s.name = budget == 0 ? "Vroom, unlimited hints"
                         : "Vroom, <=" + std::to_string(budget) + " hints";
    s.provider.max_hints = budget;
    grid.push_back(std::move(s));
  }

  // 5. Device handling: exact / equivalence classes / single class.
  const std::pair<core::DeviceHandling, const char*> modes[] = {
      {core::DeviceHandling::Exact, "exact device"},
      {core::DeviceHandling::EquivalenceClasses, "equivalence classes"},
      {core::DeviceHandling::SingleClass, "single class"}};
  for (const auto& [mode, label] : modes) {
    baselines::Strategy s = baselines::vroom();
    s.name = std::string("Vroom, ") + label;
    s.provider.offline.device_handling = mode;
    grid.push_back(std::move(s));
  }

  const std::vector<harness::Series> rows = bench::plt_matrix(ns, grid, opt);

  harness::print_quartile_bars("Ablation 1: client-side staging",
                               "seconds PLT", {rows[0], rows[1]});
  harness::print_quartile_bars("Ablation 2: push selection", "seconds PLT",
                               {rows[0], rows[2], rows[3]});
  harness::print_quartile_bars("Ablation 3: offline crawl window",
                               "seconds PLT", {rows[4], rows[5], rows[6]});
  harness::print_quartile_bars("Ablation 4: hint-header budget", "seconds PLT",
                               {rows[7], rows[8], rows[9], rows[10]});
  harness::print_quartile_bars("Ablation 5: device handling", "seconds PLT",
                               {rows[11], rows[12], rows[13]});
  return 0;
}
