// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out: hint staging, push selection, offline crawl-window length, and
// device-equivalence handling.
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Ablations", "Vroom design-choice sensitivity");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  // 1. Client staging on/off (hints identical, scheduling differs).
  {
    baselines::Strategy unstaged = baselines::vroom();
    unstaged.name = "Vroom, unstaged client";
    unstaged.sched = baselines::Strategy::Sched::FetchAsap;
    harness::print_quartile_bars(
        "Ablation 1: client-side staging", "seconds PLT",
        {bench::plt_series(ns, baselines::vroom(), opt),
         bench::plt_series(ns, unstaged, opt)});
  }

  // 2. Push selection: none / high-priority-local / all-local.
  {
    baselines::Strategy no_push = baselines::vroom();
    no_push.name = "Vroom, hints only (no push)";
    no_push.provider.push = core::PushSelection::None;
    baselines::Strategy push_all = baselines::vroom();
    push_all.name = "Vroom, push all local";
    push_all.provider.push = core::PushSelection::AllLocal;
    harness::print_quartile_bars(
        "Ablation 2: push selection", "seconds PLT",
        {bench::plt_series(ns, baselines::vroom(), opt),
         bench::plt_series(ns, no_push, opt),
         bench::plt_series(ns, push_all, opt)});
  }

  // 3. Offline crawl-window length (number of hourly loads intersected).
  {
    std::vector<harness::Series> rows;
    for (int loads : {1, 3, 6}) {
      baselines::Strategy s = baselines::vroom();
      s.name = "Vroom, " + std::to_string(loads) + " crawl(s)";
      s.provider.offline.loads = loads;
      rows.push_back(bench::plt_series(ns, s, opt));
    }
    harness::print_quartile_bars("Ablation 3: offline crawl window",
                                 "seconds PLT", rows);
  }

  // 4. Hint budget: how many hint URLs per response are enough?
  {
    std::vector<harness::Series> rows;
    for (int budget : {0, 80, 40, 15}) {
      baselines::Strategy s = baselines::vroom();
      s.name = budget == 0 ? "Vroom, unlimited hints"
                           : "Vroom, <=" + std::to_string(budget) + " hints";
      s.provider.max_hints = budget;
      rows.push_back(bench::plt_series(ns, s, opt));
    }
    harness::print_quartile_bars("Ablation 4: hint-header budget",
                                 "seconds PLT", rows);
  }

  // 5. Device handling: exact / equivalence classes / single class.
  {
    std::vector<harness::Series> rows;
    const std::pair<core::DeviceHandling, const char*> modes[] = {
        {core::DeviceHandling::Exact, "exact device"},
        {core::DeviceHandling::EquivalenceClasses, "equivalence classes"},
        {core::DeviceHandling::SingleClass, "single class"}};
    for (const auto& [mode, label] : modes) {
      baselines::Strategy s = baselines::vroom();
      s.name = std::string("Vroom, ") + label;
      s.provider.offline.device_handling = mode;
      rows.push_back(bench::plt_series(ns, s, opt));
    }
    harness::print_quartile_bars("Ablation 5: device handling",
                                 "seconds PLT", rows);
  }
  return 0;
}
