// Figure 20: Vroom keeps helping when the browser cache is warm — repeat
// loads back-to-back, one day later, and one week later.
#include "browser/cache.h"

#include "bench_common.h"

namespace {

using namespace vroom;

std::vector<double> warm_plts(const web::Corpus& corpus,
                              const baselines::Strategy& strategy,
                              sim::Time gap) {
  std::vector<double> out;
  const int n = harness::effective_page_count(static_cast<int>(corpus.size()));
  for (int i = 0; i < n; ++i) {
    const auto& page = corpus.page(static_cast<std::size_t>(i));
    browser::Cache cache;
    harness::RunOptions opt = bench::default_options();
    opt.cache = &cache;
    opt.loads_per_page = 1;
    // Cold load warms the cache…
    (void)harness::run_page_load(page, strategy, opt, 1);
    // …then the measured load, `gap` later.
    opt.when += gap;
    out.push_back(
        sim::to_seconds(harness::run_page_load(page, strategy, opt, 2).plt));
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 20", "warm-cache repeat loads");
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  const struct {
    const char* label;
    sim::Time gap;
  } scenarios[] = {{"Back-to-back", sim::minutes(1)},
                   {"1 Day Later", sim::days(1)},
                   {"1 Week Later", sim::days(7)}};

  for (const auto& sc : scenarios) {
    harness::print_quartile_bars(
        std::string("Page Load Time, ") + sc.label, "seconds",
        {{"Vroom", warm_plts(ns, baselines::vroom(), sc.gap)},
         {"HTTP/2 Baseline",
          warm_plts(ns, baselines::http2_baseline(), sc.gap)}});
  }
  return 0;
}
