// Figure 17: accurate dependency inference matters — returning everything
// seen in a single prior load (per-load churn included) hurts the tail.
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 17", "utility of accurate dependency inference");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  // One fleet matrix covers the lower bounds and every plotted series.
  const auto results = bench::run_matrix(
      ns,
      {baselines::lower_bound_network(), baselines::lower_bound_cpu(),
       baselines::vroom(), baselines::vroom_prev_load_deps(),
       baselines::http2_baseline()},
      opt);
  const auto& lb_net = results[0];
  const auto& lb_cpu = results[1];
  std::vector<double> bound;
  for (std::size_t i = 0; i < lb_net.loads.size(); ++i) {
    bound.push_back(std::max(sim::to_seconds(lb_net.loads[i].plt),
                             sim::to_seconds(lb_cpu.loads[i].plt)));
  }

  harness::print_quartile_bars(
      "Page Load Time", "seconds",
      {{"Lower Bound", bound},
       {results[2].strategy, results[2].plt_seconds()},
       {results[3].strategy, results[3].plt_seconds()},
       {results[4].strategy, results[4].plt_seconds()}});
  return 0;
}
