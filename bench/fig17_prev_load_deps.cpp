// Figure 17: accurate dependency inference matters — returning everything
// seen in a single prior load (per-load churn included) hurts the tail.
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 17", "utility of accurate dependency inference");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  auto lb_net = harness::run_corpus(ns, baselines::lower_bound_network(), opt);
  auto lb_cpu = harness::run_corpus(ns, baselines::lower_bound_cpu(), opt);
  std::vector<double> bound;
  for (std::size_t i = 0; i < lb_net.loads.size(); ++i) {
    bound.push_back(std::max(sim::to_seconds(lb_net.loads[i].plt),
                             sim::to_seconds(lb_cpu.loads[i].plt)));
  }

  harness::print_quartile_bars(
      "Page Load Time", "seconds",
      {{"Lower Bound", bound},
       bench::plt_series(ns, baselines::vroom(), opt),
       bench::plt_series(ns, baselines::vroom_prev_load_deps(), opt),
       bench::plt_series(ns, baselines::http2_baseline(), opt)});
  return 0;
}
