// Figure 18: HTTP/2 PUSH alone is insufficient — without dependency hints,
// servers cannot tell clients about the third-party resources that dominate
// modern pages.
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 18", "push-only versus push + dependency hints");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  // One fleet matrix covers the lower bounds and every plotted series.
  const auto results = bench::run_matrix(
      ns,
      {baselines::lower_bound_network(), baselines::lower_bound_cpu(),
       baselines::vroom(), baselines::push_high_prio_no_hints(),
       baselines::push_all_no_hints()},
      opt);
  const auto& lb_net = results[0];
  const auto& lb_cpu = results[1];
  std::vector<double> bound;
  for (std::size_t i = 0; i < lb_net.loads.size(); ++i) {
    bound.push_back(std::max(sim::to_seconds(lb_net.loads[i].plt),
                             sim::to_seconds(lb_cpu.loads[i].plt)));
  }

  harness::print_quartile_bars(
      "Page Load Time", "seconds",
      {{"Lower Bound", bound},
       {results[2].strategy, results[2].plt_seconds()},
       {results[3].strategy, results[3].plt_seconds()},
       {results[4].strategy, results[4].plt_seconds()}});
  return 0;
}
