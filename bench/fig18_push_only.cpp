// Figure 18: HTTP/2 PUSH alone is insufficient — without dependency hints,
// servers cannot tell clients about the third-party resources that dominate
// modern pages.
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 18", "push-only versus push + dependency hints");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  auto lb_net = harness::run_corpus(ns, baselines::lower_bound_network(), opt);
  auto lb_cpu = harness::run_corpus(ns, baselines::lower_bound_cpu(), opt);
  std::vector<double> bound;
  for (std::size_t i = 0; i < lb_net.loads.size(); ++i) {
    bound.push_back(std::max(sim::to_seconds(lb_net.loads[i].plt),
                             sim::to_seconds(lb_cpu.loads[i].plt)));
  }

  harness::print_quartile_bars(
      "Page Load Time", "seconds",
      {{"Lower Bound", bound},
       bench::plt_series(ns, baselines::vroom(), opt),
       bench::plt_series(ns, baselines::push_high_prio_no_hints(), opt),
       bench::plt_series(ns, baselines::push_all_no_hints(), opt)});
  return 0;
}
