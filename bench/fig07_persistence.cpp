// Figure 7: fraction of each top-100 page's resources that persist across
// one hour, one day, and one week.
#include "core/accuracy.h"

#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 7", "resource persistence over time");
  const web::Corpus top = web::Corpus::top100(bench::kSeed);
  const int n = harness::effective_page_count(static_cast<int>(top.size()));

  std::vector<double> hour, day, week;
  for (int i = 0; i < n; ++i) {
    const auto& p = top.page(static_cast<std::size_t>(i));
    hour.push_back(core::persistence_fraction(p, sim::days(45), web::nexus6(),
                                              1, sim::hours(1)));
    day.push_back(core::persistence_fraction(p, sim::days(45), web::nexus6(),
                                             1, sim::days(1)));
    week.push_back(core::persistence_fraction(p, sim::days(45), web::nexus6(),
                                              1, sim::days(7)));
  }
  harness::print_cdf_table("Fraction of persistent resources", "fraction",
                           {{"One Hour", hour},
                            {"One Day", day},
                            {"One Week", week}});
  return 0;
}
