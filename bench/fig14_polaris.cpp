// Figure 14: Vroom versus Polaris (client-side reprioritization with a
// precomputed fine-grained dependency graph) on News + Sports pages.
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 14", "Vroom vs Polaris");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  // Both strategies share one fleet queue so neither serializes behind the
  // other.
  const auto results = bench::run_matrix(
      ns, {baselines::vroom(), baselines::polaris()}, opt);

  harness::print_cdf_table(
      "Page Load Time", "seconds",
      {{results[0].strategy, results[0].plt_seconds()},
       {results[1].strategy, results[1].plt_seconds()}});
  return 0;
}
