// Figure 14: Vroom versus Polaris (client-side reprioritization with a
// precomputed fine-grained dependency graph) on News + Sports pages.
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 14", "Vroom vs Polaris");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  harness::print_cdf_table(
      "Page Load Time", "seconds",
      {bench::plt_series(ns, baselines::vroom(), opt),
       bench::plt_series(ns, baselines::polaris(), opt)});
  return 0;
}
