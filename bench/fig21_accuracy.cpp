// Figure 21: accuracy of server-side dependency resolution over 265
// News/Sports pages and four cookie-seeded users: (a) the predictable
// subset's share of resources and bytes, (b) false negatives, (c) false
// positives — for Vroom, offline-only, and online-only resolution.
#include "core/accuracy.h"

#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 21", "server-side dependency-resolution accuracy");
  const web::Corpus acc = web::Corpus::accuracy_set(bench::kSeed);
  const int n = harness::effective_page_count(static_cast<int>(acc.size()));
  const core::OfflineConfig off;

  std::vector<double> pred_count, pred_bytes;
  std::vector<double> fn_vroom, fn_offline, fn_online;
  std::vector<double> fp_vroom, fp_offline, fp_online;

  for (int i = 0; i < n; ++i) {
    const auto& page = acc.page(static_cast<std::size_t>(i));
    for (std::uint32_t user = 1; user <= 4; ++user) {
      auto v = core::measure_accuracy(page, sim::days(45), web::nexus6(),
                                      user,
                                      core::ResolutionMode::OfflinePlusOnline,
                                      off);
      auto o = core::measure_accuracy(page, sim::days(45), web::nexus6(),
                                      user, core::ResolutionMode::OfflineOnly,
                                      off);
      auto ol = core::measure_accuracy(page, sim::days(45), web::nexus6(),
                                       user, core::ResolutionMode::OnlineOnly,
                                       off);
      pred_count.push_back(v.predictable_count_frac);
      pred_bytes.push_back(v.predictable_bytes_frac);
      fn_vroom.push_back(v.false_negative_frac);
      fn_offline.push_back(o.false_negative_frac);
      fn_online.push_back(ol.false_negative_frac);
      fp_vroom.push_back(v.false_positive_frac);
      fp_offline.push_back(o.false_positive_frac);
      fp_online.push_back(ol.false_positive_frac);
    }
  }

  harness::print_cdf_table("(a) Predictable resources / total", "fraction",
                           {{"Count", pred_count}, {"Bytes", pred_bytes}});
  harness::print_cdf_table("(b) False negatives (fraction of predictable)",
                           "fraction",
                           {{"Online Only", fn_online},
                            {"Vroom", fn_vroom},
                            {"Offline Only", fn_offline}});
  harness::print_cdf_table("(c) False positives (fraction of predictable)",
                           "fraction",
                           {{"Vroom", fp_vroom},
                            {"Offline Only", fp_offline},
                            {"Online Only", fp_online}});
  return 0;
}
