// Figure 16: per-page improvement over HTTP/2 in (a) the time to discover
// resources and (b) the time to finish fetching them, for all referenced
// resources and for the high-priority (HTML/CSS/JS) subset.
#include "bench_common.h"

namespace {

std::vector<double> improvement(const std::vector<double>& baseline,
                                const std::vector<double>& vroom) {
  std::vector<double> out;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    out.push_back(baseline[i] > 0 ? (baseline[i] - vroom[i]) / baseline[i]
                                  : 0.0);
  }
  return out;
}

}  // namespace

int main() {
  using namespace vroom;
  bench::banner("Figure 16", "discovery / fetch-completion improvements");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  const auto results = bench::run_matrix(
      ns, {baselines::http2_baseline(), baselines::vroom()}, opt);
  const auto& h2 = results[0];
  const auto& vr = results[1];

  auto column = [&](auto getter) {
    std::vector<double> base, vroomv;
    for (std::size_t i = 0; i < h2.loads.size(); ++i) {
      base.push_back(sim::to_seconds(getter(h2.loads[i])));
      vroomv.push_back(sim::to_seconds(getter(vr.loads[i])));
    }
    return improvement(base, vroomv);
  };

  harness::print_cdf_table(
      "(a) Discovery-time improvement over HTTP/2", "fraction",
      {{"High Priority Only", column([](const browser::LoadResult& r) {
          return r.high_prio_discovered;
        })},
       {"All", column([](const browser::LoadResult& r) {
          return r.all_discovered;
        })}});

  harness::print_cdf_table(
      "(b) Fetch-time improvement over HTTP/2", "fraction",
      {{"High Priority Only", column([](const browser::LoadResult& r) {
          return r.high_prio_fetched;
        })},
       {"All", column([](const browser::LoadResult& r) {
          return r.all_fetched;
        })}});
  return 0;
}
