// Shared setup for the figure-regeneration benches.
//
// Every bench prints the same rows/series as the corresponding figure in the
// paper (shape reproduction; absolute values come from the simulated device
// and link, see EXPERIMENTS.md). Set VROOM_BENCH_PAGES=<n> to cap corpus
// size for quick runs.
#pragma once

#include <cstdio>

#include "baselines/strategies.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/stats.h"
#include "web/corpus.h"

namespace vroom::bench {

constexpr std::uint64_t kSeed = 42;

inline harness::RunOptions default_options() {
  harness::RunOptions opt;
  opt.seed = kSeed;
  return opt;
}

inline harness::Series plt_series(const web::Corpus& corpus,
                                  const baselines::Strategy& strategy,
                                  const harness::RunOptions& opt) {
  auto res = harness::run_corpus(corpus, strategy, opt);
  return {strategy.name, res.plt_seconds()};
}

inline void banner(const char* fig, const char* what) {
  std::printf("-------------------------------------------------------\n");
  std::printf("%s: %s\n", fig, what);
  std::printf("-------------------------------------------------------\n");
}

}  // namespace vroom::bench
