// Shared setup for the figure-regeneration benches.
//
// Every bench prints the same rows/series as the corresponding figure in the
// paper (shape reproduction; absolute values come from the simulated device
// and link, see EXPERIMENTS.md). Set VROOM_BENCH_PAGES=<n> to cap corpus
// size for quick runs and VROOM_JOBS=<n> to size the worker pool (results
// are bit-identical for any worker count; fleet telemetry goes to stderr).
//
// Benches sweep their entire (corpus × strategy) grid through one
// fleet::SweepPlan pool — multi-corpus grids included — so no strategy or
// corpus serializes behind another and the longest pages dispatch first.
#pragma once

#include <cstdio>
#include <vector>

#include "baselines/strategies.h"
#include "fleet/fleet.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/stats.h"
#include "web/corpus.h"

namespace vroom::bench {

constexpr std::uint64_t kSeed = 42;

inline harness::RunOptions default_options() {
  harness::RunOptions opt;
  opt.seed = kSeed;
  return opt;
}

// Executes a declarative (corpus × strategy) plan on one shared pool and
// prints the run's telemetry (with per-cell rows) to stderr — stdout
// carries only the deterministic tables. Results come back in plan order.
inline std::vector<harness::CorpusResult> run_plan(
    const fleet::SweepPlan& plan) {
  fleet::Telemetry telemetry;
  fleet::FleetOptions fo;
  fo.telemetry = &telemetry;
  auto results = fleet::run_plan(plan, fo);
  telemetry.print(stderr);
  return results;
}

// One-corpus convenience: fans the strategy grid through one pool.
inline std::vector<harness::CorpusResult> run_matrix(
    const web::Corpus& corpus,
    const std::vector<baselines::Strategy>& strategies,
    const harness::RunOptions& opt) {
  fleet::SweepPlan plan;
  plan.add_matrix(corpus, strategies, opt);
  return bench::run_plan(plan);
}

inline harness::Series plt_series(const web::Corpus& corpus,
                                  const baselines::Strategy& strategy,
                                  const harness::RunOptions& opt) {
  auto res = harness::run_corpus(corpus, strategy, opt);
  return {strategy.name, res.plt_seconds()};
}

// Sweeps the whole strategy grid through one shared pool and returns one
// PLT series per strategy, in grid order. Equivalent to (but faster than)
// one plt_series call per strategy: no pool tail between strategies.
inline std::vector<harness::Series> plt_matrix(
    const web::Corpus& corpus,
    const std::vector<baselines::Strategy>& strategies,
    const harness::RunOptions& opt) {
  auto results = bench::run_matrix(corpus, strategies, opt);
  std::vector<harness::Series> rows;
  rows.reserve(strategies.size());
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    rows.push_back({strategies[i].name, results[i].plt_seconds()});
  }
  return rows;
}

inline void banner(const char* fig, const char* what) {
  std::printf("-------------------------------------------------------\n");
  std::printf("%s: %s\n", fig, what);
  std::printf("-------------------------------------------------------\n");
}

}  // namespace vroom::bench
