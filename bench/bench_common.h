// Shared setup for the figure-regeneration benches.
//
// Every bench prints the same rows/series as the corresponding figure in the
// paper (shape reproduction; absolute values come from the simulated device
// and link, see EXPERIMENTS.md). Set VROOM_BENCH_PAGES=<n> to cap corpus
// size for quick runs and VROOM_JOBS=<n> to size the worker pool (results
// are bit-identical for any worker count; fleet telemetry goes to stderr).
#pragma once

#include <cstdio>
#include <vector>

#include "baselines/strategies.h"
#include "fleet/fleet.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/stats.h"
#include "web/corpus.h"

namespace vroom::bench {

constexpr std::uint64_t kSeed = 42;

inline harness::RunOptions default_options() {
  harness::RunOptions opt;
  opt.seed = kSeed;
  return opt;
}

// Fans the whole strategy grid through one fleet queue and prints the run's
// telemetry to stderr — stdout carries only the deterministic tables.
inline std::vector<harness::CorpusResult> run_matrix(
    const web::Corpus& corpus,
    const std::vector<baselines::Strategy>& strategies,
    const harness::RunOptions& opt) {
  fleet::Telemetry telemetry;
  fleet::FleetOptions fo;
  fo.telemetry = &telemetry;
  auto results = fleet::run_matrix(corpus, strategies, opt, fo);
  telemetry.print(stderr);
  return results;
}

inline harness::Series plt_series(const web::Corpus& corpus,
                                  const baselines::Strategy& strategy,
                                  const harness::RunOptions& opt) {
  auto res = harness::run_corpus(corpus, strategy, opt);
  return {strategy.name, res.plt_seconds()};
}

inline void banner(const char* fig, const char* what) {
  std::printf("-------------------------------------------------------\n");
  std::printf("%s: %s\n", fig, what);
  std::printf("-------------------------------------------------------\n");
}

}  // namespace vroom::bench
