// Extension: deployment at population scale (DESIGN.md §11).
//
// The paper evaluates Vroom per load; this bench asks what survives when
// millions of page views share one front-end: hint-cache hit ratios, hint
// staleness against the Figure 7 persistence curve, and p99 PLT as offered
// load crosses the hottest origins' link capacity. Output shape: one
// offered-load row per level plus a PLT CDF, like the Figure 13 tables.
#include <string>

#include "bench_common.h"
#include "deploy/scenario.h"
#include "harness/export.h"

int main() {
  using namespace vroom;
  bench::banner("Deployment scale",
                "population traffic against one shared Vroom front-end");

  const int pages = harness::effective_page_count(20);
  const web::Corpus corpus =
      web::Corpus::mixed400_sample(bench::kSeed, pages);

  deploy::ScenarioConfig cfg;
  cfg.seed = bench::kSeed;
  cfg.micro = bench::default_options();
  // Level sweep sized for a bench pass: same capacity-crossing shape as
  // the example, shorter window.
  cfg.population.window = sim::hours(6);
  cfg.offered_levels = {0.1, 0.8, 3.2};

  const deploy::DeploymentReport report =
      deploy::run_deployment(corpus, cfg);

  std::printf("%9s %9s %8s %8s %7s %7s %9s\n", "offered/s", "served/s",
              "p50 PLT", "p99 PLT", "hit%", "stale%", "hintless%");
  for (const deploy::LevelReport& l : report.levels) {
    std::printf("%9.2f %9.2f %7.2fs %7.2fs %6.1f%% %6.1f%% %8.1f%%\n",
                l.offered_per_sec, l.served_per_sec, l.p50_plt_s,
                l.p99_plt_s, 100.0 * l.hit_ratio, 100.0 * l.stale_frac,
                100.0 * l.hintless_frac);
  }
  harness::print_stat("origin link rate", report.origin_link_mbps, "Mbps");
  harness::print_stat("crawl refresh",
                      sim::to_seconds(report.effective_recrawl) / 3600.0,
                      "h");

  std::vector<harness::Series> cdf;
  for (const deploy::LevelReport& l : report.levels) {
    char label[32];
    std::snprintf(label, sizeof label, "%.2f/s offered", l.offered_per_sec);
    cdf.push_back({label, l.plt_seconds});
  }
  harness::print_cdf_table("Deployment PLT CDF", "s", cdf);
  harness::maybe_export("Deployment PLT CDF", cdf);

  std::printf("\n%10s %12s %10s %14s\n", "hint age", "persistence",
              "serves", "mean micro PLT");
  for (const deploy::StaleBucketReport& b : report.stale_buckets) {
    std::printf("%9.1fh %11.1f%% %10lld %13.2fs\n",
                sim::to_seconds(b.age) / 3600.0, 100.0 * b.persistence,
                static_cast<long long>(b.serves), b.mean_micro_plt_s);
  }

  // Wall-plane throughput of the macro pass, on stderr: stdout is frozen by
  // the byte-identity goldens, and this number varies run to run.
  if (report.macro_wall_seconds > 0) {
    std::fprintf(stderr,
                 "[bench] macro: %lld arrivals in %.3fs wall = %.0f "
                 "serves/sec (warm column %.3fs)\n",
                 static_cast<long long>(report.macro_arrivals),
                 report.macro_wall_seconds,
                 static_cast<double>(report.macro_arrivals) /
                     report.macro_wall_seconds,
                 report.warm_wall_seconds);
  }
  return 0;
}
