// Figure 19: judicious coordinated scheduling of pushes and hint-driven
// fetches is key; "Push All, Fetch ASAP" congests the access link and gives
// up most of the gains.
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 19", "utility of cooperative request scheduling");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  auto lb_net = harness::run_corpus(ns, baselines::lower_bound_network(), opt);
  auto lb_cpu = harness::run_corpus(ns, baselines::lower_bound_cpu(), opt);
  std::vector<double> bound;
  for (std::size_t i = 0; i < lb_net.loads.size(); ++i) {
    bound.push_back(std::max(sim::to_seconds(lb_net.loads[i].plt),
                             sim::to_seconds(lb_cpu.loads[i].plt)));
  }

  harness::print_quartile_bars(
      "Page Load Time", "seconds",
      {{"Lower Bound", bound},
       bench::plt_series(ns, baselines::vroom(), opt),
       bench::plt_series(ns, baselines::push_all_fetch_asap(), opt),
       {"No Push, No Hints",
        harness::run_corpus(ns, baselines::http2_baseline(), opt)
            .plt_seconds()}});
  return 0;
}
