// Figure 11: receipt time of the first ten resources that must be processed
// on one complex page (a eurosport.com stand-in), relative to baseline
// HTTP/2, under "Push All, Fetch ASAP" versus Vroom's cooperative schedule.
#include <algorithm>

#include "bench_common.h"

namespace {

// Receipt times of the first `k` processable resources, ordered by their
// baseline-HTTP/2 completion.
std::vector<double> first_k_processable(
    const vroom::browser::LoadResult& result,
    const std::vector<std::string>& order) {
  std::vector<double> out;
  for (const auto& url : order) {
    for (const auto& t : result.timings) {
      if (t.url == url && t.complete != vroom::sim::kNever) {
        out.push_back(vroom::sim::to_seconds(t.complete));
        break;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace vroom;
  bench::banner("Figure 11",
                "receipt-time of first 10 processed resources vs HTTP/2");
  harness::RunOptions opt = bench::default_options();
  // One complex sports page plays the eurosport.com role.
  const web::PageModel page =
      web::generate_page(bench::kSeed, 101, web::PageClass::Sports);

  auto h2 = harness::run_page_load(page, baselines::http2_baseline(), opt, 1);
  auto asap =
      harness::run_page_load(page, baselines::push_all_fetch_asap(), opt, 1);
  auto vr = harness::run_page_load(page, baselines::vroom(), opt, 1);

  // Order resources by their baseline completion times (the figure's x-axis).
  std::vector<std::pair<sim::Time, std::string>> base;
  for (const auto& t : h2.timings) {
    if (t.referenced && t.processable && t.complete != sim::kNever) {
      base.emplace_back(t.complete, t.url);
    }
  }
  std::sort(base.begin(), base.end());
  std::vector<std::string> order;
  for (std::size_t i = 0; i < base.size() && i < 10; ++i) {
    order.push_back(base[i].second);
  }

  const auto h2_t = first_k_processable(h2, order);
  const auto asap_t = first_k_processable(asap, order);
  const auto vr_t = first_k_processable(vr, order);

  std::printf("%10s  %12s  %22s  %12s\n", "resource", "HTTP/2 (s)",
              "PushAll-FetchASAP delta", "Vroom delta");
  for (std::size_t i = 0; i < order.size(); ++i) {
    const double a = i < asap_t.size() ? asap_t[i] - h2_t[i] : 0;
    const double v = i < vr_t.size() ? vr_t[i] - h2_t[i] : 0;
    std::printf("%10zu  %12.3f  %22.3f  %12.3f\n", i + 1, h2_t[i], a, v);
  }
  const double worst_asap =
      *std::max_element(asap_t.begin(), asap_t.end()) -
      *std::max_element(h2_t.begin(), h2_t.end());
  harness::print_stat("last-of-10 delta, Push All Fetch ASAP", worst_asap,
                      "s");
  return 0;
}
