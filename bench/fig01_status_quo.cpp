// Figure 1: page load times on today's mobile web — CDF across the Alexa
// top-100 versus the top-50 News + top-50 Sports sites, loaded over LTE with
// the status-quo protocol mix (HTTP/1.1-dominant in 2017).
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 1", "PLT on today's mobile web (status quo)");
  const harness::RunOptions opt = bench::default_options();

  const web::Corpus top = web::Corpus::top100(bench::kSeed);
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);
  const baselines::Strategy today = baselines::http11();

  // Both corpora ride one SweepPlan pool rather than sweeping back-to-back.
  fleet::SweepPlan plan;
  plan.add(top, today, opt).add(ns, today, opt);
  const auto results = bench::run_plan(plan);

  harness::print_cdf_table(
      "Page Load Time", "seconds",
      {{"Top 100 Overall", results[0].plt_seconds()},
       {"Top 50 News + Top 50 Sports", results[1].plt_seconds()}});
  return 0;
}
