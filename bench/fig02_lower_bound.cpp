// Figure 2: potential for reducing page load times by fully utilizing the
// client's CPU or network. Series: network-bottleneck loads (all URLs known
// up front, nothing evaluated), CPU-bottleneck loads (servers local, no
// network delay), the per-page max of the two, and real loads (HTTP/1.1).
#include <algorithm>

#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 2", "lower bounds from full CPU/network utilization");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  const auto results = bench::run_matrix(
      ns,
      {baselines::lower_bound_network(), baselines::lower_bound_cpu(),
       baselines::http11()},
      opt);
  const auto& network = results[0];
  const auto& cpu = results[1];
  const auto& web_loads = results[2];

  std::vector<double> bound;
  const auto net_s = network.plt_seconds();
  const auto cpu_s = cpu.plt_seconds();
  bound.reserve(net_s.size());
  for (std::size_t i = 0; i < net_s.size(); ++i) {
    bound.push_back(std::max(net_s[i], cpu_s[i]));
  }

  harness::print_cdf_table("Page Load Time", "seconds",
                           {{"Network Bottleneck", net_s},
                            {"CPU Bottleneck", cpu_s},
                            {"Max(CPU, Network)", bound},
                            {"Loads from Web", web_loads.plt_seconds()}});
  return 0;
}
