// Figure 4: fraction of the critical path spent waiting on the network when
// the client speaks HTTP/2 to every domain. Also prints the same fraction
// under Vroom (the §6.1 claim: ~24 % reduction in network wait).
#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 4", "critical-path time waiting on the network");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  const auto results = bench::run_matrix(
      ns, {baselines::http2_baseline(), baselines::vroom()}, opt);
  const auto& h2 = results[0];
  const auto& vr = results[1];

  harness::print_cdf_table("Fraction of critical path waiting on network",
                           "fraction",
                           {{"HTTP/2 Baseline", h2.net_wait_fractions()},
                            {"Vroom", vr.net_wait_fractions()}});

  const double h2_med = harness::median(h2.net_wait_fractions());
  const double vr_med = harness::median(vr.net_wait_fractions());
  harness::print_stat("median net-wait reduction with Vroom",
                      h2_med > 0 ? (h2_med - vr_med) / h2_med : 0, "fraction");
  return 0;
}
