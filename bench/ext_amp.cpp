// §8 AMP comparison: how much of Vroom's benefit does an AMP-style page
// rewrite capture, and does Vroom still help AMP pages? (The paper: "VROOM
// can speed up the loads of legacy web pages [and] can also improve the
// performance of AMP-based pages by enabling asynchronous fetches earlier
// using server-provided hints.")
#include "web/amp.h"

#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("AMP comparison", "legacy vs AMP-transformed pages");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);
  const int n = harness::effective_page_count(static_cast<int>(ns.size()));

  std::vector<double> legacy_h2, legacy_vroom, amp_h2, amp_vroom;
  for (int i = 0; i < n; ++i) {
    const web::PageModel& page = ns.page(static_cast<std::size_t>(i));
    const web::PageModel amp = web::amp_transform(page);
    legacy_h2.push_back(sim::to_seconds(
        harness::run_page_median(page, baselines::http2_baseline(), opt).plt));
    legacy_vroom.push_back(sim::to_seconds(
        harness::run_page_median(page, baselines::vroom(), opt).plt));
    amp_h2.push_back(sim::to_seconds(
        harness::run_page_median(amp, baselines::http2_baseline(), opt).plt));
    amp_vroom.push_back(sim::to_seconds(
        harness::run_page_median(amp, baselines::vroom(), opt).plt));
  }
  harness::print_quartile_bars("Page Load Time", "seconds",
                               {{"Legacy, HTTP/2", legacy_h2},
                                {"Legacy, Vroom", legacy_vroom},
                                {"AMP, HTTP/2", amp_h2},
                                {"AMP, Vroom", amp_vroom}});
  harness::print_stat("median AMP improvement under HTTP/2",
                      harness::median(legacy_h2) - harness::median(amp_h2),
                      "s");
  harness::print_stat("median Vroom improvement on AMP pages",
                      harness::median(amp_h2) - harness::median(amp_vroom),
                      "s");
  return 0;
}
