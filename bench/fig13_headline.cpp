// Figure 13: the headline result — PLT, Above-the-Fold Time, and Speed Index
// CDFs for Lower Bound / Vroom / HTTP/2 Baseline / HTTP/1.1 over the News +
// Sports corpus. Also prints the §6.1 extras: the Mixed-400 corpus medians
// and the incremental-deployment (first-party-only) median.
#include <algorithm>

#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 13", "PLT / AFT / Speed Index, headline comparison");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);
  const web::Corpus mixed = web::Corpus::mixed400_sample(bench::kSeed);

  // The full figure grid — every News+Sports series (including the §6.1
  // first-party-only run) plus the Mixed-400 §6.1 pair — rides one
  // SweepPlan pool, so no corpus or strategy serializes behind another.
  fleet::SweepPlan plan;
  plan.add_matrix(
      ns,
      {baselines::lower_bound_network(), baselines::lower_bound_cpu(),
       baselines::vroom(), baselines::http2_baseline(), baselines::http11(),
       baselines::vroom_first_party_only()},
      opt);
  plan.add_matrix(mixed, {baselines::http2_baseline(), baselines::vroom()},
                  opt);
  const auto results = bench::run_plan(plan);
  const auto& lb_net = results[0];
  const auto& lb_cpu = results[1];
  const auto& vr = results[2];
  const auto& h2 = results[3];
  const auto& h1 = results[4];
  const auto& partial = results[5];
  const auto& mixed_h2 = results[6];
  const auto& mixed_vr = results[7];

  auto bound_of = [&](auto getter) {
    std::vector<double> out;
    const auto a = getter(lb_net), b = getter(lb_cpu);
    for (std::size_t i = 0; i < a.size(); ++i) {
      out.push_back(std::max(a[i], b[i]));
    }
    return out;
  };

  harness::print_cdf_table(
      "(a) Page Load Time", "seconds",
      {{"Lower Bound",
        bound_of([](const harness::CorpusResult& r) { return r.plt_seconds(); })},
       {"Vroom", vr.plt_seconds()},
       {"HTTP/2 Baseline", h2.plt_seconds()},
       {"HTTP/1.1", h1.plt_seconds()}});

  harness::print_cdf_table(
      "(b) Above-the-fold Time", "seconds",
      {{"Lower Bound",
        bound_of([](const harness::CorpusResult& r) { return r.aft_seconds(); })},
       {"Vroom", vr.aft_seconds()},
       {"HTTP/2 Baseline", h2.aft_seconds()},
       {"HTTP/1.1", h1.aft_seconds()}});

  harness::print_cdf_table(
      "(c) Speed Index", "ms",
      {{"Lower Bound", bound_of([](const harness::CorpusResult& r) {
          return r.speed_indices();
        })},
       {"Vroom", vr.speed_indices()},
       {"HTTP/2 Baseline", h2.speed_indices()},
       {"HTTP/1.1", h1.speed_indices()}});

  // §6.1 text results.
  std::printf("\n-- §6.1 text results --\n");
  harness::print_stat("Mixed-400 median PLT, HTTP/2",
                      harness::median(mixed_h2.plt_seconds()), "s");
  harness::print_stat("Mixed-400 median PLT, Vroom",
                      harness::median(mixed_vr.plt_seconds()), "s");
  harness::print_stat("News+Sports median PLT, Vroom first-party-only",
                      harness::median(partial.plt_seconds()), "s");
  return 0;
}
