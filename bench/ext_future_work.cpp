// The paper's stated future-work directions, implemented and measured:
//   1. §6.1 — combine Vroom's server aid with Polaris-style client
//      prioritization of self-discovered resources (tail behaviour).
//   2. §7  — cross-page offline resolution: crawl one page per site/type
//      and share the stable infrastructure slots with its siblings.
//   3. WProf-style critical-path decomposition of where each scheme spends
//      its load time (network / compute / queueing).
#include "browser/wprof.h"
#include "core/type_sharing.h"

#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Future-work extensions", "Vroom+Polaris, §7 sharing, WProf");
  const harness::RunOptions opt = bench::default_options();
  const web::Corpus ns = web::Corpus::news_sports(bench::kSeed);

  // 1. Vroom + Polaris, including the tail the paper highlights.
  {
    const auto results = bench::run_matrix(
        ns,
        {baselines::vroom(), baselines::vroom_plus_polaris(),
         baselines::polaris()},
        opt);
    harness::print_cdf_table("Vroom + Polaris combination", "seconds PLT",
                             {{"Vroom", results[0].plt_seconds()},
                              {"Vroom + Polaris", results[1].plt_seconds()},
                              {"Polaris", results[2].plt_seconds()}});
  }

  // 2. Cross-page offline resolution (§7).
  {
    std::vector<double> own, shared, none;
    const int sites = harness::effective_page_count(30);
    for (int s = 0; s < sites; ++s) {
      auto pages = web::generate_site_pages(
          bench::kSeed, static_cast<std::uint32_t>(s), web::PageClass::News,
          4);
      for (int t = 1; t < 4; ++t) {
        auto sample = core::measure_type_sharing(
            pages[static_cast<std::size_t>(t)], pages[0], sim::days(45),
            web::nexus6(), 1, {});
        own.push_back(sample.fn_per_page_crawl);
        shared.push_back(sample.fn_type_shared);
        none.push_back(sample.fn_online_only_scan);
      }
    }
    harness::print_cdf_table(
        "False negatives: per-page crawls vs type-shared crawls (crawl cost "
        "/4)",
        "fraction",
        {{"Per-page crawls", own},
         {"Type-shared crawls", shared},
         {"Online scan only", none}});
  }

  // 3. WProf critical-path decomposition.
  {
    std::vector<double> h2_net, vr_net;
    const int n = harness::effective_page_count(24);
    for (int i = 0; i < n; ++i) {
      const auto& page = ns.page(static_cast<std::size_t>(i * 4));
      web::LoadIdentity id;
      id.wall_time = opt.when;
      id.device = opt.device;
      id.user = opt.user;
      id.nonce = 1;
      const web::PageInstance inst(page, id);
      auto h2 =
          harness::run_page_load(page, baselines::http2_baseline(), opt, 1);
      auto vr = harness::run_page_load(page, baselines::vroom(), opt, 1);
      h2_net.push_back(
          browser::extract_critical_path(h2, inst,
                                         browser::CpuCosts::nexus6())
              .network_fraction());
      vr_net.push_back(
          browser::extract_critical_path(vr, inst,
                                         browser::CpuCosts::nexus6())
              .network_fraction());
    }
    harness::print_cdf_table("WProf critical-path network fraction",
                             "fraction",
                             {{"HTTP/2 Baseline", h2_net},
                              {"Vroom", vr_net}});
  }
  return 0;
}
