// Substrate micro-benchmarks (google-benchmark): simulator throughput for
// the pieces every experiment leans on. These guard against performance
// regressions that would make the corpus sweeps impractically slow.
//
// BM_LoadsPerSecond is the tracked end-to-end baseline:
// scripts/bench_substrate.sh runs this binary and records the JSON report
// (loads/sec as items_per_second, simulated events/sec and peak RSS as
// counters) in BENCH_substrate.json for cross-commit comparison.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "baselines/strategies.h"
#include "core/accuracy.h"
#include "core/offline_resolver.h"
#include "deploy/scenario.h"
#include "harness/env.h"
#include "harness/experiment.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "web/corpus.h"
#include "web/page_generator.h"

namespace {

using namespace vroom;

// Peak resident set size (VmHWM, reported by the kernel in kB) in bytes.
// Returns -1.0 when /proc is unavailable or has no VmHWM line, so consumers
// (scripts/bench_smoke.sh) can tell "unmeasurable" from a genuine zero.
double peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1.0;
  char line[256];
  bool found = false;
  double kb = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtod(line + 6, nullptr);
      found = true;
      break;
    }
  }
  std::fclose(f);
  return found ? kb * 1024.0 : -1.0;
}

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(loop.run());
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_TcpBulkTransfer(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    net::Network net(loop, net::NetworkConfig::lte(), 1);
    net::TcpConnection conn(net, "a.com", false);
    conn.connect([&] {
      net::TcpConnection::Chunk c;
      c.bytes = state.range(0);
      conn.send_chunk(std::move(c));
    });
    loop.run();
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcpBulkTransfer)->Arg(100'000)->Arg(2'000'000);

void BM_PageGeneration(benchmark::State& state) {
  std::uint32_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        web::generate_page(42, id++, web::PageClass::News));
  }
}
BENCHMARK(BM_PageGeneration);

void BM_PageInstanceRealization(benchmark::State& state) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  web::LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = web::nexus6();
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    id.nonce = nonce++;
    benchmark::DoNotOptimize(web::PageInstance(page, id));
  }
}
BENCHMARK(BM_PageInstanceRealization);

void BM_StableSetResolution(benchmark::State& state) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  // Fresh resolver and crawl time per iteration: the resolver memoizes
  // crawl intersections, so a fixed (resolver, now) pair would measure one
  // map lookup instead of the resolution itself.
  sim::Time now = sim::days(45);
  for (auto _ : state) {
    core::OfflineResolver resolver(page, {});
    now += sim::hours(1);
    benchmark::DoNotOptimize(
        &resolver.stable_set(now, web::nexus6(), page.first_party(), 1));
  }
}
BENCHMARK(BM_StableSetResolution);

void BM_FullPageLoad(benchmark::State& state) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  const harness::RunOptions opt;
  const baselines::Strategy strategy =
      state.range(0) == 0 ? baselines::http2_baseline() : baselines::vroom();
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_page_load(page, strategy, opt, 1));
  }
}
BENCHMARK(BM_FullPageLoad)->Arg(0)->Arg(1);

// The tracked end-to-end throughput baseline: full simulated page loads per
// wall-clock second, one representative page per corpus class, under the
// status-quo browser and under Vroom, on the LTE profile. Each iteration is
// one complete load (fresh world; nonces cycle through a small window so
// per-load churn varies and one atypical realization can't skew the rate).
void BM_LoadsPerSecond(benchmark::State& state) {
  const auto cls = static_cast<web::PageClass>(state.range(0));
  const web::PageModel page = web::generate_page(42, 7, cls);
  const baselines::Strategy strategy =
      state.range(1) == 0 ? baselines::http2_baseline() : baselines::vroom();
  const harness::RunOptions opt;
  std::int64_t events = 0;
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const auto r = harness::run_page_load(page, strategy, opt, ++nonce & 63);
    events += r.sim_events;
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(state.iterations());  // items/sec == loads/sec
  state.counters["sim_events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["peak_rss_bytes"] = peak_rss_bytes();
}
BENCHMARK(BM_LoadsPerSecond)
    ->ArgNames({"class", "vroom"})
    ->ArgsProduct({{static_cast<int>(web::PageClass::Top100),
                    static_cast<int>(web::PageClass::News),
                    static_cast<int>(web::PageClass::Sports),
                    static_cast<int>(web::PageClass::Mixed400)},
                   {0, 1}});

// The tracked deployment-macro throughput baseline: arrivals replayed per
// wall-clock second through the shared front-end + origin-link contention
// pass. Manual time is the scenario's own macro wall clock, so the micro
// PLT table each iteration rebuilds does not dilute the rate —
// items_per_second IS macro serves/sec, the number ext_deployment prints
// to stderr and bench_regression.sh gates.
void BM_DeployMacroServesPerSecond(benchmark::State& state) {
  const web::Corpus corpus = web::Corpus::mixed400_sample(42, 6);
  deploy::ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.population.window = sim::hours(1);
  cfg.offered_levels = {0.5, 2.0};
  cfg.stale_ages = {sim::hours(1)};
  std::int64_t arrivals = 0;
  for (auto _ : state) {
    const deploy::DeploymentReport r = deploy::run_deployment(corpus, cfg);
    arrivals += r.macro_arrivals;
    state.SetIterationTime(std::max(r.macro_wall_seconds, 1e-9));
  }
  state.SetItemsProcessed(arrivals);
  state.counters["peak_rss_bytes"] = peak_rss_bytes();
}
BENCHMARK(BM_DeployMacroServesPerSecond)->UseManualTime()->Iterations(3);

void BM_AccuracyMeasurement(benchmark::State& state) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::measure_accuracy(
        page, sim::days(45), web::nexus6(), 1,
        core::ResolutionMode::OfflinePlusOnline, {}));
  }
}
BENCHMARK(BM_AccuracyMeasurement);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): flips the obs gates from the
// environment before the benchmarks run, then records the metrics snapshot
// (VROOM_METRICS=<dir>) and phase-profile table (VROOM_PROFILE=1) that
// scripts/bench_substrate.sh archives next to BENCH_substrate.json.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  namespace obs = vroom::obs;
  const vroom::harness::Env env = vroom::harness::Env::from_environment();
  obs::set_metrics_enabled(env.metrics_enabled());
  obs::set_profiling_enabled(env.profile);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (env.profile) {
    // No external worker-time measurement here; 0 skips the coverage line.
    std::fputs(
        obs::format_phase_profile(obs::collect_phase_profile(), 0.0).c_str(),
        stderr);
  }
  if (env.metrics_enabled()) obs::registry().export_to(env.metrics_dir);
  return 0;
}
