// Substrate micro-benchmarks (google-benchmark): simulator throughput for
// the pieces every experiment leans on. These guard against performance
// regressions that would make the corpus sweeps impractically slow.
#include <benchmark/benchmark.h>

#include "baselines/strategies.h"
#include "core/accuracy.h"
#include "core/offline_resolver.h"
#include "harness/experiment.h"
#include "net/tcp.h"
#include "web/page_generator.h"

namespace {

using namespace vroom;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(loop.run());
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_TcpBulkTransfer(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    net::Network net(loop, net::NetworkConfig::lte(), 1);
    net::TcpConnection conn(net, "a.com", false);
    conn.connect([&] {
      net::TcpConnection::Chunk c;
      c.bytes = state.range(0);
      conn.send_chunk(std::move(c));
    });
    loop.run();
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcpBulkTransfer)->Arg(100'000)->Arg(2'000'000);

void BM_PageGeneration(benchmark::State& state) {
  std::uint32_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        web::generate_page(42, id++, web::PageClass::News));
  }
}
BENCHMARK(BM_PageGeneration);

void BM_PageInstanceRealization(benchmark::State& state) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  web::LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = web::nexus6();
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    id.nonce = nonce++;
    benchmark::DoNotOptimize(web::PageInstance(page, id));
  }
}
BENCHMARK(BM_PageInstanceRealization);

void BM_StableSetResolution(benchmark::State& state) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  core::OfflineResolver resolver(page, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.stable_set(
        sim::days(45), web::nexus6(), page.first_party(), 1));
  }
}
BENCHMARK(BM_StableSetResolution);

void BM_FullPageLoad(benchmark::State& state) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  const harness::RunOptions opt;
  const baselines::Strategy strategy =
      state.range(0) == 0 ? baselines::http2_baseline() : baselines::vroom();
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_page_load(page, strategy, opt, 1));
  }
}
BENCHMARK(BM_FullPageLoad)->Arg(0)->Arg(1);

void BM_AccuracyMeasurement(benchmark::State& state) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::measure_accuracy(
        page, sim::days(45), web::nexus6(), 1,
        core::ResolutionMode::OfflinePlusOnline, {}));
  }
}
BENCHMARK(BM_AccuracyMeasurement);

}  // namespace

BENCHMARK_MAIN();
