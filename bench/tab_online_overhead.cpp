// §4.1.2 text result: server-side on-the-fly HTML parsing adds a median
// delay of ~100 ms across popular landing pages.
#include "web/html_scanner.h"
#include "web/page_instance.h"

#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Online-analysis overhead", "on-the-fly HTML parse delay");
  std::vector<double> cost_ms;
  // A top-1000-like mix: mostly average pages plus the complex News/Sports.
  for (const web::Corpus& corpus :
       {web::Corpus::top100(bench::kSeed),
        web::Corpus::news_sports(bench::kSeed),
        web::Corpus::mixed400_sample(bench::kSeed)}) {
    for (const auto& page : corpus.pages()) {
      web::LoadIdentity id;
      id.wall_time = sim::days(45);
      id.device = web::nexus6();
      id.nonce = 1;
      const web::PageInstance inst(page, id);
      cost_ms.push_back(sim::to_ms(web::scan_cost(inst.resource(0).size)));
    }
  }
  harness::print_cdf_table("HTML scan cost", "ms", {{"All pages", cost_ms}});
  harness::print_stat("median scan cost", harness::median(cost_ms), "ms");
  return 0;
}
