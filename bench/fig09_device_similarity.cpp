// Figure 9: intersection-over-union of each page's stable resource set when
// loaded on a Nexus 6 versus on other devices.
#include "core/offline_resolver.h"

#include "bench_common.h"

int main() {
  using namespace vroom;
  bench::banner("Figure 9", "stable-set similarity across devices");
  const web::Corpus top = web::Corpus::top100(bench::kSeed);
  const int n = harness::effective_page_count(static_cast<int>(top.size()));

  std::vector<double> oneplus, tablet, nexus5;
  for (int i = 0; i < n; ++i) {
    const auto& p = top.page(static_cast<std::size_t>(i));
    core::OfflineResolver resolver(p, {});
    oneplus.push_back(
        resolver.device_iou(sim::days(45), web::nexus6(), web::oneplus3()));
    tablet.push_back(
        resolver.device_iou(sim::days(45), web::nexus6(), web::nexus10()));
    nexus5.push_back(
        resolver.device_iou(sim::days(45), web::nexus6(), web::nexus5()));
  }
  harness::print_cdf_table(
      "Intersection over Union (compared to a Nexus 6)", "IoU",
      {{"OnePlus 3", oneplus}, {"Nexus 10", tablet}, {"Nexus 5", nexus5}});
  return 0;
}
