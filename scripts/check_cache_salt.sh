#!/usr/bin/env bash
# Guards the result-cache salt: cached LoadResults are keyed by code version
# (kResultCacheSaltVersion in src/harness/result_cache.h), so any change to
# the simulation layers can silently serve stale results unless the salt is
# bumped in the same change.
#
# Usage: scripts/check_cache_salt.sh [base-ref]
#   base-ref defaults to $VROOM_SALT_BASE, then HEAD (i.e. check the working
#   tree against the last commit). In CI, pass the merge base of the PR.
#
# Passes when:
#   - no file under the simulation layers changed relative to base, or
#   - the diff also changes the `kResultCacheSaltVersion = <n>` line.
#
# The src/sim/ prefix below covers the substrate including the per-load
# arena (sim/arena.*): allocator changes are not supposed to move simulated
# numbers, but if one does, this lint is the backstop that forces the salt
# conversation.
# Skips (exit 0) when not run inside a git work tree or the base ref does
# not resolve — a tarball build has nothing to compare against.
set -u

cd "$(dirname "$0")/.." || exit 1

base="${1:-${VROOM_SALT_BASE:-HEAD}}"

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "[check_cache_salt] not a git work tree; skipping" >&2
  exit 0
fi
if ! git rev-parse --verify --quiet "${base}^{commit}" >/dev/null; then
  echo "[check_cache_salt] base ref '${base}' does not resolve; skipping" >&2
  exit 0
fi

# Committed and uncommitted changes vs base, including staged ones.
changed=$(git diff --name-only "${base}" -- 2>/dev/null)

# deploy/ is included because front-end behavior (hint staleness, queueing)
# parameterizes the strategies and options whose LoadResults get cached.
# obs/ is included because instrumentation sits inside the simulated load
# path (phase spans in run_page_load): any behavioural slip there would
# change exactly the results the cache stores.
# harness/experiment.* and harness/result_cache.* are included because they
# define the wire formats the cache and the shard cell files persist
# (serialize_corpus_result, cache entry layout): format changes make old
# bytes unreadable-or-worse, so they must ride a salt bump too.
sim_layers='^src/(sim|net|http|browser|server|web|core|baselines|deploy|obs)/|^src/harness/(experiment|result_cache)\.(h|cpp)$'
sim_changed=$(printf '%s\n' "${changed}" | grep -E "${sim_layers}" || true)

if [ -z "${sim_changed}" ]; then
  echo "[check_cache_salt] no simulation-layer changes vs ${base}; ok"
  exit 0
fi

if git diff "${base}" -- src/harness/result_cache.h |
    grep -qE '^\+.*kResultCacheSaltVersion *='; then
  echo "[check_cache_salt] simulation-layer changes with a salt bump; ok"
  exit 0
fi

echo "[check_cache_salt] FAIL: files under the simulation layers changed" >&2
echo "relative to ${base} without bumping kResultCacheSaltVersion in" >&2
echo "src/harness/result_cache.h:" >&2
printf '%s\n' "${sim_changed}" | sed 's/^/    /' >&2
echo "Cached results from VROOM_RESULT_CACHE would go stale silently." >&2
echo "Bump the salt (any simulation-visible change) or revert." >&2
exit 1
