#!/usr/bin/env bash
# ctest smoke wrapper for the throughput baseline: runs the loads/sec
# benchmark with tiny iteration counts and asserts the JSON report is
# well-formed and carries the tracked series. Deliberately NO performance
# threshold — CI wall-clock is noise; tracked numbers come from dedicated
# scripts/bench_substrate.sh runs.
set -euo pipefail

build_dir="${1:?usage: bench_smoke.sh <build_dir>}"
out="$build_dir/BENCH_substrate_smoke.json"

VROOM_BENCH_FILTER='BM_LoadsPerSecond' VROOM_BENCH_MIN_TIME=0.01 \
  "$(cd "$(dirname "$0")" && pwd)/bench_substrate.sh" "$build_dir" "$out" \
  > /dev/null

if ! command -v python3 > /dev/null 2>&1; then
  echo "python3 unavailable; skipping JSON validation" >&2
  exit 0
fi

python3 - "$out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)  # raises on malformed JSON
runs = [b for b in doc["benchmarks"]
        if b["name"].startswith("BM_LoadsPerSecond")]
assert runs, "no BM_LoadsPerSecond rows in report"
for b in runs:
    assert b["items_per_second"] > 0, b["name"]
    assert b["sim_events_per_sec"] > 0, b["name"]
    assert "peak_rss_bytes" in b, b["name"]
    # -1 is the "/proc unavailable" sentinel (tolerated: sandboxes may hide
    # /proc); 0 or a negative other than -1 means the probe itself broke.
    rss = b["peak_rss_bytes"]
    assert rss > 0 or rss == -1.0, f"{b['name']}: bad peak_rss_bytes {rss}"
print(f"bench smoke ok: {len(runs)} loads/sec series")
EOF
