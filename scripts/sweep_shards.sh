#!/usr/bin/env bash
# Cross-process sharded sweep driver (DESIGN.md §14): runs one bench binary
# as N concurrent shard processes (VROOM_SHARD=i/N, each simulating only its
# cell slice and publishing per-cell files into a shared VROOM_SHARD_DIR),
# then re-runs it once in merge mode (VROOM_SHARD_DIR alone), whose stdout —
# reassembled from the shard files, byte-identical to a one-process sweep —
# is this script's stdout.
#
# Usage: sweep_shards.sh [--shards N] [--jobs J] [--pages P] [--check]
#                        <bench_binary> [bench args...]
#   --shards N  shard process count (default 2)
#   --jobs J    VROOM_JOBS per shard process (default: leave unset)
#   --pages P   VROOM_BENCH_PAGES for every run (default: leave unset)
#   --check     also run the bench one-process and fail unless the merged
#               stdout and exported CSVs (VROOM_OUT_DIR) are byte-identical;
#               this is the `shard_merge_smoke` ctest
#
# Shard processes' stdout is discarded (each prints figures computed from
# its partial slice); VROOM_OUT_DIR is force-unset for them so N processes
# never race on the same CSVs — exports happen once, from the merge.
set -euo pipefail

shards=2
jobs=""
pages=""
check=0
while [ $# -gt 0 ]; do
  case "$1" in
    --shards) shards="${2:?--shards needs a value}"; shift 2 ;;
    --jobs)   jobs="${2:?--jobs needs a value}"; shift 2 ;;
    --pages)  pages="${2:?--pages needs a value}"; shift 2 ;;
    --check)  check=1; shift ;;
    --) shift; break ;;
    -*) echo "sweep_shards.sh: unknown flag $1" >&2; exit 2 ;;
    *) break ;;
  esac
done
bench="${1:?usage: sweep_shards.sh [--shards N] [--jobs J] [--pages P] [--check] <bench_binary> [args...]}"
shift

workdir="$(mktemp -d "${TMPDIR:-/tmp}/vroom_shards.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT
shard_dir="$workdir/cells"

common_env=()
if [ -n "$pages" ]; then common_env+=("VROOM_BENCH_PAGES=$pages"); fi

# 1. Shard passes, concurrently — the whole point of the mode. Each gets the
#    shared shard dir, its identity, and no VROOM_OUT_DIR.
pids=()
for i in $(seq 0 $((shards - 1))); do
  shard_env=("${common_env[@]}" "VROOM_SHARD=$i/$shards"
             "VROOM_SHARD_DIR=$shard_dir")
  if [ -n "$jobs" ]; then shard_env+=("VROOM_JOBS=$jobs"); fi
  env -u VROOM_OUT_DIR -u VROOM_SHARD -u VROOM_SHARD_DIR \
      "${shard_env[@]}" "$bench" "$@" > /dev/null &
  pids+=($!)
done
fail=0
for i in "${!pids[@]}"; do
  if ! wait "${pids[$i]}"; then
    echo "sweep_shards.sh: shard $i/$shards failed" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1

# 2. Merge pass: no VROOM_SHARD, same shard dir. Its stdout is canonical.
#    The caller's VROOM_OUT_DIR is honored here (and only here) — except in
#    --check mode, where exports are diverted to a scratch dir for diffing.
merge_out="$workdir/merge.stdout"
merge_csv="$workdir/merge_csv"
if [ "$check" -eq 1 ]; then
  mkdir -p "$merge_csv"
  env -u VROOM_SHARD -u VROOM_SHARD_DIR -u VROOM_OUT_DIR \
      "${common_env[@]}" "VROOM_SHARD_DIR=$shard_dir" \
      "VROOM_OUT_DIR=$merge_csv" "$bench" "$@" > "$merge_out"
else
  env -u VROOM_SHARD -u VROOM_SHARD_DIR \
      "${common_env[@]}" "VROOM_SHARD_DIR=$shard_dir" \
      "$bench" "$@" > "$merge_out"
fi
cat "$merge_out"

# 3. --check: a one-process reference sweep must match byte for byte —
#    stdout and every exported CSV.
if [ "$check" -eq 1 ]; then
  ref_out="$workdir/ref.stdout"
  ref_csv="$workdir/ref_csv"
  mkdir -p "$ref_csv"
  ref_env=("${common_env[@]}" "VROOM_OUT_DIR=$ref_csv")
  if [ -n "$jobs" ]; then ref_env+=("VROOM_JOBS=$jobs"); fi
  env -u VROOM_SHARD -u VROOM_SHARD_DIR -u VROOM_OUT_DIR \
      "${ref_env[@]}" "$bench" "$@" > "$ref_out"
  if ! cmp -s "$ref_out" "$merge_out"; then
    echo "sweep_shards.sh: FAIL — merged stdout differs from the" >&2
    echo "one-process run:" >&2
    diff "$ref_out" "$merge_out" >&2 || true
    exit 1
  fi
  if ! diff -r "$ref_csv" "$merge_csv" > /dev/null; then
    echo "sweep_shards.sh: FAIL — exported CSVs differ:" >&2
    diff -r "$ref_csv" "$merge_csv" >&2 || true
    exit 1
  fi
  echo "sweep_shards.sh: check ok — $shards shards merge byte-identical" >&2
fi
