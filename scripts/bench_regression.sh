#!/usr/bin/env bash
# Tolerance-banded throughput regression gate: re-measures the tracked
# series — BM_LoadsPerSecond (end-to-end loads/sec) and
# BM_DeployMacroServesPerSecond (deployment macro serves/sec) — and fails
# when any variant's items_per_second drops more than
# VROOM_BENCH_TOLERANCE below the committed baseline.
#
#   scripts/bench_regression.sh <build_dir> [baseline_json]
#
#   build_dir      cmake build tree containing bench/micro_substrate
#   baseline_json  committed baseline (default: BENCH_substrate.json in the
#                  repo root, written by scripts/bench_substrate.sh)
#
# Environment:
#   VROOM_BENCH_TOLERANCE  allowed fractional drop vs baseline (default
#                          0.5: fail only when throughput halves — shared
#                          CI machines are noisy; the band exists to catch
#                          order-of-magnitude regressions, not jitter)
#   VROOM_BENCH_MIN_TIME   per-benchmark min run time (default 0.05s)
#
# Exit codes: 0 pass, 1 regression (or bench binary missing — that is a
# build problem, not a skip), 77 skipped (no baseline / no python3;
# registered in ctest with SKIP_RETURN_CODE 77).
set -euo pipefail

build_dir="${1:?usage: bench_regression.sh <build_dir> [baseline_json]}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="${2:-$repo_root/BENCH_substrate.json}"
tolerance="${VROOM_BENCH_TOLERANCE:-0.5}"
fresh="$build_dir/BENCH_substrate_regression.json"

if [[ ! -f "$baseline" ]]; then
  echo "skip: no committed baseline at $baseline" >&2
  exit 77
fi
if ! command -v python3 > /dev/null 2>&1; then
  echo "skip: python3 unavailable for JSON comparison" >&2
  exit 77
fi

VROOM_BENCH_FILTER='BM_LoadsPerSecond|BM_DeployMacroServesPerSecond' \
VROOM_BENCH_MIN_TIME="${VROOM_BENCH_MIN_TIME:-0.05}" \
  "$repo_root/scripts/bench_substrate.sh" "$build_dir" "$fresh" > /dev/null

python3 - "$baseline" "$fresh" "$tolerance" <<'EOF'
import json
import sys

TRACKED = ("BM_LoadsPerSecond", "BM_DeployMacroServesPerSecond")

def series(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b["items_per_second"]
            for b in doc["benchmarks"]
            if b["name"].startswith(TRACKED)
            and b.get("run_type", "iteration") != "aggregate"}

base, fresh, tol = series(sys.argv[1]), series(sys.argv[2]), float(sys.argv[3])
assert base, "baseline has no tracked throughput rows"
assert fresh, "fresh run has no tracked throughput rows"

failures = []
for name, ref in sorted(base.items()):
    got = fresh.get(name)
    if got is None:
        # Renamed/removed variants are a baseline-refresh chore, not a
        # performance regression.
        print(f"  warn: {name} not in fresh run (stale baseline?)")
        continue
    floor = (1.0 - tol) * ref
    verdict = "ok" if got >= floor else "REGRESSION"
    print(f"  {verdict:>10}  {name}: {got:,.0f}/s vs baseline {ref:,.0f}/s "
          f"(floor {floor:,.0f}/s)")
    if got < floor:
        failures.append(name)

if failures:
    print(f"throughput regression: {len(failures)} variant(s) below "
          f"{100 * (1 - tol):.0f}% of baseline", file=sys.stderr)
    sys.exit(1)
print(f"throughput gate ok: {len(base)} variants within tolerance {tol}")
EOF
