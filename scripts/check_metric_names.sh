#!/usr/bin/env bash
# Lints obs metric registrations (DESIGN.md §12).
#
# Scans src/, bench/, and examples/ for string literals passed to
# obs::registry().counter("...") / .gauge("...") / .histogram("...") and
# enforces two rules the registry can only check at runtime:
#
#   1. names follow `layer.subsystem.name`: three or more dot-separated
#      segments of [a-z0-9_]+ (the registry aborts on violation, but only
#      when the site actually executes — this catches cold paths too);
#   2. every name is registered from exactly one source file: the same
#      name recorded from two places would silently merge two meanings
#      into one exported series.
#
# Runs as the `check_metric_names` ctest (label: lint). Exit 0 = clean.
set -u

cd "$(dirname "$0")/.." || exit 1

# `file:name` lines for every registration literal. The grep deliberately
# keys on the method names so helper wrappers that forward a variable are
# invisible to it — registration sites must use literals to be auditable.
sites=$(grep -RnoE '\.(counter|gauge|histogram)\("[^"]+"' \
            src bench examples --include='*.cpp' --include='*.h' 2>/dev/null |
        sed -E 's/:[0-9]+:\.(counter|gauge|histogram)\("/:/; s/"$//')

if [ -z "${sites}" ]; then
  echo "[check_metric_names] no registration sites found; ok"
  exit 0
fi

status=0

# Rule 1: naming convention.
bad_names=$(printf '%s\n' "${sites}" | cut -d: -f2- |
            grep -vE '^[a-z0-9_]+(\.[a-z0-9_]+){2,}$' || true)
if [ -n "${bad_names}" ]; then
  echo "[check_metric_names] names violating layer.subsystem.name" \
       "(>=3 lowercase dot segments):" >&2
  printf '%s\n' "${sites}" | while IFS=: read -r file name; do
    if ! printf '%s' "${name}" | grep -qE '^[a-z0-9_]+(\.[a-z0-9_]+){2,}$'
    then
      echo "  ${name}  (${file})" >&2
    fi
  done
  status=1
fi

# Rule 2: one registration site per name (same file registering a name
# twice is fine — function-local static handles re-run their initializer
# expression zero times, but helpers may mention the literal once only).
dup_names=$(printf '%s\n' "${sites}" | sort -u -t: -k1,1 -k2 |
            cut -d: -f2- | sort | uniq -d)
if [ -n "${dup_names}" ]; then
  echo "[check_metric_names] names registered from more than one file:" >&2
  for name in ${dup_names}; do
    printf '%s\n' "${sites}" | grep -F ":${name}" |
      sed 's/^/  /' >&2
  done
  status=1
fi

if [ "${status}" -eq 0 ]; then
  count=$(printf '%s\n' "${sites}" | cut -d: -f2- | sort -u | wc -l)
  echo "[check_metric_names] ${count} metric names ok"
fi
exit "${status}"
