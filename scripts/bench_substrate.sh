#!/usr/bin/env bash
# Runs the substrate micro-benchmarks and records the tracked throughput
# baseline as JSON.
#
#   scripts/bench_substrate.sh [build_dir] [out_file]
#
#   build_dir  cmake build tree containing bench/micro_substrate
#              (default: build)
#   out_file   where to write the google-benchmark JSON report
#              (default: BENCH_substrate.json in the repo root)
#
# Environment:
#   VROOM_BENCH_FILTER    benchmark name regex (default: all benchmarks)
#   VROOM_BENCH_MIN_TIME  per-benchmark min run time in seconds (default 0.5)
#
# The interesting series for cross-commit comparison:
#   BM_LoadsPerSecond/...  items_per_second  = end-to-end loads/sec
#                          sim_events_per_sec, peak_rss_bytes counters
#   BM_DeployMacroServesPerSecond
#                          items_per_second  = deployment macro serves/sec
#                          (manual time: the scenario's macro wall clock)
# Compare against the previous baseline with e.g.
#   jq '.benchmarks[] | select(.name|startswith("BM_LoadsPerSecond"))
#       | {name, items_per_second}' BENCH_substrate.json
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_file="${2:-$repo_root/BENCH_substrate.json}"
bench_bin="$build_dir/bench/micro_substrate"

if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable" >&2
  echo "build it first: cmake --build $build_dir --target micro_substrate" >&2
  exit 1
fi

filter="${VROOM_BENCH_FILTER:-.}"
min_time="${VROOM_BENCH_MIN_TIME:-0.5}"

# Metrics snapshot (obs registry CSV/Prometheus export + wall sidecar)
# recorded next to the JSON report, so a committed baseline carries its
# quantitative context. Override by exporting VROOM_METRICS yourself.
metrics_dir="${VROOM_METRICS:-${out_file%.json}_metrics}"

# Note: the bundled google-benchmark predates the "0.5s" suffix syntax.
VROOM_METRICS="$metrics_dir" "$bench_bin" \
  --benchmark_filter="$filter" \
  --benchmark_min_time="$min_time" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$out_file"

echo
echo "JSON report: $out_file"
echo "metrics snapshot: $metrics_dir"
