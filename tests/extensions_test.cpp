// Tests for the extension features: packet loss, RRC radio model,
// WProf-style critical paths, the Vroom+Polaris combination (§6.1), and
// cross-page offline resolution (§7).
#include <gtest/gtest.h>

#include <set>

#include "baselines/strategies.h"
#include "browser/wprof.h"
#include "core/type_sharing.h"
#include "harness/experiment.h"
#include "harness/stats.h"
#include "net/tcp.h"
#include "web/amp.h"
#include "web/page_generator.h"

namespace vroom {
namespace {

// ---------- packet loss ----------

sim::Time transfer_time(double loss_rate, std::int64_t bytes) {
  sim::EventLoop loop;
  net::NetworkConfig cfg = net::NetworkConfig::lte();
  cfg.loss_rate = loss_rate;
  net::Network net(loop, cfg, 7);
  net.set_rtt("a.com", sim::ms(100));
  net::TcpConnection conn(net, "a.com", false);
  sim::Time done = -1;
  conn.connect([&] {
    net::TcpConnection::Chunk c;
    c.bytes = bytes;
    c.on_delivered = [&] { done = loop.now(); };
    conn.send_chunk(std::move(c));
  });
  loop.run();
  return done;
}

TEST(LossModelTest, ZeroLossIsDefaultBehaviour) {
  EXPECT_EQ(transfer_time(0.0, 500'000), transfer_time(0.0, 500'000));
}

TEST(LossModelTest, LossSlowsTransfers) {
  const sim::Time clean = transfer_time(0.0, 500'000);
  const sim::Time lossy = transfer_time(0.02, 500'000);
  EXPECT_GT(lossy, clean + sim::ms(100));
}

TEST(LossModelTest, LossIsDeterministic) {
  EXPECT_EQ(transfer_time(0.01, 500'000), transfer_time(0.01, 500'000));
}

TEST(LossModelTest, SingleConnectionSuffersMoreThanParallel) {
  // The related-work observation ([24]): one lossy TCP connection carrying
  // everything (HTTP/2) degrades more than six parallel ones (HTTP/1.1).
  // Transport-level check: one connection moving 600 KB vs six moving
  // 100 KB each, at 2 % loss.
  sim::EventLoop loop;
  net::NetworkConfig cfg = net::NetworkConfig::lte();
  cfg.loss_rate = 0.02;
  net::Network net(loop, cfg, 7);
  net.set_rtt("one.com", sim::ms(100));
  sim::Time one_done = -1;
  net::TcpConnection single(net, "one.com", false);
  single.connect([&] {
    net::TcpConnection::Chunk c;
    c.bytes = 600'000;
    c.on_delivered = [&] { one_done = loop.now(); };
    single.send_chunk(std::move(c));
  });
  loop.run();

  sim::EventLoop loop2;
  net::Network net2(loop2, cfg, 7);
  std::vector<std::unique_ptr<net::TcpConnection>> conns;
  sim::Time six_done = 0;
  int finished = 0;
  for (int i = 0; i < 6; ++i) {
    const std::string dom = "six" + std::to_string(i) + ".com";
    net2.set_rtt(dom, sim::ms(100));
    conns.push_back(std::make_unique<net::TcpConnection>(net2, dom, false));
    auto* c = conns.back().get();
    c->connect([&, c] {
      net::TcpConnection::Chunk ch;
      ch.bytes = 100'000;
      ch.on_delivered = [&] {
        ++finished;
        six_done = std::max(six_done, loop2.now());
      };
      c->send_chunk(std::move(ch));
    });
  }
  loop2.run();
  ASSERT_EQ(finished, 6);
  EXPECT_GT(one_done, six_done);
}

// ---------- RRC radio model ----------

TEST(RadioModelTest, PromotionDelaysFirstConnectionOnly) {
  sim::EventLoop loop;
  net::NetworkConfig cfg = net::NetworkConfig::lte();
  cfg.radio_promotion = sim::ms(250);
  net::Network net(loop, cfg, 7);
  net.set_rtt("a.com", sim::ms(100));
  sim::Time first = -1, second = -1;
  net::TcpConnection c1(net, "a.com", false);
  c1.connect([&] { first = loop.now(); });
  loop.run();
  // Radio is warm now; a second connection shortly after pays no promotion.
  net::TcpConnection c2(net, "a.com", false);
  c2.connect([&] { second = loop.now(); });
  loop.run();
  EXPECT_EQ(first, sim::ms(300 + 250));
  EXPECT_EQ(second - first, sim::ms(300));
}

TEST(RadioModelTest, IdleTimeoutRearmsPromotion) {
  sim::EventLoop loop;
  net::NetworkConfig cfg = net::NetworkConfig::lte();
  cfg.radio_promotion = sim::ms(250);
  cfg.radio_idle_timeout = sim::seconds(2);
  net::Network net(loop, cfg, 7);
  EXPECT_EQ(net.radio_wakeup_delay(), sim::ms(250));
  EXPECT_EQ(net.radio_wakeup_delay(), 0);  // still warm
  loop.schedule_at(sim::seconds(10), [&] {
    EXPECT_EQ(net.radio_wakeup_delay(), sim::ms(250));  // went idle
  });
  loop.run();
}

TEST(RadioModelTest, DisabledByDefault) {
  sim::EventLoop loop;
  net::Network net(loop, net::NetworkConfig::lte(), 7);
  EXPECT_EQ(net.radio_wakeup_delay(), 0);
}

// ---------- WProf critical paths ----------

class WprofTest : public ::testing::Test {
 protected:
  WprofTest() : page_(web::generate_page(42, 3, web::PageClass::News)) {
    id_.wall_time = opt_.when;
    id_.device = opt_.device;
    id_.user = opt_.user;
    id_.nonce = 1;
  }
  web::PageModel page_;
  harness::RunOptions opt_;
  web::LoadIdentity id_;
};

TEST_F(WprofTest, PathIsNonOverlappingAndBounded) {
  auto r = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  ASSERT_TRUE(r.finished);
  const web::PageInstance instance(page_, id_);
  auto report = browser::extract_critical_path(r, instance,
                                               browser::CpuCosts::nexus6());
  ASSERT_FALSE(report.segments.empty());
  sim::Time prev_end = 0;
  for (const auto& s : report.segments) {
    EXPECT_GE(s.start, prev_end);
    EXPECT_GE(s.end, s.start);
    prev_end = s.end;
  }
  EXPECT_LE(report.total(), r.plt);
  EXPECT_GT(report.total(), r.plt / 4);  // the path explains a real fraction
}

TEST_F(WprofTest, BaselineHasNetworkOnThePath) {
  auto r = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  const web::PageInstance instance(page_, id_);
  auto report = browser::extract_critical_path(r, instance,
                                               browser::CpuCosts::nexus6());
  EXPECT_GT(report.time_in(browser::PathKind::Network), 0);
  EXPECT_GT(report.time_in(browser::PathKind::Compute), 0);
  EXPECT_GT(report.network_fraction(), 0.0);
  EXPECT_LT(report.network_fraction(), 1.0);
}

// ---------- Vroom + Polaris (§6.1 future work) ----------

TEST(VroomPolarisTest, FinishesAndCompetesWithVroom) {
  harness::RunOptions opt;
  opt.loads_per_page = 1;
  std::vector<double> vr, combo;
  for (int i = 0; i < 6; ++i) {
    const web::PageModel page =
        web::generate_page(42, static_cast<std::uint32_t>(i),
                           web::PageClass::News);
    auto a = harness::run_page_load(page, baselines::vroom(), opt, 1);
    auto b =
        harness::run_page_load(page, baselines::vroom_plus_polaris(), opt, 1);
    ASSERT_TRUE(a.finished);
    ASSERT_TRUE(b.finished);
    vr.push_back(sim::to_seconds(a.plt));
    combo.push_back(sim::to_seconds(b.plt));
  }
  // The combination must not regress the median materially (the paper
  // expects it to help at the tail).
  EXPECT_LT(harness::median(combo), harness::median(vr) * 1.05);
}

TEST(VroomPolarisTest, StrategyFactoryShape) {
  const auto s = baselines::vroom_plus_polaris();
  EXPECT_TRUE(s.server_aid);
  EXPECT_TRUE(s.provider.hints_enabled);
  EXPECT_EQ(s.sched, baselines::Strategy::Sched::VroomPolaris);
  EXPECT_NE(baselines::make_policy(s), nullptr);
}

// ---------- cross-page offline resolution (§7) ----------

class TypeSharingTest : public ::testing::Test {
 protected:
  TypeSharingTest()
      : pages_(web::generate_site_pages(42, 3, web::PageClass::News, 4)) {}
  std::vector<web::PageModel> pages_;
};

TEST_F(TypeSharingTest, SiblingsShareInfraUrls) {
  web::LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = web::nexus6();
  id.nonce = 1;
  const web::PageInstance a(pages_[0], id), b(pages_[1], id);
  const auto a_vec = a.url_set();
  std::set<std::string> a_urls(a_vec.begin(), a_vec.end());
  int shared = 0;
  for (const auto& r : pages_[1].resources()) {
    if (r.url_page_override != web::Resource::kNoPageOverride) {
      EXPECT_TRUE(a_urls.count(std::string(b.resource(r.id).url)))
          << "shared slot not shared: " << b.resource(r.id).url;
      ++shared;
    }
  }
  EXPECT_GE(shared, 5);
  // Page-specific roots differ.
  EXPECT_NE(a.resource(0).url, b.resource(0).url);
}

TEST_F(TypeSharingTest, SharedSlotsServableByEitherPage) {
  web::LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = web::nexus6();
  id.nonce = 1;
  const web::PageInstance a(pages_[0], id);
  for (const auto& r : pages_[0].resources()) {
    if (r.url_page_override == web::Resource::kNoPageOverride) continue;
    // The sibling's replay store can serve the shared URL too.
    EXPECT_TRUE(web::servable_size(pages_[1], a.resource(r.id).url)
                    .has_value());
  }
}

TEST_F(TypeSharingTest, SharedStableSetOnlyContainsSharedSlots) {
  auto shared = core::shared_stable_set(pages_[0], pages_[1], sim::days(45),
                                        web::nexus6(),
                                        pages_[0].first_party(), 1, {});
  EXPECT_FALSE(shared.empty());
  for (const auto& [rid, url] : shared) {
    EXPECT_NE(pages_[0].resource(rid).url_page_override,
              web::Resource::kNoPageOverride);
  }
}

TEST_F(TypeSharingTest, SharingTradesAccuracyForCrawlCost) {
  auto s = core::measure_type_sharing(pages_[0], pages_[1], sim::days(45),
                                      web::nexus6(), 1, {});
  // Own crawls are at least as accurate as sharing; sharing is at least as
  // accurate as having no offline knowledge at all.
  EXPECT_LE(s.fn_per_page_crawl, s.fn_type_shared + 1e-9);
  EXPECT_LE(s.fn_type_shared, s.fn_online_only_scan + 1e-9);
  EXPECT_GT(s.shared_slots, 0);
}

TEST_F(TypeSharingTest, SiteLoadsWorkEndToEnd) {
  harness::RunOptions opt;
  auto r = harness::run_page_load(pages_[0], baselines::vroom(), opt, 1);
  EXPECT_TRUE(r.finished);
}


// ---------- AMP transform (§8) ----------

class AmpTest : public ::testing::Test {
 protected:
  AmpTest()
      : page_(web::generate_page(42, 3, web::PageClass::News)),
        amp_(web::amp_transform(page_)) {}
  web::PageModel page_;
  web::PageModel amp_;
};

TEST_F(AmpTest, StructuralRestrictionsApplied) {
  ASSERT_EQ(amp_.size(), page_.size());
  for (const auto& r : amp_.resources()) {
    EXPECT_FALSE(r.blocks_parser) << r.id;
    if (r.is_iframe_doc) EXPECT_TRUE(r.post_onload) << r.id;
    if (r.type == web::ResourceType::Image && !r.in_iframe) {
      EXPECT_NE(r.via, web::DiscoveryVia::JsExec) << r.id;
    }
    // Byte weights and addressing are preserved.
    EXPECT_EQ(r.base_size, page_.resource(r.id).base_size);
    EXPECT_EQ(r.domain, page_.resource(r.id).domain);
  }
}

TEST_F(AmpTest, AmpLoadsFasterThanLegacyUnderHttp2) {
  harness::RunOptions opt;
  const auto legacy =
      harness::run_page_load(page_, baselines::http2_baseline(), opt, 1);
  const auto amp =
      harness::run_page_load(amp_, baselines::http2_baseline(), opt, 1);
  ASSERT_TRUE(legacy.finished);
  ASSERT_TRUE(amp.finished);
  EXPECT_LT(amp.plt, legacy.plt);
}

TEST_F(AmpTest, VroomStillLoadsAmpPages) {
  harness::RunOptions opt;
  const auto r = harness::run_page_load(amp_, baselines::vroom(), opt, 1);
  EXPECT_TRUE(r.finished);
}

// ---------- lossy end-to-end loads ----------

TEST(LossyLoadTest, DeterministicAndComplete) {
  const web::PageModel page = web::generate_page(42, 2, web::PageClass::News);
  harness::RunOptions opt;
  net::NetworkConfig cfg = net::NetworkConfig::lte();
  cfg.loss_rate = 0.02;
  opt.network = cfg;
  const auto a = harness::run_page_load(page, baselines::vroom(), opt, 1);
  const auto b = harness::run_page_load(page, baselines::vroom(), opt, 1);
  ASSERT_TRUE(a.finished);
  EXPECT_EQ(a.plt, b.plt);
  // Loss slows the load versus the clean profile.
  opt.network = net::NetworkConfig::lte();
  const auto clean = harness::run_page_load(page, baselines::vroom(), opt, 1);
  EXPECT_GT(a.plt, clean.plt);
}

// ---------- scale guard ----------

TEST(ScaleTest, VeryLargePageLoadsComplete) {
  web::GeneratorParams p = web::GeneratorParams::for_class(web::PageClass::News);
  p.complexity = 3.0;  // several hundred resources
  const web::PageModel page =
      web::generate_page(42, 77, web::PageClass::News, p);
  ASSERT_GT(page.size(), 350u);
  harness::RunOptions opt;
  opt.timeout = sim::seconds(300);
  for (const auto& s : {baselines::http11(), baselines::vroom()}) {
    const auto r = harness::run_page_load(page, s, opt, 1);
    EXPECT_TRUE(r.finished) << s.name;
  }
}

}  // namespace
}  // namespace vroom
