// Deeper coverage of module edge cases: origin behaviours, connection-pool
// wiring, cache/push interplay, provider modes, network profiles, and
// report/export plumbing.
#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/strategies.h"
#include "browser/cache.h"
#include "core/vroom_provider.h"
#include "harness/experiment.h"
#include "harness/export.h"
#include "harness/stats.h"
#include "server/origin_server.h"
#include "web/page_generator.h"

namespace vroom {
namespace {

// ---------- network profiles ----------

TEST(NetworkProfiles, OrderedByQuality) {
  const auto wifi = net::NetworkConfig::wifi();
  const auto lte = net::NetworkConfig::lte();
  const auto loaded = net::NetworkConfig::lte_loaded();
  const auto threeg = net::NetworkConfig::threeg();
  EXPECT_GT(wifi.downlink_bps, lte.downlink_bps);
  EXPECT_GT(lte.downlink_bps, loaded.downlink_bps);
  EXPECT_GT(loaded.downlink_bps, threeg.downlink_bps);
  EXPECT_LT(wifi.cellular_rtt, lte.cellular_rtt);
  EXPECT_LT(lte.cellular_rtt, threeg.cellular_rtt);
  // The USB profile exists to isolate the CPU.
  const auto usb = net::NetworkConfig::local_usb();
  EXPECT_EQ(usb.tls_handshake_rtts, 0);
  EXPECT_EQ(usb.server_think, 0);
}

TEST(NetworkProfiles, SlowerNetworksSlowerLoads) {
  const web::PageModel page = web::generate_page(42, 2, web::PageClass::News);
  auto plt_on = [&](const net::NetworkConfig& cfg) {
    harness::RunOptions opt;
    opt.network = cfg;
    return harness::run_page_load(page, baselines::http2_baseline(), opt, 1)
        .plt;
  };
  const sim::Time wifi = plt_on(net::NetworkConfig::wifi());
  const sim::Time lte = plt_on(net::NetworkConfig::lte());
  const sim::Time threeg = plt_on(net::NetworkConfig::threeg());
  EXPECT_LT(wifi, lte);
  EXPECT_LT(lte, threeg);
}

// ---------- origin server edge cases ----------

class OriginEdgeTest : public ::testing::Test {
 protected:
  OriginEdgeTest() : page_(web::generate_page(42, 7, web::PageClass::News)) {
    id_.wall_time = sim::days(45);
    id_.device = web::nexus6();
    id_.user = 1;
    id_.nonce = 2;
    instance_ = std::make_unique<web::PageInstance>(page_, id_);
    store_ = std::make_unique<server::ReplayStore>(*instance_);
  }
  web::PageModel page_;
  web::LoadIdentity id_;
  std::unique_ptr<web::PageInstance> instance_;
  std::unique_ptr<server::ReplayStore> store_;
};

TEST_F(OriginEdgeTest, UnknownUrlServedAsSmallErrorPage) {
  server::OriginServer s(page_.first_party(), *store_);
  http::Request req;
  req.url = "unrelated.com/p9999/r0v0.html";
  const auto reply = s.handle(req);
  EXPECT_EQ(reply.body_bytes, 500);
  EXPECT_TRUE(reply.hints.empty());
  EXPECT_FALSE(reply.not_modified);
}

TEST_F(OriginEdgeTest, AdDomainsGetAuctionLatency) {
  server::ServerFarm farm(*store_);
  // Find an ad-exchange domain used by the page.
  std::string ad_domain;
  for (const auto& r : page_.resources()) {
    if (r.domain.rfind("ads", 0) == 0 || r.domain.rfind("tag", 0) == 0) {
      ad_domain = r.domain;
      break;
    }
  }
  ASSERT_FALSE(ad_domain.empty());
  server::OriginServer& ad = farm.server(ad_domain);
  server::OriginServer& fp = farm.server(page_.first_party());
  // The ad origin's reply carries extra think time; the first party's none.
  for (const auto& r : page_.resources()) {
    if (r.domain == ad_domain) {
      http::Request req;
      req.url = instance_->resource(r.id).url;
      EXPECT_GE(ad.handle(req).extra_delay, sim::ms(80));
      break;
    }
  }
  http::Request root;
  root.url = instance_->resource(0).url;
  EXPECT_EQ(fp.handle(root).extra_delay, 0);
}

TEST_F(OriginEdgeTest, StaleVersionsServedWithPlausibleSizes) {
  server::OriginServer s(page_.first_party(), *store_);
  auto parsed = web::parse_url(instance_->resource(0).url);
  for (std::uint64_t delta : {8u, 16u, 80u}) {
    http::Request req;
    req.url = web::make_url(parsed->domain, parsed->page_id,
                            parsed->resource_id, parsed->version + delta,
                            parsed->user, parsed->ext);
    const auto reply = s.handle(req);
    EXPECT_GT(reply.body_bytes, 1000);  // real content, not the error page
  }
}

// ---------- cache digest / push interplay end-to-end ----------

TEST(CachePushTest, WarmCacheSuppressesPushes) {
  const web::PageModel page = web::generate_page(42, 6, web::PageClass::News);
  browser::Cache cache;
  harness::RunOptions opt;
  opt.cache = &cache;
  const auto cold = harness::run_page_load(page, baselines::vroom(), opt, 1);
  int cold_pushed = 0;
  for (const auto& t : cold.timings) {
    if (t.pushed) ++cold_pushed;
  }
  // Back-to-back warm load: pushed high-priority resources are now cached,
  // so the server (via the cache digest) pushes strictly less.
  const auto warm = harness::run_page_load(page, baselines::vroom(), opt, 2);
  int warm_pushed = 0;
  for (const auto& t : warm.timings) {
    if (t.pushed) ++warm_pushed;
  }
  ASSERT_GT(cold_pushed, 0);
  EXPECT_LT(warm_pushed, cold_pushed);
}

TEST(CachePushTest, StaleEntriesRevalidateWith304) {
  const web::PageModel page = web::generate_page(42, 6, web::PageClass::News);
  browser::Cache cache;
  harness::RunOptions opt;
  opt.cache = &cache;
  (void)harness::run_page_load(page, baselines::http2_baseline(), opt, 1);
  // A week later most short-lived entries are stale; revalidations should
  // appear (bytes saved relative to refetching).
  opt.when += sim::days(7);
  const auto warm = harness::run_page_load(page, baselines::http2_baseline(),
                                           opt, 2);
  ASSERT_TRUE(warm.finished);
  std::int64_t small_transfers = 0;
  for (const auto& t : warm.timings) {
    if (t.referenced && t.bytes > 0 && t.bytes <= http::k304Bytes) {
      ++small_transfers;
    }
  }
  EXPECT_GT(small_transfers, 0) << "no 304s observed on a week-later load";
}

// ---------- provider mode matrix ----------

class ProviderModeTest
    : public ::testing::TestWithParam<core::ResolutionMode> {};

TEST_P(ProviderModeTest, AdviceIsWellFormed) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  web::LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = web::nexus6();
  id.user = 1;
  id.nonce = 2;
  const web::PageInstance instance(page, id);
  server::ReplayStore store(instance);
  core::VroomProviderConfig cfg;
  cfg.mode = GetParam();
  core::VroomProvider provider(store, cfg);

  http::Request req;
  req.url = instance.resource(0).url;
  req.user = id.user;
  req.device = id.device;
  const auto advice = provider.advise(page.first_party(), req);
  EXPECT_FALSE(advice.hints.empty());
  for (const auto& h : advice.hints.hints) {
    // Every hinted URL parses and belongs to this page's model.
    EXPECT_TRUE(web::servable_size(page, h.url).has_value()) << h.url;
  }
  for (const auto& p : advice.pushes) {
    EXPECT_EQ(web::url_domain(p.url), page.first_party());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ProviderModeTest,
    ::testing::Values(core::ResolutionMode::OfflinePlusOnline,
                      core::ResolutionMode::OfflineOnly,
                      core::ResolutionMode::OnlineOnly,
                      core::ResolutionMode::PreviousLoad),
    [](const auto& info) {
      std::string n = core::resolution_mode_name(info.param);
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// ---------- iframe documents get their own advice ----------

TEST(IframeAdviceTest, AdServerAdvisesOnItsIframe) {
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  web::LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = web::nexus6();
  id.nonce = 2;
  const web::PageInstance instance(page, id);
  server::ReplayStore store(instance);
  core::VroomProvider provider(store, {});

  for (const auto& r : page.resources()) {
    if (!r.is_iframe_doc || page.children(r.id).empty()) continue;
    http::Request req;
    req.url = instance.resource(r.id).url;
    const auto advice = provider.advise(r.domain, req);
    // Everything under a third-party iframe is low priority (footnote 4).
    for (const auto& h : advice.hints.hints) {
      EXPECT_EQ(h.priority, http::HintPriority::Unimportant) << h.url;
    }
    return;  // one is enough
  }
  GTEST_SKIP() << "no iframe with children on this page";
}

// ---------- harness report smoke (stdout sanity) ----------

TEST(ReportTest, PrintersDoNotChokeOnEdgeInputs) {
  harness::print_cdf_table("Empty", "s", {{"none", {}}});
  harness::print_quartile_bars("Single", "s", {{"one", {1.0}}});
  harness::print_stat("answer", 42.0, "u");
  SUCCEED();
}

TEST(ReportTest, MedianOfThreeLoadVariants) {
  // run_page_median must return one of the actual loads, not an average.
  const web::PageModel page = web::generate_page(42, 2, web::PageClass::News);
  harness::RunOptions opt;
  const auto med = harness::run_page_median(page, baselines::vroom(), opt);
  bool matches = false;
  for (int i = 0; i < opt.loads_per_page; ++i) {
    const std::uint64_t nonce =
        harness::derive_load_nonce(opt.seed, page.page_id(), i);
    if (harness::run_page_load(page, baselines::vroom(), opt, nonce).plt ==
        med.plt) {
      matches = true;
    }
  }
  EXPECT_TRUE(matches);
}

}  // namespace
}  // namespace vroom
