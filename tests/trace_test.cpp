// Structured tracing: the Chrome-trace sink must emit well-formed JSON with
// monotone per-lane timestamps, traces must be bit-identical across worker
// counts, and a disabled recorder must not perturb the simulation.
#include "trace/trace.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "fleet/fleet.h"
#include "harness/env.h"
#include "harness/experiment.h"
#include "harness/export.h"
#include "scoped_env.h"
#include "sim/random.h"
#include "trace/waterfall.h"
#include "web/corpus.h"
#include "web/page_generator.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

// Minimal recursive-descent JSON parser: accepts exactly the RFC 8259
// grammar (objects, arrays, strings with escapes, numbers, literals) and
// rejects trailing commas, unterminated strings, and stray bytes.
class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : s_(std::move(text)) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') { ++pos_; if (!digits()) return false; }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) ++pos_;
  }

  const std::string s_;
  std::size_t pos_ = 0;
};

harness::RunOptions traced_options(std::string* json,
                                   std::vector<trace::Recorder::Event>* events,
                                   std::map<std::string, std::int64_t>*
                                       counters) {
  harness::RunOptions opt;
  opt.seed = 42;
  opt.trace_sink = [json, events, counters](const trace::Recorder& r) {
    if (json != nullptr) *json = r.chrome_trace_json();
    if (events != nullptr) *events = r.sorted_events();
    if (counters != nullptr) *counters = r.counters().values();
  };
  return opt;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : std::string();
}

TEST(Counters, AddMaxAndDeterministicOrder) {
  trace::Counters c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.value("net.bytes"), 0);
  c.add("net.bytes", 100);
  c.add("net.bytes", 50);
  c.add("server.requests");  // default delta 1
  c.set_max("net.max_queued_us", 10);
  c.set_max("net.max_queued_us", 4);   // lower sample never wins
  c.set_max("net.max_queued_us", 25);
  EXPECT_EQ(c.value("net.bytes"), 150);
  EXPECT_EQ(c.value("server.requests"), 1);
  EXPECT_EQ(c.value("net.max_queued_us"), 25);
  // std::map iteration: names come out sorted, so exports are stable.
  std::vector<std::string> names;
  for (const auto& [name, value] : c.values()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "net.bytes", "net.max_queued_us", "server.requests"}));
}

TEST(Recorder, AttachesToLoopAndDetachesOnDestruction) {
  sim::EventLoop loop;
  EXPECT_EQ(trace::of(loop), nullptr);
  {
    trace::Recorder rec(loop);
    EXPECT_EQ(trace::of(loop), &rec);
    rec.instant(trace::Layer::Net, "net", "conn#1", "connect");
    EXPECT_EQ(rec.event_count(), 1u);
  }
  EXPECT_EQ(trace::of(loop), nullptr);
}

TEST(Recorder, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(trace::Recorder::json_escape("plain"), "plain");
  EXPECT_EQ(trace::Recorder::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(trace::Recorder::json_escape("line\nbreak\ttab"),
            "line\\nbreak\\ttab");
  // The escaped forms must themselves survive a JSON parse.
  JsonChecker check("\"" + trace::Recorder::json_escape(
                              std::string("\x01\x1f\"\\\n") + "x") + "\"");
  EXPECT_TRUE(check.valid());
}

TEST(Recorder, ChromeTraceJsonIsWellFormed) {
  sim::EventLoop loop;
  trace::Recorder rec(loop);
  rec.instant(trace::Layer::Browser, "browser", "loader", "discover",
              {trace::arg("url", "https://a.example/\"odd\"\npath"),
               trace::arg("n", std::int64_t{7})});
  rec.complete(trace::Layer::Http, "a.example", "stream#1", "stream", 0,
               {trace::arg("ratio", 0.5)});
  rec.counter(trace::Layer::Net, "net", "cwnd", 10);
  const std::string json = rec.chrome_trace_json();
  JsonChecker check(json);
  EXPECT_TRUE(check.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Perfetto reads process/thread names from metadata events.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(Trace, FullLoadJsonWellFormedAndLayersPresent) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 3, web::PageClass::News);
  std::string json;
  std::vector<trace::Recorder::Event> events;
  std::map<std::string, std::int64_t> counters;
  const harness::RunOptions opt = traced_options(&json, &events, &counters);
  harness::run_page_load(page, baselines::vroom(), opt, 1);

  ASSERT_FALSE(json.empty());
  JsonChecker check(json);
  EXPECT_TRUE(check.valid());

  // Events must arrive from every major subsystem of the stack.
  std::set<std::string> layers;
  for (const auto& e : events) layers.insert(trace::layer_name(e.layer));
  for (const char* want : {"net", "http", "browser", "server", "vroom"}) {
    EXPECT_TRUE(layers.count(want)) << "missing layer: " << want;
  }
  // And the counter registry saw traffic from the same subsystems.
  EXPECT_GT(counters.at("browser.requests"), 0);
  EXPECT_GT(counters.at("net.connections"), 0);
  EXPECT_GT(counters.at("server.requests"), 0);
  EXPECT_GT(counters.at("vroom.hints_received"), 0);
}

TEST(Trace, TimestampsMonotonePerLane) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 3, web::PageClass::News);
  std::vector<trace::Recorder::Event> events;
  const harness::RunOptions opt = traced_options(nullptr, &events, nullptr);
  harness::run_page_load(page, baselines::vroom(), opt, 1);

  ASSERT_FALSE(events.empty());
  sim::Time prev_global = 0;
  std::map<std::pair<int, int>, sim::Time> prev_lane;
  for (const auto& e : events) {
    EXPECT_GE(e.ts, prev_global);  // sorted_events orders by timestamp
    prev_global = e.ts;
    auto [it, fresh] = prev_lane.try_emplace({e.track, e.lane}, e.ts);
    if (!fresh) {
      EXPECT_GE(e.ts, it->second) << "lane went backwards: " << e.name;
      it->second = e.ts;
    }
    EXPECT_GE(e.dur, 0) << e.name;
  }
}

TEST(Trace, DisabledRecorderAddsNothingAndLoadIsIdentical) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 3, web::PageClass::News);

  harness::RunOptions plain;
  plain.seed = 42;
  const auto off = harness::run_page_load(page, baselines::vroom(), plain, 1);
  EXPECT_TRUE(off.trace_counters.empty());  // no recorder → no counters

  std::vector<trace::Recorder::Event> events;
  const harness::RunOptions opt = traced_options(nullptr, &events, nullptr);
  const auto on = harness::run_page_load(page, baselines::vroom(), opt, 1);
  EXPECT_FALSE(events.empty());

  // Tracing must be an observer: identical virtual-time results either way.
  EXPECT_EQ(off.plt, on.plt);
  EXPECT_EQ(off.aft, on.aft);
  EXPECT_EQ(off.speed_index_ms, on.speed_index_ms);
  EXPECT_EQ(off.bytes_fetched, on.bytes_fetched);
  EXPECT_EQ(off.requests, on.requests);
  ASSERT_EQ(off.timings.size(), on.timings.size());
  for (std::size_t i = 0; i < off.timings.size(); ++i) {
    EXPECT_EQ(off.timings[i].url, on.timings[i].url);
    EXPECT_EQ(off.timings[i].complete, on.timings[i].complete);
  }

  // A recorder that exists but never fires stays empty and costs nothing.
  sim::EventLoop loop;
  trace::Recorder rec(loop);
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_TRUE(rec.counters().empty());
}

TEST(Trace, IdenticalSeedsGiveByteIdenticalTracesAtAnyJobCount) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  const web::Corpus corpus = web::Corpus::smoke(7, /*count=*/2);
  harness::RunOptions opt;
  opt.seed = 42;

  const std::string base = testing::TempDir() + "vroom_trace_jobs";
  const std::string dir1 = base + "/serial";
  const std::string dir4 = base + "/parallel";

  fleet::FleetOptions serial;
  serial.workers = 1;
  fleet::FleetOptions parallel;
  parallel.workers = 4;
  {
    ScopedEnv trace_env("VROOM_TRACE", dir1.c_str());
    fleet::run_corpus(corpus, baselines::vroom(), opt, serial);
  }
  {
    ScopedEnv trace_env("VROOM_TRACE", dir4.c_str());
    fleet::run_corpus(corpus, baselines::vroom(), opt, parallel);
  }

  // Filenames derive from job identity (strategy, page, nonce), so the two
  // sweeps must produce the same set of files with the same bytes.
  const std::string slug = harness::slugify(baselines::vroom().name);
  int compared = 0;
  for (const auto& page : corpus.pages()) {
    for (int load = 0; load < opt.loads_per_page; ++load) {
      const std::uint64_t nonce =
          harness::derive_load_nonce(opt.seed, page.page_id(), load);
      const std::string name = "/trace_" + slug + "_p" +
          std::to_string(page.page_id()) + "_n" + std::to_string(nonce) +
          ".json";
      const std::string a = read_file(dir1 + name);
      const std::string b = read_file(dir4 + name);
      ASSERT_FALSE(a.empty()) << "missing trace: " << dir1 + name;
      EXPECT_EQ(a, b) << "trace diverged: " << name;
      JsonChecker check(a);
      EXPECT_TRUE(check.valid()) << name;
      ++compared;
    }
  }
  EXPECT_EQ(compared, static_cast<int>(corpus.size()) * opt.loads_per_page);
}

TEST(Trace, WriteJsonCreatesDirectoriesAndReportsFailure) {
  sim::EventLoop loop;
  trace::Recorder rec(loop);
  rec.instant(trace::Layer::Sim, "sim", "loop", "tick");
  const std::string path =
      testing::TempDir() + "vroom_trace_mkdir/a/b/trace.json";
  EXPECT_TRUE(rec.write_json(path));
  const std::string body = read_file(path);
  JsonChecker check(body);
  EXPECT_TRUE(check.valid());
  // An unwritable path warns and returns false instead of throwing.
  EXPECT_FALSE(rec.write_json("/proc/vroom-definitely-not-writable/t.json"));
}

TEST(Trace, EnvTraceDirHonorsSwitch) {
  {
    ScopedEnv env("VROOM_TRACE", nullptr);
    EXPECT_FALSE(harness::Env::from_environment().trace_enabled());
  }
  {
    ScopedEnv env("VROOM_TRACE", "");
    // empty means off
    EXPECT_FALSE(harness::Env::from_environment().trace_enabled());
  }
  {
    ScopedEnv env("VROOM_TRACE", "/tmp/traces");
    const harness::Env env_vals = harness::Env::from_environment();
    EXPECT_TRUE(env_vals.trace_enabled());
    EXPECT_EQ(env_vals.trace_dir, "/tmp/traces");
  }
}

// Trace-backed invariant (the template for future ones): assertions on the
// *event stream* of a load catch violations that aggregate metrics average
// away. Here: an HTTP/2 load multiplexes every request over one connection
// per domain, so it must never pay an HTTP/1.1 head-of-line queue wait —
// neither as an `h1.queue_wait` span nor in the `http.h1_hol_waits` counter.
TEST(Trace, Http2LoadReplayHasNoH1HolWaits) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 3, web::PageClass::News);
  harness::RunOptions opt;
  opt.seed = 42;

  auto hol_waits = [&](const baselines::Strategy& strategy) {
    int wait_events = 0;
    std::int64_t wait_counter = 0;
    harness::RunOptions traced = opt;
    traced.trace_sink = [&](const trace::Recorder& rec) {
      for (const auto& ev : rec.events()) {
        if (ev.name == "h1.queue_wait") ++wait_events;
      }
      wait_counter = rec.counters().value("http.h1_hol_waits");
    };
    const auto r = harness::run_page_load(page, strategy, traced, 1);
    EXPECT_TRUE(r.finished);
    // Counter and event stream must agree — and the snapshot carried in the
    // LoadResult (what corpus-level checks see) must match too.
    std::int64_t snapshot = 0;
    for (const auto& [name, value] : r.trace_counters) {
      if (name == "http.h1_hol_waits") snapshot = value;
    }
    EXPECT_EQ(wait_counter, snapshot);
    EXPECT_EQ(wait_events, static_cast<int>(wait_counter));
    return wait_events;
  };

  EXPECT_EQ(hol_waits(baselines::http2_baseline()), 0);
  // The probe is live: the same page over HTTP/1.1 (6 connections per
  // domain) does queue behind busy connections.
  EXPECT_GT(hol_waits(baselines::http11()), 0);
}

// Every push decision an origin records must carry the policy label of the
// push selection the provider was configured with — a decision attributed
// to the wrong policy would silently corrupt any per-policy trace analysis.
TEST(Trace, PushDecisionEventsCarryConfiguredPolicy) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 3, web::PageClass::News);

  auto decisions_with_policy = [&page](core::PushSelection push) {
    baselines::Strategy s = baselines::vroom();
    s.provider.push = push;
    const std::string want =
        std::string("\"policy\":\"") + core::push_selection_name(push) + "\"";
    int decisions = 0;
    harness::RunOptions opt;
    opt.seed = 42;
    opt.trace_sink = [&](const trace::Recorder& rec) {
      for (const auto& ev : rec.events()) {
        if (ev.name != "push.decision") continue;
        ++decisions;
        EXPECT_NE(ev.args_json.find(want), std::string::npos)
            << "push.decision args: " << ev.args_json;
      }
    };
    const auto r = harness::run_page_load(page, s, opt, 1);
    EXPECT_TRUE(r.finished);
    return decisions;
  };

  // Policies that push must record decisions, each tagged with that policy.
  EXPECT_GT(decisions_with_policy(core::PushSelection::HighPriorityLocal), 0);
  EXPECT_GT(decisions_with_policy(core::PushSelection::AllLocal), 0);
  // With push disabled the provider advises no pushes, so origins have no
  // decisions to record.
  EXPECT_EQ(decisions_with_policy(core::PushSelection::None), 0);
}

// Pulls a string arg out of a pre-rendered `"k":"v",...` args fragment;
// empty when the key is absent.
std::string event_arg(const trace::Recorder::Event& ev,
                      const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = ev.args_json.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = ev.args_json.find('"', start);
  return end == std::string::npos ? std::string()
                                  : ev.args_json.substr(start, end - start);
}

// Integer arg out of the same fragment (`"k":v`); nullopt when absent.
std::optional<std::int64_t> event_arg_int(const trace::Recorder::Event& ev,
                                          const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = ev.args_json.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return std::stoll(ev.args_json.substr(at + needle.size()));
}

// Causality invariants of the staged Vroom scheduler, checked on the real
// event stream of a full load: stages only advance forward one step at a
// time, no URL is requested twice (hints are consumed at most once), and
// every request is preceded by the event that could have caused it — its
// discovery for parser fetches, a hint delivery for hint fetches.
TEST(Trace, SchedulerStageInvariantsHoldOnFullLoad) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 7, web::PageClass::News);
  std::vector<trace::Recorder::Event> events;
  harness::RunOptions opt = traced_options(nullptr, &events, nullptr);
  const auto r = harness::run_page_load(page, baselines::vroom(), opt, 1);
  ASSERT_TRUE(r.finished);

  int last_stage = 0;
  int stage_advances = 0;
  sim::Time first_hints_received = sim::kNever;
  std::map<std::string, sim::Time> discovered;
  std::set<std::string> requested;
  int hint_requests = 0;
  for (const auto& ev : events) {  // sorted_events(): ts-ordered
    if (ev.name == "stage_advance") {
      const auto from = event_arg_int(ev, "from");
      const auto to = event_arg_int(ev, "to");
      ASSERT_TRUE(from.has_value() && to.has_value());
      EXPECT_EQ(*from + 1, *to) << "stage skipped";
      EXPECT_EQ(*from, last_stage) << "stage regressed or skipped";
      last_stage = static_cast<int>(*to);
      ++stage_advances;
    } else if (ev.name == "hints.received") {
      first_hints_received = std::min(first_hints_received, ev.ts);
    } else if (ev.name == "discover") {
      const std::string url = event_arg(ev, "url");
      ASSERT_FALSE(url.empty());
      if (!discovered.count(url)) discovered[url] = ev.ts;
    } else if (ev.name == "request") {
      const std::string url = event_arg(ev, "url");
      ASSERT_FALSE(url.empty());
      EXPECT_TRUE(requested.insert(url).second)
          << url << " requested twice (hint consumed more than once?)";
      const std::string reason = event_arg(ev, "reason");
      if (reason == "parser") {
        ASSERT_TRUE(discovered.count(url)) << url << " fetched undiscovered";
        EXPECT_LE(discovered[url], ev.ts);
      } else if (reason == "hint") {
        ++hint_requests;
        EXPECT_NE(first_hints_received, sim::kNever)
            << url << " hint-fetched before any hints arrived";
        EXPECT_LE(first_hints_received, ev.ts);
      }
    }
  }
  // The invariants must have had something to bite on: a Vroom load stages
  // through the pipeline and fetches at least some resources via hints.
  EXPECT_GT(stage_advances, 0);
  EXPECT_GT(hint_requests, 0);
}

TEST(Waterfall, TableListsRequestsInOrder) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 3, web::PageClass::News);
  harness::RunOptions opt;
  opt.seed = 42;
  const auto r = harness::run_page_load(page, baselines::vroom(), opt, 1);

  trace::WaterfallOptions wf;
  wf.max_rows = 5;
  const std::string table = trace::waterfall_table("Vroom", r, wf);
  EXPECT_NE(table.find("Vroom"), std::string::npos);
  EXPECT_NE(table.find("PLT"), std::string::npos);
  EXPECT_NE(table.find(page.first_party()), std::string::npos);
  if (r.requests > wf.max_rows) {
    EXPECT_NE(table.find("more requests"), std::string::npos);
  }
}

}  // namespace
}  // namespace vroom
