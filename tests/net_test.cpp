#include <gtest/gtest.h>

#include "net/link.h"
#include "net/network.h"
#include "net/tcp.h"

namespace vroom::net {
namespace {

TEST(LinkTest, SerializesAtLineRate) {
  sim::EventLoop loop;
  Link link(loop, 8e6);  // 1 byte/us
  sim::Time done = -1;
  link.transmit(1000, [&] { done = loop.now(); });
  loop.run();
  EXPECT_EQ(done, 1000);
  EXPECT_EQ(link.total_bytes(), 1000);
}

TEST(LinkTest, FifoQueueing) {
  sim::EventLoop loop;
  Link link(loop, 8e6);
  sim::Time first = -1, second = -1;
  link.transmit(1000, [&] { first = loop.now(); });
  link.transmit(500, [&] { second = loop.now(); });
  loop.run();
  EXPECT_EQ(first, 1000);
  EXPECT_EQ(second, 1500);  // queued behind the first transfer
}

TEST(LinkTest, LaterArrivalStartsWhenIdle) {
  sim::EventLoop loop;
  Link link(loop, 8e6);
  sim::Time done = -1;
  loop.schedule_at(5000, [&] { link.transmit(100, [&] { done = loop.now(); }); });
  loop.run();
  EXPECT_EQ(done, 5100);
}

TEST(LinkTest, UtilizationAccounting) {
  sim::EventLoop loop;
  Link link(loop, 8e6);
  link.transmit(1000, [] {});
  loop.schedule_at(2000, [] {});  // extend the clock to 2000us
  loop.run();
  EXPECT_NEAR(link.utilization(), 0.5, 1e-9);
}

TEST(NetworkTest, DomainRttDeterministicAndBounded) {
  sim::EventLoop loop;
  NetworkConfig cfg = NetworkConfig::lte();
  Network a(loop, cfg, 7), b(loop, cfg, 7), c(loop, cfg, 8);
  EXPECT_EQ(a.rtt("x.com"), b.rtt("x.com"));
  EXPECT_GE(a.rtt("x.com"), cfg.cellular_rtt + cfg.domain_rtt_min);
  EXPECT_LE(a.rtt("x.com"), cfg.cellular_rtt + cfg.domain_rtt_max);
  // Different seeds generally draw different wide-area legs.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    const std::string d = "dom" + std::to_string(i) + ".com";
    if (a.rtt(d) != c.rtt(d)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(NetworkTest, SetRttOverrides) {
  sim::EventLoop loop;
  Network n(loop, NetworkConfig::lte(), 1);
  n.set_rtt("a.com", sim::ms(80));
  EXPECT_EQ(n.rtt("a.com"), sim::ms(80));
}

class TcpTest : public ::testing::Test {
 protected:
  TcpTest() : net_(loop_, NetworkConfig::lte(), 1) {
    net_.set_rtt("a.com", sim::ms(100));
  }
  sim::EventLoop loop_;
  Network net_;
};

TEST_F(TcpTest, HandshakeTakesDnsPlusRtts) {
  TcpConnection conn(net_, "a.com", /*needs_dns=*/true);
  sim::Time established = -1;
  conn.connect([&] { established = loop_.now(); });
  loop_.run();
  // DNS (25ms) + TCP handshake (100ms) + 2 TLS RTTs (TLS 1.2, 200ms).
  EXPECT_EQ(established, sim::ms(325));
  EXPECT_TRUE(conn.established());
}

TEST_F(TcpTest, NoDnsSkipsLookup) {
  TcpConnection conn(net_, "a.com", /*needs_dns=*/false);
  sim::Time established = -1;
  conn.connect([&] { established = loop_.now(); });
  loop_.run();
  EXPECT_EQ(established, sim::ms(300));
}

TEST_F(TcpTest, SmallResponseIsLatencyBound) {
  TcpConnection conn(net_, "a.com", false);
  sim::Time done = -1;
  conn.connect([&] {
    TcpConnection::Chunk c;
    c.bytes = 1000;  // one segment
    c.on_delivered = [&] { done = loop_.now(); };
    conn.send_chunk(std::move(c));
  });
  loop_.run();
  // Established at 300ms; then half RTT + serialization (~0.8ms at 10Mbps).
  EXPECT_GT(done, sim::ms(350));
  EXPECT_LT(done, sim::ms(352));
}

TEST_F(TcpTest, LargeTransferApproachesLinkRate) {
  TcpConnection conn(net_, "a.com", false);
  const std::int64_t bytes = 3'000'000;
  sim::Time done = -1;
  conn.connect([&] {
    TcpConnection::Chunk c;
    c.bytes = bytes;
    c.on_delivered = [&] { done = loop_.now(); };
    conn.send_chunk(std::move(c));
  });
  loop_.run();
  const double secs = sim::to_seconds(done - sim::ms(300));
  const double ideal = bytes * 8.0 / 10e6;
  EXPECT_GT(secs, ideal);           // slow start costs something
  EXPECT_LT(secs, ideal * 1.5);     // but the link ends up well utilized
}

TEST_F(TcpTest, SlowStartMakesSmallTransfersRoundTripBound) {
  // 64 KB needs ~3 windows at init cwnd 10*1460: observable extra RTTs.
  TcpConnection conn(net_, "a.com", false);
  sim::Time done = -1;
  conn.connect([&] {
    TcpConnection::Chunk c;
    c.bytes = 64'000;
    c.on_delivered = [&] { done = loop_.now(); };
    conn.send_chunk(std::move(c));
  });
  loop_.run();
  const sim::Time after_setup = done - sim::ms(300);
  // Serialization alone would be ~51ms; slow start adds at least 2 extra
  // round trips beyond the first half-RTT.
  EXPECT_GT(after_setup, sim::ms(51 + 150));
}

TEST_F(TcpTest, ChunksDeliverInOrderWithCallbacks) {
  TcpConnection conn(net_, "a.com", false);
  std::vector<int> order;
  sim::Time first_byte_b = -1;
  conn.connect([&] {
    TcpConnection::Chunk a;
    a.bytes = 10'000;
    a.on_delivered = [&] { order.push_back(1); };
    conn.send_chunk(std::move(a));
    TcpConnection::Chunk b;
    b.bytes = 10'000;
    b.on_first_byte = [&] { first_byte_b = loop_.now(); };
    b.on_delivered = [&] { order.push_back(2); };
    conn.send_chunk(std::move(b));
  });
  loop_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_GT(first_byte_b, 0);
}

TEST_F(TcpTest, RequestReachesServerAfterUplinkAndHalfRtt) {
  TcpConnection conn(net_, "a.com", false);
  sim::Time at_server = -1;
  conn.connect([&] {
    conn.send_request(450, [&] { at_server = loop_.now(); });
  });
  loop_.run();
  // 450B at 5Mbps = 720us, + 50ms half RTT.
  EXPECT_EQ(at_server, sim::ms(300) + 720 + sim::ms(50));
}

TEST_F(TcpTest, TwoConnectionsShareTheAccessLink) {
  net_.set_rtt("b.com", sim::ms(100));
  TcpConnection c1(net_, "a.com", false);
  TcpConnection c2(net_, "b.com", false);
  sim::Time d1 = -1, d2 = -1;
  const std::int64_t bytes = 1'000'000;
  auto send = [&](TcpConnection& c, sim::Time& out) {
    c.connect([&c, &out, bytes, this] {
      TcpConnection::Chunk ch;
      ch.bytes = bytes;
      ch.on_delivered = [&out, this] { out = loop_.now(); };
      c.send_chunk(std::move(ch));
    });
  };
  send(c1, d1);
  send(c2, d2);
  loop_.run();
  // Together they move 2 MB; the shared 10 Mbps link needs >= 1.6s.
  EXPECT_GT(std::max(d1, d2), sim::from_seconds(2 * bytes * 8.0 / 10e6));
}

}  // namespace
}  // namespace vroom::net
