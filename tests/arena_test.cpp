// Per-load arena (sim/arena.h): bump allocation, reset-and-reuse semantics,
// the thread-local pool protocol, and — the property everything else rides
// on — that a world rebuilt on a reset arena is indistinguishable from one
// built on a fresh arena (interner ids restart at 0, per-load tables start
// empty, traced event streams are bit-identical).
#include "sim/arena.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "harness/experiment.h"
#include "scoped_env.h"
#include "trace/trace.h"
#include "web/intern.h"
#include "web/page_generator.h"
#include "web/page_instance.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

TEST(Arena, BumpAllocatesAlignedAndTracksUsage) {
  sim::Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);

  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  // 3 bytes, then padding up to the 8-byte boundary, then 8 bytes.
  EXPECT_EQ(arena.bytes_used(), 16u);
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), sim::Arena::kDefaultChunkBytes);
}

TEST(Arena, CopyStringIsStableAndNulTerminated) {
  sim::Arena arena;
  const std::string original = "a.example/p1/r0v2u0.html";
  const std::string_view copy = arena.copy_string(original);
  EXPECT_EQ(copy, original);
  EXPECT_NE(copy.data(), original.data());
  EXPECT_EQ(copy.data()[copy.size()], '\0');

  // Chunk growth must not move earlier copies (index maps hold views).
  const char* before = copy.data();
  for (int i = 0; i < 10000; ++i) {
    arena.copy_string("filler.example/p1/r1v1u0.css");
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_EQ(copy.data(), before);
  EXPECT_EQ(copy, original);
}

TEST(Arena, OversizedAllocationGetsItsOwnChunk) {
  sim::Arena arena(64);  // tiny first chunk
  void* big = arena.allocate(1 << 20, alignof(std::max_align_t));
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
  std::memset(big, 0xab, 1 << 20);  // the whole block is really writable
}

TEST(Arena, ResetRewindsButKeepsChunks) {
  sim::Arena arena;
  void* first = arena.allocate(64, alignof(std::max_align_t));
  for (int i = 0; i < 5000; ++i) arena.copy_string("x.example/p1/r2v3u0.js");
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.chunk_count();
  ASSERT_GT(arena.bytes_used(), 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // memory kept...
  EXPECT_EQ(arena.chunk_count(), chunks);
  // ...and the next load's first allocation reuses the first chunk.
  void* again = arena.allocate(64, alignof(std::max_align_t));
  EXPECT_EQ(again, first);
}

TEST(Arena, PmrContainersAllocateFromArena) {
  sim::Arena arena;
  {
    std::pmr::vector<std::uint64_t> v(&arena);
    for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_GE(arena.bytes_used(), 1000 * sizeof(std::uint64_t));
    EXPECT_EQ(v[999], 999u);
  }
  // Destruction deallocates nothing (bump arena): usage is monotone until
  // reset.
  EXPECT_GT(arena.bytes_used(), 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(PooledArena, ConsecutiveAcquisitionsReuseResetStorage) {
  const sim::Arena* seen = nullptr;
  std::size_t reserved = 0;
  {
    sim::PooledArena a;
    a->allocate(1024, 8);
    seen = a.get();
    reserved = a->bytes_reserved();
    EXPECT_GT(a->bytes_used(), 0u);
  }
  {
    sim::PooledArena b;
    // Same thread, no live holder => the pool hands back the same arena,
    // already reset but with its chunks intact.
    EXPECT_EQ(b.get(), seen);
    EXPECT_EQ(b->bytes_used(), 0u);
    EXPECT_EQ(b->bytes_reserved(), reserved);
  }
}

TEST(PooledArena, NestedAcquisitionIsReentrant) {
  sim::PooledArena outer;
  outer->allocate(64, 8);
  {
    // A nested world (offline resolver inside a live load) must get its own
    // arena — resetting the outer one mid-load would be fatal.
    sim::PooledArena inner;
    EXPECT_NE(inner.get(), outer.get());
    inner->allocate(64, 8);
  }
  EXPECT_GT(outer->bytes_used(), 0u);  // inner's release didn't touch outer
}

TEST(PooledArena, ThreadsGetIndependentArenas) {
  // TSAN companion to the fleet suite: concurrent acquire/allocate/release
  // on many threads must not race (the pool is thread-local).
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        sim::PooledArena arena;
        std::pmr::vector<int> v(arena.get());
        for (int j = 0; j < 256; ++j) v.push_back(j);
        ASSERT_EQ(v.back(), 255);
      }
    });
  }
  for (auto& th : threads) th.join();
}

// The reset-reuse contract: a world rebuilt on a reset arena behaves exactly
// like one built on a fresh arena.
TEST(ArenaWorld, ResetArenaWorldIndistinguishableFromFresh) {
  const web::PageModel page = web::generate_page(42, 5, web::PageClass::News);
  web::LoadIdentity id;
  id.wall_time = sim::hours(1000);
  id.nonce = 7;

  sim::Arena arena;
  std::vector<std::string> first_urls;
  {
    web::Interner in(&arena);
    EXPECT_EQ(in.url_id("a.example/p1/r0v2u0.html"), 0u);
    EXPECT_EQ(in.url_id("b.example/p1/r1v7u0.css"), 1u);
    const web::PageInstance inst(page, id, &arena);
    for (const auto& r : inst.resources()) first_urls.emplace_back(r.url);
    ASSERT_FALSE(first_urls.empty());
  }
  arena.reset();
  {
    // Ids restart at 0; realization is identical.
    web::Interner in(&arena);
    EXPECT_EQ(in.url_count(), 0u);
    EXPECT_EQ(in.url_id("a.example/p1/r0v2u0.html"), 0u);
    const web::PageInstance inst(page, id, &arena);
    ASSERT_EQ(inst.size(), first_urls.size());
    for (std::uint32_t i = 0; i < inst.size(); ++i) {
      EXPECT_EQ(inst.resource(i).url, first_urls[i]);
      EXPECT_EQ(inst.resource(i).url_id, i);
    }
    // Fresh tables: nothing leaked across the reset.
    EXPECT_EQ(inst.find_by_url("ghost.example/p9/r99v1u0.js"), std::nullopt);
  }
}

// Same load run twice on one thread: the second run's world is rebuilt
// inside the chunks the first grew (PooledArena reuse in run_page_load),
// and the traced event stream — every timestamp, name, and arg — must be
// bit-identical. This is the whole-system version of the test above, and
// mirrors the PooledEventLoop reset tests.
TEST(ArenaWorld, TracedStreamsIdenticalAcrossPooledReuse) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 4, web::PageClass::News);

  auto traced_load = [&page](std::string* json) {
    harness::RunOptions opt;
    opt.seed = 42;
    opt.trace_sink = [json](const trace::Recorder& r) {
      *json = r.chrome_trace_json();
    };
    return harness::run_page_load(page, baselines::vroom(), opt, 1);
  };

  std::string first, warm1, warm2;
  const auto r0 = traced_load(&first);  // grows the pooled arena
  const auto r1 = traced_load(&warm1);  // rebuilt in reused chunks
  const auto r2 = traced_load(&warm2);
  EXPECT_TRUE(r0.finished);
  EXPECT_EQ(r0.plt, r1.plt);
  EXPECT_EQ(r1.plt, r2.plt);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, warm1);
  EXPECT_EQ(warm1, warm2);
}

}  // namespace
}  // namespace vroom
