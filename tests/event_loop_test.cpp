// Regression tests for the EventLoop rework: O(1) idempotent cancellation,
// correct pending()/empty() accounting under pathological cancels (the seed
// implementation corrupted both when cancelling fired, doubly-cancelled, or
// default-constructed ids), storage reuse via reset()/PooledEventLoop, and
// the SmallFn small-buffer callable the slab stores.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "sim/small_fn.h"
#include "sim/time.h"

namespace vroom::sim {
namespace {

TEST(EventLoopCancelTest, CancelAfterFireIsANoOp) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.schedule_at(ms(10), [&] { ran = true; });
  loop.schedule_at(ms(20), [] {});
  EXPECT_TRUE(loop.step());  // fires the ms(10) event
  EXPECT_TRUE(ran);

  loop.cancel(id);  // already fired: must not disturb accounting
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.empty());
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopCancelTest, DoubleCancelIsIdempotent) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.schedule_at(ms(10), [&] { ran = true; });
  loop.schedule_at(ms(20), [] {});
  EXPECT_EQ(loop.pending(), 2u);

  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 1u);
  loop.cancel(id);  // second cancel of the same id: no-op
  loop.cancel(id);  // and a third
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.empty());

  EXPECT_EQ(loop.run(), 1u);
  EXPECT_FALSE(ran);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopCancelTest, CancelDefaultIdIsANoOp) {
  EventLoop loop;
  loop.schedule_at(ms(10), [] {});
  loop.cancel(EventId{});
  loop.cancel(EventId{});
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.empty());
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopCancelTest, CancelledSlotReuseDoesNotCancelNewEvent) {
  EventLoop loop;
  bool first = false, second = false;
  EventId id = loop.schedule_at(ms(10), [&] { first = true; });
  loop.cancel(id);
  // The slab slot is recycled for the next event; the stale id's generation
  // no longer matches, so cancelling it again must not kill the new event.
  EventId id2 = loop.schedule_at(ms(20), [&] { second = true; });
  (void)id2;
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(EventLoopCancelTest, ManyCancelsKeepOrderingDeterministic) {
  EventLoop loop;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(loop.schedule_at(ms(10 + i % 3), [&order, i] {
      order.push_back(i);
    }));
  }
  for (int i = 0; i < 100; i += 2) loop.cancel(ids[i]);
  EXPECT_EQ(loop.pending(), 50u);
  loop.run();
  // Survivors fire in (time, insertion-seq) order.
  std::vector<int> expected;
  for (int t = 0; t < 3; ++t) {
    for (int i = 1; i < 100; i += 2) {
      if (i % 3 == t) expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(EventLoopResetTest, ResetRestoresFreshState) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(ms(10), [&] { ++count; });
  loop.schedule_at(ms(20), [&] { ++count; });
  loop.run();
  EXPECT_EQ(loop.now(), ms(20));

  loop.reset();
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.recorder(), nullptr);

  // A reset loop behaves exactly like a fresh one, ordering included.
  std::vector<int> order;
  loop.schedule_at(ms(5), [&] { order.push_back(1); });
  loop.schedule_at(ms(5), [&] { order.push_back(2); });
  loop.schedule_at(ms(1), [&] { order.push_back(0); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventLoopResetTest, ResetDropsUnfiredCallbacks) {
  EventLoop loop;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  loop.schedule_at(ms(10), [keep = std::move(token)] {});
  EXPECT_FALSE(watch.expired());
  loop.reset();
  EXPECT_TRUE(watch.expired());  // slab released the closure
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopResetTest, PooledLoopReuseIsTransparent) {
  // Two consecutive pooled loops on one thread share storage; the second
  // must still start from a pristine state.
  {
    PooledEventLoop pooled;
    pooled->schedule_at(ms(100), [] {});
    pooled->run();
    EXPECT_EQ(pooled->now(), ms(100));
  }
  {
    PooledEventLoop pooled;
    EXPECT_EQ(pooled->now(), 0);
    EXPECT_TRUE(pooled->empty());
    int fired = 0;
    pooled->schedule_at(ms(1), [&] { ++fired; });
    EXPECT_EQ(pooled->run(), 1u);
    EXPECT_EQ(fired, 1);
  }
}

TEST(SmallFnTest, InlineAndHeapClosuresInvoke) {
  int hits = 0;
  SmallFn small([&hits] { ++hits; });
  small();
  EXPECT_EQ(hits, 1);

  // Oversized capture forces the heap fallback.
  struct Big {
    std::uint64_t pad[16];
  };
  Big big{};
  big.pad[0] = 41;
  SmallFn large([big, &hits] { hits += static_cast<int>(big.pad[0]); });
  large();
  EXPECT_EQ(hits, 42);
}

TEST(SmallFnTest, MoveTransfersOwnership) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  SmallFn a([keep = std::move(token)] {});
  SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_FALSE(watch.expired());
  b.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(SmallFnTest, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<std::string>("payload");
  std::string got;
  SmallFn fn([p = std::move(owned), &got] { got = *p; });
  fn();
  EXPECT_EQ(got, "payload");
}

}  // namespace
}  // namespace vroom::sim
