#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/strategies.h"
#include "core/accuracy.h"
#include "harness/experiment.h"
#include "harness/stats.h"
#include "web/corpus.h"

// Calibration gates: the synthetic corpus and simulated device/link must
// land in the neighbourhood of the paper's own measurements (DESIGN.md §4).
// Tolerances are generous — the target is shape, not point estimates — but
// tight enough that a regression in the generator or the engine is caught.

namespace vroom {
namespace {

class CorpusCalibration : public ::testing::Test {
 protected:
  CorpusCalibration() : corpus_(web::Corpus::news_sports(42)) {}
  web::Corpus corpus_;
};

TEST_F(CorpusCalibration, ResourceCountsRealistic) {
  std::vector<double> counts;
  for (const auto& p : corpus_.pages()) {
    counts.push_back(static_cast<double>(p.size()));
  }
  const double med = harness::median(counts);
  EXPECT_GT(med, 80);   // News/Sports pages are larger than the average page
  EXPECT_LT(med, 260);
}

TEST_F(CorpusCalibration, ProcessableBytesAboutAQuarter) {
  std::vector<double> fracs;
  for (const auto& p : corpus_.pages()) {
    fracs.push_back(static_cast<double>(p.processable_bytes()) /
                    static_cast<double>(p.total_bytes()));
  }
  const double med = harness::median(fracs);
  EXPECT_GT(med, 0.15);
  EXPECT_LT(med, 0.40);
}

TEST_F(CorpusCalibration, BackToBackChurnNearPaperValue) {
  // ~22 % of the median page's URLs change across back-to-back loads.
  std::vector<double> churn;
  for (const auto& p : corpus_.pages()) {
    int per_load = 0;
    for (const auto& r : p.resources()) {
      if (r.volatility == web::Volatility::PerLoad) ++per_load;
    }
    churn.push_back(static_cast<double>(per_load) /
                    static_cast<double>(p.size()));
  }
  const double med = harness::median(churn);
  EXPECT_GT(med, 0.12);
  EXPECT_LT(med, 0.32);
}

TEST_F(CorpusCalibration, PersistenceMatchesFigure7) {
  web::Corpus top = web::Corpus::top100(42);
  std::vector<double> hour, day, week;
  for (const auto& p : top.pages()) {
    hour.push_back(core::persistence_fraction(p, sim::days(45), web::nexus6(),
                                              1, sim::hours(1)));
    day.push_back(core::persistence_fraction(p, sim::days(45), web::nexus6(),
                                             1, sim::days(1)));
    week.push_back(core::persistence_fraction(p, sim::days(45), web::nexus6(),
                                              1, sim::days(7)));
  }
  const double mh = harness::median(hour);
  const double md = harness::median(day);
  const double mw = harness::median(week);
  std::printf("persistence medians: 1h=%.2f 1d=%.2f 1w=%.2f\n", mh, md, mw);
  EXPECT_NEAR(mh, 0.70, 0.12);
  EXPECT_NEAR(mw, 0.50, 0.15);
  EXPECT_GT(mh, md);
  EXPECT_GT(md, mw);
}

TEST_F(CorpusCalibration, AccuracyMatchesFigure21) {
  web::Corpus acc = web::Corpus::accuracy_set(42, 40);
  std::vector<double> vroom_fn, offline_fn, online_fn, vroom_fp, online_fp,
      pred_count;
  core::OfflineConfig off;
  for (const auto& p : acc.pages()) {
    auto v = core::measure_accuracy(p, sim::days(45), web::nexus6(), 1,
                                    core::ResolutionMode::OfflinePlusOnline,
                                    off);
    auto o = core::measure_accuracy(p, sim::days(45), web::nexus6(), 1,
                                    core::ResolutionMode::OfflineOnly, off);
    auto n = core::measure_accuracy(p, sim::days(45), web::nexus6(), 1,
                                    core::ResolutionMode::OnlineOnly, off);
    vroom_fn.push_back(v.false_negative_frac);
    offline_fn.push_back(o.false_negative_frac);
    online_fn.push_back(n.false_negative_frac);
    vroom_fp.push_back(v.false_positive_frac);
    online_fp.push_back(n.false_positive_frac);
    pred_count.push_back(v.predictable_count_frac);
  }
  std::printf("FN medians: vroom=%.3f offline=%.3f online=%.3f\n",
              harness::median(vroom_fn), harness::median(offline_fn),
              harness::median(online_fn));
  std::printf("FP medians: vroom=%.3f online=%.3f; predictable=%.2f\n",
              harness::median(vroom_fp), harness::median(online_fp),
              harness::median(pred_count));
  EXPECT_LT(harness::median(vroom_fn), 0.10);         // paper: < 5 %
  EXPECT_GT(harness::median(offline_fn),
            harness::median(vroom_fn) + 0.03);        // offline misses flux
  EXPECT_LT(harness::median(online_fn), 0.05);        // near-perfect
  EXPECT_GT(harness::median(online_fp),
            harness::median(vroom_fp));                // server randomness
  EXPECT_GT(harness::median(pred_count), 0.70);       // Fig 21a: > 80 %
}

class LoadTimeCalibration : public ::testing::Test {
 protected:
  LoadTimeCalibration() : corpus_(web::Corpus::news_sports(42)) {
    opt_.loads_per_page = 1;
  }
  double median_plt(const baselines::Strategy& s, int pages = 16) {
    std::vector<double> plts;
    for (int i = 0; i < pages; ++i) {
      plts.push_back(sim::to_seconds(
          harness::run_page_load(corpus_.page(static_cast<std::size_t>(i * 6)),
                                 s, opt_, 1)
              .plt));
    }
    return harness::median(plts);
  }
  web::Corpus corpus_;
  harness::RunOptions opt_;
};

TEST_F(LoadTimeCalibration, MediansInPaperNeighbourhood) {
  const double h1 = median_plt(baselines::http11());
  const double h2 = median_plt(baselines::http2_baseline());
  const double vr = median_plt(baselines::vroom());
  const double lb_cpu = median_plt(baselines::lower_bound_cpu());
  const double lb_net = median_plt(baselines::lower_bound_network());
  std::printf(
      "median PLT (s): h1=%.2f h2=%.2f vroom=%.2f cpu=%.2f net=%.2f\n", h1,
      h2, vr, lb_cpu, lb_net);
  // Paper medians: 10.5 / 7.3 / 5.1 / ~5.0 / lower. The simulation
  // compresses the absolute spread between protocols (no packet loss or
  // radio state machine — see EXPERIMENTS.md), so we pin the *shape*:
  // CPU is the binding constraint, every real scheme sits clearly above the
  // bound, Vroom beats the HTTP/2 baseline, and HTTP/1.1 never beats it.
  EXPECT_GT(lb_cpu, lb_net);  // the CPU is the binding constraint
  EXPECT_NEAR(lb_cpu, 5.0, 1.5);
  EXPECT_GT(h2, lb_cpu + 1.0);
  EXPECT_LT(vr, h2 - 0.3);
  EXPECT_GT(vr, lb_cpu);
  EXPECT_GT(h1, h2 - 0.5);
  EXPECT_NEAR(h2, 7.3, 2.5);
  EXPECT_NEAR(vr, 5.1, 2.0);
}

TEST_F(LoadTimeCalibration, VroomBeatsHttp2OnMostPages) {
  int better = 0, n = 16;
  for (int i = 0; i < n; ++i) {
    const auto& page = corpus_.page(static_cast<std::size_t>(i * 6));
    const auto h2 =
        harness::run_page_load(page, baselines::http2_baseline(), opt_, 1);
    const auto vr = harness::run_page_load(page, baselines::vroom(), opt_, 1);
    if (vr.plt < h2.plt) ++better;
  }
  EXPECT_GE(better, n * 3 / 4);
}

TEST_F(LoadTimeCalibration, NetWaitFractionMatchesFigure4) {
  std::vector<double> waits;
  for (int i = 0; i < 16; ++i) {
    waits.push_back(
        harness::run_page_load(corpus_.page(static_cast<std::size_t>(i * 6)),
                               baselines::http2_baseline(), opt_, 1)
            .net_wait_fraction());
  }
  const double med = harness::median(waits);
  std::printf("median net-wait fraction under HTTP/2: %.2f\n", med);
  EXPECT_GT(med, 0.20);  // paper: > 30 % on the median page
  EXPECT_LT(med, 0.60);
}

}  // namespace
}  // namespace vroom
