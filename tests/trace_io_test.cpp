#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "harness/experiment.h"
#include "harness/export.h"
#include "web/page_generator.h"
#include "web/trace_io.h"

namespace vroom::web {
namespace {

class TraceRoundTrip : public ::testing::TestWithParam<PageClass> {};

TEST_P(TraceRoundTrip, EveryFieldSurvives) {
  const PageModel page = generate_page(42, 8, GetParam());
  std::string error;
  auto parsed = page_from_trace(page_to_trace(page), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), page.size());
  EXPECT_EQ(parsed->page_id(), page.page_id());
  EXPECT_EQ(parsed->page_class(), page.page_class());
  EXPECT_EQ(parsed->first_party(), page.first_party());
  EXPECT_EQ(parsed->first_party_group(), page.first_party_group());
  for (std::size_t i = 0; i < page.size(); ++i) {
    const Resource& a = page.resource(i);
    const Resource& b = parsed->resource(i);
    EXPECT_EQ(a.parent, b.parent) << i;
    EXPECT_EQ(a.type, b.type) << i;
    EXPECT_EQ(a.via, b.via) << i;
    EXPECT_NEAR(a.discovery_offset, b.discovery_offset, 1e-6) << i;
    EXPECT_EQ(a.base_size, b.base_size) << i;
    EXPECT_EQ(a.domain, b.domain) << i;
    EXPECT_EQ(a.volatility, b.volatility) << i;
    EXPECT_EQ(a.rotation_period, b.rotation_period) << i;
    EXPECT_EQ(a.rotation_phase, b.rotation_phase) << i;
    EXPECT_EQ(a.is_iframe_doc, b.is_iframe_doc) << i;
    EXPECT_EQ(a.in_iframe, b.in_iframe) << i;
    EXPECT_EQ(a.async, b.async) << i;
    EXPECT_EQ(a.blocks_parser, b.blocks_parser) << i;
    EXPECT_EQ(a.cacheable, b.cacheable) << i;
    EXPECT_EQ(a.max_age, b.max_age) << i;
    EXPECT_EQ(a.above_fold, b.above_fold) << i;
    EXPECT_NEAR(a.visual_weight, b.visual_weight, 1e-6) << i;
    EXPECT_EQ(a.device_axis, b.device_axis) << i;
    EXPECT_EQ(a.post_onload, b.post_onload) << i;
    EXPECT_EQ(a.blocks_onload, b.blocks_onload) << i;
    EXPECT_EQ(a.first_party_personalized, b.first_party_personalized) << i;
    EXPECT_EQ(a.url_page_override, b.url_page_override) << i;
  }
}

TEST_P(TraceRoundTrip, ReimportedPageLoadsIdentically) {
  const PageModel page = generate_page(42, 8, GetParam());
  auto parsed = page_from_trace(page_to_trace(page));
  ASSERT_TRUE(parsed.has_value());
  harness::RunOptions opt;
  const auto a =
      harness::run_page_load(page, baselines::http2_baseline(), opt, 1);
  const auto b =
      harness::run_page_load(*parsed, baselines::http2_baseline(), opt, 1);
  EXPECT_EQ(a.plt, b.plt);
  EXPECT_EQ(a.bytes_fetched, b.bytes_fetched);
  EXPECT_EQ(a.requests, b.requests);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, TraceRoundTrip,
                         ::testing::Values(PageClass::Top100, PageClass::News,
                                           PageClass::Sports,
                                           PageClass::Mixed400),
                         [](const auto& info) {
                           return std::string(page_class_name(info.param));
                         });

TEST(TraceErrors, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(page_from_trace("", &error).has_value());
  EXPECT_FALSE(page_from_trace("res id=0\n", &error).has_value());
  EXPECT_EQ(error.find("res before page"), 0u);
  EXPECT_FALSE(
      page_from_trace("page id=1 class=bogus first_party=x.com\n", &error)
          .has_value());
  // Non-dense ids.
  const char* gap =
      "page id=1 class=news first_party=x.com\n"
      "res id=0 parent=-1 type=html via=tag off=0 size=1000 domain=x.com "
      "vol=hourly period=100 phase=0\n"
      "res id=2 parent=0 type=js via=tag off=0.5 size=100 domain=x.com "
      "vol=stable period=100 phase=0\n";
  EXPECT_FALSE(page_from_trace(gap, &error).has_value());
  // Parent after child.
  const char* bad_parent =
      "page id=1 class=news first_party=x.com\n"
      "res id=0 parent=-1 type=html via=tag off=0 size=1000 domain=x.com "
      "vol=hourly period=100 phase=0\n"
      "res id=1 parent=1 type=js via=tag off=0.5 size=100 domain=x.com "
      "vol=stable period=100 phase=0\n";
  EXPECT_FALSE(page_from_trace(bad_parent, &error).has_value());
  // Unknown flag.
  const char* bad_flag =
      "page id=1 class=news first_party=x.com\n"
      "res id=0 parent=-1 type=html via=tag off=0 size=1000 domain=x.com "
      "vol=hourly period=100 phase=0 flags=bogus\n";
  EXPECT_FALSE(page_from_trace(bad_flag, &error).has_value());
  // Root must be HTML.
  const char* bad_root =
      "page id=1 class=news first_party=x.com\n"
      "res id=0 parent=-1 type=js via=tag off=0 size=1000 domain=x.com "
      "vol=stable period=100 phase=0\n";
  EXPECT_FALSE(page_from_trace(bad_root, &error).has_value());
}

// Numeric fields follow the strict whole-value contract (harness/env.cpp):
// the float path used std::stod, which silently accepted trailing garbage,
// hex floats, and inf/nan.
TEST(TraceErrors, RejectsPartiallyParsedNumbers) {
  const auto page_with_off = [](const char* off) {
    return std::string("page id=1 class=news first_party=x.com\n"
                       "res id=0 parent=-1 type=html via=tag off=") +
           off + " size=1000 domain=x.com vol=hourly period=100 phase=0\n";
  };
  std::string error;
  EXPECT_FALSE(page_from_trace(page_with_off("0.5x"), &error).has_value());
  EXPECT_FALSE(page_from_trace(page_with_off("inf"), &error).has_value());
  EXPECT_FALSE(page_from_trace(page_with_off("nan"), &error).has_value());
  EXPECT_FALSE(page_from_trace(page_with_off("0x1"), &error).has_value());
  EXPECT_FALSE(page_from_trace(page_with_off("."), &error).has_value());
  // Plain and scientific notation still parse.
  EXPECT_TRUE(page_from_trace(page_with_off("0.25"), &error).has_value());
  EXPECT_TRUE(page_from_trace(page_with_off("2.5e-1"), &error).has_value());
}

TEST(TraceErrors, AcceptsCommentsAndHandwrittenMinimalPage) {
  const char* text =
      "# tiny page\n"
      "page id=9 class=top100 first_party=tiny.com\n"
      "res id=0 parent=-1 type=html via=tag off=0 size=20000 domain=tiny.com "
      "vol=hourly period=1800000000 phase=0 flags=above_fold\n"
      "res id=1 parent=0 type=css via=tag off=0.1 size=5000 domain=tiny.com "
      "vol=stable period=864000000000 phase=0 flags=cacheable above\n";
  // (note: trailing junk token without '=' is ignored by the field parser)
  auto page = page_from_trace(text);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(page->size(), 2u);
  harness::RunOptions opt;
  auto r = harness::run_page_load(*page, baselines::vroom(), opt, 1);
  EXPECT_TRUE(r.finished);
}

TEST(ExportTest, SlugifyAndCsvShape) {
  EXPECT_EQ(harness::slugify("Figure 13 (a) Page Load Time"),
            "figure_13_a_page_load_time");
  EXPECT_EQ(harness::slugify("***"), "untitled");
  const std::string csv = harness::series_to_csv(
      {{"A", {1.0, 2.0}}, {"B", {3.0}}});
  EXPECT_EQ(csv, "\"A\",\"B\"\n1,3\n2,\n");
}

TEST(ExportTest, CsvDoublesRoundTripExactly) {
  // The default stream precision (6 significant digits) truncated PLT/AFT
  // series; max_digits10 output must parse back to the identical double.
  const std::vector<double> values = {
      1.0 / 3.0, 0.1, 123456.78901234567, 1e-9, 98765.4321,
      sim::to_seconds(sim::ms(1234567) + 89)};
  const std::string csv = harness::series_to_csv({{"plt_s", values}});
  std::istringstream is(csv);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));  // header
  for (double expected : values) {
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(std::strtod(line.c_str(), nullptr), expected) << line;
  }
}

TEST(ExportTest, TimingsCsvHasHeaderAndRows) {
  const PageModel page = generate_page(42, 8, PageClass::Top100);
  harness::RunOptions opt;
  auto r = harness::run_page_load(page, baselines::vroom(), opt, 1);
  const std::string csv = harness::timings_to_csv(r);
  EXPECT_NE(csv.find("url,referenced"), std::string::npos);
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 20);
}

}  // namespace
}  // namespace vroom::web
