#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "harness/experiment.h"
#include "harness/stats.h"
#include "web/corpus.h"

namespace vroom {
namespace {

// Small-corpus end-to-end sweeps asserting the paper's qualitative ordering
// holds across pages, not just on one lucky page.
class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : corpus_(web::Corpus::smoke(42, 6)) {
    opt_.loads_per_page = 1;  // keep the suite fast; determinism is separate
  }
  web::Corpus corpus_;
  harness::RunOptions opt_;
};

TEST_F(IntegrationTest, AllStrategiesFinishOnAllPages) {
  const baselines::Strategy strategies[] = {
      baselines::http11(),         baselines::http2_baseline(),
      baselines::vroom(),          baselines::polaris(),
      baselines::push_all_no_hints(), baselines::push_all_fetch_asap(),
      baselines::lower_bound_network(), baselines::lower_bound_cpu(),
  };
  for (const auto& s : strategies) {
    auto res = harness::run_corpus(corpus_, s, opt_);
    for (const auto& load : res.loads) {
      EXPECT_TRUE(load.finished) << s.name;
    }
  }
}

TEST_F(IntegrationTest, MedianOrderingMatchesPaper) {
  const double h1 =
      harness::median(harness::run_corpus(corpus_, baselines::http11(), opt_)
                          .plt_seconds());
  const double h2 = harness::median(
      harness::run_corpus(corpus_, baselines::http2_baseline(), opt_)
          .plt_seconds());
  const double vr = harness::median(
      harness::run_corpus(corpus_, baselines::vroom(), opt_).plt_seconds());
  const double pol = harness::median(
      harness::run_corpus(corpus_, baselines::polaris(), opt_).plt_seconds());
  EXPECT_LT(h2, h1);
  EXPECT_LT(vr, h2);
  EXPECT_LT(vr, pol);
  EXPECT_LT(pol, h1 * 1.05);
}

TEST_F(IntegrationTest, VroomImprovesDiscoveryLatency) {
  auto h2 = harness::run_corpus(corpus_, baselines::http2_baseline(), opt_);
  auto vr = harness::run_corpus(corpus_, baselines::vroom(), opt_);
  int improved = 0;
  for (std::size_t i = 0; i < h2.loads.size(); ++i) {
    if (vr.loads[i].all_discovered < h2.loads[i].all_discovered) ++improved;
  }
  // Discovery should improve on the clear majority of pages.
  EXPECT_GE(improved, static_cast<int>(h2.loads.size()) - 1);
}

TEST_F(IntegrationTest, VroomReducesNetWaitOnCriticalPath) {
  auto h2 = harness::run_corpus(corpus_, baselines::http2_baseline(), opt_);
  auto vr = harness::run_corpus(corpus_, baselines::vroom(), opt_);
  const double h2_wait = harness::median(h2.net_wait_fractions());
  const double vr_wait = harness::median(vr.net_wait_fractions());
  EXPECT_LT(vr_wait, h2_wait);
}

TEST_F(IntegrationTest, VroomWastesOnlyModestBandwidth) {
  auto vr = harness::run_corpus(corpus_, baselines::vroom(), opt_);
  for (const auto& load : vr.loads) {
    EXPECT_LT(static_cast<double>(load.wasted_bytes),
              0.15 * static_cast<double>(load.bytes_fetched));
  }
}

TEST_F(IntegrationTest, PartialDeploymentBetweenFullAndBaseline) {
  const double h2 = harness::median(
      harness::run_corpus(corpus_, baselines::http2_baseline(), opt_)
          .plt_seconds());
  const double vr = harness::median(
      harness::run_corpus(corpus_, baselines::vroom(), opt_).plt_seconds());
  const double part = harness::median(
      harness::run_corpus(corpus_, baselines::vroom_first_party_only(), opt_)
          .plt_seconds());
  EXPECT_LE(vr, part + 0.05);
  EXPECT_LT(part, h2);
}

TEST_F(IntegrationTest, EffectivePageCountHonorsEnvCap) {
  ASSERT_EQ(harness::effective_page_count(10), 10);
  ::setenv("VROOM_BENCH_PAGES", "3", 1);
  EXPECT_EQ(harness::effective_page_count(10), 3);
  EXPECT_EQ(harness::effective_page_count(2), 2);
  ::unsetenv("VROOM_BENCH_PAGES");
}

}  // namespace
}  // namespace vroom
