// SweepPlan: a multi-corpus, mixed-options plan executed on one shared pool
// must return, cell by cell, results bit-identical to standalone serial
// run_corpus calls — at any worker count. Longest-job-first dispatch must be
// deterministic and must never leak into results; per-cell telemetry must
// add up; warm-cache cells must degrade the plan to one worker.
#include "fleet/fleet.h"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "browser/cache.h"
#include "fleet/job_queue.h"
#include "harness/experiment.h"
#include "scoped_env.h"
#include "web/corpus.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

void expect_identical(const browser::LoadResult& a,
                      const browser::LoadResult& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.plt, b.plt);
  EXPECT_EQ(a.aft, b.aft);
  EXPECT_EQ(a.speed_index_ms, b.speed_index_ms);  // bitwise, not approx
  EXPECT_EQ(a.ttfb, b.ttfb);
  EXPECT_EQ(a.first_paint, b.first_paint);
  EXPECT_EQ(a.dom_content_loaded, b.dom_content_loaded);
  EXPECT_EQ(a.net_wait, b.net_wait);
  EXPECT_EQ(a.cpu_busy, b.cpu_busy);
  EXPECT_EQ(a.bytes_fetched, b.bytes_fetched);
  EXPECT_EQ(a.wasted_bytes, b.wasted_bytes);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  ASSERT_EQ(a.timings.size(), b.timings.size());
  for (std::size_t i = 0; i < a.timings.size(); ++i) {
    EXPECT_EQ(a.timings[i].url, b.timings[i].url);
    EXPECT_EQ(a.timings[i].bytes, b.timings[i].bytes);
    EXPECT_EQ(a.timings[i].discovered, b.timings[i].discovered);
    EXPECT_EQ(a.timings[i].requested, b.timings[i].requested);
    EXPECT_EQ(a.timings[i].complete, b.timings[i].complete);
    EXPECT_EQ(a.timings[i].processed, b.timings[i].processed);
  }
}

void expect_identical_loads(const harness::CorpusResult& a,
                            const harness::CorpusResult& b) {
  ASSERT_EQ(a.loads.size(), b.loads.size());
  for (std::size_t i = 0; i < a.loads.size(); ++i) {
    expect_identical(a.loads[i], b.loads[i]);
  }
}

harness::RunOptions small_options(std::uint64_t seed = 42) {
  harness::RunOptions opt;
  opt.seed = seed;
  return opt;
}

// The paper-shaped stress case: two corpora of different sizes, strategies
// repeated across corpora, and one cell with its own seed and load count.
fleet::SweepPlan mixed_plan(const web::Corpus& a, const web::Corpus& b) {
  harness::RunOptions heavy = small_options(/*seed=*/1234);
  heavy.loads_per_page = 1;
  fleet::SweepPlan plan;
  plan.add(a, baselines::http2_baseline())
      .add(a, baselines::vroom())
      .add(b, baselines::vroom())
      .add(b, baselines::http11(), heavy);
  return plan;
}

TEST(SweepPlan, MultiCorpusBitIdenticalToStandaloneRuns) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  ScopedEnv cache_env("VROOM_RESULT_CACHE", nullptr);
  const web::Corpus a = web::Corpus::smoke(7);
  const web::Corpus b = web::Corpus::smoke(11, /*count=*/3);
  const fleet::SweepPlan plan = mixed_plan(a, b);

  // Reference: one standalone serial run_corpus per cell.
  std::vector<harness::CorpusResult> expected;
  for (const fleet::SweepCell& cell : plan.cells) {
    fleet::FleetOptions serial;
    serial.workers = 1;
    expected.push_back(
        fleet::run_corpus(*cell.corpus, cell.strategy, cell.options, serial));
  }

  for (int workers : {1, 2, 4}) {
    fleet::FleetOptions fo;
    fo.workers = workers;
    const auto results = fleet::run_plan(plan, fo);
    ASSERT_EQ(results.size(), plan.cells.size()) << "workers=" << workers;
    for (std::size_t c = 0; c < results.size(); ++c) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " cell=" + std::to_string(c));
      EXPECT_EQ(results[c].strategy, expected[c].strategy);
      expect_identical_loads(results[c], expected[c]);
    }
  }
}

TEST(SweepPlan, CustomLabelsFlowToResults) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  const web::Corpus a = web::Corpus::smoke(7, /*count=*/2);
  const web::Corpus b = web::Corpus::smoke(11, /*count=*/2);
  harness::RunOptions opt = small_options();
  opt.loads_per_page = 1;

  fleet::SweepPlan plan;
  plan.add(a, baselines::http11(), opt, "top100")
      .add(b, baselines::http11(), opt, "news_sports")
      .add(b, baselines::vroom(), opt);  // empty label → strategy name

  fleet::FleetOptions fo;
  fo.workers = 2;
  const auto results = fleet::run_plan(plan, fo);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].strategy, "top100");
  EXPECT_EQ(results[1].strategy, "news_sports");
  EXPECT_EQ(results[2].strategy, baselines::vroom().name);

  // Labels are presentation only: the loads match an unlabeled run exactly.
  fleet::FleetOptions serial;
  serial.workers = 1;
  expect_identical_loads(results[0],
                         fleet::run_corpus(a, baselines::http11(), opt, serial));
}

TEST(SweepPlan, PerCellTelemetryAddsUp) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  const web::Corpus a = web::Corpus::smoke(7);
  const web::Corpus b = web::Corpus::smoke(11, /*count=*/3);
  const fleet::SweepPlan plan = mixed_plan(a, b);

  fleet::Telemetry telemetry;
  fleet::FleetOptions fo;
  fo.workers = 4;
  fo.telemetry = &telemetry;
  (void)fleet::run_plan(plan, fo);

  const fleet::TelemetrySummary s = telemetry.summary();
  ASSERT_EQ(s.cells.size(), plan.cells.size());
  std::size_t submitted = 0, completed = 0, from_cache = 0;
  double busy = 0.0, simulated = 0.0;
  for (std::size_t c = 0; c < s.cells.size(); ++c) {
    const fleet::CellTelemetrySummary& cell = s.cells[c];
    const std::size_t expected_jobs =
        plan.cells[c].corpus->size() *
        static_cast<std::size_t>(plan.cells[c].options.loads_per_page);
    EXPECT_EQ(cell.jobs_submitted, expected_jobs) << "cell=" << c;
    EXPECT_EQ(cell.jobs_completed, expected_jobs) << "cell=" << c;
    EXPECT_EQ(cell.label, plan.cells[c].strategy.name);
    EXPECT_GT(cell.busy_seconds, 0.0);
    EXPECT_GT(cell.simulated_seconds, 0.0);
    submitted += cell.jobs_submitted;
    completed += cell.jobs_completed;
    from_cache += cell.jobs_from_cache;
    busy += cell.busy_seconds;
    simulated += cell.simulated_seconds;
  }
  EXPECT_EQ(submitted, s.jobs_submitted);
  EXPECT_EQ(completed, s.jobs_completed);
  EXPECT_EQ(from_cache, s.jobs_from_cache);
  EXPECT_DOUBLE_EQ(busy, s.busy_seconds_total);
  EXPECT_NEAR(simulated, s.simulated_seconds, 1e-9);
}

TEST(SweepPlan, WarmCacheCellDegradesPlanToOneWorker) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  const web::Corpus corpus = web::Corpus::smoke(7, /*count=*/3);
  harness::RunOptions cold = small_options();
  cold.loads_per_page = 1;
  harness::RunOptions warm = cold;
  browser::Cache shared_cache;
  warm.cache = &shared_cache;
  // Repeat loads per page so the cache populated by a page's first load is
  // visible (and order-dependent) within the cell.
  warm.loads_per_page = 3;

  fleet::SweepPlan plan;
  plan.add(corpus, baselines::http2_baseline(), cold)
      .add(corpus, baselines::http2_baseline(), warm);

  fleet::Telemetry telemetry;
  fleet::FleetOptions fo;
  fo.workers = 4;  // requested parallel, but the warm cell forbids it
  fo.telemetry = &telemetry;
  const auto results = fleet::run_plan(plan, fo);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(telemetry.summary().workers, 1);
  // The warm-cache runs actually hit the shared cache (order-dependent
  // state — the reason the fleet must not parallelize them).
  std::size_t warm_hits = 0;
  for (const auto& load : results[1].loads) warm_hits += load.cache_hits;
  EXPECT_GT(warm_hits, 0u);
}

TEST(JobOrdering, LongestFirstIsDeterministicAndDescending) {
  // 2 cells × 3 pages × 2 loads with synthetic sizes: size depends only on
  // (cell, page), so the 2 loads of a page tie and must break by identity.
  const auto jobs = fleet::JobQueue::grid(2, 3, 2);
  const auto size_of = [](const fleet::Job& j) -> std::size_t {
    const std::size_t sizes[2][3] = {{5, 9, 5}, {9, 2, 7}};
    return sizes[j.cell_index][j.page_index];
  };
  const auto a = fleet::order_longest_first(jobs, size_of);
  const auto b = fleet::order_longest_first(jobs, size_of);
  ASSERT_EQ(a.size(), jobs.size());

  // Deterministic: two invocations agree element-wise.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell_index, b[i].cell_index);
    EXPECT_EQ(a[i].page_index, b[i].page_index);
    EXPECT_EQ(a[i].load_index, b[i].load_index);
  }

  // Sizes never increase along the dispatch order.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(size_of(a[i - 1]), size_of(a[i]));
  }

  // Equal sizes break ties by (cell, page, load) ascending: the two size-9
  // pages are (cell 0, page 1) then (cell 1, page 0), loads in order.
  EXPECT_EQ(a[0].cell_index, 0);
  EXPECT_EQ(a[0].page_index, 1);
  EXPECT_EQ(a[0].load_index, 0);
  EXPECT_EQ(a[1].load_index, 1);
  EXPECT_EQ(a[2].cell_index, 1);
  EXPECT_EQ(a[2].page_index, 0);
  // Nothing lost or duplicated: it is a permutation of the input grid.
  std::vector<int> seen(jobs.size(), 0);
  for (const fleet::Job& j : a) {
    seen[static_cast<std::size_t>((j.cell_index * 3 + j.page_index) * 2 +
                                  j.load_index)]++;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(SweepPlan, EmptyPlanReturnsNoResults) {
  const fleet::SweepPlan plan;
  const auto results = fleet::run_plan(plan);
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace vroom
