#include <gtest/gtest.h>

#include <memory>

#include "baselines/strategies.h"
#include "browser/browser.h"
#include "browser/cache.h"
#include "browser/metrics.h"
#include "browser/task_queue.h"
#include "harness/experiment.h"
#include "web/page_generator.h"

namespace vroom::browser {
namespace {

TEST(TaskQueueTest, RunsTasksSerially) {
  sim::EventLoop loop;
  TaskQueue q(loop);
  sim::Time t1 = -1, t2 = -1;
  q.post(sim::ms(10), TaskPriority::Parse, [&] { t1 = loop.now(); });
  q.post(sim::ms(5), TaskPriority::Parse, [&] { t2 = loop.now(); });
  loop.run();
  EXPECT_EQ(t1, sim::ms(10));
  EXPECT_EQ(t2, sim::ms(15));
  EXPECT_EQ(q.total_busy(), sim::ms(15));
}

TEST(TaskQueueTest, PriorityPreemptsQueueNotRunningTask) {
  sim::EventLoop loop;
  TaskQueue q(loop);
  std::vector<int> order;
  q.post(sim::ms(10), TaskPriority::Parse, [&] { order.push_back(0); });
  q.post(sim::ms(10), TaskPriority::ImageDecode, [&] { order.push_back(1); });
  q.post(sim::ms(10), TaskPriority::Scheduler, [&] { order.push_back(2); });
  loop.run();
  // Task 0 was already running; then the scheduler callback outranks the
  // image decode.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(TaskQueueTest, ObserverSeesBusyTransitions) {
  sim::EventLoop loop;
  TaskQueue q(loop);
  std::vector<bool> transitions;
  q.set_state_observer([&](bool busy) { transitions.push_back(busy); });
  q.post(sim::ms(1), TaskPriority::Parse, [] {});
  loop.run();
  EXPECT_EQ(transitions, (std::vector<bool>{true, false}));
}

TEST(CacheTest, FreshnessWindow) {
  Cache c;
  c.insert("u", 100, sim::hours(1), sim::minutes(10));
  EXPECT_TRUE(c.fresh("u", sim::hours(1) + sim::minutes(5)));
  EXPECT_FALSE(c.fresh("u", sim::hours(1) + sim::minutes(15)));
  EXPECT_TRUE(c.has("u"));
  EXPECT_FALSE(c.has("v"));
}

TEST(CacheTest, UncacheableNotStored) {
  Cache c;
  c.insert("u", 100, 0, 0);
  EXPECT_FALSE(c.has("u"));
}

TEST(MetricsTest, SpeedIndexWeightsRenderTimes) {
  // Two paints: weight 1 at 1s, weight 3 at 2s -> SI = 0.25*1000 + 0.75*2000.
  const double si = speed_index_ms(
      {{sim::seconds(1), 1.0}, {sim::seconds(2), 3.0}});
  EXPECT_NEAR(si, 1750.0, 1e-6);
  EXPECT_EQ(speed_index_ms({}), 0.0);
}

// End-to-end single-page loads via the harness composer.
class BrowserLoadTest : public ::testing::Test {
 protected:
  BrowserLoadTest() : page_(web::generate_page(42, 7, web::PageClass::News)) {}

  // Resources expected to load before onload (everything outside post-onload
  // ad subtrees).
  int expected_referenced() const {
    int n = 0;
    for (const auto& r : page_.resources()) {
      if (!page_.in_post_onload_subtree(r.id)) ++n;
    }
    return n;
  }

  web::PageModel page_;
  harness::RunOptions opt_;
};

TEST_F(BrowserLoadTest, Http2LoadFinishes) {
  auto r = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.plt, sim::seconds(1));
  EXPECT_LT(r.plt, sim::seconds(60));
  EXPECT_GT(r.bytes_fetched, 100'000);
  EXPECT_GT(r.requests, 20);
}

TEST_F(BrowserLoadTest, EveryReferencedResourceCompletes) {
  auto r = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  ASSERT_TRUE(r.finished);
  int referenced = 0;
  for (const auto& t : r.timings) {
    if (!t.referenced) continue;
    ++referenced;
    EXPECT_NE(t.discovered, sim::kNever) << t.url;
    ASSERT_TRUE(t.template_id.has_value()) << t.url;
    if (!page_.resource(*t.template_id).blocks_onload) {
      continue;  // beacons may still be in flight when onload fires
    }
    EXPECT_NE(t.complete, sim::kNever) << t.url;
    EXPECT_NE(t.processed, sim::kNever) << t.url;
    EXPECT_LE(t.discovered, t.complete) << t.url;
    EXPECT_LE(t.complete, t.processed) << t.url;
  }
  // Everything outside post-onload ad subtrees should be referenced.
  EXPECT_EQ(referenced, expected_referenced());
}

TEST_F(BrowserLoadTest, MilestonesAreOrdered) {
  auto r = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  ASSERT_TRUE(r.finished);
  EXPECT_NE(r.ttfb, sim::kNever);
  EXPECT_NE(r.first_paint, sim::kNever);
  EXPECT_NE(r.dom_content_loaded, sim::kNever);
  EXPECT_GT(r.ttfb, 0);
  EXPECT_LT(r.ttfb, r.first_paint);
  EXPECT_LE(r.first_paint, r.aft);
  EXPECT_LE(r.dom_content_loaded, r.plt);
  EXPECT_LE(r.aft, r.plt);
}

TEST_F(BrowserLoadTest, AftAndSpeedIndexWithinPlt) {
  auto r = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.aft, 0);
  EXPECT_LE(r.aft, r.plt);
  EXPECT_GT(r.speed_index_ms, 0);
  EXPECT_LE(r.speed_index_ms, sim::to_ms(r.plt));
}

TEST_F(BrowserLoadTest, NetWaitPositiveUnderBaseline) {
  auto r = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.net_wait_fraction(), 0.05);
  EXPECT_LT(r.net_wait_fraction(), 0.95);
}

TEST_F(BrowserLoadTest, Http1SlowerThanHttp2) {
  auto h1 = harness::run_page_load(page_, baselines::http11(), opt_, 1);
  auto h2 = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  ASSERT_TRUE(h1.finished);
  ASSERT_TRUE(h2.finished);
  EXPECT_GT(h1.plt, h2.plt);
}

TEST_F(BrowserLoadTest, CpuBoundLowerBoundIgnoresNetwork) {
  auto r = harness::run_page_load(page_, baselines::lower_bound_cpu(), opt_, 1);
  ASSERT_TRUE(r.finished);
  // Nearly all load time is CPU work.
  EXPECT_GT(static_cast<double>(r.cpu_busy) / static_cast<double>(r.plt), 0.8);
}

TEST_F(BrowserLoadTest, NetworkBoundFetchesEverythingWithoutProcessing) {
  auto r =
      harness::run_page_load(page_, baselines::lower_bound_network(), opt_, 1);
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.cpu_busy, 0);
  int fetched = 0;
  for (const auto& t : r.timings) {
    if (t.referenced) {
      ++fetched;
      EXPECT_EQ(t.discovered, 0) << "all URLs known at t=0";
    }
  }
  EXPECT_EQ(fetched, expected_referenced());
}

TEST_F(BrowserLoadTest, LowerBoundsAreLowerThanBaseline) {
  auto h2 = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  auto netb =
      harness::run_page_load(page_, baselines::lower_bound_network(), opt_, 1);
  auto cpub =
      harness::run_page_load(page_, baselines::lower_bound_cpu(), opt_, 1);
  EXPECT_LT(netb.plt, h2.plt);
  EXPECT_LT(cpub.plt, h2.plt);
}

TEST_F(BrowserLoadTest, WarmCacheSpeedsUpRepeatLoad) {
  Cache cache;
  harness::RunOptions warm = opt_;
  warm.cache = &cache;
  auto cold = harness::run_page_load(page_, baselines::http2_baseline(), warm, 1);
  ASSERT_TRUE(cold.finished);
  EXPECT_GT(cache.size(), 10u);
  auto hot = harness::run_page_load(page_, baselines::http2_baseline(), warm, 2);
  ASSERT_TRUE(hot.finished);
  EXPECT_GT(hot.cache_hits, 10);
  EXPECT_LT(hot.plt, cold.plt);
  EXPECT_LT(hot.bytes_fetched, cold.bytes_fetched);
}

TEST_F(BrowserLoadTest, DeterministicAcrossRuns) {
  auto a = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  auto b = harness::run_page_load(page_, baselines::http2_baseline(), opt_, 1);
  EXPECT_EQ(a.plt, b.plt);
  EXPECT_EQ(a.bytes_fetched, b.bytes_fetched);
}

}  // namespace
}  // namespace vroom::browser
