// Observability layer (src/obs/): the metrics registry's aggregation must
// be order-independent (exports byte-identical at any VROOM_JOBS), the
// disabled path must leave results bit-for-bit unchanged, manifests must
// round-trip exactly, and the macro-trace auditor must pass a healthy
// deployment sweep while catching injected invariant violations.
#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "deploy/scenario.h"
#include "fleet/fleet.h"
#include "harness/experiment.h"
#include "harness/stats.h"
#include "obs/audit.h"
#include "obs/manifest.h"
#include "obs/phase_profiler.h"
#include "scoped_env.h"
#include "web/corpus.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing " << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "vroom_obs_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- Metric names ----------------------------------------------------------

TEST(MetricNames, EnforcesLayerSubsystemName) {
  EXPECT_TRUE(obs::valid_metric_name("fleet.jobs.completed"));
  EXPECT_TRUE(obs::valid_metric_name("deploy.macro.plt_us"));
  EXPECT_TRUE(obs::valid_metric_name("a.b.c.d"));
  EXPECT_FALSE(obs::valid_metric_name("fleet.jobs"));      // two segments
  EXPECT_FALSE(obs::valid_metric_name("Fleet.jobs.done"));  // uppercase
  EXPECT_FALSE(obs::valid_metric_name("fleet..done"));      // empty segment
  EXPECT_FALSE(obs::valid_metric_name(".fleet.jobs.done"));
  EXPECT_FALSE(obs::valid_metric_name("fleet.jobs.done."));
  EXPECT_FALSE(obs::valid_metric_name("fleet.jobs.done!"));
  EXPECT_FALSE(obs::valid_metric_name(""));
}

// --- Histogram bucket math -------------------------------------------------

TEST(Histogram, UnitBucketsBelowSubBucketCount) {
  for (std::int64_t v = 0; v < obs::Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(obs::Histogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(obs::Histogram::bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(obs::Histogram::bucket_upper(static_cast<int>(v)), v + 1);
  }
}

TEST(Histogram, BucketsContainTheirValuesAndStayLogLinear) {
  std::int64_t prev_index = -1;
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{31}, std::int64_t{32}, std::int64_t{33},
        std::int64_t{63}, std::int64_t{64}, std::int64_t{1000},
        std::int64_t{123456}, std::int64_t{987654321},
        std::int64_t{1} << 40, (std::int64_t{1} << 62) + 12345,
        std::numeric_limits<std::int64_t>::max()}) {
    const int i = obs::Histogram::bucket_index(v);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, obs::Histogram::kBucketCount);
    EXPECT_GE(i, prev_index) << "index must be monotone in value";
    prev_index = i;
    EXPECT_LE(obs::Histogram::bucket_lower(i), v);
    // Exclusive upper bound, except the saturated top bucket.
    if (obs::Histogram::bucket_upper(i) !=
        std::numeric_limits<std::int64_t>::max()) {
      EXPECT_LT(v, obs::Histogram::bucket_upper(i));
    }
    if (v >= obs::Histogram::kSubBuckets) {
      // Log-linear: relative width is at most 1/kSubBuckets of the lower
      // bound (~3% resolution at every magnitude).
      EXPECT_LE(obs::Histogram::bucket_width_at(v),
                obs::Histogram::bucket_lower(i) /
                        (obs::Histogram::kSubBuckets / 2) +
                    1);
    }
  }
  // The very top bucket's true upper bound (2^63) saturates to INT64_MAX
  // instead of overflowing.
  EXPECT_EQ(obs::Histogram::bucket_upper(obs::Histogram::kBucketCount - 1),
            std::numeric_limits<std::int64_t>::max());
}

TEST(Histogram, MergeIsOrderIndependentAndAssociative) {
  // One deterministic value stream, sharded three ways as a worker pool
  // might; every shard assignment and merge order must agree byte for byte.
  std::vector<std::int64_t> values;
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 3000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(static_cast<std::int64_t>(x % 50'000'000));
  }

  obs::Histogram serial;
  for (const std::int64_t v : values) serial.record(v);

  obs::Histogram a, b, c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(values[i]);
  }
  obs::Histogram left;   // (a + b) + c
  left.merge(a);
  left.merge(b);
  left.merge(c);
  obs::Histogram right;  // c + (b + a)
  right.merge(c);
  right.merge(b);
  right.merge(a);

  EXPECT_EQ(left.count(), serial.count());
  EXPECT_EQ(left.sum(), serial.sum());
  for (int i = 0; i < obs::Histogram::kBucketCount; ++i) {
    ASSERT_EQ(left.bucket_count(i), serial.bucket_count(i)) << "bucket " << i;
    ASSERT_EQ(right.bucket_count(i), serial.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(left.percentile(50), serial.percentile(50));
  EXPECT_EQ(right.percentile(99), serial.percentile(99));
}

TEST(Histogram, PercentilesAgreeWithExactSortWithinOneBucketWidth) {
  std::vector<std::int64_t> values;
  std::uint64_t x = 2463534242ULL;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Heavy-tailed-ish spread across four decades, like PLT microseconds.
    values.push_back(static_cast<std::int64_t>(x % 10'000'000) + 1000);
  }
  obs::Histogram h;
  std::vector<double> exact;
  for (const std::int64_t v : values) {
    h.record(v);
    exact.push_back(static_cast<double>(v));
  }
  std::sort(exact.begin(), exact.end());
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const double truth = harness::percentile_sorted(exact, p);
    const double approx = h.percentile(p);
    const double width = static_cast<double>(
        obs::Histogram::bucket_width_at(static_cast<std::int64_t>(truth)));
    EXPECT_NEAR(approx, truth, width)
        << "p" << p << ": hist " << approx << " vs exact " << truth;
  }
}

// --- Registry --------------------------------------------------------------

TEST(Registry, HandlesAreStableAcrossReset) {
  obs::Counter& c = obs::registry().counter("test.registry.stable");
  c.add(7);
  EXPECT_EQ(c.value(), 7);
  obs::registry().reset();
  EXPECT_EQ(c.value(), 0);  // zeroed, not invalidated
  EXPECT_EQ(&obs::registry().counter("test.registry.stable"), &c);
}

TEST(Registry, ExportSeparatesPlanesAndSortsNames) {
  obs::registry().counter("test.plane.virtual_ctr").add(3);
  obs::registry()
      .histogram("test.plane.wall_hist", obs::Plane::Wall)
      .record(1234);
  const std::string virt = obs::registry().to_exposition(obs::Plane::Virtual);
  const std::string wall = obs::registry().to_exposition(obs::Plane::Wall);
  EXPECT_NE(virt.find("vroom_test_plane_virtual_ctr 3"), std::string::npos);
  EXPECT_EQ(virt.find("wall_hist"), std::string::npos);
  EXPECT_NE(wall.find("vroom_test_plane_wall_hist_count 1"),
            std::string::npos);
  EXPECT_EQ(wall.find("virtual_ctr"), std::string::npos);

  const std::string csv = obs::registry().to_csv(obs::Plane::Virtual);
  // Name-sorted rows: the header then lexicographic metric names.
  std::vector<std::string> names;
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // header
  EXPECT_EQ(line, "name,kind,count,sum,p50,p90,p99,p999,value");
  while (std::getline(lines, line)) {
    names.push_back(line.substr(0, line.find(',')));
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, DigestTracksContent) {
  obs::Counter& c = obs::registry().counter("test.digest.ctr");
  const std::uint64_t before = obs::registry().digest(obs::Plane::Virtual);
  c.add();
  const std::uint64_t after = obs::registry().digest(obs::Plane::Virtual);
  EXPECT_NE(before, after);
  EXPECT_EQ(after, obs::registry().digest(obs::Plane::Virtual));
}

// --- Fleet integration -----------------------------------------------------

TEST(FleetMetrics, VirtualExportByteIdenticalAcrossJobCounts) {
  ScopedEnv cache("VROOM_RESULT_CACHE", nullptr);
  ScopedEnv trace("VROOM_TRACE", nullptr);
  ScopedEnv pages("VROOM_BENCH_PAGES", nullptr);
  ScopedEnv profile("VROOM_PROFILE", nullptr);
  const web::Corpus corpus = web::Corpus::smoke(7);
  harness::RunOptions opt;
  opt.seed = 42;

  std::vector<std::string> csvs, proms, manifests;
  for (const char* jobs : {"1", "2", "4"}) {
    const std::string dir = fresh_dir(std::string("jobs") + jobs);
    ScopedEnv jobs_env("VROOM_JOBS", jobs);
    ScopedEnv metrics_env("VROOM_METRICS", dir.c_str());
    fleet::run_corpus(corpus, baselines::vroom(), opt);
    csvs.push_back(read_file(dir + "/metrics.csv"));
    proms.push_back(read_file(dir + "/metrics.prom"));
    // The wall sidecar must exist but is free to differ.
    read_file(dir + "/wall_sidecar.prom");
    manifests.push_back(read_file(dir + "/manifest.json"));
  }
  for (std::size_t i = 1; i < csvs.size(); ++i) {
    EXPECT_EQ(csvs[0], csvs[i]) << "metrics.csv differs at jobs index " << i;
    EXPECT_EQ(proms[0], proms[i])
        << "metrics.prom differs at jobs index " << i;
  }
  // The export actually carries the run: one job per (page, load) and the
  // summed virtual time.
  EXPECT_NE(proms[0].find("vroom_fleet_jobs_completed " +
                          std::to_string(corpus.pages().size() *
                                         opt.loads_per_page)),
            std::string::npos)
      << proms[0];
  EXPECT_NE(proms[0].find("vroom_fleet_sim_virtual_us"), std::string::npos);
  // Manifests embed a digest of exactly that virtual exposition.
  const auto manifest = obs::Manifest::from_json(manifests[0]);
  ASSERT_TRUE(manifest.has_value());
  ASSERT_NE(manifest->find("digest.metrics_prom"), nullptr);
  EXPECT_EQ(*manifest->find("kind"), "fleet_sweep");
}

TEST(FleetMetrics, DisabledPathLeavesResultsIdentical) {
  ScopedEnv cache("VROOM_RESULT_CACHE", nullptr);
  ScopedEnv trace("VROOM_TRACE", nullptr);
  ScopedEnv pages("VROOM_BENCH_PAGES", nullptr);
  ScopedEnv jobs_env("VROOM_JOBS", "2");
  const web::Corpus corpus = web::Corpus::smoke(7);
  harness::RunOptions opt;
  opt.seed = 42;

  harness::CorpusResult with_metrics, without_metrics;
  {
    const std::string dir = fresh_dir("disabled_path");
    ScopedEnv metrics_env("VROOM_METRICS", dir.c_str());
    ScopedEnv profile_env("VROOM_PROFILE", "1");
    with_metrics = fleet::run_corpus(corpus, baselines::vroom(), opt);
  }
  {
    ScopedEnv metrics_env("VROOM_METRICS", nullptr);
    ScopedEnv profile_env("VROOM_PROFILE", nullptr);
    without_metrics = fleet::run_corpus(corpus, baselines::vroom(), opt);
  }
  ASSERT_EQ(with_metrics.loads.size(), without_metrics.loads.size());
  for (std::size_t i = 0; i < with_metrics.loads.size(); ++i) {
    EXPECT_EQ(with_metrics.loads[i].plt, without_metrics.loads[i].plt);
    EXPECT_EQ(with_metrics.loads[i].speed_index_ms,
              without_metrics.loads[i].speed_index_ms);
    EXPECT_EQ(with_metrics.loads[i].bytes_fetched,
              without_metrics.loads[i].bytes_fetched);
  }
}

// --- Phase profiler --------------------------------------------------------

TEST(PhaseProfiler, AttributesNestedSpansAsSelfTime) {
  obs::set_profiling_enabled(true);
  obs::reset_phase_profile();
  {
    obs::PhaseTimer outer(obs::Phase::WorldBuild);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      obs::PhaseTimer inner(obs::Phase::Sim);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const obs::PhaseProfile profile = obs::collect_phase_profile();
  obs::set_profiling_enabled(false);
  const double build =
      profile.seconds[static_cast<int>(obs::Phase::WorldBuild)];
  const double sim = profile.seconds[static_cast<int>(obs::Phase::Sim)];
  EXPECT_GT(build, 0.0);
  EXPECT_GT(sim, 0.0);
  // Self-time: the nested sim sleep is NOT double counted into world-build.
  EXPECT_LT(build, 2.0 * sim + 0.050);
  EXPECT_EQ(profile.spans[static_cast<int>(obs::Phase::WorldBuild)], 1);
  const std::string table = obs::format_phase_profile(profile, build + sim);
  EXPECT_NE(table.find("world-build"), std::string::npos);
  EXPECT_NE(table.find("coverage"), std::string::npos);
}

TEST(PhaseProfiler, DisabledTimersRecordNothing) {
  obs::set_profiling_enabled(false);
  obs::reset_phase_profile();
  {
    obs::PhaseTimer t(obs::Phase::Sim);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const obs::PhaseProfile profile = obs::collect_phase_profile();
  EXPECT_EQ(profile.total_seconds(), 0.0);
  EXPECT_EQ(profile.spans[static_cast<int>(obs::Phase::Sim)], 0);
}

// --- Manifest --------------------------------------------------------------

TEST(Manifest, RoundTripsTrickyEscapesExactly) {
  obs::Manifest m;
  m.set("plain", "value");
  m.set("quotes", "say \"hi\" twice");
  m.set("backslash", "C:\\path\\to\\thing");
  m.set("newline", "line1\nline2\r\ttabbed");
  m.set("control", std::string("a\x01b\x1f", 4));
  m.set("int", std::int64_t{-42});
  m.set("uint", std::uint64_t{18446744073709551615ULL});
  m.set("plain", "overwritten");  // keeps its original position

  const std::string json = m.to_json();
  const auto back = obs::Manifest::from_json(json);
  ASSERT_TRUE(back.has_value()) << json;
  EXPECT_EQ(*back, m);
  EXPECT_EQ(back->entries().front().first, "plain");
  EXPECT_EQ(back->entries().front().second, "overwritten");
  ASSERT_NE(back->find("uint"), nullptr);
  EXPECT_EQ(*back->find("uint"), "18446744073709551615");

  const std::string path =
      fresh_dir("manifest") + "/nested/dir/manifest.json";
  ASSERT_TRUE(m.write(path));
  const auto from_disk = obs::Manifest::read(path);
  ASSERT_TRUE(from_disk.has_value());
  EXPECT_EQ(*from_disk, m);
}

TEST(Manifest, RejectsMalformedInput) {
  EXPECT_FALSE(obs::Manifest::from_json("").has_value());
  EXPECT_FALSE(obs::Manifest::from_json("{\"a\":1}").has_value());  // number
  EXPECT_FALSE(obs::Manifest::from_json("{\"a\":\"b\"").has_value());
  EXPECT_FALSE(obs::Manifest::from_json("[\"a\"]").has_value());
  EXPECT_TRUE(obs::Manifest::from_json("{}").has_value());
}

// --- Deployment: histogram percentiles + macro-trace audit ----------------

deploy::ScenarioConfig small_scenario() {
  deploy::ScenarioConfig cfg;
  cfg.offered_levels = {0.2, 2.0};
  cfg.stale_ages = {sim::hours(1)};
  cfg.population.users = 200;
  return cfg;
}

TEST(DeployObs, HistogramPercentilesTrackExactOnesWithinOneBucket) {
  ScopedEnv cache("VROOM_RESULT_CACHE", nullptr);
  ScopedEnv trace("VROOM_TRACE", nullptr);
  ScopedEnv cap("VROOM_DEPLOY_ARRIVALS", "400");
  ScopedEnv window("VROOM_DEPLOY_WINDOW_HOURS", "2");
  const web::Corpus corpus = web::Corpus::smoke(42, 3);

  const deploy::DeploymentReport report =
      deploy::run_deployment(corpus, small_scenario());
  ASSERT_FALSE(report.levels.empty());
  for (const deploy::LevelReport& level : report.levels) {
    ASSERT_FALSE(level.plt_seconds.empty());
    for (const auto& [exact, hist] :
         {std::pair<double, double>{level.p50_plt_s, level.hist_p50_plt_s},
          std::pair<double, double>{level.p99_plt_s, level.hist_p99_plt_s}}) {
      const double width_s =
          static_cast<double>(obs::Histogram::bucket_width_at(
              static_cast<std::int64_t>(exact * 1e6))) /
          1e6;
      EXPECT_NEAR(hist, exact, width_s)
          << "hist " << hist << "s vs exact " << exact << "s";
    }
  }
}

TEST(DeployObs, MacroTraceAuditPassesAndCatchesInjectedViolations) {
  ScopedEnv cache("VROOM_RESULT_CACHE", nullptr);
  ScopedEnv trace("VROOM_TRACE", nullptr);
  ScopedEnv cap("VROOM_DEPLOY_ARRIVALS", "400");
  ScopedEnv window("VROOM_DEPLOY_WINDOW_HOURS", "2");
  const web::Corpus corpus = web::Corpus::smoke(42, 3);

  std::vector<trace::Recorder::Event> events;
  std::vector<std::string> track_names;
  int audited_levels = 0;
  deploy::ScenarioConfig cfg = small_scenario();
  cfg.trace_sink = [&](int level, const trace::Recorder& recorder) {
    const obs::MacroAuditReport audit = obs::audit_macro_trace(recorder);
    EXPECT_TRUE(audit.ok()) << "level " << level << ": " << audit.to_string();
    EXPECT_GT(audit.page_views, 0);
    EXPECT_GT(audit.transmissions, 0);
    EXPECT_GT(audit.origins, 0);
    ++audited_levels;
    if (level == 1) {  // the contended level: keep a copy to perturb
      events = recorder.events();
      int max_track = -1;
      for (const auto& e : events) max_track = std::max(max_track, e.track);
      for (int t = 0; t <= max_track; ++t) {
        track_names.push_back(recorder.track_name(t));
      }
    }
  };
  deploy::run_deployment(corpus, cfg);
  EXPECT_EQ(audited_levels, 2);
  ASSERT_FALSE(events.empty());

  const auto perturb_arg = [](std::string args, const char* key,
                              std::int64_t delta) {
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = args.find(needle);
    EXPECT_NE(at, std::string::npos) << args;
    std::size_t end = at + needle.size();
    while (end < args.size() &&
           (std::isdigit(static_cast<unsigned char>(args[end])) ||
            args[end] == '-')) {
      ++end;
    }
    const std::int64_t value =
        std::stoll(args.substr(at + needle.size(), end - at - needle.size())) +
        delta;
    return args.substr(0, at + needle.size()) + std::to_string(value) +
           args.substr(end);
  };

  {
    // FIFO violation: one transmission claims to start 1ms late.
    std::vector<trace::Recorder::Event> bad = events;
    for (auto& e : bad) {
      if (e.name == "deploy.origin_tx") {
        e.args_json = perturb_arg(e.args_json, "start_us", 1000);
        break;
      }
    }
    const obs::MacroAuditReport audit =
        obs::audit_macro_trace(bad, track_names);
    EXPECT_FALSE(audit.ok());
    ASSERT_FALSE(audit.errors.empty());
    EXPECT_NE(audit.errors[0].find("FIFO"), std::string::npos)
        << audit.errors[0];
  }
  {
    // Arrival-order violation: an early page view re-emitted at the end.
    std::vector<trace::Recorder::Event> bad = events;
    for (const auto& e : events) {
      if (e.name == "deploy.page_view") {
        bad.push_back(e);
        bad.back().ts -= 1;  // strictly before the stream's last arrival
        break;
      }
    }
    const obs::MacroAuditReport audit =
        obs::audit_macro_trace(bad, track_names);
    EXPECT_FALSE(audit.ok());
  }
  {
    // Conservation violation: a link summary under-reports its busy time.
    std::vector<trace::Recorder::Event> bad = events;
    for (auto& e : bad) {
      if (e.name == "deploy.link_summary") {
        e.args_json = perturb_arg(e.args_json, "busy_us", -1);
        break;
      }
    }
    const obs::MacroAuditReport audit =
        obs::audit_macro_trace(bad, track_names);
    EXPECT_FALSE(audit.ok());
    ASSERT_FALSE(audit.errors.empty());
    EXPECT_NE(audit.errors[0].find("conservation"), std::string::npos)
        << audit.errors[0];
  }
  {
    // Partial-parse laxness: a non-integer bytes value must be reported as a
    // missing arg, not silently truncated ("bytes":12.5 used to read as 12
    // and pass — the strict whole-value contract of harness/env.cpp).
    std::vector<trace::Recorder::Event> bad = events;
    for (auto& e : bad) {
      if (e.name == "deploy.origin_tx") {
        const std::string needle = "\"bytes\":";
        const std::size_t at = e.args_json.find(needle);
        ASSERT_NE(at, std::string::npos) << e.args_json;
        std::size_t end = at + needle.size();
        while (end < e.args_json.size() &&
               std::isdigit(static_cast<unsigned char>(e.args_json[end]))) {
          ++end;
        }
        e.args_json.insert(end, ".5");
        break;
      }
    }
    const obs::MacroAuditReport audit =
        obs::audit_macro_trace(bad, track_names);
    EXPECT_FALSE(audit.ok());
    ASSERT_FALSE(audit.errors.empty());
    EXPECT_NE(audit.errors[0].find("missing"), std::string::npos)
        << audit.errors[0];
  }
}

TEST(DeployObs, MetricsExportCoversMacroPassAndStaysByteIdentical) {
  ScopedEnv cache("VROOM_RESULT_CACHE", nullptr);
  ScopedEnv trace("VROOM_TRACE", nullptr);
  ScopedEnv cap("VROOM_DEPLOY_ARRIVALS", "200");
  ScopedEnv window("VROOM_DEPLOY_WINDOW_HOURS", "2");
  ScopedEnv pages("VROOM_BENCH_PAGES", nullptr);
  const web::Corpus corpus = web::Corpus::smoke(42, 3);

  std::vector<std::string> proms;
  for (const char* jobs : {"1", "4"}) {
    const std::string dir = fresh_dir(std::string("deploy_jobs") + jobs);
    ScopedEnv jobs_env("VROOM_JOBS", jobs);
    ScopedEnv metrics_env("VROOM_METRICS", dir.c_str());
    deploy::run_deployment(corpus, small_scenario());
    proms.push_back(read_file(dir + "/metrics.prom"));
    const auto manifest =
        obs::Manifest::read(dir + "/deploy_manifest.json");
    ASSERT_TRUE(manifest.has_value());
    EXPECT_EQ(*manifest->find("kind"), "deploy_scenario");
  }
  EXPECT_EQ(proms[0], proms[1]);
  EXPECT_NE(proms[0].find("vroom_deploy_macro_plt_us_count"),
            std::string::npos)
      << proms[0];
  EXPECT_NE(proms[0].find("vroom_deploy_frontend_cache_hits"),
            std::string::npos);
}

}  // namespace
}  // namespace vroom
