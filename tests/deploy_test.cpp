// Deployment-scale simulator (src/deploy/): the population's arrival
// process must match its configured rate and diurnal shape, be bit-identical
// for a given seed at any VROOM_JOBS, and the macro scenario must show real
// per-origin contention — p99 PLT degrading as offered load crosses link
// capacity.
#include "deploy/scenario.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "deploy/front_end.h"
#include "deploy/population.h"
#include "obs/metrics.h"
#include "scoped_env.h"
#include "web/corpus.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

deploy::PopulationConfig small_population() {
  deploy::PopulationConfig cfg;
  cfg.users = 500;
  cfg.window = sim::hours(24);
  cfg.mean_arrivals_per_sec = 0.5;
  return cfg;
}

TEST(Population, MeanArrivalRateMatchesConfiguredWithinTolerance) {
  const deploy::PopulationConfig cfg = small_population();
  const auto arrivals = deploy::build_population(8, cfg, 1234);
  const double expected =
      cfg.mean_arrivals_per_sec * sim::to_seconds(cfg.window);
  const auto got = static_cast<double>(arrivals.size());
  // One day at 0.5/s is ~43k draws; 5% covers Poisson noise comfortably.
  EXPECT_NEAR(got / expected, 1.0, 0.05)
      << got << " arrivals vs " << expected << " expected";
}

TEST(Population, DiurnalShapeShowsUpInHourlyCounts) {
  deploy::PopulationConfig cfg = small_population();
  cfg.mean_arrivals_per_sec = 1.0;
  const auto arrivals = deploy::build_population(8, cfg, 99);
  std::vector<int> per_hour(24, 0);
  for (const deploy::Arrival& a : arrivals) {
    ++per_hour[static_cast<std::size_t>(a.at / sim::hours(1))];
  }
  const std::vector<double> profile = deploy::default_diurnal_profile();
  // The default profile's evening peak (hour 20) carries > 4x the traffic
  // of the overnight trough (hour 3); even one sampled day separates them.
  EXPECT_GT(per_hour[20], 2 * per_hour[3])
      << "peak " << per_hour[20] << " vs trough " << per_hour[3];
  EXPECT_GT(profile[20], 4 * profile[3]);  // the shape the test leans on
}

TEST(Population, ArrivalsAreSortedCookiesAndDevicesConsistentPerUser) {
  const auto arrivals = deploy::build_population(6, small_population(), 7);
  ASSERT_FALSE(arrivals.empty());
  std::map<std::uint32_t, std::pair<std::uint8_t, bool>> traits;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1].at, arrivals[i].at);
  }
  for (const deploy::Arrival& a : arrivals) {
    const auto it = traits.find(a.user);
    if (it == traits.end()) {
      traits.emplace(a.user, std::make_pair(a.device, a.cookie));
    } else {
      EXPECT_EQ(it->second.first, a.device) << "user switched device class";
      EXPECT_EQ(it->second.second, a.cookie) << "user toggled cookie";
    }
  }
}

TEST(Population, WarmFlagsFollowRevisitsWithinTtl) {
  deploy::PopulationConfig cfg = small_population();
  cfg.users = 3;    // few users, few pages: revisits guaranteed
  cfg.warm_ttl = sim::hours(12);
  const auto arrivals = deploy::build_population(2, cfg, 11);
  std::map<std::uint64_t, sim::Time> last;
  int warm = 0;
  for (const deploy::Arrival& a : arrivals) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a.user) << 16) | a.page;
    const auto it = last.find(key);
    const bool expect_warm =
        it != last.end() && a.at - it->second <= cfg.warm_ttl;
    EXPECT_EQ(a.warm, expect_warm);
    warm += a.warm ? 1 : 0;
    last[key] = a.at;
  }
  EXPECT_GT(warm, 0) << "test setup produced no revisits";
}

TEST(Population, TruncationIsAPrefixOfTheFullStream) {
  const deploy::PopulationConfig cfg = small_population();
  const auto full = deploy::build_population(8, cfg, 5);
  const auto capped = deploy::build_population(8, cfg, 5, 100);
  ASSERT_EQ(capped.size(), 100u);
  for (std::size_t i = 0; i < capped.size(); ++i) {
    EXPECT_TRUE(capped[i] == full[i]) << "diverged at arrival " << i;
  }
}

TEST(Population, BitIdenticalDrawsAcrossJobCounts) {
  // The population generator is serial, but the contract is end-to-end:
  // the same seed must produce the same stream whatever VROOM_JOBS says.
  std::vector<std::vector<deploy::Arrival>> streams;
  for (const char* jobs : {"1", "2", "4"}) {
    ScopedEnv env("VROOM_JOBS", jobs);
    streams.push_back(deploy::build_population(8, small_population(), 42));
  }
  ASSERT_FALSE(streams[0].empty());
  for (std::size_t j = 1; j < streams.size(); ++j) {
    ASSERT_EQ(streams[0].size(), streams[j].size());
    for (std::size_t i = 0; i < streams[0].size(); ++i) {
      ASSERT_TRUE(streams[0][i] == streams[j][i])
          << "stream diverged at arrival " << i;
    }
  }
}

TEST(FrontEnd, CachesHitsAndTracksStaleness) {
  const web::Corpus corpus = web::Corpus::smoke(42, 4);
  deploy::FrontEndConfig cfg;
  // Default deadline (250ms) is meant to be tight against real pages'
  // hint counts; this test is about cache mechanics, so give generation
  // room to finish synchronously.
  cfg.serve_deadline = sim::seconds(5);
  deploy::FrontEnd fe(corpus, cfg, 42);

  const auto first = fe.serve(sim::minutes(1), 0, web::nexus6());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.source, deploy::HintSource::Fresh);
  EXPECT_GT(first.hints, 0);
  EXPECT_GE(first.staleness, 0);

  const auto second = fe.serve(sim::minutes(2), 0, web::nexus6());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.source, deploy::HintSource::Cached);
  EXPECT_EQ(second.queue_wait, 0);
  EXPECT_EQ(second.hints, first.hints);

  // Different rendering class = different cache key.
  const auto tablet = fe.serve(sim::minutes(3), 0, web::nexus10());
  EXPECT_FALSE(tablet.cache_hit);

  // After a recrawl the cached entry is stale: served immediately (SWR),
  // flagged, and refreshed for the next serve.
  const sim::Time later = sim::minutes(2) + fe.effective_recrawl_period();
  const auto stale = fe.serve(later, 0, web::nexus6());
  EXPECT_TRUE(stale.cache_hit);
  EXPECT_EQ(stale.source, deploy::HintSource::Stale);
  EXPECT_GT(stale.staleness, cfg.recrawl_period / 2);
  const auto refreshed = fe.serve(later + sim::minutes(1), 0, web::nexus6());
  EXPECT_EQ(refreshed.source, deploy::HintSource::Cached);
  EXPECT_LT(refreshed.staleness, stale.staleness);

  EXPECT_EQ(fe.stats().serves, 5);
  EXPECT_EQ(fe.stats().stale_serves, 1);
  EXPECT_GT(fe.stats().hit_ratio(), 0.5);
}

TEST(FrontEnd, SaturatedGenerationQueueServesHintless) {
  const web::Corpus corpus = web::Corpus::smoke(42, 4);
  deploy::FrontEndConfig cfg;
  cfg.gen_workers = 1;
  cfg.gen_base_cost = sim::seconds(5);
  cfg.serve_deadline = sim::ms(100);
  deploy::FrontEnd fe(corpus, cfg, 42);

  // First miss generates (and blows the deadline synchronously: cost alone
  // exceeds it), later misses find the worker busy and give up queueing.
  const auto a = fe.serve(0, 0, web::nexus6());
  EXPECT_EQ(a.source, deploy::HintSource::None);
  const auto b = fe.serve(sim::ms(1), 1, web::nexus6());
  EXPECT_EQ(b.source, deploy::HintSource::None);
  EXPECT_EQ(b.queue_wait, 0) << "hintless serves must not stall the page";
  EXPECT_EQ(fe.stats().hintless_serves, 2);
}

TEST(FrontEnd, CrawlScheduleIsPeriodicAndThroughputBound) {
  const web::Corpus corpus = web::Corpus::smoke(42, 4);
  deploy::FrontEndConfig cfg;
  cfg.recrawl_period = sim::minutes(10);
  cfg.crawl_cost = sim::minutes(30);  // 4 pages x 30min > 10min target
  deploy::FrontEnd fe(corpus, cfg, 42);
  EXPECT_EQ(fe.effective_recrawl_period(), 4 * sim::minutes(30));
  const sim::Time t = sim::hours(5);
  for (int p = 0; p < 4; ++p) {
    const sim::Time at = fe.last_crawl(t, p);
    EXPECT_LE(at, t);
    EXPECT_GT(at, t - fe.effective_recrawl_period() - sim::minutes(1));
    EXPECT_EQ(fe.last_crawl(at, p), at) << "crawl time not a fixed point";
  }
}

// The flagship contract: the whole report — fleet-built micro table, the
// pool-parallel warm column, and the concurrent per-level macro passes —
// is bit-identical at any worker count.
TEST(Scenario, ReportBitIdenticalAcrossJobCounts) {
  ScopedEnv cache(/*result cache off*/ "VROOM_RESULT_CACHE", nullptr);
  ScopedEnv trace("VROOM_TRACE", nullptr);
  ScopedEnv cap("VROOM_DEPLOY_ARRIVALS", "400");
  ScopedEnv window("VROOM_DEPLOY_WINDOW_HOURS", "2");
  const web::Corpus corpus = web::Corpus::smoke(42, 3);

  deploy::ScenarioConfig cfg;
  cfg.offered_levels = {0.2, 2.0};
  cfg.stale_ages = {sim::hours(1)};
  cfg.population.users = 200;

  std::vector<deploy::DeploymentReport> reports;
  for (const char* jobs : {"1", "2", "4"}) {
    ScopedEnv env("VROOM_JOBS", jobs);
    reports.push_back(deploy::run_deployment(corpus, cfg));
  }
  for (std::size_t j = 1; j < reports.size(); ++j) {
    const deploy::DeploymentReport& a = reports[0];
    const deploy::DeploymentReport& b = reports[j];
    ASSERT_EQ(a.levels.size(), b.levels.size());
    EXPECT_EQ(a.origin_link_mbps, b.origin_link_mbps);
    EXPECT_EQ(a.micro.plt, b.micro.plt);
    EXPECT_EQ(a.micro.warm_plt, b.micro.warm_plt);
    EXPECT_EQ(a.macro_arrivals, b.macro_arrivals);
    for (std::size_t i = 0; i < a.levels.size(); ++i) {
      EXPECT_EQ(a.levels[i].arrivals, b.levels[i].arrivals);
      EXPECT_EQ(a.levels[i].timeouts, b.levels[i].timeouts);
      // Byte-identical, not approximately equal.
      ASSERT_EQ(a.levels[i].plt_seconds, b.levels[i].plt_seconds);
      EXPECT_EQ(a.levels[i].served_per_sec, b.levels[i].served_per_sec);
      EXPECT_EQ(a.levels[i].p50_plt_s, b.levels[i].p50_plt_s);
      EXPECT_EQ(a.levels[i].p99_plt_s, b.levels[i].p99_plt_s);
      EXPECT_EQ(a.levels[i].hist_p50_plt_s, b.levels[i].hist_p50_plt_s);
      EXPECT_EQ(a.levels[i].hist_p99_plt_s, b.levels[i].hist_p99_plt_s);
      EXPECT_EQ(a.levels[i].mean_origin_wait_s,
                b.levels[i].mean_origin_wait_s);
      EXPECT_EQ(a.levels[i].max_link_utilization,
                b.levels[i].max_link_utilization);
      EXPECT_EQ(a.levels[i].front_end.cache_hits,
                b.levels[i].front_end.cache_hits);
      EXPECT_EQ(a.levels[i].front_end.stale_serves,
                b.levels[i].front_end.stale_serves);
    }
    ASSERT_EQ(a.stale_buckets.size(), b.stale_buckets.size());
    for (std::size_t i = 0; i < a.stale_buckets.size(); ++i) {
      EXPECT_EQ(a.stale_buckets[i].serves, b.stale_buckets[i].serves);
      EXPECT_EQ(a.stale_buckets[i].persistence,
                b.stale_buckets[i].persistence);
    }
  }
}

// Same contract, one layer further out: the virtual-plane metrics the run
// exports. The concurrent level passes all record into the shared registry,
// and every mutation commutes (counter adds, gauge maxima, fixed-bucket
// histogram increments), so metrics.csv / metrics.prom must match byte for
// byte whatever the worker pool looked like.
TEST(Scenario, ExportedMetricsByteIdenticalAcrossJobCounts) {
  ScopedEnv cache("VROOM_RESULT_CACHE", nullptr);
  ScopedEnv trace("VROOM_TRACE", nullptr);
  ScopedEnv cap("VROOM_DEPLOY_ARRIVALS", "300");
  ScopedEnv window("VROOM_DEPLOY_WINDOW_HOURS", "2");
  const web::Corpus corpus = web::Corpus::smoke(42, 3);

  deploy::ScenarioConfig cfg;
  cfg.offered_levels = {0.2, 2.0};
  cfg.stale_ages = {sim::hours(1)};
  cfg.population.users = 200;

  const std::string base = testing::TempDir() + "vroom_deploy_metrics_j";
  std::vector<std::string> dirs;
  for (const char* jobs : {"1", "2", "4"}) {
    const std::string dir = base + jobs;
    ScopedEnv metrics("VROOM_METRICS", dir.c_str());
    ScopedEnv env("VROOM_JOBS", jobs);
    (void)deploy::run_deployment(corpus, cfg);
    dirs.push_back(dir);
  }
  // The fleet flipped the gate on from VROOM_METRICS; leave it as later
  // tests expect to find it.
  obs::set_metrics_enabled(false);

  // Virtual plane only: the wall sidecar is timing and is allowed to vary.
  for (const char* file : {"/metrics.csv", "/metrics.prom"}) {
    const std::string first = read_file(dirs[0] + file);
    ASSERT_FALSE(first.empty()) << "missing export: " << dirs[0] + file;
    for (std::size_t j = 1; j < dirs.size(); ++j) {
      EXPECT_EQ(first, read_file(dirs[j] + file))
          << file << " diverged between jobs=1 and jobs=" << dirs[j].back();
    }
  }
}

// Sharding splits figure sweeps; inside the deployment scenario it would
// split only the embedded micro plan while every shard process re-ran the
// warm column and macro passes whole. The scenario must die loudly instead
// of producing n slightly-wrong copies.
TEST(ScenarioDeathTest, RefusesShardEnvironment) {
  const web::Corpus corpus = web::Corpus::smoke(42, 2);
  const deploy::ScenarioConfig cfg;
  {
    ScopedEnv shard("VROOM_SHARD", "0/2");
    EXPECT_DEATH((void)deploy::run_deployment(corpus, cfg), "cannot shard");
  }
  {
    ScopedEnv dir("VROOM_SHARD_DIR", testing::TempDir().c_str());
    EXPECT_DEATH((void)deploy::run_deployment(corpus, cfg), "cannot shard");
  }
}

// Contention is simulated, not approximated: pushing offered load far past
// the origin links' capacity must degrade tail PLT.
TEST(Scenario, TailPltDegradesAcrossLinkCapacity) {
  ScopedEnv cache("VROOM_RESULT_CACHE", nullptr);
  ScopedEnv trace("VROOM_TRACE", nullptr);
  ScopedEnv cap("VROOM_DEPLOY_ARRIVALS", "6000");
  ScopedEnv window("VROOM_DEPLOY_WINDOW_HOURS", "6");
  const web::Corpus corpus = web::Corpus::smoke(42, 3);

  deploy::ScenarioConfig cfg;
  cfg.offered_levels = {0.05, 8.0};
  cfg.stale_ages = {sim::hours(1)};
  cfg.population.users = 300;
  // Flat profile: the capped arrival prefix would otherwise fall in the
  // diurnal overnight trough, where even the heavy level is under capacity.
  cfg.population.diurnal.assign(24, 1.0);
  // Deeper overload (2.5x the hottest origin's link) so the ~12 simulated
  // minutes of capped traffic build an unambiguous backlog.
  cfg.origin_capacity_frac = 0.4;
  // Links sized to 60% of the hottest origin's demand at 8/s: the low
  // level idles at ~0.4% utilization, the high level queues hard.
  const deploy::DeploymentReport report =
      deploy::run_deployment(corpus, cfg);
  ASSERT_EQ(report.levels.size(), 2u);
  const deploy::LevelReport& light = report.levels[0];
  const deploy::LevelReport& heavy = report.levels[1];
  EXPECT_GT(heavy.p99_plt_s, 2.0 * light.p99_plt_s)
      << "p99 " << light.p99_plt_s << "s -> " << heavy.p99_plt_s << "s";
  EXPECT_GT(heavy.max_link_utilization, light.max_link_utilization);
  EXPECT_GT(heavy.mean_origin_wait_s, light.mean_origin_wait_s);
  // Median holds up far better than the tail — contention, not a constant.
  EXPECT_LT(heavy.p50_plt_s, heavy.p99_plt_s);
}

TEST(Scenario, MicroTableBucketsMapDecisionsSensibly) {
  deploy::MicroTable t;
  t.ages = {0, sim::hours(1), sim::hours(6)};
  EXPECT_EQ(t.bucket_for(deploy::HintSource::None, 0), 3);
  EXPECT_EQ(t.bucket_for(deploy::HintSource::Fresh, 0), 0);
  EXPECT_EQ(t.bucket_for(deploy::HintSource::Cached, sim::minutes(20)), 0);
  EXPECT_EQ(t.bucket_for(deploy::HintSource::Stale, sim::minutes(50)), 1);
  // Ties break toward the lower (fresher) bucket.
  EXPECT_EQ(t.bucket_for(deploy::HintSource::Stale, sim::minutes(30)), 0);
  EXPECT_EQ(t.bucket_for(deploy::HintSource::Stale, sim::hours(24)), 2);
}

}  // namespace
}  // namespace vroom
