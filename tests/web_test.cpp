#include <gtest/gtest.h>

#include <set>

#include "web/corpus.h"
#include "web/html_scanner.h"
#include "web/page_generator.h"
#include "web/page_instance.h"
#include "web/url.h"

namespace vroom::web {
namespace {

TEST(UrlTest, RoundTrip) {
  const std::string u = make_url("news3.com", 3, 17, 42, 2, "js");
  auto p = parse_url(u);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->domain, "news3.com");
  EXPECT_EQ(p->page_id, 3u);
  EXPECT_EQ(p->resource_id, 17u);
  EXPECT_EQ(p->version, 42u);
  EXPECT_EQ(p->user, 2u);
  EXPECT_EQ(p->ext, "js");
}

TEST(UrlTest, NoUserComponentWhenZero) {
  const std::string u = make_url("a.com", 1, 2, 3, 0, "css");
  EXPECT_EQ(u.find('u'), std::string::npos);
  auto p = parse_url(u);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->user, 0u);
}

TEST(UrlTest, MalformedInputsRejected) {
  EXPECT_FALSE(parse_url("").has_value());
  EXPECT_FALSE(parse_url("nodomainslash").has_value());
  EXPECT_FALSE(parse_url("a.com/x1/r2v3.js").has_value());
  EXPECT_FALSE(parse_url("a.com/p1/r2v3").has_value());
  EXPECT_FALSE(parse_url("a.com/p1/r2.js").has_value());
}

// Strict whole-value contract (harness/env.cpp): the extension tail must be
// exactly one alphanumeric token. The old catch-all accepted any suffix, so
// "r2v3.js.evil" parsed as ext="js.evil" with parse_ok=true.
TEST(UrlTest, ExtensionMustBeAlphanumericTail) {
  EXPECT_FALSE(parse_url("a.com/p1/r2v3.js.evil").has_value());
  EXPECT_FALSE(parse_url("a.com/p1/r2v3.js?x=1").has_value());
  EXPECT_FALSE(parse_url("a.com/p1/r2v3.js ").has_value());
  EXPECT_FALSE(parse_url("a.com/p1/r2v3.j-s").has_value());
  EXPECT_FALSE(parse_url("a.com/p1/r2v3.").has_value());
  // Digit-bearing real extensions still parse.
  auto p = parse_url("a.com/p1/r2v3.woff2");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ext, "woff2");
}

TEST(UrlTest, DomainExtraction) {
  EXPECT_EQ(url_domain("cdn5.net/p1/r2v3.jpg"), "cdn5.net");
  EXPECT_EQ(url_domain("bare"), "bare");
}

class PageTest : public ::testing::Test {
 protected:
  PageModel page_ = generate_page(42, 7, PageClass::News);
};

TEST_F(PageTest, RootIsHtmlWithNoParent) {
  EXPECT_EQ(page_.root().type, ResourceType::Html);
  EXPECT_EQ(page_.root().parent, -1);
  EXPECT_EQ(page_.root().domain, page_.first_party());
}

TEST_F(PageTest, GenerationIsDeterministic) {
  PageModel again = generate_page(42, 7, PageClass::News);
  ASSERT_EQ(page_.size(), again.size());
  for (std::size_t i = 0; i < page_.size(); ++i) {
    EXPECT_EQ(page_.resource(i).domain, again.resource(i).domain);
    EXPECT_EQ(page_.resource(i).base_size, again.resource(i).base_size);
    EXPECT_EQ(page_.resource(i).volatility, again.resource(i).volatility);
  }
}

TEST_F(PageTest, DifferentSeedsDiffer) {
  PageModel other = generate_page(43, 7, PageClass::News);
  EXPECT_NE(page_.size(), other.size());
}

TEST_F(PageTest, ParentsPrecedeChildren) {
  for (const Resource& r : page_.resources()) {
    if (r.parent >= 0) {
      EXPECT_LT(static_cast<std::uint32_t>(r.parent), r.id);
    }
  }
}

TEST_F(PageTest, IframeContentIsMarked) {
  int iframe_docs = 0;
  for (const Resource& r : page_.resources()) {
    if (r.is_iframe_doc) {
      ++iframe_docs;
      EXPECT_EQ(r.type, ResourceType::Html);
      EXPECT_TRUE(r.in_iframe);
      // Everything under an iframe doc is iframe content.
      for (std::uint32_t c : page_.children(r.id)) {
        EXPECT_TRUE(page_.resource(c).in_iframe);
      }
    }
  }
  EXPECT_GT(iframe_docs, 0);
}

TEST_F(PageTest, ChainDepthSaneAndRootDeepest) {
  const int root_depth = page_.chain_depth(0);
  EXPECT_GE(root_depth, 3);  // html -> js -> image at minimum
  EXPECT_LE(root_depth, 10);
}

TEST_F(PageTest, HintableDescendantsPruneIframes) {
  auto scope = page_.hintable_descendants(0);
  std::set<std::uint32_t> in_scope(scope.begin(), scope.end());
  for (std::uint32_t id : scope) {
    const Resource& r = page_.resource(id);
    // Iframe docs allowed; their descendants are not.
    if (r.in_iframe) {
      EXPECT_TRUE(r.is_iframe_doc) << "non-doc iframe content leaked: " << id;
    }
  }
  // Scope ordering: parents appear before their included children.
  std::set<std::uint32_t> seen;
  seen.insert(0);
  for (std::uint32_t id : scope) {
    const auto parent = static_cast<std::uint32_t>(page_.resource(id).parent);
    EXPECT_TRUE(seen.count(parent)) << "child " << id << " before parent";
    seen.insert(id);
  }
}

TEST_F(PageTest, InstanceRealizationDeterministic) {
  LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = nexus6();
  id.user = 1;
  id.nonce = 99;
  PageInstance a(page_, id), b(page_, id);
  for (std::size_t i = 0; i < page_.size(); ++i) {
    EXPECT_EQ(a.resource(i).url, b.resource(i).url);
    EXPECT_EQ(a.resource(i).size, b.resource(i).size);
  }
}

TEST_F(PageTest, PerLoadResourcesDifferAcrossNonces) {
  LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = nexus6();
  id.user = 1;
  id.nonce = 1;
  LoadIdentity id2 = id;
  id2.nonce = 2;
  PageInstance a(page_, id), b(page_, id2);
  int changed = 0, per_load = 0;
  for (const Resource& r : page_.resources()) {
    if (r.volatility == Volatility::PerLoad) {
      ++per_load;
      if (a.resource(r.id).url != b.resource(r.id).url) ++changed;
    } else {
      EXPECT_EQ(a.resource(r.id).url, b.resource(r.id).url)
          << "non-per-load resource changed across nonces";
    }
  }
  EXPECT_GT(per_load, 0);
  EXPECT_EQ(changed, per_load);
}

TEST_F(PageTest, DeviceVariantChangesUrlOnlyForConditionalSlots) {
  LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = nexus6();
  id.nonce = 5;
  LoadIdentity tablet = id;
  tablet.device = nexus10();
  PageInstance a(page_, id), b(page_, tablet);
  for (const Resource& r : page_.resources()) {
    if (r.device_axis < 0) {
      EXPECT_EQ(a.resource(r.id).url, b.resource(r.id).url);
    }
  }
}

TEST_F(PageTest, PersonalizedUrlsCarryUser) {
  LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = nexus6();
  id.user = 3;
  id.nonce = 5;
  PageInstance inst(page_, id);
  for (const Resource& r : page_.resources()) {
    auto parsed = parse_url(inst.resource(r.id).url);
    ASSERT_TRUE(parsed.has_value());
    if (r.volatility == Volatility::Personalized) {
      EXPECT_EQ(parsed->user, 3u);
    } else {
      EXPECT_EQ(parsed->user, 0u);
    }
  }
}

TEST_F(PageTest, FindByUrlAndServableSize) {
  LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = nexus6();
  id.nonce = 5;
  PageInstance inst(page_, id);
  const auto& ir = inst.resource(3);
  EXPECT_EQ(inst.find_by_url(ir.url), std::optional<std::uint32_t>(3));
  EXPECT_FALSE(inst.find_by_url("x.com/p9/r9v9.js").has_value());
  // A stale version of the same slot is servable with a plausible size.
  auto parsed = parse_url(ir.url);
  const std::string stale = make_url(parsed->domain, parsed->page_id,
                                     parsed->resource_id, parsed->version + 8,
                                     parsed->user, parsed->ext);
  auto size = servable_size(page_, stale);
  ASSERT_TRUE(size.has_value());
  EXPECT_GT(*size, 0);
}

TEST_F(PageTest, HtmlScannerSeesOnlyMarkupChildren) {
  LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = nexus6();
  id.nonce = 5;
  PageInstance inst(page_, id);
  auto links = scan_html(inst, 0);
  EXPECT_FALSE(links.empty());
  double prev = -1;
  for (const auto& l : links) {
    const Resource& r = page_.resource(l.template_id);
    EXPECT_EQ(r.parent, 0);
    EXPECT_EQ(r.via, DiscoveryVia::HtmlTag);
    EXPECT_GE(l.offset, prev);  // ordered by document position
    prev = l.offset;
  }
}

TEST(CorpusTest, ExpectedSizes) {
  EXPECT_EQ(Corpus::top100(1).size(), 100u);
  EXPECT_EQ(Corpus::news_sports(1).size(), 100u);
  EXPECT_EQ(Corpus::accuracy_set(1, 30).size(), 30u);
  EXPECT_EQ(Corpus::smoke(1).size(), 4u);
}

TEST(CorpusTest, PageIdsUnique) {
  auto c = Corpus::news_sports(1);
  std::set<std::uint32_t> ids;
  for (const auto& p : c.pages()) ids.insert(p.page_id());
  EXPECT_EQ(ids.size(), c.size());
}

}  // namespace
}  // namespace vroom::web
