// Result cache: LoadResult serialization must round-trip every field, cache
// keys must cover every knob that affects simulation, and a second fleet
// sweep with VROOM_RESULT_CACHE set must be answered from disk with
// bit-identical results at any worker count.
#include "harness/result_cache.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "fleet/fleet.h"
#include "harness/experiment.h"
#include "harness/export.h"
#include "scoped_env.h"
#include "web/corpus.h"
#include "web/page_generator.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "vroom_result_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_identical(const browser::LoadResult& a,
                      const browser::LoadResult& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.plt, b.plt);
  EXPECT_EQ(a.aft, b.aft);
  EXPECT_EQ(a.speed_index_ms, b.speed_index_ms);  // bitwise, not approx
  EXPECT_EQ(a.ttfb, b.ttfb);
  EXPECT_EQ(a.first_paint, b.first_paint);
  EXPECT_EQ(a.dom_content_loaded, b.dom_content_loaded);
  EXPECT_EQ(a.all_discovered, b.all_discovered);
  EXPECT_EQ(a.all_fetched, b.all_fetched);
  EXPECT_EQ(a.high_prio_discovered, b.high_prio_discovered);
  EXPECT_EQ(a.high_prio_fetched, b.high_prio_fetched);
  EXPECT_EQ(a.net_wait, b.net_wait);
  EXPECT_EQ(a.cpu_busy, b.cpu_busy);
  EXPECT_EQ(a.bytes_fetched, b.bytes_fetched);
  EXPECT_EQ(a.wasted_bytes, b.wasted_bytes);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  ASSERT_EQ(a.timings.size(), b.timings.size());
  for (std::size_t i = 0; i < a.timings.size(); ++i) {
    EXPECT_EQ(a.timings[i].url, b.timings[i].url);
    EXPECT_EQ(a.timings[i].template_id, b.timings[i].template_id);
    EXPECT_EQ(a.timings[i].referenced, b.timings[i].referenced);
    EXPECT_EQ(a.timings[i].processable, b.timings[i].processable);
    EXPECT_EQ(a.timings[i].in_iframe, b.timings[i].in_iframe);
    EXPECT_EQ(a.timings[i].hinted, b.timings[i].hinted);
    EXPECT_EQ(a.timings[i].pushed, b.timings[i].pushed);
    EXPECT_EQ(a.timings[i].from_cache, b.timings[i].from_cache);
    EXPECT_EQ(a.timings[i].bytes, b.timings[i].bytes);
    EXPECT_EQ(a.timings[i].discovered, b.timings[i].discovered);
    EXPECT_EQ(a.timings[i].requested, b.timings[i].requested);
    EXPECT_EQ(a.timings[i].complete, b.timings[i].complete);
    EXPECT_EQ(a.timings[i].processed, b.timings[i].processed);
  }
  ASSERT_EQ(a.trace_counters.size(), b.trace_counters.size());
  for (std::size_t i = 0; i < a.trace_counters.size(); ++i) {
    EXPECT_EQ(a.trace_counters[i], b.trace_counters[i]);
  }
}

TEST(LoadResultSerialization, RealLoadRoundTripsEveryField) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 5, web::PageClass::News);
  harness::RunOptions opt;
  // Trace so the trace_counters snapshot is non-empty and round-trips too.
  opt.trace_sink = [](const trace::Recorder&) {};
  const auto r = harness::run_page_load(page, baselines::vroom(), opt, 1);
  ASSERT_TRUE(r.finished);
  ASSERT_FALSE(r.timings.empty());
  ASSERT_FALSE(r.trace_counters.empty());

  const std::string bytes = browser::serialize_load_result(r);
  browser::LoadResult back;
  ASSERT_TRUE(browser::deserialize_load_result(bytes, &back));
  expect_identical(r, back);
}

TEST(LoadResultSerialization, SentinelAndEdgeValuesSurvive) {
  browser::LoadResult r;
  r.finished = false;
  r.plt = sim::kNever;
  r.aft = sim::kNever;
  r.speed_index_ms = 1.0 / 3.0;
  r.net_wait = -1;  // sign must survive the unsigned wire format
  browser::ResourceTiming t;
  t.url = "https://example.com/a?x=1&y=2";
  t.template_id = std::nullopt;
  t.discovered = sim::kNever;
  r.timings.push_back(t);
  r.trace_counters.emplace_back("net.bytes", INT64_MAX);

  browser::LoadResult back;
  ASSERT_TRUE(
      browser::deserialize_load_result(browser::serialize_load_result(r),
                                       &back));
  expect_identical(r, back);
  EXPECT_FALSE(back.timings[0].template_id.has_value());
}

TEST(LoadResultSerialization, RejectsCorruptBytes) {
  browser::LoadResult r;
  r.plt = sim::ms(1234);
  const std::string bytes = browser::serialize_load_result(r);
  browser::LoadResult out;
  EXPECT_FALSE(browser::deserialize_load_result("", &out));
  for (std::size_t cut : {std::size_t{1}, bytes.size() / 2,
                          bytes.size() - 1}) {
    EXPECT_FALSE(browser::deserialize_load_result(
        std::string_view(bytes).substr(0, cut), &out))
        << "truncated at " << cut;
  }
  EXPECT_FALSE(browser::deserialize_load_result(bytes + "x", &out));
  std::string wrong_version = bytes;
  wrong_version[0] = static_cast<char>(wrong_version[0] + 1);
  EXPECT_FALSE(browser::deserialize_load_result(wrong_version, &out));
}

TEST(CacheKey, CoversEveryAxisOfJobIdentity) {
  const harness::RunOptions base;
  const auto key = [&](const baselines::Strategy& s,
                       const harness::RunOptions& o, std::uint32_t page,
                       std::uint64_t nonce) {
    return harness::result_cache_key(s, o, page, nonce);
  };
  const harness::CacheKey reference = key(baselines::vroom(), base, 7, 99);
  // Deterministic, and the precomputed hash tracks the key string.
  EXPECT_EQ(reference.str(), key(baselines::vroom(), base, 7, 99).str());
  EXPECT_EQ(reference.hash(), key(baselines::vroom(), base, 7, 99).hash());

  std::set<std::string> keys;
  keys.insert(reference.str());
  harness::RunOptions seed = base;
  seed.seed = 43;
  keys.insert(key(baselines::vroom(), seed, 7, 99).str());
  harness::RunOptions when = base;
  when.when = sim::days(46);
  keys.insert(key(baselines::vroom(), when, 7, 99).str());
  harness::RunOptions user = base;
  user.user = 2;
  keys.insert(key(baselines::vroom(), user, 7, 99).str());
  harness::RunOptions device = base;
  device.device = web::nexus10();
  keys.insert(key(baselines::vroom(), device, 7, 99).str());
  harness::RunOptions network = base;
  network.network = net::NetworkConfig::threeg();
  keys.insert(key(baselines::vroom(), network, 7, 99).str());
  keys.insert(key(baselines::vroom(), base, 8, 99).str());    // page
  keys.insert(key(baselines::vroom(), base, 7, 100).str());   // nonce
  keys.insert(
      key(baselines::http2_baseline(), base, 7, 99).str());  // strategy
  EXPECT_EQ(keys.size(), 9u) << "two axes collided";
}

TEST(CacheKey, StrategyFingerprintCoversProviderKnobs) {
  std::set<std::string> prints;
  prints.insert(baselines::vroom().fingerprint());
  prints.insert(baselines::http2_baseline().fingerprint());
  prints.insert(baselines::http11().fingerprint());
  prints.insert(baselines::vroom_offline_only().fingerprint());
  prints.insert(baselines::push_all_fetch_asap().fingerprint());
  prints.insert(baselines::lower_bound_network().fingerprint());
  // A knob change without a name change must still change the fingerprint.
  baselines::Strategy tweaked = baselines::vroom();
  tweaked.provider.max_hints = 10;
  prints.insert(tweaked.fingerprint());
  baselines::Strategy crawl = baselines::vroom();
  crawl.provider.offline.spacing = sim::hours(2);
  prints.insert(crawl.fingerprint());
  EXPECT_EQ(prints.size(), 8u);
  // Stable across calls.
  EXPECT_EQ(baselines::vroom().fingerprint(), baselines::vroom().fingerprint());
}

TEST(ResultCache, GetMissesThenHitsAfterPut) {
  const std::string dir = fresh_dir("basic");
  harness::ResultCache cache(dir);
  const harness::CacheKey key =
      harness::result_cache_key(baselines::vroom(), {}, 3, 17);
  EXPECT_FALSE(cache.get(key).has_value());
  browser::LoadResult r;
  r.finished = true;
  r.plt = sim::ms(4321);
  r.requests = 12;
  cache.put(key, r);
  const auto hit = cache.get(key);
  ASSERT_TRUE(hit.has_value());
  expect_identical(r, *hit);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.errors, 0u);
}

TEST(ResultCache, CorruptAndMismatchedEntriesDegradeToMisses) {
  const std::string dir = fresh_dir("corrupt");
  harness::ResultCache cache(dir);
  const harness::CacheKey key =
      harness::result_cache_key(baselines::vroom(), {}, 3, 17);
  browser::LoadResult r;
  r.plt = sim::ms(10);
  cache.put(key, r);

  // Overwrite the entry with garbage: the next get must miss, not lie.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ofstream f(entry.path(), std::ios::binary | std::ios::trunc);
    f << "not a cache entry";
  }
  EXPECT_FALSE(cache.get(key).has_value());
  EXPECT_GE(cache.stats().errors, 1u);
}

TEST(ResultCache, FromEnvHonorsSwitch) {
  {
    ScopedEnv env("VROOM_RESULT_CACHE", nullptr);
    EXPECT_EQ(harness::ResultCache::from_env(), nullptr);
  }
  {
    ScopedEnv env("VROOM_RESULT_CACHE", "");
    EXPECT_EQ(harness::ResultCache::from_env(), nullptr);  // empty means off
  }
  {
    ScopedEnv env("VROOM_RESULT_CACHE", "/tmp/vroom-cache");
    const auto cache = harness::ResultCache::from_env();
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->dir(), "/tmp/vroom-cache");
  }
}

TEST(ResultCache, UncacheableOptionsAreRefused) {
  harness::RunOptions plain;
  EXPECT_TRUE(harness::result_cache_usable(plain));
  harness::RunOptions warm;
  browser::Cache browser_cache;
  warm.cache = &browser_cache;
  EXPECT_FALSE(harness::result_cache_usable(warm));
  harness::RunOptions traced;
  traced.trace_sink = [](const trace::Recorder&) {};
  EXPECT_FALSE(harness::result_cache_usable(traced));
  {
    ScopedEnv env("VROOM_TRACE", "/tmp/traces");
    EXPECT_FALSE(harness::result_cache_usable(plain));
  }
}

// The acceptance path: sweep, then sweep again — the second run must be
// answered ~entirely from the cache with bit-identical results, at a
// worker count different from the first run's.
TEST(ResultCache, SecondSweepHitsAndMatchesAtAnyWorkerCount) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const std::string dir = fresh_dir("sweep");
  ScopedEnv cache_env("VROOM_RESULT_CACHE", dir.c_str());

  const web::Corpus corpus = web::Corpus::smoke(7);
  const harness::RunOptions opt;
  const std::vector<baselines::Strategy> strategies = {
      baselines::http2_baseline(), baselines::vroom()};

  fleet::Telemetry cold_telemetry;
  fleet::FleetOptions cold;
  cold.workers = 4;
  cold.telemetry = &cold_telemetry;
  const auto first = fleet::run_matrix(corpus, strategies, opt, cold);
  EXPECT_EQ(cold_telemetry.summary().jobs_from_cache, 0u);

  fleet::Telemetry warm_telemetry;
  fleet::FleetOptions warm;
  warm.workers = 2;  // different pool shape must not matter
  warm.telemetry = &warm_telemetry;
  const auto second = fleet::run_matrix(corpus, strategies, opt, warm);

  const auto s = warm_telemetry.summary();
  EXPECT_EQ(s.jobs_from_cache, s.jobs_completed);  // 100% hits
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].strategy, second[i].strategy);
    ASSERT_EQ(first[i].loads.size(), second[i].loads.size());
    for (std::size_t p = 0; p < first[i].loads.size(); ++p) {
      expect_identical(first[i].loads[p], second[i].loads[p]);
    }
  }
  // And the CSV the benches would export is byte-identical.
  const auto csv = [](const harness::CorpusResult& r) {
    return harness::series_to_csv({{r.strategy, r.plt_seconds()}});
  };
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(csv(first[i]), csv(second[i]));
  }
}

// Concurrent hits and misses against one directory: workers race get/put on
// overlapping keys (half the corpus pre-seeded). Run under -DVROOM_TSAN=ON
// via the `cache`/`fleet` ctest labels.
TEST(ResultCache, ConcurrentMixedHitsAndMissesStayIdentical) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const std::string dir = fresh_dir("mixed");

  const web::Corpus corpus = web::Corpus::smoke(9, /*count=*/6);
  harness::RunOptions opt;
  opt.loads_per_page = 2;

  // Pre-seed half the jobs by sweeping a 3-page prefix corpus.
  {
    ScopedEnv cache_env("VROOM_RESULT_CACHE", dir.c_str());
    ScopedEnv prefix_env("VROOM_BENCH_PAGES", "3");
    fleet::FleetOptions fo;
    fo.workers = 2;
    fleet::run_corpus(corpus, baselines::vroom(), opt, fo);
  }

  // Reference result with the cache off.
  fleet::FleetOptions serial;
  serial.workers = 1;
  const auto reference =
      fleet::run_corpus(corpus, baselines::vroom(), opt, serial);

  // Full sweep with the half-warm cache and a wide pool.
  fleet::Telemetry telemetry;
  fleet::FleetOptions wide;
  wide.workers = 8;
  wide.telemetry = &telemetry;
  ScopedEnv cache_env("VROOM_RESULT_CACHE", dir.c_str());
  const auto mixed = fleet::run_corpus(corpus, baselines::vroom(), opt, wide);

  const auto s = telemetry.summary();
  EXPECT_EQ(s.jobs_from_cache, 6u);  // 3 pages x 2 loads pre-seeded
  EXPECT_EQ(s.jobs_completed, 12u);
  EXPECT_EQ(reference.strategy, mixed.strategy);
  ASSERT_EQ(reference.loads.size(), mixed.loads.size());
  for (std::size_t p = 0; p < reference.loads.size(); ++p) {
    expect_identical(reference.loads[p], mixed.loads[p]);
  }
}

}  // namespace
}  // namespace vroom
