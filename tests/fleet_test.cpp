// Fleet runner: parallel sweeps must be bit-identical to the serial path,
// worker-count resolution must be robust, and telemetry must add up.
#include "fleet/fleet.h"

#include <string>

#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "fleet/job_queue.h"
#include "harness/experiment.h"
#include "scoped_env.h"
#include "web/corpus.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

void expect_identical(const browser::LoadResult& a,
                      const browser::LoadResult& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.plt, b.plt);
  EXPECT_EQ(a.aft, b.aft);
  EXPECT_EQ(a.speed_index_ms, b.speed_index_ms);  // bitwise, not approx
  EXPECT_EQ(a.ttfb, b.ttfb);
  EXPECT_EQ(a.first_paint, b.first_paint);
  EXPECT_EQ(a.dom_content_loaded, b.dom_content_loaded);
  EXPECT_EQ(a.net_wait, b.net_wait);
  EXPECT_EQ(a.cpu_busy, b.cpu_busy);
  EXPECT_EQ(a.bytes_fetched, b.bytes_fetched);
  EXPECT_EQ(a.wasted_bytes, b.wasted_bytes);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  ASSERT_EQ(a.timings.size(), b.timings.size());
  for (std::size_t i = 0; i < a.timings.size(); ++i) {
    EXPECT_EQ(a.timings[i].url, b.timings[i].url);
    EXPECT_EQ(a.timings[i].bytes, b.timings[i].bytes);
    EXPECT_EQ(a.timings[i].discovered, b.timings[i].discovered);
    EXPECT_EQ(a.timings[i].requested, b.timings[i].requested);
    EXPECT_EQ(a.timings[i].complete, b.timings[i].complete);
    EXPECT_EQ(a.timings[i].processed, b.timings[i].processed);
  }
}

void expect_identical(const harness::CorpusResult& a,
                      const harness::CorpusResult& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  ASSERT_EQ(a.loads.size(), b.loads.size());
  for (std::size_t i = 0; i < a.loads.size(); ++i) {
    expect_identical(a.loads[i], b.loads[i]);
  }
}

harness::RunOptions small_options() {
  harness::RunOptions opt;
  opt.seed = 42;
  return opt;
}

TEST(JobQueue, GridOrderAndDrain) {
  auto jobs = fleet::JobQueue::grid(2, 3, 2);
  ASSERT_EQ(jobs.size(), 12u);
  // Cell-major, then page, then load — the serial visit order.
  EXPECT_EQ(jobs[0].cell_index, 0);
  EXPECT_EQ(jobs[0].page_index, 0);
  EXPECT_EQ(jobs[0].load_index, 0);
  EXPECT_EQ(jobs[1].load_index, 1);
  EXPECT_EQ(jobs[2].page_index, 1);
  EXPECT_EQ(jobs.back().cell_index, 1);
  EXPECT_EQ(jobs.back().page_index, 2);
  EXPECT_EQ(jobs.back().load_index, 1);

  fleet::JobQueue queue(jobs);
  EXPECT_EQ(queue.size(), 12u);
  std::size_t popped = 0;
  while (queue.pop().has_value()) ++popped;
  EXPECT_EQ(popped, 12u);
  EXPECT_EQ(queue.remaining(), 0u);
  EXPECT_FALSE(queue.pop().has_value());  // stays drained
}

TEST(Fleet, ParallelBitIdenticalToSerial) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  const web::Corpus corpus = web::Corpus::smoke(7);
  const harness::RunOptions opt = small_options();

  for (const auto& strategy :
       {baselines::http2_baseline(), baselines::vroom()}) {
    fleet::FleetOptions serial;
    serial.workers = 1;
    fleet::FleetOptions parallel;
    parallel.workers = 4;
    const auto a = fleet::run_corpus(corpus, strategy, opt, serial);
    const auto b = fleet::run_corpus(corpus, strategy, opt, parallel);
    expect_identical(a, b);
  }
}

TEST(Fleet, MatrixMatchesPerStrategyRuns) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  const web::Corpus corpus = web::Corpus::smoke(7);
  const harness::RunOptions opt = small_options();
  const std::vector<baselines::Strategy> strategies = {
      baselines::http2_baseline(), baselines::vroom()};

  fleet::FleetOptions fo;
  fo.workers = 3;
  const auto matrix = fleet::run_matrix(corpus, strategies, opt, fo);
  ASSERT_EQ(matrix.size(), strategies.size());
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    fleet::FleetOptions serial;
    serial.workers = 1;
    expect_identical(matrix[s],
                     fleet::run_corpus(corpus, strategies[s], opt, serial));
  }
}

TEST(Fleet, WorkerCountResolution) {
  {
    ScopedEnv env("VROOM_JOBS", nullptr);
    EXPECT_EQ(fleet::resolve_worker_count(5), 5);  // explicit request wins
    EXPECT_GE(fleet::resolve_worker_count(0), 1);  // 0 → hardware default
  }
  {
    ScopedEnv env("VROOM_JOBS", "3");
    EXPECT_EQ(fleet::resolve_worker_count(0), 3);
    EXPECT_EQ(fleet::resolve_worker_count(2), 2);  // explicit beats env
  }
  // Garbage falls back to the hardware default instead of misbehaving.
  for (const char* bad : {"", "abc", "-4", "0", "8x"}) {
    ScopedEnv env("VROOM_JOBS", bad);
    EXPECT_GE(fleet::resolve_worker_count(0), 1) << "VROOM_JOBS=" << bad;
  }
}

TEST(Fleet, RunTasksCoversEveryIndexExactlyOnce) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  for (const int workers : {1, 2, 4, 16}) {
    std::vector<std::atomic<int>> hits(103);
    for (auto& h : hits) h.store(0);
    fleet::run_tasks(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); }, workers);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << workers
                                   << " workers";
    }
  }
}

TEST(Fleet, RunTasksSerialPathPreservesIndexOrder) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  std::vector<std::size_t> order;
  fleet::run_tasks(8, [&](std::size_t i) { order.push_back(i); },
                   /*workers=*/1);
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  // Zero tasks is a no-op at any worker count, not a crash or a hang.
  fleet::run_tasks(0, [&](std::size_t) { FAIL() << "ran a task"; }, 4);
  // More workers than tasks must not invent extra calls.
  std::atomic<int> calls{0};
  fleet::run_tasks(2, [&](std::size_t) { calls.fetch_add(1); }, 16);
  EXPECT_EQ(calls.load(), 2);
}

TEST(Fleet, RunTasksHonorsVroomJobsEnv) {
  // workers=0 resolves through the same VROOM_JOBS path the sweeps use;
  // with jobs=1 the claim loop must degrade to the in-order serial path.
  ScopedEnv env("VROOM_JOBS", "1");
  std::vector<std::size_t> order;
  fleet::run_tasks(5, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Fleet, MoreWorkersThanJobsStillIdentical) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  const web::Corpus corpus = web::Corpus::smoke(7, /*count=*/2);
  harness::RunOptions opt = small_options();
  opt.loads_per_page = 1;  // 2 jobs total

  fleet::FleetOptions serial;
  serial.workers = 1;
  fleet::FleetOptions oversized;
  oversized.workers = 64;
  fleet::Telemetry telemetry;
  oversized.telemetry = &telemetry;
  const auto a = fleet::run_corpus(corpus, baselines::vroom(), opt, serial);
  const auto b = fleet::run_corpus(corpus, baselines::vroom(), opt, oversized);
  expect_identical(a, b);
  // The pool is clamped to the job count.
  EXPECT_EQ(telemetry.summary().workers, 2);
}

TEST(Fleet, TelemetryCountersAddUp) {
  ScopedEnv jobs_env("VROOM_JOBS", nullptr);
  ScopedEnv pages_env("VROOM_BENCH_PAGES", nullptr);
  const web::Corpus corpus = web::Corpus::smoke(7);
  const harness::RunOptions opt = small_options();
  const std::vector<baselines::Strategy> strategies = {
      baselines::http2_baseline(), baselines::vroom()};

  fleet::Telemetry telemetry;
  fleet::FleetOptions fo;
  fo.workers = 4;
  fo.telemetry = &telemetry;
  const auto results = fleet::run_matrix(corpus, strategies, opt, fo);

  const std::size_t expected_jobs = strategies.size() * corpus.size() *
                                    static_cast<std::size_t>(opt.loads_per_page);
  const fleet::TelemetrySummary s = telemetry.summary();
  EXPECT_EQ(s.jobs_submitted, expected_jobs);
  EXPECT_EQ(s.jobs_completed, s.jobs_submitted);
  EXPECT_EQ(s.workers, 4);
  EXPECT_EQ(s.worker_busy_seconds.size(), 4u);
  EXPECT_GE(s.peak_in_flight, 1);
  EXPECT_LE(s.peak_in_flight, s.workers);
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_GT(s.busy_seconds_total, 0.0);
  EXPECT_GT(s.jobs_per_second, 0.0);
  EXPECT_GT(s.simulated_seconds, 0.0);
  EXPECT_LE(s.job_seconds.p25, s.job_seconds.p50);
  EXPECT_LE(s.job_seconds.p50, s.job_seconds.p75);
  // Per-worker busy times sum to the total the summary reports.
  double busy = 0;
  for (double w : s.worker_busy_seconds) busy += w;
  EXPECT_DOUBLE_EQ(busy, s.busy_seconds_total);
  // And the sweep still produced one median load per page per strategy.
  ASSERT_EQ(results.size(), strategies.size());
  for (const auto& r : results) EXPECT_EQ(r.loads.size(), corpus.size());
}

TEST(MedianSelection, TiedPltsResolveToLowerLoadIndex) {
  // Both the serial path and the fleet hand select_median_load the loads in
  // load-index order, so a *stable* sort makes PLT ties resolve to the lower
  // load index on every path and at any worker count. The previous unstable
  // std::sort left the returned load implementation-defined.
  std::vector<browser::LoadResult> tied(3);
  for (int i = 0; i < 3; ++i) {
    tied[static_cast<std::size_t>(i)].finished = true;
    tied[static_cast<std::size_t>(i)].plt = sim::ms(1000);
    tied[static_cast<std::size_t>(i)].bytes_fetched = i;  // load-index marker
  }
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(harness::select_median_load(tied).bytes_fetched, 1);
  }

  // Partial tie: after sorting, the median slot falls on the tied value —
  // stability keeps the earlier load there.
  std::vector<browser::LoadResult> partial(3);
  partial[0].plt = sim::ms(2000);
  partial[0].bytes_fetched = 0;
  partial[1].plt = sim::ms(1000);
  partial[1].bytes_fetched = 1;
  partial[2].plt = sim::ms(2000);
  partial[2].bytes_fetched = 2;
  // Sorted stably: [1000 (load 1), 2000 (load 0), 2000 (load 2)].
  EXPECT_EQ(harness::select_median_load(partial).bytes_fetched, 0);

  // Five-way with duplicates on both sides of the median.
  std::vector<browser::LoadResult> five(5);
  const sim::Time plts[5] = {sim::ms(7), sim::ms(5), sim::ms(7), sim::ms(5),
                             sim::ms(7)};
  for (int i = 0; i < 5; ++i) {
    five[static_cast<std::size_t>(i)].plt = plts[i];
    five[static_cast<std::size_t>(i)].bytes_fetched = i;
  }
  // Sorted stably: [5 (1), 5 (3), 7 (0), 7 (2), 7 (4)] → median = load 0.
  EXPECT_EQ(harness::select_median_load(five).bytes_fetched, 0);
}

TEST(Harness, LoadNonceDerivationDoesNotCollideOnXorPairs) {
  // The historical `seed ^ page_id` fold gave (seed, page) and
  // (seed ^ d, page ^ d) identical nonces for every d. The two-stage
  // derivation must separate exactly those pairs.
  const std::uint64_t seed = 42;
  const std::uint32_t page = 7;
  for (std::uint32_t d : {1u, 3u, 0x20u, 0xffu}) {
    EXPECT_NE(harness::derive_load_nonce(seed, page, 0),
              harness::derive_load_nonce(seed ^ d, page ^ d, 0))
        << "d=" << d;
  }
  // Still deterministic and distinct per load index.
  EXPECT_EQ(harness::derive_load_nonce(seed, page, 1),
            harness::derive_load_nonce(seed, page, 1));
  EXPECT_NE(harness::derive_load_nonce(seed, page, 0),
            harness::derive_load_nonce(seed, page, 1));
}

TEST(Harness, EffectivePageCountValidation) {
  {
    ScopedEnv env("VROOM_BENCH_PAGES", nullptr);
    EXPECT_EQ(harness::effective_page_count(10), 10);
  }
  {
    ScopedEnv env("VROOM_BENCH_PAGES", "4");
    EXPECT_EQ(harness::effective_page_count(10), 4);
    EXPECT_EQ(harness::effective_page_count(2), 2);  // cap never raises
  }
  // Garbage and non-positive values are rejected (with a stderr warning)
  // instead of silently truncating the corpus.
  for (const char* bad : {"", "abc", "-3", "0", "7pages", "1e3"}) {
    ScopedEnv env("VROOM_BENCH_PAGES", bad);
    EXPECT_EQ(harness::effective_page_count(10), 10)
        << "VROOM_BENCH_PAGES=" << bad;
  }
}

}  // namespace
}  // namespace vroom
