// Behavioural tests of the staged client scheduler (§5.2) and the HTTP/2
// writer disciplines, observed through real page loads.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/strategies.h"
#include "core/hint_generator.h"
#include "harness/experiment.h"
#include "http/http2.h"
#include "net/tcp.h"
#include "web/page_generator.h"

namespace vroom {
namespace {

// ---------- HTTP/2 writer disciplines ----------

class WriterDisciplineTest : public ::testing::Test {
 protected:
  WriterDisciplineTest() : net_(loop_, net::NetworkConfig::lte(), 1) {
    net_.set_rtt("a.com", sim::ms(100));
  }
  sim::EventLoop loop_;
  net::Network net_;
};

TEST_F(WriterDisciplineTest, RoundRobinLetsHighPriorityOvertakeBulk) {
  net::TcpConnection conn(net_, "a.com", false,
                          net::WriterDiscipline::RoundRobin);
  sim::Time bulk_done = -1, urgent_done = -1;
  conn.connect([&] {
    net::TcpConnection::Chunk bulk;
    bulk.bytes = 400'000;
    bulk.on_delivered = [&] { bulk_done = loop_.now(); };
    conn.send_chunk(1, /*priority=*/0, std::move(bulk));
    net::TcpConnection::Chunk urgent;
    urgent.bytes = 20'000;
    urgent.on_delivered = [&] { urgent_done = loop_.now(); };
    conn.send_chunk(2, /*priority=*/2, std::move(urgent));
  });
  loop_.run();
  EXPECT_LT(urgent_done, bulk_done);
}

TEST_F(WriterDisciplineTest, OrderedDrainsStreamsInFirstWriteOrder) {
  // Responses smaller than the per-stream flow-control window drain in
  // strict first-write order, regardless of priority.
  net::TcpConnection conn(net_, "a.com", false,
                          net::WriterDiscipline::Ordered);
  sim::Time first_done = -1, urgent_done = -1;
  conn.connect([&] {
    net::TcpConnection::Chunk first;
    first.bytes = 40'000;
    first.on_delivered = [&] { first_done = loop_.now(); };
    conn.send_chunk(1, /*priority=*/0, std::move(first));
    net::TcpConnection::Chunk urgent;
    urgent.bytes = 20'000;
    urgent.on_delivered = [&] { urgent_done = loop_.now(); };
    conn.send_chunk(2, /*priority=*/2, std::move(urgent));
  });
  loop_.run();
  EXPECT_GT(urgent_done, first_done);
}

TEST_F(WriterDisciplineTest, FlowControlLetsBlockedOrderedStreamYield) {
  // A response larger than the 64 KB stream window stalls awaiting
  // WINDOW_UPDATEs; the ordered writer fills the gap with the next stream
  // rather than idling the connection.
  net::TcpConnection conn(net_, "a.com", false,
                          net::WriterDiscipline::Ordered);
  sim::Time bulk_done = -1, second_done = -1;
  conn.connect([&] {
    net::TcpConnection::Chunk bulk;
    bulk.bytes = 400'000;
    bulk.on_delivered = [&] { bulk_done = loop_.now(); };
    conn.send_chunk(1, 0, std::move(bulk));
    net::TcpConnection::Chunk second;
    second.bytes = 20'000;
    second.on_delivered = [&] { second_done = loop_.now(); };
    conn.send_chunk(2, 0, std::move(second));
  });
  loop_.run();
  EXPECT_LT(second_done, bulk_done);

  // With flow control off, strict ordering returns.
  sim::EventLoop loop2;
  net::NetworkConfig cfg = net::NetworkConfig::lte();
  cfg.h2_stream_window_bytes = 0;
  net::Network net2(loop2, cfg, 1);
  net2.set_rtt("a.com", sim::ms(100));
  net::TcpConnection strict(net2, "a.com", false,
                            net::WriterDiscipline::Ordered);
  sim::Time b2 = -1, s2 = -1;
  strict.connect([&] {
    net::TcpConnection::Chunk bulk;
    bulk.bytes = 400'000;
    bulk.on_delivered = [&] { b2 = loop2.now(); };
    strict.send_chunk(1, 0, std::move(bulk));
    net::TcpConnection::Chunk second;
    second.bytes = 20'000;
    second.on_delivered = [&] { s2 = loop2.now(); };
    strict.send_chunk(2, 0, std::move(second));
  });
  loop2.run();
  EXPECT_GT(s2, b2);
}

TEST_F(WriterDisciplineTest, RoundRobinSharesBandwidthWithinTier) {
  net::TcpConnection conn(net_, "a.com", false,
                          net::WriterDiscipline::RoundRobin);
  sim::Time a_done = -1, b_done = -1;
  conn.connect([&] {
    net::TcpConnection::Chunk a;
    a.bytes = 200'000;
    a.on_delivered = [&] { a_done = loop_.now(); };
    conn.send_chunk(1, 0, std::move(a));
    net::TcpConnection::Chunk b;
    b.bytes = 200'000;
    b.on_delivered = [&] { b_done = loop_.now(); };
    conn.send_chunk(2, 0, std::move(b));
  });
  loop_.run();
  // Equal-priority equal-size streams interleave: completions land close
  // together rather than one strictly after the other.
  EXPECT_LT(std::llabs(a_done - b_done), sim::ms(60));
}

// ---------- staged scheduling observed on a real load ----------

struct HintedTimes {
  std::vector<sim::Time> preload_requested;
  std::vector<sim::Time> preload_complete;
  std::vector<sim::Time> semi_requested;
  std::vector<sim::Time> low_requested;
};

HintedTimes collect_hinted_times(const web::PageModel& page,
                                 const browser::LoadResult& r) {
  HintedTimes out;
  for (const auto& t : r.timings) {
    if (!t.hinted || t.requested == sim::kNever) continue;
    if (!t.template_id) continue;  // ghost fetch: class unknown client-side
    const web::Resource& res = page.resource(*t.template_id);
    switch (core::classify_hint(res)) {
      case http::HintPriority::Preload:
        out.preload_requested.push_back(t.requested);
        if (t.complete != sim::kNever) {
          out.preload_complete.push_back(t.complete);
        }
        break;
      case http::HintPriority::SemiImportant:
        out.semi_requested.push_back(t.requested);
        break;
      case http::HintPriority::Unimportant:
        out.low_requested.push_back(t.requested);
        break;
    }
  }
  return out;
}

class StagedSchedulingTest : public ::testing::Test {
 protected:
  StagedSchedulingTest()
      : page_(web::generate_page(42, 4, web::PageClass::News)) {}
  web::PageModel page_;
  harness::RunOptions opt_;
};

TEST_F(StagedSchedulingTest, PreloadClassGoesOutFirst) {
  auto r = harness::run_page_load(page_, baselines::vroom(), opt_, 1);
  auto times = collect_hinted_times(page_, r);
  ASSERT_FALSE(times.preload_requested.empty());
  ASSERT_FALSE(times.low_requested.empty());
  const sim::Time first_preload = *std::min_element(
      times.preload_requested.begin(), times.preload_requested.end());
  const sim::Time first_low = *std::min_element(times.low_requested.begin(),
                                                times.low_requested.end());
  EXPECT_LT(first_preload, first_low);
}

TEST_F(StagedSchedulingTest, SemiWaitsForPreloadCompletion) {
  auto r = harness::run_page_load(page_, baselines::vroom(), opt_, 1);
  auto times = collect_hinted_times(page_, r);
  ASSERT_FALSE(times.semi_requested.empty());
  ASSERT_FALSE(times.preload_complete.empty());
  // Hint-scheduled semi-important fetches only start once every known
  // preload-class resource has been received. Semi resources discovered by
  // the parser itself bypass staging, so compare against the earliest
  // *hint-driven* semi request.
  const sim::Time last_preload_done = *std::max_element(
      times.preload_complete.begin(), times.preload_complete.end());
  const sim::Time last_semi = *std::max_element(times.semi_requested.begin(),
                                                times.semi_requested.end());
  EXPECT_GE(last_semi, last_preload_done - sim::ms(1));
}

TEST_F(StagedSchedulingTest, FetchAsapIssuesEverythingImmediately) {
  auto r =
      harness::run_page_load(page_, baselines::push_all_fetch_asap(), opt_, 1);
  auto times = collect_hinted_times(page_, r);
  ASSERT_FALSE(times.low_requested.empty());
  // With the strawman, low-priority hinted fetches start while the root's
  // body is barely finished — far earlier than Vroom's staged schedule.
  auto staged = harness::run_page_load(page_, baselines::vroom(), opt_, 1);
  auto staged_times = collect_hinted_times(page_, staged);
  ASSERT_FALSE(staged_times.low_requested.empty());
  const sim::Time asap_first_low = *std::min_element(
      times.low_requested.begin(), times.low_requested.end());
  const sim::Time staged_first_low =
      *std::min_element(staged_times.low_requested.begin(),
                        staged_times.low_requested.end());
  EXPECT_LT(asap_first_low, staged_first_low);
}

TEST_F(StagedSchedulingTest, HintsMarkDiscoveryTimes) {
  auto r = harness::run_page_load(page_, baselines::vroom(), opt_, 1);
  int early_discoveries = 0;
  for (const auto& t : r.timings) {
    if (t.hinted && t.referenced && t.discovered < sim::seconds(2)) {
      ++early_discoveries;
    }
  }
  EXPECT_GT(early_discoveries, 10);
}

TEST_F(StagedSchedulingTest, PushedResourcesNotRefetched) {
  auto r = harness::run_page_load(page_, baselines::vroom(), opt_, 1);
  int pushed = 0;
  for (const auto& t : r.timings) {
    if (t.pushed) ++pushed;
  }
  EXPECT_GT(pushed, 0);
  // Requests counter counts client-issued fetches; pushed resources arrive
  // without one, so requests < total resources seen.
  EXPECT_LT(r.requests, static_cast<int>(r.timings.size()));
}

}  // namespace
}  // namespace vroom
