#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "sim/random.h"
#include "sim/time.h"

namespace vroom::sim {
namespace {

TEST(TimeTest, Conversions) {
  EXPECT_EQ(ms(1), 1000);
  EXPECT_EQ(seconds(1), 1'000'000);
  EXPECT_EQ(hours(1), 3'600'000'000LL);
  EXPECT_EQ(days(2), 2 * 86'400'000'000LL);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_EQ(from_seconds(1.5), 1'500'000);
  EXPECT_EQ(from_seconds(0.0000005), 1);  // rounds to nearest microsecond
}

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(ms(30), [&] { order.push_back(3); });
  loop.schedule_at(ms(10), [&] { order.push_back(1); });
  loop.schedule_at(ms(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), ms(30));
}

TEST(EventLoopTest, SimultaneousEventsRunInInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(ms(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, ScheduleInIsRelative) {
  EventLoop loop;
  Time fired = -1;
  loop.schedule_at(ms(10), [&] {
    loop.schedule_in(ms(25), [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, ms(35));
}

TEST(EventLoopTest, PastSchedulingClampsToNow) {
  EventLoop loop;
  Time fired = -1;
  loop.schedule_at(ms(10), [&] {
    loop.schedule_at(ms(1), [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, ms(10));
}

TEST(EventLoopTest, CancelDropsCallback) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.schedule_at(ms(10), [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, RunUntilStopsEarly) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(ms(10), [&] { ++count; });
  loop.schedule_at(ms(50), [&] { ++count; });
  loop.run(ms(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) loop.schedule_in(ms(1), chain);
  };
  loop.schedule_in(ms(1), chain);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), ms(100));
}

TEST(RandomTest, DeterministicPerSeed) {
  Rng a(123, "x"), b(123, "x"), c(123, "y");
  const double va = a.uniform(), vb = b.uniform(), vc = c.uniform();
  EXPECT_DOUBLE_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(RandomTest, DeriveSeedDecorrelatesPurposes) {
  EXPECT_NE(derive_seed(1, "a"), derive_seed(1, "b"));
  EXPECT_NE(derive_seed(1, "a"), derive_seed(2, "a"));
  EXPECT_EQ(derive_seed(7, "p"), derive_seed(7, "p"));
}

TEST(RandomTest, UniformIntInRange) {
  Rng rng(99, "t");
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RandomTest, LognormalMedianApproximatelyCorrect) {
  Rng rng(4, "ln");
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.lognormal(1000, 0.8));
  std::sort(v.begin(), v.end());
  const double med = v[v.size() / 2];
  EXPECT_NEAR(med, 1000, 60);
}

TEST(RandomTest, ChanceExtremes) {
  Rng rng(5, "c");
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RandomTest, WeightedRespectsZeroWeight) {
  Rng rng(6, "w");
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(RandomTest, ParetoIsCapped) {
  Rng rng(7, "p");
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.pareto(10, 1.2, 500);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 500);
  }
}

}  // namespace
}  // namespace vroom::sim
