#include <gtest/gtest.h>

#include "server/origin_server.h"
#include "server/replay_store.h"
#include "web/page_generator.h"

namespace vroom::server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : page_(web::generate_page(42, 7, web::PageClass::News)) {
    id_.wall_time = sim::days(45);
    id_.device = web::nexus6();
    id_.user = 1;
    id_.nonce = 9;
    instance_ = std::make_unique<web::PageInstance>(page_, id_);
    store_ = std::make_unique<ReplayStore>(*instance_);
  }

  http::Request request_for(std::uint32_t rid) const {
    http::Request req;
    req.url = instance_->resource(rid).url;
    req.user = id_.user;
    req.device = id_.device;
    return req;
  }

  web::PageModel page_;
  web::LoadIdentity id_;
  std::unique_ptr<web::PageInstance> instance_;
  std::unique_ptr<ReplayStore> store_;
};

TEST_F(ServerTest, StoreResolvesCurrentUrls) {
  auto e = store_->lookup(instance_->resource(0).url);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->current);
  EXPECT_EQ(e->template_id, 0u);
  EXPECT_EQ(e->type, web::ResourceType::Html);
  EXPECT_EQ(e->size, instance_->resource(0).size);
}

TEST_F(ServerTest, StoreResolvesStaleVersions) {
  auto parsed = web::parse_url(instance_->resource(4).url);
  const std::string stale =
      web::make_url(parsed->domain, parsed->page_id, parsed->resource_id,
                    parsed->version + 16, parsed->user, parsed->ext);
  auto e = store_->lookup(stale);
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->current);
  EXPECT_GT(e->size, 0);
}

TEST_F(ServerTest, StoreRejectsForeignUrls) {
  EXPECT_FALSE(store_->lookup("other.com/p999/r0v0.html").has_value());
}

TEST_F(ServerTest, OriginServesBody) {
  OriginServer s(page_.first_party(), *store_);
  auto reply = s.handle(request_for(0));
  EXPECT_EQ(reply.body_bytes, instance_->resource(0).size);
  EXPECT_TRUE(reply.hints.empty());
  EXPECT_TRUE(reply.pushes.empty());
  EXPECT_EQ(s.requests_served(), 1);
}

TEST_F(ServerTest, Conditional304OnlyForCurrentVersion) {
  OriginServer s(page_.first_party(), *store_);
  http::Request req = request_for(0);
  req.conditional = true;
  EXPECT_TRUE(s.handle(req).not_modified);

  auto parsed = web::parse_url(req.url);
  req.url = web::make_url(parsed->domain, parsed->page_id, parsed->resource_id,
                          parsed->version + 8, parsed->user, parsed->ext);
  EXPECT_FALSE(s.handle(req).not_modified);
}

// Provider that advises fixed pushes/hints, to test origin-side filtering.
class FixedProvider : public DependencyProvider {
 public:
  DependencyAdvice advise(const std::string&, const http::Request&) override {
    return advice;
  }
  DependencyAdvice advice;
};

TEST_F(ServerTest, ProviderConsultedOnlyForHtml) {
  OriginServer s(page_.first_party(), *store_);
  FixedProvider provider;
  provider.advice.hints.add("x.com/p1/r1v1.js", http::HintPriority::Preload,
                            0);
  s.set_provider(&provider);

  auto html_reply = s.handle(request_for(0));
  EXPECT_FALSE(html_reply.hints.empty());

  // Find a non-HTML resource on the first-party domain.
  for (const auto& r : page_.resources()) {
    if (r.domain == page_.first_party() && r.type != web::ResourceType::Html) {
      auto reply = s.handle(request_for(r.id));
      EXPECT_TRUE(reply.hints.empty());
      break;
    }
  }
}

TEST_F(ServerTest, CrossDomainPushesFiltered) {
  OriginServer s(page_.first_party(), *store_);
  FixedProvider provider;
  provider.advice.pushes = {
      http::PushItem{"evil.com/p7/r1v1.js", 100},
      http::PushItem{web::make_url(page_.first_party(), 7, 1, 1, 0, "js"),
                     100}};
  s.set_provider(&provider);
  auto reply = s.handle(request_for(0));
  ASSERT_EQ(reply.pushes.size(), 1u);
  EXPECT_EQ(web::url_domain(reply.pushes[0].url), page_.first_party());
}

TEST_F(ServerTest, CachedContentNotPushed) {
  OriginServer s(page_.first_party(), *store_);
  FixedProvider provider;
  const std::string local =
      web::make_url(page_.first_party(), 7, 1, 1, 0, "js");
  provider.advice.pushes = {http::PushItem{local, 100}};
  s.set_provider(&provider);
  s.set_cache_digest([&](const std::string& url) { return url == local; });
  auto reply = s.handle(request_for(0));
  EXPECT_TRUE(reply.pushes.empty());
}

TEST_F(ServerTest, FarmLazilyCreatesAndConfigures) {
  ServerFarm farm(*store_);
  FixedProvider provider;
  provider.advice.hints.add("x.com/p1/r1v1.js", http::HintPriority::Preload,
                            0);
  farm.set_provider_for_all(&provider);
  OriginServer& fp = farm.server(page_.first_party());
  EXPECT_FALSE(fp.handle(request_for(0)).hints.empty());
  // Same object returned on re-lookup.
  EXPECT_EQ(&farm.server(page_.first_party()), &fp);
}

TEST_F(ServerTest, FirstPartyOnlyAidLeavesThirdPartiesPlain) {
  ServerFarm farm(*store_);
  FixedProvider provider;
  provider.advice.hints.add("x.com/p1/r1v1.js", http::HintPriority::Preload,
                            0);
  farm.set_provider_first_party_only(&provider);

  // Find an iframe doc hosted by a third party.
  for (const auto& r : page_.resources()) {
    if (r.is_iframe_doc && !page_.is_first_party_org(r.domain)) {
      OriginServer& third = farm.server(r.domain);
      auto reply = third.handle(request_for(r.id));
      EXPECT_TRUE(reply.hints.empty());
      break;
    }
  }
  OriginServer& fp = farm.server(page_.first_party());
  EXPECT_FALSE(fp.handle(request_for(0)).hints.empty());
}

}  // namespace
}  // namespace vroom::server
