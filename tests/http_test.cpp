#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "http/connection_pool.h"
#include "http/http1.h"
#include "http/http2.h"

namespace vroom::http {
namespace {

// A scripted origin for protocol tests.
class FakeServer : public RequestHandler {
 public:
  ServerReply handle(const Request& req) override {
    requests.push_back(req.url);
    ServerReply r = next;
    if (req.conditional && serve_304) r.not_modified = true;
    return r;
  }
  std::vector<std::string> requests;
  ServerReply next = [] {
    ServerReply r;
    r.body_bytes = 10'000;
    return r;
  }();
  bool serve_304 = false;
};

class HttpTest : public ::testing::Test {
 protected:
  HttpTest() : net_(loop_, net::NetworkConfig::lte(), 1) {
    net_.set_rtt("a.com", sim::ms(100));
  }
  sim::EventLoop loop_;
  net::Network net_;
  FakeServer server_;
};

TEST_F(HttpTest, Http2SingleFetchDeliversHeadersThenBody) {
  Http2Session session(net_, "a.com", server_, {});
  sim::Time headers_at = -1, body_at = -1;
  ResponseHandlers h;
  h.on_headers = [&](const ResponseMeta& m) {
    headers_at = loop_.now();
    EXPECT_EQ(m.body_bytes, 10'000);
  };
  h.on_complete = [&](const ResponseMeta&) { body_at = loop_.now(); };
  Request req;
  req.url = "a.com/p1/r0v1.html";
  session.fetch(req, std::move(h));
  loop_.run();
  EXPECT_GT(headers_at, sim::ms(225));  // after DNS + TCP + TLS
  EXPECT_GT(body_at, headers_at);
  EXPECT_EQ(server_.requests.size(), 1u);
}

TEST_F(HttpTest, Http2MultiplexesOnOneConnection) {
  Http2Session session(net_, "a.com", server_, {});
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    Request req;
    req.url = "a.com/p1/r" + std::to_string(i) + "v1.js";
    ResponseHandlers h;
    h.on_complete = [&](const ResponseMeta&) { ++done; };
    session.fetch(req, std::move(h));
  }
  loop_.run();
  EXPECT_EQ(done, 8);
  // All eight went to the same origin object with no per-request handshake:
  // total bytes ~ 8 * (10350) and far less wall time than 8 serial setups.
  EXPECT_EQ(server_.requests.size(), 8u);
}

TEST_F(HttpTest, Http2ResponsesArriveInRequestOrder) {
  Http2Session session(net_, "a.com", server_, {});
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    Request req;
    req.url = "a.com/p1/r" + std::to_string(i) + "v1.js";
    ResponseHandlers h;
    h.on_complete = [&order, i](const ResponseMeta&) { order.push_back(i); };
    session.fetch(req, std::move(h));
  }
  loop_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(HttpTest, Http2PushPromiseAndContent) {
  PushObserver obs;
  std::vector<std::string> promised, pushed;
  sim::Time promise_at = -1;
  obs.on_promise = [&](const std::string& url, std::int64_t) {
    promised.push_back(url);
    promise_at = loop_.now();
  };
  obs.on_complete = [&](const std::string& url, std::int64_t) {
    pushed.push_back(url);
  };
  Http2Session session(net_, "a.com", server_, obs);
  server_.next.pushes = {PushItem{"a.com/p1/r5v1.css", 4000},
                         PushItem{"a.com/p1/r6v1.js", 6000}};
  sim::Time html_done = -1;
  Request req;
  req.url = "a.com/p1/r0v1.html";
  ResponseHandlers h;
  h.on_complete = [&](const ResponseMeta&) { html_done = loop_.now(); };
  session.fetch(req, std::move(h));
  loop_.run();
  ASSERT_EQ(promised.size(), 2u);
  EXPECT_LT(promise_at, html_done);  // promises ride with the headers
  ASSERT_EQ(pushed.size(), 2u);
  EXPECT_EQ(pushed[0], "a.com/p1/r5v1.css");  // pushed in listed order
}

TEST_F(HttpTest, Http2HintsVisibleAtHeaders) {
  Http2Session session(net_, "a.com", server_, {});
  server_.next.hints.add("b.com/p1/r9v1.js", HintPriority::Preload, 0);
  bool saw = false;
  Request req;
  req.url = "a.com/p1/r0v1.html";
  ResponseHandlers h;
  h.on_headers = [&](const ResponseMeta& m) {
    saw = !m.hints.empty();
    EXPECT_EQ(m.hints.hints[0].url, "b.com/p1/r9v1.js");
  };
  session.fetch(req, std::move(h));
  loop_.run();
  EXPECT_TRUE(saw);
}

TEST_F(HttpTest, Http2ConditionalGets304) {
  Http2Session session(net_, "a.com", server_, {});
  server_.serve_304 = true;
  bool nm = false;
  Request req;
  req.url = "a.com/p1/r0v1.html";
  req.conditional = true;
  ResponseHandlers h;
  h.on_complete = [&](const ResponseMeta& m) { nm = m.not_modified; };
  session.fetch(req, std::move(h));
  loop_.run();
  EXPECT_TRUE(nm);
}

TEST_F(HttpTest, Http2ExtraDelayDefersResponse) {
  Http2Session fast(net_, "a.com", server_, {});
  sim::Time t_fast = -1, t_slow = -1;
  {
    Request req;
    req.url = "a.com/p1/r0v1.html";
    ResponseHandlers h;
    h.on_complete = [&](const ResponseMeta&) { t_fast = loop_.now(); };
    fast.fetch(req, std::move(h));
    loop_.run();
  }
  sim::EventLoop loop2;
  net::Network net2(loop2, net::NetworkConfig::lte(), 1);
  net2.set_rtt("a.com", sim::ms(100));
  FakeServer slow_server;
  slow_server.next.extra_delay = sim::ms(100);
  Http2Session slow(net2, "a.com", slow_server, {});
  {
    Request req;
    req.url = "a.com/p1/r0v1.html";
    ResponseHandlers h;
    h.on_complete = [&](const ResponseMeta&) { t_slow = loop2.now(); };
    slow.fetch(req, std::move(h));
    loop2.run();
  }
  EXPECT_EQ(t_slow - t_fast, sim::ms(100));
}

TEST_F(HttpTest, Http1LimitsParallelismToSixConnections) {
  Http1Group group(net_, "a.com", server_);
  int done = 0;
  std::vector<sim::Time> completions;
  for (int i = 0; i < 12; ++i) {
    Request req;
    req.url = "a.com/p1/r" + std::to_string(i) + "v1.js";
    ResponseHandlers h;
    h.on_complete = [&](const ResponseMeta&) {
      ++done;
      completions.push_back(loop_.now());
    };
    group.fetch(req, std::move(h));
  }
  loop_.run();
  EXPECT_EQ(done, 12);
  // With only 6 lanes the last completions come distinctly later than the
  // first ones (two serialized waves).
  std::sort(completions.begin(), completions.end());
  EXPECT_GT(completions.back(), completions.front() + sim::ms(50));
}

TEST_F(HttpTest, Http1HigherPriorityJumpsQueue) {
  Http1Group group(net_, "a.com", server_);
  std::vector<std::string> completed;
  auto submit = [&](const std::string& url, int prio) {
    Request req;
    req.url = url;
    req.priority = prio;
    ResponseHandlers h;
    h.on_complete = [&completed, url](const ResponseMeta&) {
      completed.push_back(url);
    };
    group.fetch(req, std::move(h));
  };
  // Fill all six lanes plus queue, then add a high-priority request; it must
  // finish before the earlier-queued low-priority ones.
  for (int i = 0; i < 8; ++i) {
    submit("a.com/p1/r" + std::to_string(i) + "v1.jpg", 0);
  }
  submit("a.com/p1/r99v1.js", 5);
  loop_.run();
  auto pos = [&](const std::string& u) {
    return std::find(completed.begin(), completed.end(), u) -
           completed.begin();
  };
  EXPECT_LT(pos("a.com/p1/r99v1.js"), pos("a.com/p1/r7v1.jpg"));
}

TEST_F(HttpTest, PoolCreatesOneEndpointPerDomain) {
  FakeServer s2;
  ConnectionPool pool(
      net_,
      [&](const std::string& d) -> RequestHandler& {
        return d == "a.com" ? static_cast<RequestHandler&>(server_)
                            : static_cast<RequestHandler&>(s2);
      },
      [](const std::string&) { return Protocol::Http2; }, {});
  Endpoint& a1 = pool.endpoint("a.com");
  Endpoint& a2 = pool.endpoint("a.com");
  Endpoint& b = pool.endpoint("b.com");
  EXPECT_EQ(&a1, &a2);
  EXPECT_NE(static_cast<Endpoint*>(&a1), &b);
}

TEST(HintWireTest, SerializeMatchesTable1Format) {
  HintSet hs;
  hs.add("b.com/p1/r1v1.js", HintPriority::Preload, 0);
  hs.add("a.com/p1/r2v1.css", HintPriority::Preload, 1);
  hs.add("c.com/p1/r3v1.js", HintPriority::SemiImportant, 0);
  hs.add("d.com/p1/r4v1.jpg", HintPriority::Unimportant, 0);
  const std::string wire = serialize_hints(hs);
  EXPECT_NE(wire.find("Link: <b.com/p1/r1v1.js>; rel=preload, "
                      "<a.com/p1/r2v1.css>; rel=preload"),
            std::string::npos);
  EXPECT_NE(wire.find("x-semi-important: <c.com/p1/r3v1.js>"),
            std::string::npos);
  EXPECT_NE(wire.find("x-unimportant: <d.com/p1/r4v1.jpg>"),
            std::string::npos);
  // §5.1 footnote: headers must be CORS-exposed for the JS scheduler.
  EXPECT_NE(wire.find("Access-Control-Expose-Headers"), std::string::npos);
}

TEST(HintWireTest, RoundTripPreservesClassAndOrder) {
  HintSet hs;
  hs.add("a.com/p1/r1v1.js", HintPriority::Preload, 0);
  hs.add("a.com/p1/r2v1.js", HintPriority::Preload, 1);
  hs.add("b.com/p1/r3v1.js", HintPriority::SemiImportant, 0);
  hs.add("c.com/p1/r4v1.jpg", HintPriority::Unimportant, 0);
  hs.add("c.com/p1/r5v1.jpg", HintPriority::Unimportant, 1);
  HintSet parsed;
  ASSERT_TRUE(parse_hints(serialize_hints(hs), parsed));
  ASSERT_EQ(parsed.hints.size(), hs.hints.size());
  for (std::size_t i = 0; i < hs.hints.size(); ++i) {
    EXPECT_EQ(parsed.hints[i], hs.hints[i]) << i;
  }
}

TEST(HintWireTest, EmptySetSerializesEmpty) {
  EXPECT_EQ(serialize_hints({}), "");
  HintSet parsed;
  EXPECT_TRUE(parse_hints("", parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(HintWireTest, RejectsMalformedWire) {
  HintSet parsed;
  EXPECT_FALSE(parse_hints("garbage line", parsed));
  EXPECT_FALSE(parse_hints("X-Unknown: <a.com/x.js>", parsed));
  EXPECT_FALSE(parse_hints("Link: <unterminated", parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(HintSetTest, ByPriorityAndHeaderBytes) {
  HintSet hs;
  hs.add("a.com/p1/r1v1.js", HintPriority::Preload, 0);
  hs.add("a.com/p1/r2v1.jpg", HintPriority::Unimportant, 0);
  hs.add("a.com/p1/r3v1.js", HintPriority::SemiImportant, 0);
  EXPECT_EQ(hs.by_priority(HintPriority::Preload).size(), 1u);
  EXPECT_EQ(hs.by_priority(HintPriority::Unimportant).size(), 1u);
  EXPECT_EQ(hs.header_bytes(), 180);
}

}  // namespace
}  // namespace vroom::http
