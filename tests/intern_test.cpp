// URL/domain interning: ids must be stable across identical builds, id-keyed
// lookups must agree with their string-keyed equivalents on real corpus
// pages, and interning must be a pure bookkeeping change — the traced event
// stream of a load is bit-identical run to run.
#include "web/intern.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "browser/browser.h"
#include "harness/experiment.h"
#include "scoped_env.h"
#include "trace/trace.h"
#include "web/corpus.h"
#include "web/page_generator.h"
#include "web/page_instance.h"
#include "web/url.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

web::LoadIdentity test_identity(std::uint64_t nonce) {
  web::LoadIdentity id;
  id.wall_time = sim::hours(1000);
  id.nonce = nonce;
  return id;
}

TEST(Interner, AssignsDenseIdsAndRoundTrips) {
  web::Interner in;
  const web::UrlId a = in.url_id("a.example/p1/r0v2u0.html");
  const web::UrlId b = in.url_id("b.example/p1/r1v7u0.css");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  // Re-interning is idempotent: same id, no growth.
  EXPECT_EQ(in.url_id("a.example/p1/r0v2u0.html"), a);
  EXPECT_EQ(in.url_count(), 2u);
  EXPECT_EQ(in.url(a), "a.example/p1/r0v2u0.html");
  EXPECT_EQ(in.url(b), "b.example/p1/r1v7u0.css");
  // find_url never inserts.
  EXPECT_EQ(in.find_url("c.example/p1/r2v0u0.js"), web::kInvalidId);
  EXPECT_EQ(in.url_count(), 2u);
  EXPECT_EQ(in.find_url("a.example/p1/r0v2u0.html"), a);
}

TEST(Interner, UrlInfoCachesSyntaxDerivedFacts) {
  web::Interner in;
  const web::UrlId html = in.url_id("a.example/p3/r0v2u0.html");
  const web::UrlId css = in.url_id("a.example/p3/r1v2u0.css");
  const web::UrlId js = in.url_id("cdn.example/p3/r2v9u5.js");
  const web::UrlId img = in.url_id("a.example/p3/r3v2u0.jpg");
  const web::UrlId junk = in.url_id("not a canonical url");

  const web::UrlInfo& hi = in.info(html);
  EXPECT_TRUE(hi.parse_ok);
  EXPECT_EQ(hi.type, web::ResourceType::Html);
  EXPECT_TRUE(hi.processable);
  EXPECT_EQ(hi.page_id, 3u);
  EXPECT_EQ(hi.resource_id, 0u);
  EXPECT_EQ(hi.version, 2u);
  EXPECT_EQ(in.domain(hi.domain), "a.example");

  const web::UrlInfo& ji = in.info(js);
  EXPECT_TRUE(ji.processable);
  EXPECT_EQ(ji.user, 5u);
  EXPECT_EQ(in.domain(ji.domain), "cdn.example");
  // Same-domain URLs share one DomainId.
  EXPECT_EQ(hi.domain, in.info(css).domain);
  EXPECT_EQ(hi.domain, in.info(img).domain);
  EXPECT_NE(hi.domain, ji.domain);

  EXPECT_FALSE(in.info(img).processable);
  // Priorities follow the browser's native scheme: documents above
  // render-blocking CSS/JS above everything else.
  EXPECT_GT(hi.native_priority, in.info(css).native_priority);
  EXPECT_GT(in.info(css).native_priority, in.info(img).native_priority);

  // Unparsable URLs intern fine (ghost fetches need ids too) but carry
  // conservative defaults.
  const web::UrlInfo& ki = in.info(junk);
  EXPECT_FALSE(ki.parse_ok);
  EXPECT_FALSE(ki.processable);
}

TEST(Interner, IdsStableAcrossIdenticalInstanceBuilds) {
  const web::PageModel page = web::generate_page(42, 5, web::PageClass::News);
  const web::PageInstance a(page, test_identity(7));
  const web::PageInstance b(page, test_identity(7));

  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.interner().url_count(), b.interner().url_count());
  ASSERT_EQ(a.interner().domain_count(), b.interner().domain_count());
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    // Resource i pre-interns to UrlId i, in both builds.
    EXPECT_EQ(a.resource(i).url_id, i);
    EXPECT_EQ(b.resource(i).url_id, i);
    EXPECT_EQ(a.interner().url(i), b.interner().url(i));
    EXPECT_EQ(a.interner().info(i).domain, b.interner().info(i).domain);
  }
}

TEST(Interner, IdLookupsMatchStringLookupsOnCorpusPage) {
  const web::Corpus corpus = web::Corpus::news_sports(42);
  const web::PageInstance inst(corpus.pages().front(), test_identity(3));
  web::Interner& in = inst.interner();

  for (const web::InstanceResource& r : inst.resources()) {
    // String-keyed and id-keyed template lookup agree.
    const auto by_string = inst.find_by_url(r.url);
    const auto by_id = inst.template_of(r.url_id);
    ASSERT_TRUE(by_string.has_value()) << r.url;
    ASSERT_TRUE(by_id.has_value()) << r.url;
    EXPECT_EQ(*by_string, *by_id);
    EXPECT_EQ(*by_id, r.template_id);
    // The cached UrlInfo agrees with a fresh parse of the string.
    const web::UrlInfo& info = in.info(r.url_id);
    const auto parsed = web::parse_url(r.url);
    ASSERT_TRUE(parsed.has_value()) << r.url;
    EXPECT_TRUE(info.parse_ok);
    EXPECT_EQ(in.domain(info.domain), parsed->domain);
    EXPECT_EQ(info.resource_id, parsed->resource_id);
    EXPECT_EQ(info.version, parsed->version);
    EXPECT_EQ(info.user, parsed->user);
    EXPECT_EQ(info.processable, browser::Browser::url_processable(r.url));
  }

  // A foreign URL interned after build is never mistaken for a resource.
  const web::UrlId ghost = in.url_id("ghost.example/p9/r99v1u0.js");
  EXPECT_GE(ghost, inst.size());
  EXPECT_EQ(inst.template_of(ghost), std::nullopt);
}

// Interning is pure bookkeeping: two runs of the same load produce
// bit-identical traced event streams (timestamps, names, args). Any hidden
// dependence on id assignment or hash-map iteration order introduced by the
// id-keyed hot paths would perturb event ordering and fail here.
TEST(Interner, TracedEventStreamIdenticalAcrossRepeatedLoads) {
  ScopedEnv trace_env("VROOM_TRACE", nullptr);
  const web::PageModel page = web::generate_page(42, 4, web::PageClass::News);

  auto traced_load = [&page](std::string* json) {
    harness::RunOptions opt;
    opt.seed = 42;
    opt.trace_sink = [json](const trace::Recorder& r) {
      *json = r.chrome_trace_json();
    };
    return harness::run_page_load(page, baselines::vroom(), opt, 1);
  };

  std::string first, second;
  const auto r1 = traced_load(&first);
  const auto r2 = traced_load(&second);
  EXPECT_TRUE(r1.finished);
  EXPECT_EQ(r1.plt, r2.plt);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// Accessors assert on out-of-range ids. An id minted by one load's interner
// is meaningless to another's (arena-backed storage is recycled between
// loads), so a cross-load id that slips through must die loudly in debug
// builds instead of reading recycled memory. (This test TU compiles with
// -UNDEBUG so the header asserts are live even in release CI.)
TEST(InternerDeathTest, OutOfRangeIdAsserts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  web::Interner in;
  const web::UrlId a = in.url_id("a.example/p1/r0v2u0.html");
  (void)in.url(a);  // in-range: fine
  EXPECT_DEATH((void)in.url(web::UrlId{5}), "different interner");
  EXPECT_DEATH((void)in.info(web::UrlId{5}), "different interner");
  EXPECT_DEATH((void)in.domain(web::DomainId{5}), "different interner");
}

// Regression: ids from a *previous* world on the same (reset) arena are
// out of range for the new interner, not silently mapped to new strings.
TEST(InternerDeathTest, CrossLoadIdAsserts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Arena arena;
  web::UrlId stale;
  {
    web::Interner in(&arena);
    (void)in.url_id("a.example/p1/r0v2u0.html");
    stale = in.url_id("b.example/p1/r1v7u0.css");  // id 1
  }
  arena.reset();
  web::Interner fresh(&arena);
  (void)fresh.url_id("c.example/p1/r2v0u0.js");  // id 0; count == 1
  EXPECT_DEATH((void)fresh.url(stale), "different interner");
}

}  // namespace
}  // namespace vroom
