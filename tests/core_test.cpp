#include <gtest/gtest.h>

#include <set>

#include "core/accuracy.h"
#include "core/client_scheduler.h"
#include "core/hint_generator.h"
#include "core/offline_resolver.h"
#include "core/online_analyzer.h"
#include "core/vroom_provider.h"
#include "harness/experiment.h"
#include "harness/stats.h"
#include "web/page_generator.h"

namespace vroom::core {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  CoreTest() : page_(web::generate_page(42, 7, web::PageClass::News)) {
    id_.wall_time = sim::days(45);
    id_.device = web::nexus6();
    id_.user = 1;
    id_.nonce = 11;
    instance_ = std::make_unique<web::PageInstance>(page_, id_);
  }

  web::PageModel page_;
  web::LoadIdentity id_;
  std::unique_ptr<web::PageInstance> instance_;
  OfflineConfig off_;
};

TEST_F(CoreTest, OrgKnowsUserOnlyWithinOrganization) {
  EXPECT_TRUE(org_knows_user(page_, page_.first_party(), page_.first_party()));
  ASSERT_GT(page_.first_party_group().size(), 1u);
  EXPECT_TRUE(org_knows_user(page_, page_.first_party(),
                             page_.first_party_group()[1]));
  EXPECT_FALSE(org_knows_user(page_, page_.first_party(), "ads0.net"));
  EXPECT_TRUE(org_knows_user(page_, "ads0.net", "ads0.net"));
  EXPECT_FALSE(org_knows_user(page_, "ads0.net", page_.first_party()));
}

TEST_F(CoreTest, StableSetExcludesVolatileClasses) {
  OfflineResolver resolver(page_, off_);
  auto stable = resolver.stable_set(id_.wall_time, id_.device,
                                    page_.first_party(), id_.user);
  EXPECT_FALSE(stable.empty());
  for (const auto& [rid, url] : stable) {
    const web::Resource& r = page_.resource(rid);
    EXPECT_NE(r.volatility, web::Volatility::PerLoad)
        << "per-load resource survived the crawl intersection";
    EXPECT_NE(r.volatility, web::Volatility::Hourly)
        << "hour-scale resource survived a 3-hour crawl window";
    EXPECT_NE(r.volatility, web::Volatility::Personalized);
  }
  // Most stable-class resources should be present.
  int stable_class = 0, covered = 0;
  for (const auto& r : page_.resources()) {
    if (r.volatility == web::Volatility::Stable) {
      ++stable_class;
      if (stable.count(r.id)) ++covered;
    }
  }
  EXPECT_GT(covered, stable_class * 8 / 10);
}

TEST_F(CoreTest, DeviceIouHigherForSimilarDevices) {
  OfflineResolver resolver(page_, off_);
  const double similar =
      resolver.device_iou(id_.wall_time, web::nexus6(), web::oneplus3());
  const double tablet =
      resolver.device_iou(id_.wall_time, web::nexus6(), web::nexus10());
  const double self =
      resolver.device_iou(id_.wall_time, web::nexus6(), web::nexus6());
  EXPECT_DOUBLE_EQ(self, 1.0);
  EXPECT_GT(similar, tablet);
  EXPECT_GT(tablet, 0.3);
}

TEST_F(CoreTest, CrawlDeviceHandlingModes) {
  OfflineConfig exact = off_;
  exact.device_handling = DeviceHandling::Exact;
  EXPECT_EQ(OfflineResolver(page_, exact)
                .crawl_device(id_.wall_time, web::nexus10())
                .name,
            "Nexus10");

  OfflineConfig single = off_;
  single.device_handling = DeviceHandling::SingleClass;
  EXPECT_EQ(OfflineResolver(page_, single)
                .crawl_device(id_.wall_time, web::nexus10())
                .name,
            off_.known_devices.front().name);

  // Equivalence classes: a phone maps to a phone-class representative.
  OfflineResolver clustered(page_, off_);
  const auto& rep = clustered.crawl_device(id_.wall_time, web::oneplus3());
  EXPECT_EQ(rep.screen, 0);
}

TEST_F(CoreTest, OnlineScanMatchesMarkup) {
  OnlineScan scan = analyze_served_html(*instance_, 0);
  EXPECT_FALSE(scan.links.empty());
  EXPECT_GT(scan.cost, sim::ms(10));
  for (const auto& [rid, url] : scan.links) {
    EXPECT_EQ(instance_->resource(rid).url, url);
    EXPECT_EQ(page_.resource(rid).via, web::DiscoveryVia::HtmlTag);
    EXPECT_EQ(page_.resource(rid).parent, 0);
  }
}

TEST_F(CoreTest, HintClassificationFollowsTable1) {
  web::Resource r;
  r.type = web::ResourceType::Js;
  EXPECT_EQ(classify_hint(r), http::HintPriority::Preload);
  r.async = true;
  EXPECT_EQ(classify_hint(r), http::HintPriority::SemiImportant);
  r.type = web::ResourceType::Image;
  EXPECT_EQ(classify_hint(r), http::HintPriority::Unimportant);
  r.type = web::ResourceType::Css;
  r.async = false;
  r.in_iframe = true;  // iframe content is always low priority (footnote 4)
  EXPECT_EQ(classify_hint(r), http::HintPriority::Unimportant);
  web::Resource doc;
  doc.type = web::ResourceType::Html;
  EXPECT_EQ(classify_hint(doc), http::HintPriority::Unimportant);
}

TEST_F(CoreTest, BuildAdvicePushesHighPriorityLocalOnly) {
  std::vector<std::pair<std::uint32_t, std::string>> ordered;
  for (std::uint32_t rid : page_.hintable_descendants(0)) {
    ordered.emplace_back(rid, instance_->resource(rid).url);
  }
  AdviceBuild build =
      build_advice(*instance_, ordered, page_.first_party(),
                   /*hints_enabled=*/true, PushSelection::HighPriorityLocal);
  EXPECT_FALSE(build.hints.empty());
  for (const auto& p : build.pushes) {
    EXPECT_EQ(web::url_domain(p.url), page_.first_party());
    EXPECT_GT(p.body_bytes, 0);
  }
  // No URL appears both pushed and hinted.
  std::set<std::string> pushed;
  for (const auto& p : build.pushes) pushed.insert(p.url);
  for (const auto& h : build.hints.hints) {
    EXPECT_FALSE(pushed.count(h.url)) << h.url;
  }
}

TEST_F(CoreTest, TruncateHintsDropsLowPriorityFirst) {
  http::HintSet hs;
  for (int i = 0; i < 5; ++i) {
    hs.add("u" + std::to_string(i), http::HintPriority::Unimportant, i);
  }
  for (int i = 0; i < 3; ++i) {
    hs.add("p" + std::to_string(i), http::HintPriority::Preload, i);
  }
  hs.add("s0", http::HintPriority::SemiImportant, 0);

  http::HintSet untouched = hs;
  truncate_hints(untouched, 0);
  EXPECT_EQ(untouched.hints.size(), 9u);

  truncate_hints(hs, 5);
  ASSERT_EQ(hs.hints.size(), 5u);
  // All preloads and the semi survive; only one unimportant remains.
  int preload = 0, semi = 0, low = 0;
  for (const auto& h : hs.hints) {
    switch (h.priority) {
      case http::HintPriority::Preload: ++preload; break;
      case http::HintPriority::SemiImportant: ++semi; break;
      case http::HintPriority::Unimportant: ++low; break;
    }
  }
  EXPECT_EQ(preload, 3);
  EXPECT_EQ(semi, 1);
  EXPECT_EQ(low, 1);
  // Within a class, earlier processing order survives.
  EXPECT_EQ(hs.hints[0].url, "p0");
}

TEST_F(CoreTest, HintBudgetStillLoadsAndLimitsHeaderCount) {
  harness::RunOptions opt;
  baselines::Strategy budget = baselines::vroom();
  budget.provider.max_hints = 20;
  auto r = harness::run_page_load(page_, budget, opt, 1);
  ASSERT_TRUE(r.finished);
  int hinted = 0;
  for (const auto& t : r.timings) {
    if (t.hinted) ++hinted;
  }
  // Multiple documents each hint up to 20; still far below unlimited.
  auto full = harness::run_page_load(page_, baselines::vroom(), opt, 1);
  int full_hinted = 0;
  for (const auto& t : full.timings) {
    if (t.hinted) ++full_hinted;
  }
  EXPECT_LT(hinted, full_hinted);
}

TEST_F(CoreTest, ProviderAdvisesOnRootRequest) {
  server::ReplayStore store(*instance_);
  VroomProviderConfig cfg;
  VroomProvider provider(store, cfg);
  http::Request req;
  req.url = instance_->resource(0).url;
  req.user = id_.user;
  req.device = id_.device;
  auto advice = provider.advise(page_.first_party(), req);
  EXPECT_FALSE(advice.hints.empty());
  EXPECT_GT(advice.extra_delay, 0);  // online HTML scan costs time
  // Hints must not include iframe descendants.
  for (const auto& h : advice.hints.hints) {
    auto rid = instance_->find_by_url(h.url);
    if (rid.has_value()) {
      const web::Resource& r = page_.resource(*rid);
      if (r.in_iframe) {
        EXPECT_TRUE(r.is_iframe_doc);
      }
    }
  }
}

TEST_F(CoreTest, ProviderIgnoresNonHtmlRequests) {
  server::ReplayStore store(*instance_);
  VroomProvider provider(store, {});
  for (const auto& r : page_.resources()) {
    if (r.type != web::ResourceType::Html) {
      http::Request req;
      req.url = instance_->resource(r.id).url;
      auto advice = provider.advise(web::url_domain(req.url), req);
      EXPECT_TRUE(advice.hints.empty());
      EXPECT_TRUE(advice.pushes.empty());
      break;
    }
  }
}

TEST_F(CoreTest, ResolutionModesNested) {
  OfflineResolver resolver(page_, off_);
  auto vroom_set = resolve_candidates(*instance_, 0, page_.first_party(),
                                      id_.user, ResolutionMode::OfflinePlusOnline,
                                      resolver);
  auto offline_set = resolve_candidates(*instance_, 0, page_.first_party(),
                                        id_.user, ResolutionMode::OfflineOnly,
                                        resolver);
  // Vroom = offline + online, so it advises at least as much.
  EXPECT_GE(vroom_set.size(), offline_set.size());
  // Online overrides give exact current URLs for markup children.
  std::set<std::string> vroom_urls;
  for (auto& [rid, url] : vroom_set) vroom_urls.insert(url);
  for (const web::ScannedLink& l : web::scan_html(*instance_, 0)) {
    EXPECT_TRUE(vroom_urls.count(l.url)) << l.url;
  }
}

TEST_F(CoreTest, AccuracyVroomBeatsOfflineOnlyOnMisses) {
  auto vroom = measure_accuracy(page_, id_.wall_time, id_.device, id_.user,
                                ResolutionMode::OfflinePlusOnline, off_);
  auto offline = measure_accuracy(page_, id_.wall_time, id_.device, id_.user,
                                  ResolutionMode::OfflineOnly, off_);
  auto online = measure_accuracy(page_, id_.wall_time, id_.device, id_.user,
                                 ResolutionMode::OnlineOnly, off_);
  EXPECT_GT(vroom.predictable_count_frac, 0.5);
  EXPECT_GT(vroom.predictable_bytes_frac, 0.5);
  EXPECT_LE(vroom.false_negative_frac, offline.false_negative_frac);
  EXPECT_LE(online.false_negative_frac, vroom.false_negative_frac + 0.05);
  EXPECT_GT(online.false_positive_frac, vroom.false_positive_frac);
}

TEST_F(CoreTest, PersistenceDecaysWithGap) {
  const double hour = persistence_fraction(page_, id_.wall_time, id_.device,
                                           id_.user, sim::hours(1));
  const double day = persistence_fraction(page_, id_.wall_time, id_.device,
                                          id_.user, sim::days(1));
  const double week = persistence_fraction(page_, id_.wall_time, id_.device,
                                           id_.user, sim::days(7));
  EXPECT_GT(hour, day);
  EXPECT_GE(day, week);
  EXPECT_GT(hour, 0.4);
  EXPECT_LT(week, 0.9);
}

// End-to-end: across a handful of pages, Vroom's median beats the HTTP/2
// baseline and it finishes high-priority fetches sooner. (Per-page ties or
// small losses happen — the paper sees the same at the tail of Fig 13.)
TEST_F(CoreTest, VroomLoadFasterThanHttp2) {
  harness::RunOptions opt;
  std::vector<double> h2_plt, vr_plt;
  int hp_better = 0;
  const int n = 5;
  for (int i = 0; i < n; ++i) {
    const web::PageModel page =
        web::generate_page(42, static_cast<std::uint32_t>(20 + i),
                           web::PageClass::News);
    auto h2 = harness::run_page_load(page, baselines::http2_baseline(), opt, 1);
    auto vr = harness::run_page_load(page, baselines::vroom(), opt, 1);
    ASSERT_TRUE(h2.finished);
    ASSERT_TRUE(vr.finished);
    h2_plt.push_back(sim::to_seconds(h2.plt));
    vr_plt.push_back(sim::to_seconds(vr.plt));
    if (vr.high_prio_fetched < h2.high_prio_fetched) ++hp_better;
  }
  EXPECT_LT(harness::median(vr_plt), harness::median(h2_plt));
  EXPECT_GE(hp_better, n - 1);
}

TEST_F(CoreTest, VroomHintsAndPushesObservedClientSide) {
  harness::RunOptions opt;
  auto vr = harness::run_page_load(page_, baselines::vroom(), opt, 1);
  ASSERT_TRUE(vr.finished);
  int hinted = 0, pushed = 0;
  for (const auto& t : vr.timings) {
    if (t.hinted) ++hinted;
    if (t.pushed) ++pushed;
  }
  EXPECT_GT(hinted, 10);
  EXPECT_GT(pushed, 0);
}

}  // namespace
}  // namespace vroom::core
