// Scoped environment override (POSIX setenv/unsetenv), restored on exit so
// tests don't leak state into each other. Shared by every suite that pokes
// at the VROOM_* variables; harness::Env::from_environment() re-reads the
// environment on each call, so overrides take effect immediately.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

namespace vroom::testutil {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

}  // namespace vroom::testutil
