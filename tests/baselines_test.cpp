#include <gtest/gtest.h>

#include "baselines/polaris.h"
#include "baselines/strategies.h"
#include "harness/experiment.h"
#include "harness/stats.h"
#include "web/page_generator.h"

namespace vroom::baselines {
namespace {

TEST(StrategiesTest, FactoryConfigurations) {
  EXPECT_EQ(http11().protocol, http::Protocol::Http1);
  EXPECT_EQ(http2_baseline().protocol, http::Protocol::Http2);
  EXPECT_FALSE(http2_baseline().server_aid);

  const Strategy v = vroom();
  EXPECT_TRUE(v.server_aid);
  EXPECT_TRUE(v.provider.hints_enabled);
  EXPECT_EQ(v.provider.push, core::PushSelection::HighPriorityLocal);
  EXPECT_EQ(v.sched, Strategy::Sched::VroomStaged);

  EXPECT_TRUE(vroom_first_party_only().first_party_only);
  EXPECT_EQ(vroom_prev_load_deps().provider.mode,
            core::ResolutionMode::PreviousLoad);
  EXPECT_FALSE(push_all_no_hints().provider.hints_enabled);
  EXPECT_EQ(push_all_no_hints().provider.push, core::PushSelection::AllLocal);
  EXPECT_EQ(push_all_fetch_asap().sched, Strategy::Sched::FetchAsap);
  EXPECT_TRUE(push_all_static().first_party_only);
  EXPECT_TRUE(lower_bound_network().know_all_upfront);
  EXPECT_TRUE(lower_bound_cpu().local_network);
}

TEST(StrategiesTest, MakePolicyMatchesSched) {
  EXPECT_EQ(make_policy(http2_baseline()), nullptr);
  EXPECT_NE(make_policy(vroom()), nullptr);
  EXPECT_NE(make_policy(polaris()), nullptr);
}

class BaselineLoadTest : public ::testing::Test {
 protected:
  BaselineLoadTest()
      : page_(web::generate_page(42, 12, web::PageClass::News)) {}
  web::PageModel page_;
  harness::RunOptions opt_;
};

TEST_F(BaselineLoadTest, PolarisFinishesAndFetchesEverything) {
  auto r = harness::run_page_load(page_, polaris(), opt_, 1);
  ASSERT_TRUE(r.finished);
  int referenced = 0;
  for (const auto& t : r.timings) {
    if (t.referenced) {
      ++referenced;
      if (t.template_id && page_.resource(*t.template_id).blocks_onload) {
        EXPECT_NE(t.complete, sim::kNever);
      }
    }
  }
  int expected = 0;
  for (const auto& res : page_.resources()) {
    if (!page_.in_post_onload_subtree(res.id)) ++expected;
  }
  EXPECT_EQ(referenced, expected);
}

TEST_F(BaselineLoadTest, OrderingAcrossSchemesOnMedianPage) {
  // The paper's headline ordering on a typical complex page:
  // lower bound <= Vroom < Polaris-ish < HTTP/2 < HTTP/1.1.
  auto lb_net = harness::run_page_load(page_, lower_bound_network(), opt_, 1);
  auto lb_cpu = harness::run_page_load(page_, lower_bound_cpu(), opt_, 1);
  auto vr = harness::run_page_load(page_, vroom(), opt_, 1);
  auto h2 = harness::run_page_load(page_, http2_baseline(), opt_, 1);
  auto h1 = harness::run_page_load(page_, http11(), opt_, 1);
  const sim::Time bound = std::max(lb_net.plt, lb_cpu.plt);
  EXPECT_LT(bound, h2.plt);
  // Per-page, Vroom may tie the baseline (paper's Fig 13 tail shows the
  // same); it must never be meaningfully slower.
  EXPECT_LT(vr.plt, h2.plt * 102 / 100);
  EXPECT_LT(h2.plt, h1.plt * 105 / 100);
  // Vroom approaches the bound (within 2x on a single page).
  EXPECT_LT(vr.plt, bound * 2);
}

TEST_F(BaselineLoadTest, PushOnlyWorseThanVroom) {
  auto vr = harness::run_page_load(page_, vroom(), opt_, 1);
  auto push_only = harness::run_page_load(page_, push_all_no_hints(), opt_, 1);
  ASSERT_TRUE(push_only.finished);
  EXPECT_GT(push_only.plt, vr.plt);
}

TEST_F(BaselineLoadTest, RunPageMedianPicksMiddleLoad) {
  auto med = harness::run_page_median(page_, http2_baseline(), opt_);
  ASSERT_TRUE(med.finished);
  std::vector<sim::Time> plts;
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t nonce =
        harness::derive_load_nonce(opt_.seed, page_.page_id(), i);
    plts.push_back(harness::run_page_load(page_, http2_baseline(), opt_,
                                          nonce).plt);
  }
  std::sort(plts.begin(), plts.end());
  EXPECT_EQ(med.plt, plts[1]);
}

TEST(StatsTest, PercentileInterpolation) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(harness::percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(harness::percentile(v, 50), 3);
  EXPECT_DOUBLE_EQ(harness::percentile(v, 100), 5);
  EXPECT_DOUBLE_EQ(harness::percentile(v, 25), 2);
  EXPECT_DOUBLE_EQ(harness::median({2, 1}), 1.5);
  EXPECT_DOUBLE_EQ(harness::percentile({}, 50), 0);
}

TEST(StatsTest, Quartiles) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  auto q = harness::quartiles(v);
  EXPECT_DOUBLE_EQ(q.p25, 26);
  EXPECT_DOUBLE_EQ(q.p50, 51);
  EXPECT_DOUBLE_EQ(q.p75, 76);
}

}  // namespace
}  // namespace vroom::baselines
