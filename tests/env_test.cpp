// harness::Env — the single parse point for every VROOM_* variable. Parsing
// must re-read the environment each call, reject malformed integers with a
// warning (not a crash or a silent garbage value), and keep each knob's
// documented default when unset.
#include "harness/env.h"

#include <string>

#include <gtest/gtest.h>

#include "scoped_env.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

// Clears every variable Env reads, so one test's environment can't leak into
// another's expectations (the surrounding shell may set any of them).
struct CleanEnv {
  ScopedEnv jobs{"VROOM_JOBS", nullptr};
  ScopedEnv pages{"VROOM_BENCH_PAGES", nullptr};
  ScopedEnv cache{"VROOM_RESULT_CACHE", nullptr};
  ScopedEnv trace{"VROOM_TRACE", nullptr};
  ScopedEnv out{"VROOM_OUT_DIR", nullptr};
  ScopedEnv progress{"VROOM_PROGRESS", nullptr};
  ScopedEnv metrics{"VROOM_METRICS", nullptr};
  ScopedEnv profile{"VROOM_PROFILE", nullptr};
  ScopedEnv shard{"VROOM_SHARD", nullptr};
  ScopedEnv shard_dir{"VROOM_SHARD_DIR", nullptr};
  ScopedEnv cache_max{"VROOM_CACHE_MAX_BYTES", nullptr};
};

TEST(Env, DefaultsWhenUnset) {
  CleanEnv clean;
  const harness::Env env = harness::Env::from_environment();
  EXPECT_EQ(env.jobs, 0);
  EXPECT_EQ(env.bench_pages, 0);
  EXPECT_EQ(env.result_cache_dir, "");
  EXPECT_EQ(env.trace_dir, "");
  EXPECT_EQ(env.out_dir, "");
  EXPECT_FALSE(env.progress);
  EXPECT_FALSE(env.trace_enabled());
  EXPECT_EQ(env.metrics_dir, "");
  EXPECT_FALSE(env.metrics_enabled());
  EXPECT_FALSE(env.profile);
  EXPECT_FALSE(env.shard.has_value());
  EXPECT_EQ(env.shard_dir, "");
  EXPECT_EQ(env.cache_max_bytes, 0);
}

// The typed VROOM_SHARD=i/N accessor: the fleet and scripts/sweep_shards.sh
// share this one parser, so its rejection rules are load-bearing.
TEST(Env, ShardSpecParsesValidSpecs) {
  CleanEnv clean;
  {
    ScopedEnv shard("VROOM_SHARD", "0/4");
    const auto spec = harness::Env::from_environment().shard;
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->index, 0);
    EXPECT_EQ(spec->count, 4);
  }
  {
    ScopedEnv shard("VROOM_SHARD", "3/4");
    const auto spec = harness::Env::from_environment().shard;
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(*spec, (harness::ShardSpec{3, 4}));
  }
  {
    // The degenerate single-shard sweep is valid: i/1 runs everything.
    ScopedEnv shard("VROOM_SHARD", "0/1");
    EXPECT_EQ(harness::Env::from_environment().shard,
              (harness::ShardSpec{0, 1}));
  }
}

TEST(Env, ShardSpecRejectsMalformedSpecs) {
  CleanEnv clean;
  // N == 0, i >= N, negatives, partial parses, missing halves — all read
  // as unset through the unified [env] warning path.
  for (const char* bad :
       {"", "4", "4/", "/4", "1/0", "4/4", "5/4", "-1/4", "1/-4", "a/4",
        "1/b", "1/4x", " 1/4", "1/4 ", "1//4", "0x1/4", "1.0/4"}) {
    ScopedEnv shard("VROOM_SHARD", bad);
    EXPECT_FALSE(harness::Env::from_environment().shard.has_value())
        << "VROOM_SHARD=\"" << bad << '"';
  }
}

TEST(Env, ShardDirAndCacheMaxBytes) {
  CleanEnv clean;
  ScopedEnv dir("VROOM_SHARD_DIR", "/tmp/vroom-shards");
  // > INT_MAX on purpose: the cap is a 64-bit byte count.
  ScopedEnv cap("VROOM_CACHE_MAX_BYTES", "5000000000");
  const harness::Env env = harness::Env::from_environment();
  EXPECT_EQ(env.shard_dir, "/tmp/vroom-shards");
  EXPECT_EQ(env.cache_max_bytes, 5000000000LL);
}

TEST(Env, CacheMaxBytesRejectsMalformed) {
  CleanEnv clean;
  for (const char* bad : {"", "0", "-1", "1g", "1.5", " 1"}) {
    ScopedEnv cap("VROOM_CACHE_MAX_BYTES", bad);
    EXPECT_EQ(harness::Env::from_environment().cache_max_bytes, 0)
        << "VROOM_CACHE_MAX_BYTES=\"" << bad << '"';
  }
}

TEST(Env, MetricsAndProfileKnobs) {
  CleanEnv clean;
  {
    ScopedEnv metrics("VROOM_METRICS", "/tmp/vroom-metrics");
    const harness::Env env = harness::Env::from_environment();
    EXPECT_EQ(env.metrics_dir, "/tmp/vroom-metrics");
    EXPECT_TRUE(env.metrics_enabled());
  }
  {
    // Same truthiness rules as VROOM_PROGRESS: "0" and "" stay off.
    ScopedEnv profile("VROOM_PROFILE", "0");
    EXPECT_FALSE(harness::Env::from_environment().profile);
  }
  {
    ScopedEnv profile("VROOM_PROFILE", "");
    EXPECT_FALSE(harness::Env::from_environment().profile);
  }
  for (const char* on : {"1", "yes", "true"}) {
    ScopedEnv profile("VROOM_PROFILE", on);
    EXPECT_TRUE(harness::Env::from_environment().profile)
        << "VROOM_PROFILE=\"" << on << '"';
  }
}

TEST(Env, ParsesEveryVariable) {
  CleanEnv clean;
  ScopedEnv jobs("VROOM_JOBS", "4");
  ScopedEnv pages("VROOM_BENCH_PAGES", "8");
  ScopedEnv cache("VROOM_RESULT_CACHE", "/tmp/vroom-rc");
  ScopedEnv trace("VROOM_TRACE", "/tmp/vroom-traces");
  ScopedEnv out("VROOM_OUT_DIR", "/tmp/vroom-out");
  ScopedEnv progress("VROOM_PROGRESS", "1");
  const harness::Env env = harness::Env::from_environment();
  EXPECT_EQ(env.jobs, 4);
  EXPECT_EQ(env.bench_pages, 8);
  EXPECT_EQ(env.result_cache_dir, "/tmp/vroom-rc");
  EXPECT_EQ(env.trace_dir, "/tmp/vroom-traces");
  EXPECT_EQ(env.out_dir, "/tmp/vroom-out");
  EXPECT_TRUE(env.progress);
  EXPECT_TRUE(env.trace_enabled());
}

TEST(Env, ReReadsEnvironmentEachCall) {
  CleanEnv clean;
  EXPECT_EQ(harness::Env::from_environment().jobs, 0);
  {
    ScopedEnv jobs("VROOM_JOBS", "3");
    EXPECT_EQ(harness::Env::from_environment().jobs, 3);
  }
  EXPECT_EQ(harness::Env::from_environment().jobs, 0);
}

TEST(Env, MalformedIntegersIgnoredWithDefault) {
  CleanEnv clean;
  for (const char* bad : {"", "abc", "-2", "0", "3.5", "4x", " 4", "4 "}) {
    ScopedEnv jobs("VROOM_JOBS", bad);
    ScopedEnv pages("VROOM_BENCH_PAGES", bad);
    const harness::Env env = harness::Env::from_environment();
    EXPECT_EQ(env.jobs, 0) << "VROOM_JOBS=\"" << bad << '"';
    EXPECT_EQ(env.bench_pages, 0) << "VROOM_BENCH_PAGES=\"" << bad << '"';
  }
}

TEST(Env, HugeIntegerOutOfRangeIgnored) {
  CleanEnv clean;
  ScopedEnv jobs("VROOM_JOBS", "99999999999999999999");
  EXPECT_EQ(harness::Env::from_environment().jobs, 0);
}

TEST(Env, ProgressTruthiness) {
  CleanEnv clean;
  {
    ScopedEnv p("VROOM_PROGRESS", "0");
    EXPECT_FALSE(harness::Env::from_environment().progress);
  }
  {
    ScopedEnv p("VROOM_PROGRESS", "");
    EXPECT_FALSE(harness::Env::from_environment().progress);
  }
  for (const char* on : {"1", "yes", "true"}) {
    ScopedEnv p("VROOM_PROGRESS", on);
    EXPECT_TRUE(harness::Env::from_environment().progress)
        << "VROOM_PROGRESS=\"" << on << '"';
  }
}

TEST(Env, EffectivePageCount) {
  CleanEnv clean;
  {
    const harness::Env env = harness::Env::from_environment();
    EXPECT_EQ(env.effective_page_count(100), 100);  // uncapped
  }
  {
    ScopedEnv pages("VROOM_BENCH_PAGES", "8");
    const harness::Env env = harness::Env::from_environment();
    EXPECT_EQ(env.effective_page_count(100), 8);
    EXPECT_EQ(env.effective_page_count(5), 5);  // cap never raises
  }
}

}  // namespace
}  // namespace vroom
