// Cross-process sharded sweeps (DESIGN.md §14): shard_cell_range must
// partition the plan exactly, shard workers must publish cells that
// merge_shards reassembles byte-identically to a single-process run at any
// (shard count × worker count), a missing or damaged cell file must be a
// hard diagnosable error, and cache_gc must sweep stale salt generations
// before LRU-evicting the current one down to the size cap.
#include "fleet/fleet.h"

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/strategies.h"
#include "harness/experiment.h"
#include "harness/export.h"
#include "harness/result_cache.h"
#include "scoped_env.h"
#include "web/corpus.h"

namespace vroom {
namespace {

using testutil::ScopedEnv;

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "vroom_shard_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Clears every knob that could leak into a run_plan under test; individual
// tests then layer the shard knobs they need on top.
struct CleanEnv {
  ScopedEnv jobs{"VROOM_JOBS", nullptr};
  ScopedEnv pages{"VROOM_BENCH_PAGES", nullptr};
  ScopedEnv cache{"VROOM_RESULT_CACHE", nullptr};
  ScopedEnv trace{"VROOM_TRACE", nullptr};
  ScopedEnv out{"VROOM_OUT_DIR", nullptr};
  ScopedEnv progress{"VROOM_PROGRESS", nullptr};
  ScopedEnv metrics{"VROOM_METRICS", nullptr};
  ScopedEnv profile{"VROOM_PROFILE", nullptr};
  ScopedEnv shard{"VROOM_SHARD", nullptr};
  ScopedEnv shard_dir{"VROOM_SHARD_DIR", nullptr};
  ScopedEnv cache_max{"VROOM_CACHE_MAX_BYTES", nullptr};
};

void expect_identical(const browser::LoadResult& a,
                      const browser::LoadResult& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.plt, b.plt);
  EXPECT_EQ(a.aft, b.aft);
  EXPECT_EQ(a.speed_index_ms, b.speed_index_ms);  // bitwise, not approx
  EXPECT_EQ(a.ttfb, b.ttfb);
  EXPECT_EQ(a.first_paint, b.first_paint);
  EXPECT_EQ(a.dom_content_loaded, b.dom_content_loaded);
  EXPECT_EQ(a.net_wait, b.net_wait);
  EXPECT_EQ(a.cpu_busy, b.cpu_busy);
  EXPECT_EQ(a.bytes_fetched, b.bytes_fetched);
  EXPECT_EQ(a.wasted_bytes, b.wasted_bytes);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  ASSERT_EQ(a.timings.size(), b.timings.size());
  for (std::size_t i = 0; i < a.timings.size(); ++i) {
    EXPECT_EQ(a.timings[i].url, b.timings[i].url);
    EXPECT_EQ(a.timings[i].bytes, b.timings[i].bytes);
    EXPECT_EQ(a.timings[i].discovered, b.timings[i].discovered);
    EXPECT_EQ(a.timings[i].complete, b.timings[i].complete);
  }
  ASSERT_EQ(a.trace_counters.size(), b.trace_counters.size());
  for (std::size_t i = 0; i < a.trace_counters.size(); ++i) {
    EXPECT_EQ(a.trace_counters[i], b.trace_counters[i]);
  }
}

TEST(CorpusResultSerialization, RoundTripsEveryField) {
  harness::CorpusResult r;
  r.strategy = "Vroom (News+Sports)";
  browser::LoadResult a;
  a.finished = true;
  a.plt = sim::ms(4321);
  a.speed_index_ms = 1.0 / 3.0;  // must survive bit-exactly
  a.requests = 12;
  browser::ResourceTiming t;
  t.url = "https://example.com/a?x=1&y=2";
  t.bytes = 777;
  a.timings.push_back(t);
  a.trace_counters.emplace_back("net.bytes", INT64_MAX);
  browser::LoadResult b;
  b.finished = false;
  b.plt = sim::kNever;
  b.net_wait = -1;
  r.loads = {a, b};

  const std::string bytes = harness::serialize_corpus_result(r);
  harness::CorpusResult back;
  ASSERT_TRUE(harness::deserialize_corpus_result(bytes, &back));
  EXPECT_EQ(back.strategy, r.strategy);
  ASSERT_EQ(back.loads.size(), r.loads.size());
  for (std::size_t i = 0; i < r.loads.size(); ++i) {
    expect_identical(r.loads[i], back.loads[i]);
  }
}

TEST(CorpusResultSerialization, RejectsCorruptBytes) {
  harness::CorpusResult r;
  r.strategy = "s";
  r.loads.emplace_back();
  const std::string bytes = harness::serialize_corpus_result(r);
  harness::CorpusResult out;
  EXPECT_FALSE(harness::deserialize_corpus_result("", &out));
  for (std::size_t cut :
       {std::size_t{1}, std::size_t{5}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(harness::deserialize_corpus_result(
        std::string_view(bytes).substr(0, cut), &out))
        << "truncated at " << cut;
  }
  EXPECT_FALSE(harness::deserialize_corpus_result(bytes + "x", &out));
  std::string wrong_version = bytes;
  wrong_version[0] = static_cast<char>(wrong_version[0] + 1);
  EXPECT_FALSE(harness::deserialize_corpus_result(wrong_version, &out));
}

TEST(ShardCellRange, PartitionsCellsExactlyForAnyCount) {
  for (int n_cells = 0; n_cells <= 9; ++n_cells) {
    for (int count = 1; count <= 6; ++count) {
      int covered = 0;
      int prev_end = 0;
      for (int i = 0; i < count; ++i) {
        const auto [begin, end] =
            fleet::shard_cell_range(n_cells, fleet::ShardSpec{i, count});
        EXPECT_EQ(begin, prev_end) << n_cells << " cells, shard " << i << "/"
                                   << count;
        EXPECT_LE(begin, end);
        prev_end = end;
        covered += end - begin;
      }
      EXPECT_EQ(prev_end, n_cells);
      EXPECT_EQ(covered, n_cells);
    }
  }
}

// A three-cell plan shared by the sharding tests: two strategies over one
// corpus plus a third cell over a different corpus/seed, so cell slices are
// uneven for every shard count > 1.
fleet::SweepPlan test_plan(const web::Corpus& a, const web::Corpus& b) {
  harness::RunOptions opt_b;
  opt_b.seed = 7;
  fleet::SweepPlan plan;
  plan.add(a, baselines::http2_baseline());
  plan.add(a, baselines::vroom());
  plan.add(b, baselines::vroom(), opt_b, "Vroom (B)");
  return plan;
}

void expect_same_results(const std::vector<harness::CorpusResult>& want,
                         const std::vector<harness::CorpusResult>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t c = 0; c < want.size(); ++c) {
    EXPECT_EQ(want[c].strategy, got[c].strategy);
    ASSERT_EQ(want[c].loads.size(), got[c].loads.size()) << "cell " << c;
    for (std::size_t p = 0; p < want[c].loads.size(); ++p) {
      expect_identical(want[c].loads[p], got[c].loads[p]);
    }
    // The CSV a bench would export from these results must be
    // byte-identical, not just field-by-field equal.
    EXPECT_EQ(
        harness::series_to_csv({{want[c].strategy, want[c].plt_seconds()}}),
        harness::series_to_csv({{got[c].strategy, got[c].plt_seconds()}}));
  }
}

// The acceptance shape: run the plan as N shard processes' worth of work
// (sequentially in-process — the mode switch is pure environment), merge,
// and compare against the one-process sweep, across shard counts × worker
// counts. Shard counts beyond the cell count leave some shards empty-owned;
// those must still merge cleanly.
TEST(ShardSweep, MergeMatchesSingleProcessAcrossShardAndWorkerCounts) {
  CleanEnv clean;
  const web::Corpus corpus_a = web::Corpus::smoke(7, 3);
  const web::Corpus corpus_b = web::Corpus::smoke(9, 2);
  const fleet::SweepPlan plan = test_plan(corpus_a, corpus_b);
  const auto reference = fleet::run_plan(plan);

  for (int shards : {1, 2, 4}) {
    for (const char* jobs : {"1", "2"}) {
      SCOPED_TRACE(std::string("shards=") + std::to_string(shards) +
                   " jobs=" + jobs);
      ScopedEnv jobs_env("VROOM_JOBS", jobs);
      const std::string dir = fresh_dir(
          "sweep_" + std::to_string(shards) + "_" + jobs);
      ScopedEnv dir_env("VROOM_SHARD_DIR", dir.c_str());
      for (int i = 0; i < shards; ++i) {
        const std::string spec =
            std::to_string(i) + "/" + std::to_string(shards);
        ScopedEnv shard_env("VROOM_SHARD", spec.c_str());
        const auto partial = fleet::run_plan(plan);
        // A shard returns only its owned slice; unowned cells stay empty.
        const auto [begin, end] = fleet::shard_cell_range(
            static_cast<int>(plan.cells.size()),
            fleet::ShardSpec{i, shards});
        for (int c = 0; c < static_cast<int>(partial.size()); ++c) {
          EXPECT_EQ(!partial[static_cast<std::size_t>(c)].loads.empty(),
                    c >= begin && c < end)
              << "cell " << c;
        }
      }
      // VROOM_SHARD_DIR without VROOM_SHARD switches run_plan to merge.
      const auto merged = fleet::run_plan(plan);
      expect_same_results(reference, merged);
      // And the first-class API agrees with the env-selected mode.
      fleet::ShardMerge direct = fleet::merge_shards(plan, dir);
      EXPECT_TRUE(direct.error.empty()) << direct.error;
      expect_same_results(reference, direct.results);
      for (std::uint64_t digest : direct.cell_digests) {
        EXPECT_NE(digest, 0u);
      }
    }
  }
}

TEST(ShardSweep, MissingShardCellIsHardDiagnosableError) {
  CleanEnv clean;
  const web::Corpus corpus_a = web::Corpus::smoke(7, 2);
  const web::Corpus corpus_b = web::Corpus::smoke(9, 2);
  const fleet::SweepPlan plan = test_plan(corpus_a, corpus_b);
  const std::string dir = fresh_dir("missing");
  {
    ScopedEnv dir_env("VROOM_SHARD_DIR", dir.c_str());
    ScopedEnv shard_env("VROOM_SHARD", "0/2");
    fleet::run_plan(plan);  // shard 1 of 2 (cells 1 and 2) never runs
  }
  const fleet::ShardMerge merge = fleet::merge_shards(plan, dir);
  ASSERT_FALSE(merge.error.empty());
  // The error must name the offending file and cell so the operator can see
  // which shard to re-run.
  EXPECT_NE(merge.error.find(fleet::shard_cell_path(dir, 1)),
            std::string::npos)
      << merge.error;
  EXPECT_NE(merge.error.find("missing"), std::string::npos) << merge.error;
}

TEST(ShardSweep, RejectsStaleSaltAndCorruptAndMislabeledCells) {
  CleanEnv clean;
  const web::Corpus corpus_a = web::Corpus::smoke(7, 2);
  const web::Corpus corpus_b = web::Corpus::smoke(9, 2);
  const fleet::SweepPlan plan = test_plan(corpus_a, corpus_b);
  const std::string dir = fresh_dir("damaged");
  {
    ScopedEnv dir_env("VROOM_SHARD_DIR", dir.c_str());
    ScopedEnv shard_env("VROOM_SHARD", "0/1");
    fleet::run_plan(plan);
  }
  ASSERT_TRUE(fleet::merge_shards(plan, dir).error.empty());

  const auto clobber = [&](int cell, const std::string& bytes) {
    std::ofstream f(fleet::shard_cell_path(dir, cell),
                    std::ios::binary | std::ios::trunc);
    f << bytes;
  };
  const auto restore_ok = [&]() {
    std::filesystem::remove(fleet::shard_cell_path(dir, 1));
    ScopedEnv dir_env("VROOM_SHARD_DIR", dir.c_str());
    ScopedEnv shard_env("VROOM_SHARD", "0/1");
    fleet::run_plan(plan);
  };

  clobber(1, "garbage, not a cell file");
  EXPECT_NE(fleet::merge_shards(plan, dir).error.find("bad magic"),
            std::string::npos);
  restore_ok();

  // Flip the embedded salt generation: a cell simulated by older code must
  // be refused, mirroring the result cache's generation discipline.
  {
    std::ifstream in(fleet::shard_cell_path(dir, 1), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GE(bytes.size(), 12u);
    bytes[4] = static_cast<char>(bytes[4] + 1);
    clobber(1, bytes);
  }
  EXPECT_NE(fleet::merge_shards(plan, dir).error.find("stale salt"),
            std::string::npos);
  restore_ok();

  // Merging against a different plan (labels disagree) must be refused.
  fleet::SweepPlan other = test_plan(corpus_a, corpus_b);
  other.cells[1].label = "renamed";
  const std::string err = fleet::merge_shards(other, dir).error;
  EXPECT_NE(err.find("renamed"), std::string::npos) << err;
}

// --- Cache GC -----------------------------------------------------------

// Crafts a cache entry file of an older salt generation: correct header
// (magic + key length + key starting "v<gen>|"), junk payload — cache_gc
// only parses the header.
void write_stale_entry(const std::string& dir, const std::string& name,
                       int generation) {
  const std::string key = "v" + std::to_string(generation) + "|old-entry";
  std::string bytes = "VRC1";
  const std::uint32_t len = static_cast<std::uint32_t>(key.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  bytes += key;
  bytes += std::string(512, 'x');  // payload junk, never parsed by GC
  std::ofstream f(dir + "/" + name, std::ios::binary | std::ios::trunc);
  f << bytes;
}

TEST(CacheGc, SweepsStaleGenerationsBeforeEvictingCurrentOnes) {
  CleanEnv clean;
  const std::string dir = fresh_dir("gc");
  harness::ResultCache cache(dir);
  std::filesystem::create_directories(dir);  // cache mkdirs lazily on put

  // Four current-generation entries, mapped key -> file by diffing the
  // directory around each put.
  const auto dir_files = [&]() {
    std::set<std::string> files;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      files.insert(e.path().string());
    }
    return files;
  };
  std::vector<harness::CacheKey> keys;
  std::vector<std::string> files;
  for (std::uint64_t nonce : {11u, 22u, 33u, 44u}) {
    keys.push_back(
        harness::result_cache_key(baselines::vroom(), {}, 3, nonce));
    const auto before = dir_files();
    browser::LoadResult r;
    r.plt = sim::ms(static_cast<std::int64_t>(nonce));
    cache.put(keys.back(), r);
    const auto after = dir_files();
    ASSERT_EQ(after.size(), before.size() + 1);
    for (const auto& f : after) {
      if (before.count(f) == 0) files.push_back(f);
    }
  }

  // Two stale-generation entries with the *newest* mtimes: if GC ran pure
  // LRU they would survive; the generation sweep must delete them first.
  write_stale_entry(dir, "stale_a.vrc", harness::kResultCacheSaltVersion - 1);
  write_stale_entry(dir, "stale_b.vrc", 1);
  const auto now = std::filesystem::file_time_type::clock::now();
  std::filesystem::last_write_time(dir + "/stale_a.vrc", now);
  std::filesystem::last_write_time(dir + "/stale_b.vrc", now);
  // Current entries: files[0] least recently used ... files[3] most recent.
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::filesystem::last_write_time(
        files[i], now - std::chrono::hours(10 - static_cast<int>(i)));
  }

  // Cap = the two most-recent current entries: GC must sweep both stale
  // entries, then evict exactly files[0] and files[1].
  harness::GcPolicy policy;
  policy.dir = dir;
  policy.max_bytes =
      static_cast<std::int64_t>(std::filesystem::file_size(files[2]) +
                                std::filesystem::file_size(files[3]));
  const harness::GcStats stats = harness::cache_gc(policy);
  EXPECT_EQ(stats.scanned, 6u);
  EXPECT_EQ(stats.stale_deleted, 2u);
  EXPECT_EQ(stats.evicted, 2u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_LE(stats.remaining_bytes,
            static_cast<std::uint64_t>(policy.max_bytes));

  EXPECT_FALSE(std::filesystem::exists(dir + "/stale_a.vrc"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/stale_b.vrc"));
  EXPECT_FALSE(std::filesystem::exists(files[0]));
  EXPECT_FALSE(std::filesystem::exists(files[1]));
  // Retained entries still answer with verified hits after collection.
  EXPECT_FALSE(cache.get(keys[0]).has_value());
  EXPECT_FALSE(cache.get(keys[1]).has_value());
  EXPECT_TRUE(cache.get(keys[2]).has_value());
  EXPECT_TRUE(cache.get(keys[3]).has_value());
}

TEST(CacheGc, NoCapSweepsOnlyStaleGenerations) {
  CleanEnv clean;
  const std::string dir = fresh_dir("gc_sweep_only");
  harness::ResultCache cache(dir);
  const harness::CacheKey key =
      harness::result_cache_key(baselines::vroom(), {}, 3, 17);
  browser::LoadResult r;
  r.plt = sim::ms(10);
  cache.put(key, r);
  write_stale_entry(dir, "stale.vrc", 2);
  // Unparseable entries are dead weight too: deleted and counted as errors.
  {
    std::ofstream f(dir + "/junk.vrc", std::ios::binary);
    f << "short";
  }

  harness::GcPolicy policy;
  policy.dir = dir;  // max_bytes stays 0: no size cap
  const harness::GcStats stats = harness::cache_gc(policy);
  EXPECT_EQ(stats.scanned, 3u);
  EXPECT_EQ(stats.stale_deleted, 1u);
  EXPECT_EQ(stats.evicted, 0u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_TRUE(cache.get(key).has_value());
}

// Hit-bumped mtimes are what makes the eviction LRU rather than FIFO: a
// get() must refresh the entry's clock so hot entries outlive cold ones
// that were stored later.
TEST(CacheGc, VerifiedHitsRefreshTheLruClock) {
  CleanEnv clean;
  const std::string dir = fresh_dir("gc_lru");
  harness::ResultCache cache(dir);
  const harness::CacheKey hot =
      harness::result_cache_key(baselines::vroom(), {}, 3, 1);
  const harness::CacheKey cold =
      harness::result_cache_key(baselines::vroom(), {}, 3, 2);
  browser::LoadResult r;
  r.plt = sim::ms(10);
  cache.put(hot, r);
  cache.put(cold, r);
  // Age both entries, then touch `hot` via a verified hit.
  const auto past =
      std::filesystem::file_time_type::clock::now() - std::chrono::hours(5);
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    std::filesystem::last_write_time(e.path(), past);
  }
  ASSERT_TRUE(cache.get(hot).has_value());

  // Cap = the largest single entry: exactly one of the two must go, and
  // LRU says it is `cold` — even though `hot` was stored first.
  std::uintmax_t largest = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    largest = std::max(largest, std::filesystem::file_size(e.path()));
  }
  harness::GcPolicy policy;
  policy.dir = dir;
  policy.max_bytes = static_cast<std::int64_t>(largest);
  const harness::GcStats stats = harness::cache_gc(policy);
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_FALSE(cache.get(cold).has_value());
  EXPECT_TRUE(cache.get(hot).has_value());
}

}  // namespace
}  // namespace vroom
