// Parameterized property tests: invariants that must hold across the whole
// parameter space, not just hand-picked examples.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "baselines/strategies.h"
#include "core/accuracy.h"
#include "harness/experiment.h"
#include "net/tcp.h"
#include "web/page_generator.h"
#include "web/page_instance.h"

namespace vroom {
namespace {

// ---------- page-generator invariants across classes and seeds ----------

using GenParam = std::tuple<web::PageClass, std::uint64_t>;

class GeneratorProperty : public ::testing::TestWithParam<GenParam> {
 protected:
  GeneratorProperty()
      : page_(web::generate_page(std::get<1>(GetParam()), 11,
                                 std::get<0>(GetParam()))) {}
  web::PageModel page_;
};

TEST_P(GeneratorProperty, StructuralInvariants) {
  ASSERT_GT(page_.size(), 10u);
  EXPECT_EQ(page_.root().parent, -1);
  EXPECT_EQ(page_.root().type, web::ResourceType::Html);
  for (const web::Resource& r : page_.resources()) {
    if (r.id != 0) {
      ASSERT_GE(r.parent, 0);
      EXPECT_LT(static_cast<std::uint32_t>(r.parent), r.id);
    }
    EXPECT_GE(r.discovery_offset, 0.0);
    EXPECT_LE(r.discovery_offset, 1.0);
    EXPECT_GT(r.base_size, 0);
    EXPECT_FALSE(r.domain.empty());
    if (r.volatility != web::Volatility::PerLoad) {
      EXPECT_GT(r.rotation_period, 0);
    }
    // Parser-blocking implies a synchronous classic script.
    if (r.blocks_parser) {
      EXPECT_EQ(r.type, web::ResourceType::Js);
      EXPECT_FALSE(r.async);
    }
    // Iframe containment is hereditary.
    if (r.parent >= 0 &&
        page_.resource(static_cast<std::uint32_t>(r.parent)).in_iframe) {
      EXPECT_TRUE(r.in_iframe);
    }
    // post-onload markers only on JS-injected iframe documents.
    if (r.post_onload) {
      EXPECT_TRUE(r.is_iframe_doc);
    }
  }
}

TEST_P(GeneratorProperty, VolatilityMixSane) {
  int per_load = 0, total = 0;
  for (const web::Resource& r : page_.resources()) {
    ++total;
    if (r.volatility == web::Volatility::PerLoad) ++per_load;
  }
  const double frac = static_cast<double>(per_load) / total;
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.45);
}

TEST_P(GeneratorProperty, HintScopeOrderingIsTopological) {
  const auto scope = page_.hintable_descendants(0);
  std::set<std::uint32_t> seen{0};
  for (std::uint32_t id : scope) {
    EXPECT_TRUE(seen.count(static_cast<std::uint32_t>(
        page_.resource(id).parent)));
    seen.insert(id);
  }
}

TEST_P(GeneratorProperty, InstancesDeterministicAndNonceSensitive) {
  web::LoadIdentity id;
  id.wall_time = sim::days(45);
  id.device = web::nexus6();
  id.user = 2;
  id.nonce = 5;
  const web::PageInstance a(page_, id), b(page_, id);
  web::LoadIdentity id2 = id;
  id2.nonce = 6;
  const web::PageInstance c(page_, id2);
  int diffs = 0;
  for (std::size_t i = 0; i < page_.size(); ++i) {
    EXPECT_EQ(a.resource(i).url, b.resource(i).url);
    if (a.resource(i).url != c.resource(i).url) ++diffs;
  }
  EXPECT_GT(diffs, 0);  // some per-load churn on every page class
}

TEST_P(GeneratorProperty, PersistenceMonotoneInGap) {
  const double h = core::persistence_fraction(page_, sim::days(45),
                                              web::nexus6(), 1, sim::hours(1));
  const double d = core::persistence_fraction(page_, sim::days(45),
                                              web::nexus6(), 1, sim::days(1));
  const double w = core::persistence_fraction(page_, sim::days(45),
                                              web::nexus6(), 1, sim::days(7));
  EXPECT_GE(h, d - 1e-9);
  EXPECT_GE(d, w - 1e-9);
  EXPECT_GE(w, 0.0);
  EXPECT_LE(h, 1.0);
}

TEST_P(GeneratorProperty, AccuracyDominanceHoldsEverywhere) {
  // Vroom's resolution (offline + online) can only add correct URLs on top
  // of offline-only, so its false-negative rate must never be worse.
  const auto vroom =
      core::measure_accuracy(page_, sim::days(45), web::nexus6(), 1,
                             core::ResolutionMode::OfflinePlusOnline, {});
  const auto offline =
      core::measure_accuracy(page_, sim::days(45), web::nexus6(), 1,
                             core::ResolutionMode::OfflineOnly, {});
  EXPECT_LE(vroom.false_negative_frac, offline.false_negative_frac + 1e-9);
  EXPECT_GE(vroom.predictable_count_frac, 0.0);
  EXPECT_LE(vroom.predictable_count_frac, 1.0);
  EXPECT_GE(vroom.predictable_bytes_frac, 0.0);
  EXPECT_LE(vroom.predictable_bytes_frac, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllClassesAndSeeds, GeneratorProperty,
    ::testing::Combine(::testing::Values(web::PageClass::Top100,
                                         web::PageClass::News,
                                         web::PageClass::Sports,
                                         web::PageClass::Mixed400),
                       ::testing::Values(1ull, 42ull, 1337ull)),
    [](const auto& info) {
      return std::string(web::page_class_name(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------- TCP transfer properties across sizes ----------

class TcpProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TcpProperty, LargerTransfersNeverFinishEarlier) {
  auto time_for = [&](std::int64_t bytes) {
    sim::EventLoop loop;
    net::Network net(loop, net::NetworkConfig::lte(), 3);
    net.set_rtt("a.com", sim::ms(120));
    net::TcpConnection conn(net, "a.com", false);
    sim::Time done = -1;
    conn.connect([&] {
      net::TcpConnection::Chunk c;
      c.bytes = bytes;
      c.on_delivered = [&] { done = loop.now(); };
      conn.send_chunk(std::move(c));
    });
    loop.run();
    return done;
  };
  const std::int64_t bytes = GetParam();
  EXPECT_LE(time_for(bytes), time_for(bytes * 2));
  EXPECT_LE(time_for(bytes), time_for(bytes + 1460));
}

TEST_P(TcpProperty, SplittingAcrossStreamsPreservesTotalBytes) {
  const std::int64_t bytes = GetParam();
  sim::EventLoop loop;
  net::Network net(loop, net::NetworkConfig::lte(), 3);
  net.set_rtt("a.com", sim::ms(120));
  net::TcpConnection conn(net, "a.com", false,
                          net::WriterDiscipline::RoundRobin);
  int completions = 0;
  conn.connect([&] {
    for (std::uint32_t s = 0; s < 4; ++s) {
      net::TcpConnection::Chunk c;
      c.bytes = bytes / 4;
      c.on_delivered = [&] { ++completions; };
      conn.send_chunk(s, 0, std::move(c));
    }
  });
  loop.run();
  EXPECT_EQ(completions, 4);
  // Headers/payload conservation: what the client counted equals what was
  // sent (each chunk is at least one byte).
  EXPECT_EQ(conn.bytes_delivered(), (bytes / 4) * 4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpProperty,
                         ::testing::Values(1000, 14'600, 64'000, 300'000,
                                           1'000'000));

// ---------- every strategy finishes on every page class ----------

class StrategySweep
    : public ::testing::TestWithParam<std::tuple<int, web::PageClass>> {};

baselines::Strategy strategy_by_index(int i) {
  switch (i) {
    case 0: return baselines::http11();
    case 1: return baselines::http2_baseline();
    case 2: return baselines::push_all_static();
    case 3: return baselines::vroom();
    case 4: return baselines::vroom_first_party_only();
    case 5: return baselines::vroom_prev_load_deps();
    case 6: return baselines::vroom_offline_only();
    case 7: return baselines::vroom_online_only();
    case 8: return baselines::push_high_prio_no_hints();
    case 9: return baselines::push_all_no_hints();
    case 10: return baselines::push_all_fetch_asap();
    case 11: return baselines::polaris();
    case 12: return baselines::vroom_plus_polaris();
    case 13: return baselines::lower_bound_network();
    default: return baselines::lower_bound_cpu();
  }
}
constexpr int kNumStrategies = 15;

TEST_P(StrategySweep, LoadFinishesAndIsInternallyConsistent) {
  const auto [idx, cls] = GetParam();
  const baselines::Strategy s = strategy_by_index(idx);
  const web::PageModel page = web::generate_page(42, 5, cls);
  harness::RunOptions opt;
  auto r = harness::run_page_load(page, s, opt, 1);
  ASSERT_TRUE(r.finished) << s.name;
  EXPECT_GT(r.plt, 0);
  EXPECT_LE(r.aft, r.plt);
  EXPECT_GT(r.bytes_fetched, 0);
  EXPECT_GE(r.net_wait, 0);
  EXPECT_LE(r.net_wait, r.plt);
  EXPECT_LE(r.cpu_busy, r.plt);
  // Referenced gating resources are all complete and processed.
  for (const auto& t : r.timings) {
    if (!t.referenced || !t.template_id) continue;
    if (!page.resource(*t.template_id).blocks_onload) continue;
    EXPECT_NE(t.complete, sim::kNever) << s.name << " " << t.url;
    EXPECT_LE(t.complete, r.plt) << s.name << " " << t.url;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllClasses, StrategySweep,
    ::testing::Combine(::testing::Range(0, kNumStrategies),
                       ::testing::Values(web::PageClass::News,
                                         web::PageClass::Top100)),
    [](const auto& info) {
      return strategy_by_index(std::get<0>(info.param)).name.substr(0, 1) +
             std::to_string(std::get<0>(info.param)) + "_" +
             web::page_class_name(std::get<1>(info.param));
    });

// ---------- determinism across the whole pipeline ----------

TEST(DeterminismProperty, IdenticalRunsIdenticalResults) {
  const web::PageModel page = web::generate_page(42, 9, web::PageClass::News);
  harness::RunOptions opt;
  for (const auto& s : {baselines::vroom(), baselines::http11(),
                        baselines::polaris()}) {
    auto a = harness::run_page_load(page, s, opt, 3);
    auto b = harness::run_page_load(page, s, opt, 3);
    EXPECT_EQ(a.plt, b.plt) << s.name;
    EXPECT_EQ(a.aft, b.aft) << s.name;
    EXPECT_EQ(a.bytes_fetched, b.bytes_fetched) << s.name;
    EXPECT_EQ(a.requests, b.requests) << s.name;
    EXPECT_EQ(a.wasted_bytes, b.wasted_bytes) << s.name;
  }
}

}  // namespace
}  // namespace vroom
