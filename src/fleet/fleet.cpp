#include "fleet/fleet.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>

#include "fleet/job_queue.h"
#include "harness/env.h"
#include "harness/export.h"
#include "harness/result_cache.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "sim/random.h"

namespace vroom::fleet {

namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Opt-in live progress line (VROOM_PROGRESS=1): workers redraw a single
// stderr line — `\r`, no newline — at most every 500 ms; a CAS on the
// next-redraw deadline elects one worker per window, so the line never
// interleaves. Goes to stderr so stdout stays byte-identical. finish()
// prints the terminating newline.
class ProgressTicker {
 public:
  ProgressTicker(const JobQueue& queue, const Telemetry& telemetry,
                 bool enabled)
      : queue_(queue), telemetry_(telemetry), start_(monotonic_seconds()),
        enabled_(enabled) {}

  void tick() {
    if (!enabled_) return;
    const double now = monotonic_seconds();
    double deadline = next_redraw_.load(std::memory_order_relaxed);
    if (now < deadline ||
        !next_redraw_.compare_exchange_strong(deadline, now + 0.5,
                                              std::memory_order_relaxed)) {
      return;
    }
    const std::size_t done = telemetry_.jobs_completed();
    const std::size_t total = queue_.size();
    const std::size_t cached = telemetry_.jobs_from_cache();
    const double elapsed = now - start_;
    const double rate =
        elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0;
    // ETA from the running rate; "--" until the first job lands. Cache hits
    // make the estimate conservative (hits are faster than the average).
    char eta[32];
    if (rate > 0 && done <= total) {
      const double left = static_cast<double>(total - done) / rate;
      if (left >= 3600) {
        std::snprintf(eta, sizeof eta, "%.1fh", left / 3600);
      } else if (left >= 60) {
        std::snprintf(eta, sizeof eta, "%.1fm", left / 60);
      } else {
        std::snprintf(eta, sizeof eta, "%.0fs", left);
      }
    } else {
      std::snprintf(eta, sizeof eta, "--");
    }
    // Trailing spaces scrub leftovers when this line is shorter than the
    // previous redraw.
    std::fprintf(stderr,
                 "\r[fleet] %zu/%zu jobs (%zu unclaimed), %.1f jobs/s, "
                 "%.0f%% cached, ETA %s   ",
                 done, total, queue_.remaining(), rate,
                 done > 0
                     ? 100.0 * static_cast<double>(cached) /
                           static_cast<double>(done)
                     : 0.0,
                 eta);
    std::fflush(stderr);
    printed_ = true;
  }

  // Call after the pool joins: replaces the partial line with the final
  // count and ends it with a newline.
  void finish() {
    if (!enabled_ || !printed_) return;
    std::fprintf(stderr,
                 "\r[fleet] %zu/%zu jobs done"
                 "                                                  \n",
                 telemetry_.jobs_completed(), queue_.size());
  }

 private:
  const JobQueue& queue_;
  const Telemetry& telemetry_;
  double start_;
  bool enabled_ = false;
  std::atomic<bool> printed_{false};
  std::atomic<double> next_redraw_{0};
};

// One plan cell, compiled: page/load extents, the flat-grid slot offset,
// the resolved display label, and whether the result cache may serve it.
struct CompiledCell {
  int pages = 0;
  int loads = 0;
  std::size_t slot_offset = 0;
  bool cacheable = false;
  std::string label;
};

// Per-job metric recording (DESIGN.md §12). Job totals, cache hits, and the
// summed virtual time are commutative adds, so the virtual-plane export is
// byte-identical at any VROOM_JOBS; the job wall-time distribution is
// nondeterministic by nature and goes to the wall sidecar.
void record_job_metrics(const browser::LoadResult& result, bool from_cache,
                        double wall_seconds) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& completed =
      obs::registry().counter("fleet.jobs.completed");
  static obs::Counter& cached =
      obs::registry().counter("fleet.jobs.from_cache");
  static obs::Counter& virtual_us =
      obs::registry().counter("fleet.sim.virtual_us");
  static obs::Histogram& wall_us =
      obs::registry().histogram("fleet.jobs.wall_us", obs::Plane::Wall);
  completed.add();
  if (from_cache) cached.add();
  virtual_us.add(result.plt);
  wall_us.record(static_cast<std::int64_t>(wall_seconds * 1e6));
}

std::string hex_digest(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Misconfiguration of the shard/merge protocol is never papered over: a
// silently partial or mismatched sweep is worse than no sweep.
[[noreturn]] void fatal(const std::string& message) {
  std::fprintf(stderr, "[fleet] fatal: %s\n", message.c_str());
  std::abort();
}

constexpr char kShardCellMagic[4] = {'V', 'S', 'C', '1'};

void put_u32_le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t read_u32_le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

// Atomic publish of one finished cell, mirroring ResultCache::put: write a
// process-unique temp file, then rename() into place — a concurrent merge
// (or a retried shard racing its predecessor) never sees a torn file.
void publish_shard_cell(const std::string& dir, int cell_index,
                        const std::string& payload) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string final_path = shard_cell_path(dir, cell_index);
  const std::string tmp_path =
      final_path + ".tmp-" + std::to_string(::getpid());
  std::string bytes;
  bytes.reserve(12 + payload.size());
  bytes.append(kShardCellMagic, sizeof kShardCellMagic);
  put_u32_le(bytes, static_cast<std::uint32_t>(
                        harness::kResultCacheSaltVersion));
  put_u32_le(bytes, static_cast<std::uint32_t>(cell_index));
  bytes.append(payload);
  {
    std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!f.good()) {
      std::filesystem::remove(tmp_path, ec);
      fatal("could not write shard cell file \"" + tmp_path + '"');
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    fatal("could not publish shard cell file \"" + final_path + '"');
  }
}

}  // namespace

std::pair<int, int> shard_cell_range(int n_cells, const ShardSpec& shard) {
  const long long n = n_cells;
  return {static_cast<int>(n * shard.index / shard.count),
          static_cast<int>(n * (shard.index + 1) / shard.count)};
}

std::string shard_cell_path(const std::string& dir, int cell_index) {
  return dir + "/cell_" + std::to_string(cell_index) + ".vsc";
}

ShardMerge merge_shards(const SweepPlan& plan, const std::string& dir) {
  ShardMerge out;
  const int n_cells = static_cast<int>(plan.cells.size());
  out.results.resize(static_cast<std::size_t>(n_cells));
  out.cell_digests.assign(static_cast<std::size_t>(n_cells), 0);
  for (int c = 0; c < n_cells; ++c) {
    const SweepCell& cell = plan.cells[static_cast<std::size_t>(c)];
    const std::string path = shard_cell_path(dir, c);
    const auto fail = [&](const std::string& why) {
      out.error = "shard cell file \"" + path + "\" (cell " +
                  std::to_string(c) + " of " + std::to_string(n_cells) +
                  "): " + why;
      return out;
    };
    std::string bytes;
    {
      std::ifstream f(path, std::ios::binary);
      if (!f.is_open()) {
        return fail("missing — did every shard 0..N-1 of this plan finish "
                    "into this VROOM_SHARD_DIR?");
      }
      std::ostringstream ss;
      ss << f.rdbuf();
      if (!f.good() && !f.eof()) return fail("unreadable");
      bytes = std::move(ss).str();
    }
    if (bytes.size() < 12 ||
        std::string_view(bytes.data(), 4) !=
            std::string_view(kShardCellMagic, 4)) {
      return fail("not a shard cell file (bad magic)");
    }
    const std::uint32_t salt = read_u32_le(bytes.data() + 4);
    if (salt != static_cast<std::uint32_t>(harness::kResultCacheSaltVersion)) {
      return fail("stale salt generation v" + std::to_string(salt) +
                  " (current v" +
                  std::to_string(harness::kResultCacheSaltVersion) +
                  ") — re-run the shards");
    }
    const std::uint32_t index = read_u32_le(bytes.data() + 8);
    if (index != static_cast<std::uint32_t>(c)) {
      return fail("claims cell index " + std::to_string(index));
    }
    const std::string_view payload(bytes.data() + 12, bytes.size() - 12);
    harness::CorpusResult result;
    if (!harness::deserialize_corpus_result(payload, &result)) {
      return fail("corrupt payload");
    }
    const std::string label =
        cell.label.empty() ? cell.strategy.name : cell.label;
    if (result.strategy != label) {
      return fail("labelled \"" + result.strategy + "\", plan expects \"" +
                  label + "\" — merging against a different plan?");
    }
    const int pages = harness::effective_page_count(
        static_cast<int>(cell.corpus->size()));
    if (static_cast<int>(result.loads.size()) != pages) {
      return fail("holds " + std::to_string(result.loads.size()) +
                  " page loads, plan expects " + std::to_string(pages) +
                  " — VROOM_BENCH_PAGES differed between shard and merge?");
    }
    out.cell_digests[static_cast<std::size_t>(c)] = sim::hash64(payload);
    out.results[static_cast<std::size_t>(c)] = std::move(result);
  }
  return out;
}

int resolve_worker_count(int requested, const harness::Env& env) {
  if (requested > 0) return requested;
  if (env.jobs > 0) return env.jobs;
  return hardware_workers();
}

int resolve_worker_count(int requested) {
  return resolve_worker_count(requested, harness::Env::from_environment());
}

void run_tasks(std::size_t count, const std::function<void(std::size_t)>& fn,
               int workers) {
  if (count == 0) return;
  int resolved = resolve_worker_count(workers);
  if (static_cast<std::size_t>(resolved) > count) {
    resolved = static_cast<int>(count);
  }
  if (resolved <= 1) {
    // Serial path: index order on the calling thread (VROOM_JOBS=1 replays
    // the serial visit order, mirroring run_plan's one-worker mode).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < count; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(resolved));
  for (int w = 0; w < resolved; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

std::vector<harness::CorpusResult> run_plan(const SweepPlan& plan,
                                            const FleetOptions& fleet) {
  const int n_cells = static_cast<int>(plan.cells.size());

  // Observability gates, flipped once per run from the environment (the obs
  // library itself never reads env). A fresh run owns the registry and the
  // phase tables: the export and the printed profile cover exactly this run
  // plus whatever the caller records before the next one starts.
  const harness::Env env = harness::Env::from_environment();
  obs::set_metrics_enabled(env.metrics_enabled());
  obs::set_profiling_enabled(env.profile);
  if (env.metrics_enabled()) obs::registry().reset();
  if (env.profile) obs::reset_phase_profile();

  // Compile the plan: per-cell extents and flat result-grid offsets. Each
  // cell may bring its own loads_per_page / options, so offsets accumulate.
  std::vector<CompiledCell> cells(static_cast<std::size_t>(n_cells));
  std::size_t total_jobs = 0;
  bool any_warm_cache = false;
  bool any_cacheable = false;
  for (int c = 0; c < n_cells; ++c) {
    const SweepCell& cell = plan.cells[static_cast<std::size_t>(c)];
    CompiledCell& cc = cells[static_cast<std::size_t>(c)];
    cc.pages = env.effective_page_count(
        static_cast<int>(cell.corpus->size()));
    cc.loads = cell.options.loads_per_page;
    cc.slot_offset = total_jobs;
    cc.cacheable = harness::result_cache_usable(cell.options, env);
    cc.label = cell.label.empty() ? cell.strategy.name : cell.label;
    total_jobs += static_cast<std::size_t>(cc.pages) *
                  static_cast<std::size_t>(cc.loads);
    any_warm_cache |= cell.options.cache != nullptr;
    any_cacheable |= cc.cacheable;
  }

  // Execution mode (header comment): plain sweep, shard worker
  // (VROOM_SHARD + VROOM_SHARD_DIR), or merge (VROOM_SHARD_DIR alone).
  const bool shard_mode = env.shard.has_value();
  const bool merge_mode = !shard_mode && !env.shard_dir.empty();
  if ((shard_mode || merge_mode) && any_warm_cache) {
    // A shared warm browser::Cache is mutated in cross-cell load order; a
    // per-shard cache would silently diverge from the one-process sweep.
    fatal("warm-cache cells depend on cross-cell load order and cannot be "
          "sharded or merged; run this plan in one process");
  }
  if (shard_mode && env.shard_dir.empty()) {
    fatal("VROOM_SHARD=" + std::to_string(env.shard->index) + "/" +
          std::to_string(env.shard->count) +
          " requires VROOM_SHARD_DIR=<dir> to publish cell files");
  }

  if (merge_mode) {
    ShardMerge merged = merge_shards(plan, env.shard_dir);
    if (!merged.error.empty()) fatal("merge: " + merged.error);
    // Replay the one-process run's per-cell export side effect so a bench
    // binary re-run in merge mode leaves identical artifacts (no-op unless
    // tracing produced counters and VROOM_OUT_DIR is set).
    for (int c = 0; c < n_cells; ++c) {
      harness::maybe_export_counters(
          "trace counters " + cells[static_cast<std::size_t>(c)].label,
          merged.results[static_cast<std::size_t>(c)].counter_totals());
    }
    if (env.metrics_enabled()) {
      obs::Manifest manifest;
      manifest.set("schema", std::int64_t{1});
      manifest.set("kind", "fleet_merge");
      manifest.set("shard.dir", env.shard_dir);
      manifest.set("result_cache_salt_version",
                   static_cast<std::int64_t>(
                       harness::kResultCacheSaltVersion));
      manifest.set("cells", static_cast<std::int64_t>(n_cells));
      for (int c = 0; c < n_cells; ++c) {
        const std::string prefix = "cell." + std::to_string(c) + ".";
        manifest.set(prefix + "label",
                     cells[static_cast<std::size_t>(c)].label);
        manifest.set(prefix + "digest",
                     hex_digest(
                         merged.cell_digests[static_cast<std::size_t>(c)]));
      }
      std::error_code ec;
      std::filesystem::create_directories(env.metrics_dir, ec);
      manifest.write(env.metrics_dir + "/manifest.json");
    }
    return std::move(merged.results);
  }

  // A shard simulates only its contiguous cell slice; everything downstream
  // (job list, telemetry plan, median assembly) iterates this range.
  int cell_begin = 0;
  int cell_end = n_cells;
  if (shard_mode) {
    const std::pair<int, int> range = shard_cell_range(n_cells, *env.shard);
    cell_begin = range.first;
    cell_end = range.second;
  }

  // The flat job list, first in serial (cell, page, load) visit order.
  std::vector<Job> jobs;
  jobs.reserve(total_jobs);
  for (int c = cell_begin; c < cell_end; ++c) {
    for (int p = 0; p < cells[static_cast<std::size_t>(c)].pages; ++p) {
      for (int l = 0; l < cells[static_cast<std::size_t>(c)].loads; ++l) {
        jobs.push_back(Job{c, p, l});
      }
    }
  }

  const std::size_t owned_jobs = jobs.size();
  int workers = resolve_worker_count(fleet.workers, env);
  // A shared warm cache is mutated in load order; parallel execution would
  // change which loads hit it. Degrade to the serial order instead.
  if (any_warm_cache) workers = 1;
  if (owned_jobs < static_cast<std::size_t>(workers)) {
    workers = static_cast<int>(owned_jobs);
  }
  if (workers < 1) workers = 1;

  // Dispatch order. One worker keeps the serial grid order — that is the
  // documented VROOM_JOBS=1 "replay the serial path" mode, and warm-cache
  // cells depend on it. A real pool dispatches longest-job-first (page
  // resource count as the size proxy) so the heaviest pages start early
  // instead of straggling at the tail; the order is a pure function of the
  // plan (ties by job identity), and results never depend on it — slots
  // and seeds are job-identity-based.
  if (workers > 1) {
    jobs = order_longest_first(
        std::move(jobs), [&plan](const Job& job) -> std::size_t {
          return plan.cells[static_cast<std::size_t>(job.cell_index)]
              .corpus->page(static_cast<std::size_t>(job.page_index))
              .size();
        });
  }
  JobQueue queue(std::move(jobs));

  Telemetry local_telemetry;
  Telemetry* telemetry =
      fleet.telemetry != nullptr ? fleet.telemetry : &local_telemetry;
  std::vector<Telemetry::CellPlan> cell_plans;
  cell_plans.reserve(static_cast<std::size_t>(n_cells));
  for (const CompiledCell& cc : cells) {
    cell_plans.push_back(Telemetry::CellPlan{
        cc.label, static_cast<std::size_t>(cc.pages) *
                      static_cast<std::size_t>(cc.loads)});
  }
  telemetry->begin_run(workers, queue.size(), std::move(cell_plans));
  if (env.metrics_enabled()) {
    obs::registry()
        .gauge("fleet.run.workers", obs::Plane::Wall)
        .set_max(workers);
  }
  ProgressTicker ticker(queue, *telemetry, env.progress);

  // Opt-in result cache (VROOM_RESULT_CACHE=<dir>): identical jobs from
  // earlier sweeps are answered from disk instead of re-simulated. Cells
  // whose results the cache cannot represent faithfully — warm-cache
  // (order-dependent) and traced (per-load side effects) — bypass it;
  // other cells of the same plan still use it.
  std::unique_ptr<harness::ResultCache> cache =
      harness::ResultCache::from_env(env);
  if (cache != nullptr && !any_cacheable) {
    std::fprintf(stderr,
                 "[fleet] note: VROOM_RESULT_CACHE set but this run is not "
                 "cacheable (warm cache or tracing active); bypassing\n");
    cache.reset();
  }

  // Flat result grid, one pre-assigned slot per job: workers never write to
  // overlapping memory, and claim order cannot affect where results land.
  // Sized by the full plan (slot offsets are plan-global); in shard mode
  // the unowned slots simply stay default-empty.
  std::vector<browser::LoadResult> grid(total_jobs);
  auto slot = [&cells](const Job& job) -> std::size_t {
    const CompiledCell& cc = cells[static_cast<std::size_t>(job.cell_index)];
    return cc.slot_offset +
           static_cast<std::size_t>(job.page_index) *
               static_cast<std::size_t>(cc.loads) +
           static_cast<std::size_t>(job.load_index);
  };

  auto worker_loop = [&](int worker_id) {
    while (std::optional<Job> job = queue.pop()) {
      telemetry->job_started(worker_id);
      const double started = monotonic_seconds();
      const SweepCell& cell =
          plan.cells[static_cast<std::size_t>(job->cell_index)];
      const bool cell_cacheable =
          cells[static_cast<std::size_t>(job->cell_index)].cacheable;
      const web::PageModel& page =
          cell.corpus->page(static_cast<std::size_t>(job->page_index));
      // Seed derivation matches harness::run_page_median exactly: the nonce
      // depends only on (seed, page id, load index).
      const std::uint64_t nonce = harness::derive_load_nonce(
          cell.options.seed, page.page_id(), job->load_index);
      browser::LoadResult result;
      bool from_cache = false;
      // CacheKey hashes its string once at construction; a miss-then-store
      // pair reuses the same key object.
      std::optional<harness::CacheKey> key;
      if (cache != nullptr && cell_cacheable) {
        obs::PhaseTimer lookup_phase(obs::Phase::CacheLookup);
        key.emplace(harness::result_cache_key(cell.strategy, cell.options,
                                              page.page_id(), nonce));
        if (std::optional<browser::LoadResult> hit = cache->get(*key)) {
          result = std::move(*hit);
          from_cache = true;
          telemetry->job_from_cache(worker_id, job->cell_index);
        }
      }
      if (!from_cache) {
        result = harness::run_page_load(page, cell.strategy, cell.options,
                                        nonce);
        if (cache != nullptr && cell_cacheable) {
          obs::PhaseTimer store_phase(obs::Phase::CacheStore);
          cache->put(*key, result);
        }
      }
      const double job_seconds = monotonic_seconds() - started;
      record_job_metrics(result, from_cache, job_seconds);
      const sim::Time simulated = result.plt;
      grid[slot(*job)] = std::move(result);
      telemetry->job_finished(worker_id, job->cell_index, job_seconds,
                              simulated);
      ticker.tick();
    }
  };

  if (workers == 1) {
    // Serial path: drain the queue on the calling thread in grid order —
    // cell-major then page-major then load-major, the exact visit order of
    // the historical serial sweep.
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (std::thread& t : pool) t.join();
  }
  telemetry->end_run();
  ticker.finish();
  if (cache != nullptr) {
    // Always on stderr (stdout must stay byte-identical with caching off).
    const harness::ResultCacheStats cs = cache->stats();
    std::fprintf(stderr,
                 "[fleet] result cache \"%s\": %llu hits, %llu misses, "
                 "%llu stored, %llu corrupt\n",
                 cache->dir().c_str(), static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 static_cast<unsigned long long>(cs.stores),
                 static_cast<unsigned long long>(cs.errors));
    if (env.cache_max_bytes > 0) {
      // Post-sweep collection (DESIGN.md §14): sweep stale salt
      // generations, then LRU-evict down to the cap. Running it here —
      // after this sweep's entries landed and had their mtimes touched —
      // means the cap applies to the cache the *next* run will see.
      harness::GcPolicy policy;
      policy.dir = cache->dir();
      policy.max_bytes = env.cache_max_bytes;
      const harness::GcStats gc = harness::cache_gc(policy);
      std::fprintf(
          stderr,
          "[fleet] cache gc \"%s\": %llu scanned, %llu stale, %llu evicted, "
          "%llu corrupt; %llu -> %llu bytes (cap %lld)\n",
          cache->dir().c_str(), static_cast<unsigned long long>(gc.scanned),
          static_cast<unsigned long long>(gc.stale_deleted),
          static_cast<unsigned long long>(gc.evicted),
          static_cast<unsigned long long>(gc.errors),
          static_cast<unsigned long long>(gc.scanned_bytes),
          static_cast<unsigned long long>(gc.remaining_bytes),
          static_cast<long long>(env.cache_max_bytes));
    }
  }
  if (env.profile) {
    // Collected after the pool joins: every worker's thread-local table has
    // folded into the retired aggregate, so the table partitions the run's
    // whole worker time. Stderr only — stdout stays frozen.
    std::fputs(obs::format_phase_profile(
                   obs::collect_phase_profile(),
                   telemetry->summary().busy_seconds_total)
                   .c_str(),
               stderr);
  }
  if (env.metrics_enabled()) {
    obs::PhaseTimer export_phase(obs::Phase::Export);
    // N shard processes sharing one VROOM_METRICS dir must not clobber each
    // other's export: each shard gets an identity-named subdirectory.
    std::string metrics_dir = env.metrics_dir;
    if (shard_mode) {
      metrics_dir += "/shard_" + std::to_string(env.shard->index) + "_of_" +
                     std::to_string(env.shard->count);
    }
    std::error_code ec;
    std::filesystem::create_directories(metrics_dir, ec);
    obs::registry().export_to(metrics_dir);
    obs::Manifest manifest;
    manifest.set("schema", std::int64_t{1});
    manifest.set("kind", "fleet_sweep");
    if (shard_mode) {
      manifest.set("shard.index",
                   static_cast<std::int64_t>(env.shard->index));
      manifest.set("shard.count",
                   static_cast<std::int64_t>(env.shard->count));
      manifest.set("shard.dir", env.shard_dir);
      manifest.set("shard.cells.begin",
                   static_cast<std::int64_t>(cell_begin));
      manifest.set("shard.cells.end", static_cast<std::int64_t>(cell_end));
    }
    manifest.set("env.jobs", static_cast<std::int64_t>(env.jobs));
    manifest.set("env.bench_pages",
                 static_cast<std::int64_t>(env.bench_pages));
    manifest.set("env.result_cache", env.result_cache_dir);
    manifest.set("env.trace", env.trace_dir);
    manifest.set("env.out_dir", env.out_dir);
    manifest.set("env.metrics", env.metrics_dir);
    manifest.set("env.profile", std::int64_t{env.profile ? 1 : 0});
    manifest.set("env.progress", std::int64_t{env.progress ? 1 : 0});
    manifest.set("env.deploy_arrivals",
                 static_cast<std::int64_t>(env.deploy_arrivals));
    manifest.set("env.deploy_window_hours",
                 static_cast<std::int64_t>(env.deploy_window_hours));
    manifest.set("env.shard_dir", env.shard_dir);
    manifest.set("env.cache_max_bytes",
                 static_cast<std::int64_t>(env.cache_max_bytes));
    manifest.set("result_cache_salt_version",
                 static_cast<std::int64_t>(harness::kResultCacheSaltVersion));
    manifest.set("workers", static_cast<std::int64_t>(workers));
    manifest.set("jobs.total", static_cast<std::uint64_t>(total_jobs));
    manifest.set("jobs.from_cache",
                 static_cast<std::uint64_t>(telemetry->jobs_from_cache()));
    manifest.set("cells", static_cast<std::int64_t>(n_cells));
    for (int c = 0; c < n_cells; ++c) {
      const SweepCell& cell = plan.cells[static_cast<std::size_t>(c)];
      const CompiledCell& cc = cells[static_cast<std::size_t>(c)];
      const std::string prefix = "cell." + std::to_string(c) + ".";
      manifest.set(prefix + "label", cc.label);
      manifest.set(prefix + "fingerprint", cell.strategy.fingerprint());
      manifest.set(prefix + "seed",
                   static_cast<std::uint64_t>(cell.options.seed));
      manifest.set(prefix + "pages", static_cast<std::int64_t>(cc.pages));
      manifest.set(prefix + "loads", static_cast<std::int64_t>(cc.loads));
    }
    manifest.set("digest.metrics_prom",
                 hex_digest(obs::registry().digest(obs::Plane::Virtual)));
    manifest.set("digest.wall_sidecar_prom",
                 hex_digest(obs::registry().digest(obs::Plane::Wall)));
    manifest.write(metrics_dir + "/manifest.json");
  }

  // Median selection in load-index order, identical to run_page_median;
  // per-cell results in plan order. A shard assembles only its owned slice
  // (other slots stay default-empty) and publishes each owned cell for the
  // merge pass instead of exporting counters itself — exports happen once,
  // from the merge, so sharded and one-process sweeps leave identical
  // artifacts.
  std::vector<harness::CorpusResult> results(
      static_cast<std::size_t>(n_cells));
  for (int c = cell_begin; c < cell_end; ++c) {
    const CompiledCell& cc = cells[static_cast<std::size_t>(c)];
    auto& out = results[static_cast<std::size_t>(c)];
    out.strategy = cc.label;
    out.loads.reserve(static_cast<std::size_t>(cc.pages));
    for (int p = 0; p < cc.pages; ++p) {
      std::vector<browser::LoadResult> runs;
      runs.reserve(static_cast<std::size_t>(cc.loads));
      for (int l = 0; l < cc.loads; ++l) {
        runs.push_back(std::move(grid[slot(Job{c, p, l})]));
      }
      out.loads.push_back(harness::select_median_load(std::move(runs)));
    }
    if (shard_mode) {
      publish_shard_cell(env.shard_dir, c,
                         harness::serialize_corpus_result(out));
    } else {
      // Tracing runs export their aggregated counters alongside the figure
      // CSVs (no-op when tracing was off or VROOM_OUT_DIR is unset).
      harness::maybe_export_counters("trace counters " + cc.label,
                                     out.counter_totals());
    }
  }
  return results;
}

std::vector<harness::CorpusResult> run_matrix(
    const web::Corpus& corpus,
    const std::vector<baselines::Strategy>& strategies,
    const harness::RunOptions& options, const FleetOptions& fleet) {
  SweepPlan plan;
  plan.add_matrix(corpus, strategies, options);
  return run_plan(plan, fleet);
}

harness::CorpusResult run_corpus(const web::Corpus& corpus,
                                 const baselines::Strategy& strategy,
                                 const harness::RunOptions& options,
                                 const FleetOptions& fleet) {
  SweepPlan plan;
  plan.add(corpus, strategy, options);
  return std::move(run_plan(plan, fleet).front());
}

}  // namespace vroom::fleet

namespace vroom::harness {

// The canonical corpus sweep now rides the fleet. Declared in
// harness/experiment.h; defined here so the harness library stays free of
// threading concerns (and of a link cycle with the fleet).
CorpusResult run_corpus(const web::Corpus& corpus,
                        const baselines::Strategy& strategy,
                        const RunOptions& options) {
  return fleet::run_corpus(corpus, strategy, options);
}

}  // namespace vroom::harness
