#include "fleet/fleet.h"

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "fleet/job_queue.h"
#include "harness/export.h"
#include "harness/result_cache.h"

namespace vroom::fleet {

namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Opt-in live progress line (VROOM_PROGRESS=1): workers redraw a single
// stderr line — `\r`, no newline — at most every 500 ms; a CAS on the
// next-redraw deadline elects one worker per window, so the line never
// interleaves. Goes to stderr so stdout stays byte-identical. finish()
// prints the terminating newline.
class ProgressTicker {
 public:
  ProgressTicker(const JobQueue& queue, const Telemetry& telemetry)
      : queue_(queue), telemetry_(telemetry), start_(monotonic_seconds()) {
    const char* env = std::getenv("VROOM_PROGRESS");
    enabled_ = env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }

  void tick() {
    if (!enabled_) return;
    const double now = monotonic_seconds();
    double deadline = next_redraw_.load(std::memory_order_relaxed);
    if (now < deadline ||
        !next_redraw_.compare_exchange_strong(deadline, now + 0.5,
                                              std::memory_order_relaxed)) {
      return;
    }
    const std::size_t done = telemetry_.jobs_completed();
    const double elapsed = now - start_;
    std::fprintf(stderr, "\r[fleet] %zu/%zu jobs (%zu unclaimed), %.1f jobs/s",
                 done, queue_.size(), queue_.remaining(),
                 elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0);
    std::fflush(stderr);
    printed_ = true;
  }

  // Call after the pool joins: replaces the partial line with the final
  // count and ends it with a newline.
  void finish() {
    if (!enabled_ || !printed_) return;
    std::fprintf(stderr, "\r[fleet] %zu/%zu jobs done                    \n",
                 telemetry_.jobs_completed(), queue_.size());
  }

 private:
  const JobQueue& queue_;
  const Telemetry& telemetry_;
  double start_;
  bool enabled_ = false;
  std::atomic<bool> printed_{false};
  std::atomic<double> next_redraw_{0};
};

}  // namespace

int resolve_worker_count(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("VROOM_JOBS")) {
    int value = 0;
    const char* end = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, end, value);
    if (ec == std::errc() && ptr == end && value > 0) return value;
    std::fprintf(stderr,
                 "[fleet] warning: ignoring invalid VROOM_JOBS=\"%s\" "
                 "(want a positive integer); using %d workers\n",
                 env, hardware_workers());
  }
  return hardware_workers();
}

std::vector<harness::CorpusResult> run_matrix(
    const web::Corpus& corpus,
    const std::vector<baselines::Strategy>& strategies,
    const harness::RunOptions& options, const FleetOptions& fleet) {
  const int n_strategies = static_cast<int>(strategies.size());
  const int n_pages = harness::effective_page_count(
      static_cast<int>(corpus.size()));
  const int loads = options.loads_per_page;

  std::vector<harness::CorpusResult> results(
      static_cast<std::size_t>(n_strategies));
  for (int s = 0; s < n_strategies; ++s) {
    results[static_cast<std::size_t>(s)].strategy =
        strategies[static_cast<std::size_t>(s)].name;
  }

  JobQueue queue(JobQueue::grid(n_strategies, n_pages, loads));

  int workers = resolve_worker_count(fleet.workers);
  // A shared warm cache is mutated in load order; parallel execution would
  // change which loads hit it. Degrade to the serial order instead.
  if (options.cache != nullptr) workers = 1;
  if (queue.size() < static_cast<std::size_t>(workers)) {
    workers = static_cast<int>(queue.size());
  }
  if (workers < 1) workers = 1;

  Telemetry local_telemetry;
  Telemetry* telemetry =
      fleet.telemetry != nullptr ? fleet.telemetry : &local_telemetry;
  telemetry->begin_run(workers, queue.size());
  ProgressTicker ticker(queue, *telemetry);

  // Opt-in result cache (VROOM_RESULT_CACHE=<dir>): identical jobs from
  // earlier sweeps are answered from disk instead of re-simulated. Runs
  // whose results the cache cannot represent faithfully — warm-cache
  // (order-dependent) and traced (per-load side effects) — bypass it.
  std::unique_ptr<harness::ResultCache> cache = harness::ResultCache::
      from_env();
  if (cache != nullptr && !harness::result_cache_usable(options)) {
    std::fprintf(stderr,
                 "[fleet] note: VROOM_RESULT_CACHE set but this run is not "
                 "cacheable (warm cache or tracing active); bypassing\n");
    cache.reset();
  }

  // Flat result grid, one pre-assigned slot per job: workers never write to
  // overlapping memory, and claim order cannot affect where results land.
  std::vector<browser::LoadResult> grid(queue.size());
  auto slot = [n_pages, loads](const Job& job) -> std::size_t {
    return (static_cast<std::size_t>(job.strategy_index) *
                static_cast<std::size_t>(n_pages) +
            static_cast<std::size_t>(job.page_index)) *
               static_cast<std::size_t>(loads) +
           static_cast<std::size_t>(job.load_index);
  };

  auto worker_loop = [&](int worker_id) {
    while (std::optional<Job> job = queue.pop()) {
      telemetry->job_started(worker_id);
      const double started = monotonic_seconds();
      const web::PageModel& page =
          corpus.page(static_cast<std::size_t>(job->page_index));
      const baselines::Strategy& strategy =
          strategies[static_cast<std::size_t>(job->strategy_index)];
      // Seed derivation matches harness::run_page_median exactly: the nonce
      // depends only on (seed, page id, load index).
      const std::uint64_t nonce = harness::derive_load_nonce(
          options.seed, page.page_id(), job->load_index);
      browser::LoadResult result;
      bool from_cache = false;
      std::string key;
      if (cache != nullptr) {
        key = harness::result_cache_key(strategy, options, page.page_id(),
                                        nonce);
        if (std::optional<browser::LoadResult> hit = cache->get(key)) {
          result = std::move(*hit);
          from_cache = true;
          telemetry->job_from_cache(worker_id);
        }
      }
      if (!from_cache) {
        result = harness::run_page_load(page, strategy, options, nonce);
        if (cache != nullptr) cache->put(key, result);
      }
      const sim::Time simulated = result.plt;
      grid[slot(*job)] = std::move(result);
      telemetry->job_finished(worker_id, monotonic_seconds() - started,
                              simulated);
      ticker.tick();
    }
  };

  if (workers == 1) {
    // Serial path: drain the queue on the calling thread. Grid order is
    // strategy-major then page-major then load-major — the exact visit
    // order of the historical serial sweep.
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (std::thread& t : pool) t.join();
  }
  telemetry->end_run();
  ticker.finish();
  if (cache != nullptr) {
    // Always on stderr (stdout must stay byte-identical with caching off).
    const harness::ResultCacheStats cs = cache->stats();
    std::fprintf(stderr,
                 "[fleet] result cache \"%s\": %llu hits, %llu misses, "
                 "%llu stored, %llu corrupt\n",
                 cache->dir().c_str(), static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 static_cast<unsigned long long>(cs.stores),
                 static_cast<unsigned long long>(cs.errors));
  }

  // Median selection in load-index order, identical to run_page_median.
  for (int s = 0; s < n_strategies; ++s) {
    auto& out = results[static_cast<std::size_t>(s)];
    out.loads.reserve(static_cast<std::size_t>(n_pages));
    for (int p = 0; p < n_pages; ++p) {
      std::vector<browser::LoadResult> runs;
      runs.reserve(static_cast<std::size_t>(loads));
      for (int l = 0; l < loads; ++l) {
        runs.push_back(std::move(grid[slot(Job{s, p, l})]));
      }
      out.loads.push_back(harness::select_median_load(std::move(runs)));
    }
    // Tracing runs export their aggregated counters alongside the figure
    // CSVs (no-op when tracing was off or VROOM_OUT_DIR is unset).
    harness::maybe_export_counters("trace counters " + out.strategy,
                                   out.counter_totals());
  }
  return results;
}

harness::CorpusResult run_corpus(const web::Corpus& corpus,
                                 const baselines::Strategy& strategy,
                                 const harness::RunOptions& options,
                                 const FleetOptions& fleet) {
  return std::move(
      run_matrix(corpus, {strategy}, options, fleet).front());
}

}  // namespace vroom::fleet

namespace vroom::harness {

// The canonical corpus sweep now rides the fleet. Declared in
// harness/experiment.h; defined here so the harness library stays free of
// threading concerns (and of a link cycle with the fleet).
CorpusResult run_corpus(const web::Corpus& corpus,
                        const baselines::Strategy& strategy,
                        const RunOptions& options) {
  return fleet::run_corpus(corpus, strategy, options);
}

}  // namespace vroom::harness
