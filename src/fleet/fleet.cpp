#include "fleet/fleet.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "fleet/job_queue.h"
#include "harness/env.h"
#include "harness/export.h"
#include "harness/result_cache.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"

namespace vroom::fleet {

namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Opt-in live progress line (VROOM_PROGRESS=1): workers redraw a single
// stderr line — `\r`, no newline — at most every 500 ms; a CAS on the
// next-redraw deadline elects one worker per window, so the line never
// interleaves. Goes to stderr so stdout stays byte-identical. finish()
// prints the terminating newline.
class ProgressTicker {
 public:
  ProgressTicker(const JobQueue& queue, const Telemetry& telemetry)
      : queue_(queue), telemetry_(telemetry), start_(monotonic_seconds()) {
    enabled_ = harness::Env::from_environment().progress;
  }

  void tick() {
    if (!enabled_) return;
    const double now = monotonic_seconds();
    double deadline = next_redraw_.load(std::memory_order_relaxed);
    if (now < deadline ||
        !next_redraw_.compare_exchange_strong(deadline, now + 0.5,
                                              std::memory_order_relaxed)) {
      return;
    }
    const std::size_t done = telemetry_.jobs_completed();
    const std::size_t total = queue_.size();
    const std::size_t cached = telemetry_.jobs_from_cache();
    const double elapsed = now - start_;
    const double rate =
        elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0;
    // ETA from the running rate; "--" until the first job lands. Cache hits
    // make the estimate conservative (hits are faster than the average).
    char eta[32];
    if (rate > 0 && done <= total) {
      const double left = static_cast<double>(total - done) / rate;
      if (left >= 3600) {
        std::snprintf(eta, sizeof eta, "%.1fh", left / 3600);
      } else if (left >= 60) {
        std::snprintf(eta, sizeof eta, "%.1fm", left / 60);
      } else {
        std::snprintf(eta, sizeof eta, "%.0fs", left);
      }
    } else {
      std::snprintf(eta, sizeof eta, "--");
    }
    // Trailing spaces scrub leftovers when this line is shorter than the
    // previous redraw.
    std::fprintf(stderr,
                 "\r[fleet] %zu/%zu jobs (%zu unclaimed), %.1f jobs/s, "
                 "%.0f%% cached, ETA %s   ",
                 done, total, queue_.remaining(), rate,
                 done > 0
                     ? 100.0 * static_cast<double>(cached) /
                           static_cast<double>(done)
                     : 0.0,
                 eta);
    std::fflush(stderr);
    printed_ = true;
  }

  // Call after the pool joins: replaces the partial line with the final
  // count and ends it with a newline.
  void finish() {
    if (!enabled_ || !printed_) return;
    std::fprintf(stderr,
                 "\r[fleet] %zu/%zu jobs done"
                 "                                                  \n",
                 telemetry_.jobs_completed(), queue_.size());
  }

 private:
  const JobQueue& queue_;
  const Telemetry& telemetry_;
  double start_;
  bool enabled_ = false;
  std::atomic<bool> printed_{false};
  std::atomic<double> next_redraw_{0};
};

// One plan cell, compiled: page/load extents, the flat-grid slot offset,
// the resolved display label, and whether the result cache may serve it.
struct CompiledCell {
  int pages = 0;
  int loads = 0;
  std::size_t slot_offset = 0;
  bool cacheable = false;
  std::string label;
};

// Per-job metric recording (DESIGN.md §12). Job totals, cache hits, and the
// summed virtual time are commutative adds, so the virtual-plane export is
// byte-identical at any VROOM_JOBS; the job wall-time distribution is
// nondeterministic by nature and goes to the wall sidecar.
void record_job_metrics(const browser::LoadResult& result, bool from_cache,
                        double wall_seconds) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& completed =
      obs::registry().counter("fleet.jobs.completed");
  static obs::Counter& cached =
      obs::registry().counter("fleet.jobs.from_cache");
  static obs::Counter& virtual_us =
      obs::registry().counter("fleet.sim.virtual_us");
  static obs::Histogram& wall_us =
      obs::registry().histogram("fleet.jobs.wall_us", obs::Plane::Wall);
  completed.add();
  if (from_cache) cached.add();
  virtual_us.add(result.plt);
  wall_us.record(static_cast<std::int64_t>(wall_seconds * 1e6));
}

std::string hex_digest(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

int resolve_worker_count(int requested) {
  if (requested > 0) return requested;
  const int env_jobs = harness::Env::from_environment().jobs;
  if (env_jobs > 0) return env_jobs;
  return hardware_workers();
}

std::vector<harness::CorpusResult> run_plan(const SweepPlan& plan,
                                            const FleetOptions& fleet) {
  const int n_cells = static_cast<int>(plan.cells.size());

  // Observability gates, flipped once per run from the environment (the obs
  // library itself never reads env). A fresh run owns the registry and the
  // phase tables: the export and the printed profile cover exactly this run
  // plus whatever the caller records before the next one starts.
  const harness::Env env = harness::Env::from_environment();
  obs::set_metrics_enabled(env.metrics_enabled());
  obs::set_profiling_enabled(env.profile);
  if (env.metrics_enabled()) obs::registry().reset();
  if (env.profile) obs::reset_phase_profile();

  // Compile the plan: per-cell extents and flat result-grid offsets. Each
  // cell may bring its own loads_per_page / options, so offsets accumulate.
  std::vector<CompiledCell> cells(static_cast<std::size_t>(n_cells));
  std::size_t total_jobs = 0;
  bool any_warm_cache = false;
  bool any_cacheable = false;
  for (int c = 0; c < n_cells; ++c) {
    const SweepCell& cell = plan.cells[static_cast<std::size_t>(c)];
    CompiledCell& cc = cells[static_cast<std::size_t>(c)];
    cc.pages = harness::effective_page_count(
        static_cast<int>(cell.corpus->size()));
    cc.loads = cell.options.loads_per_page;
    cc.slot_offset = total_jobs;
    cc.cacheable = harness::result_cache_usable(cell.options);
    cc.label = cell.label.empty() ? cell.strategy.name : cell.label;
    total_jobs += static_cast<std::size_t>(cc.pages) *
                  static_cast<std::size_t>(cc.loads);
    any_warm_cache |= cell.options.cache != nullptr;
    any_cacheable |= cc.cacheable;
  }

  // The flat job list, first in serial (cell, page, load) visit order.
  std::vector<Job> jobs;
  jobs.reserve(total_jobs);
  for (int c = 0; c < n_cells; ++c) {
    for (int p = 0; p < cells[static_cast<std::size_t>(c)].pages; ++p) {
      for (int l = 0; l < cells[static_cast<std::size_t>(c)].loads; ++l) {
        jobs.push_back(Job{c, p, l});
      }
    }
  }

  int workers = resolve_worker_count(fleet.workers);
  // A shared warm cache is mutated in load order; parallel execution would
  // change which loads hit it. Degrade to the serial order instead.
  if (any_warm_cache) workers = 1;
  if (total_jobs < static_cast<std::size_t>(workers)) {
    workers = static_cast<int>(total_jobs);
  }
  if (workers < 1) workers = 1;

  // Dispatch order. One worker keeps the serial grid order — that is the
  // documented VROOM_JOBS=1 "replay the serial path" mode, and warm-cache
  // cells depend on it. A real pool dispatches longest-job-first (page
  // resource count as the size proxy) so the heaviest pages start early
  // instead of straggling at the tail; the order is a pure function of the
  // plan (ties by job identity), and results never depend on it — slots
  // and seeds are job-identity-based.
  if (workers > 1) {
    jobs = order_longest_first(
        std::move(jobs), [&plan](const Job& job) -> std::size_t {
          return plan.cells[static_cast<std::size_t>(job.cell_index)]
              .corpus->page(static_cast<std::size_t>(job.page_index))
              .size();
        });
  }
  JobQueue queue(std::move(jobs));

  Telemetry local_telemetry;
  Telemetry* telemetry =
      fleet.telemetry != nullptr ? fleet.telemetry : &local_telemetry;
  std::vector<Telemetry::CellPlan> cell_plans;
  cell_plans.reserve(static_cast<std::size_t>(n_cells));
  for (const CompiledCell& cc : cells) {
    cell_plans.push_back(Telemetry::CellPlan{
        cc.label, static_cast<std::size_t>(cc.pages) *
                      static_cast<std::size_t>(cc.loads)});
  }
  telemetry->begin_run(workers, queue.size(), std::move(cell_plans));
  if (env.metrics_enabled()) {
    obs::registry()
        .gauge("fleet.run.workers", obs::Plane::Wall)
        .set_max(workers);
  }
  ProgressTicker ticker(queue, *telemetry);

  // Opt-in result cache (VROOM_RESULT_CACHE=<dir>): identical jobs from
  // earlier sweeps are answered from disk instead of re-simulated. Cells
  // whose results the cache cannot represent faithfully — warm-cache
  // (order-dependent) and traced (per-load side effects) — bypass it;
  // other cells of the same plan still use it.
  std::unique_ptr<harness::ResultCache> cache = harness::ResultCache::
      from_env();
  if (cache != nullptr && !any_cacheable) {
    std::fprintf(stderr,
                 "[fleet] note: VROOM_RESULT_CACHE set but this run is not "
                 "cacheable (warm cache or tracing active); bypassing\n");
    cache.reset();
  }

  // Flat result grid, one pre-assigned slot per job: workers never write to
  // overlapping memory, and claim order cannot affect where results land.
  std::vector<browser::LoadResult> grid(queue.size());
  auto slot = [&cells](const Job& job) -> std::size_t {
    const CompiledCell& cc = cells[static_cast<std::size_t>(job.cell_index)];
    return cc.slot_offset +
           static_cast<std::size_t>(job.page_index) *
               static_cast<std::size_t>(cc.loads) +
           static_cast<std::size_t>(job.load_index);
  };

  auto worker_loop = [&](int worker_id) {
    while (std::optional<Job> job = queue.pop()) {
      telemetry->job_started(worker_id);
      const double started = monotonic_seconds();
      const SweepCell& cell =
          plan.cells[static_cast<std::size_t>(job->cell_index)];
      const bool cell_cacheable =
          cells[static_cast<std::size_t>(job->cell_index)].cacheable;
      const web::PageModel& page =
          cell.corpus->page(static_cast<std::size_t>(job->page_index));
      // Seed derivation matches harness::run_page_median exactly: the nonce
      // depends only on (seed, page id, load index).
      const std::uint64_t nonce = harness::derive_load_nonce(
          cell.options.seed, page.page_id(), job->load_index);
      browser::LoadResult result;
      bool from_cache = false;
      std::string key;
      if (cache != nullptr && cell_cacheable) {
        obs::PhaseTimer lookup_phase(obs::Phase::CacheLookup);
        key = harness::result_cache_key(cell.strategy, cell.options,
                                        page.page_id(), nonce);
        if (std::optional<browser::LoadResult> hit = cache->get(key)) {
          result = std::move(*hit);
          from_cache = true;
          telemetry->job_from_cache(worker_id, job->cell_index);
        }
      }
      if (!from_cache) {
        result = harness::run_page_load(page, cell.strategy, cell.options,
                                        nonce);
        if (cache != nullptr && cell_cacheable) {
          obs::PhaseTimer store_phase(obs::Phase::CacheStore);
          cache->put(key, result);
        }
      }
      const double job_seconds = monotonic_seconds() - started;
      record_job_metrics(result, from_cache, job_seconds);
      const sim::Time simulated = result.plt;
      grid[slot(*job)] = std::move(result);
      telemetry->job_finished(worker_id, job->cell_index, job_seconds,
                              simulated);
      ticker.tick();
    }
  };

  if (workers == 1) {
    // Serial path: drain the queue on the calling thread in grid order —
    // cell-major then page-major then load-major, the exact visit order of
    // the historical serial sweep.
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (std::thread& t : pool) t.join();
  }
  telemetry->end_run();
  ticker.finish();
  if (cache != nullptr) {
    // Always on stderr (stdout must stay byte-identical with caching off).
    const harness::ResultCacheStats cs = cache->stats();
    std::fprintf(stderr,
                 "[fleet] result cache \"%s\": %llu hits, %llu misses, "
                 "%llu stored, %llu corrupt\n",
                 cache->dir().c_str(), static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 static_cast<unsigned long long>(cs.stores),
                 static_cast<unsigned long long>(cs.errors));
  }
  if (env.profile) {
    // Collected after the pool joins: every worker's thread-local table has
    // folded into the retired aggregate, so the table partitions the run's
    // whole worker time. Stderr only — stdout stays frozen.
    std::fputs(obs::format_phase_profile(
                   obs::collect_phase_profile(),
                   telemetry->summary().busy_seconds_total)
                   .c_str(),
               stderr);
  }
  if (env.metrics_enabled()) {
    obs::PhaseTimer export_phase(obs::Phase::Export);
    obs::registry().export_to(env.metrics_dir);
    obs::Manifest manifest;
    manifest.set("schema", std::int64_t{1});
    manifest.set("kind", "fleet_sweep");
    manifest.set("env.jobs", static_cast<std::int64_t>(env.jobs));
    manifest.set("env.bench_pages",
                 static_cast<std::int64_t>(env.bench_pages));
    manifest.set("env.result_cache", env.result_cache_dir);
    manifest.set("env.trace", env.trace_dir);
    manifest.set("env.out_dir", env.out_dir);
    manifest.set("env.metrics", env.metrics_dir);
    manifest.set("env.profile", std::int64_t{env.profile ? 1 : 0});
    manifest.set("env.progress", std::int64_t{env.progress ? 1 : 0});
    manifest.set("env.deploy_arrivals",
                 static_cast<std::int64_t>(env.deploy_arrivals));
    manifest.set("env.deploy_window_hours",
                 static_cast<std::int64_t>(env.deploy_window_hours));
    manifest.set("result_cache_salt_version",
                 static_cast<std::int64_t>(harness::kResultCacheSaltVersion));
    manifest.set("workers", static_cast<std::int64_t>(workers));
    manifest.set("jobs.total", static_cast<std::uint64_t>(total_jobs));
    manifest.set("jobs.from_cache",
                 static_cast<std::uint64_t>(telemetry->jobs_from_cache()));
    manifest.set("cells", static_cast<std::int64_t>(n_cells));
    for (int c = 0; c < n_cells; ++c) {
      const SweepCell& cell = plan.cells[static_cast<std::size_t>(c)];
      const CompiledCell& cc = cells[static_cast<std::size_t>(c)];
      const std::string prefix = "cell." + std::to_string(c) + ".";
      manifest.set(prefix + "label", cc.label);
      manifest.set(prefix + "fingerprint", cell.strategy.fingerprint());
      manifest.set(prefix + "seed",
                   static_cast<std::uint64_t>(cell.options.seed));
      manifest.set(prefix + "pages", static_cast<std::int64_t>(cc.pages));
      manifest.set(prefix + "loads", static_cast<std::int64_t>(cc.loads));
    }
    manifest.set("digest.metrics_prom",
                 hex_digest(obs::registry().digest(obs::Plane::Virtual)));
    manifest.set("digest.wall_sidecar_prom",
                 hex_digest(obs::registry().digest(obs::Plane::Wall)));
    manifest.write(env.metrics_dir + "/manifest.json");
  }

  // Median selection in load-index order, identical to run_page_median;
  // per-cell results in plan order.
  std::vector<harness::CorpusResult> results(
      static_cast<std::size_t>(n_cells));
  for (int c = 0; c < n_cells; ++c) {
    const CompiledCell& cc = cells[static_cast<std::size_t>(c)];
    auto& out = results[static_cast<std::size_t>(c)];
    out.strategy = cc.label;
    out.loads.reserve(static_cast<std::size_t>(cc.pages));
    for (int p = 0; p < cc.pages; ++p) {
      std::vector<browser::LoadResult> runs;
      runs.reserve(static_cast<std::size_t>(cc.loads));
      for (int l = 0; l < cc.loads; ++l) {
        runs.push_back(std::move(grid[slot(Job{c, p, l})]));
      }
      out.loads.push_back(harness::select_median_load(std::move(runs)));
    }
    // Tracing runs export their aggregated counters alongside the figure
    // CSVs (no-op when tracing was off or VROOM_OUT_DIR is unset).
    harness::maybe_export_counters("trace counters " + cc.label,
                                   out.counter_totals());
  }
  return results;
}

std::vector<harness::CorpusResult> run_matrix(
    const web::Corpus& corpus,
    const std::vector<baselines::Strategy>& strategies,
    const harness::RunOptions& options, const FleetOptions& fleet) {
  SweepPlan plan;
  plan.add_matrix(corpus, strategies, options);
  return run_plan(plan, fleet);
}

harness::CorpusResult run_corpus(const web::Corpus& corpus,
                                 const baselines::Strategy& strategy,
                                 const harness::RunOptions& options,
                                 const FleetOptions& fleet) {
  SweepPlan plan;
  plan.add(corpus, strategy, options);
  return std::move(run_plan(plan, fleet).front());
}

}  // namespace vroom::fleet

namespace vroom::harness {

// The canonical corpus sweep now rides the fleet. Declared in
// harness/experiment.h; defined here so the harness library stays free of
// threading concerns (and of a link cycle with the fleet).
CorpusResult run_corpus(const web::Corpus& corpus,
                        const baselines::Strategy& strategy,
                        const RunOptions& options) {
  return fleet::run_corpus(corpus, strategy, options);
}

}  // namespace vroom::harness
