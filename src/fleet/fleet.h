// Parallel simulation fleet: executes corpus sweeps on a worker thread pool.
//
// The entry point is declarative: a `SweepPlan` lists (corpus × strategy ×
// options) *cells*, and `run_plan` compiles the whole plan into one flat
// (cell, page, load) job list executed by a single shared pool — so a
// multi-corpus bench grid (the paper's Fig 13/21 evaluation shape) never
// pays one straggling pool tail per corpus. `run_corpus` and `run_matrix`
// are thin wrappers over one-cell / one-corpus plans.
//
// Every job builds a fully private simulation world (event loop, network,
// page instance, servers, browser) exactly as the serial harness does, and
// derives its seeds purely from the job's identity — (cell options' seed,
// page id, load index) — never from execution order. The determinism
// contract: plan output is bit-identical, cell by cell, to standalone
// serial `run_corpus` calls for any worker count. `VROOM_JOBS=1`
// additionally preserves the serial execution *order*, not just its
// results.
//
// With more than one worker, jobs dispatch in deterministic
// longest-job-first order (page resource count as the size proxy, ties by
// job identity — see job_queue.h) instead of FIFO, so the heaviest pages
// cannot land last and leave the pool idling behind one straggler.
// Dispatch order never affects results, only wall-clock time.
//
// Warm-cache cells (RunOptions::cache != nullptr) share one mutable cache
// whose state depends on load order, so the fleet degrades the whole plan
// to a single worker automatically rather than silently changing semantics.
//
// Cross-process sharding (DESIGN.md §14): the same plan can be split across
// processes by *cell*. With `VROOM_SHARD=i/N` and `VROOM_SHARD_DIR=<dir>`
// set, run_plan simulates only shard i's contiguous cell slice
// (shard_cell_range) and publishes each finished cell as a versioned binary
// file in the shard dir; with only VROOM_SHARD_DIR set, run_plan skips
// simulation entirely and reassembles the full plan-order results from
// those files (merge_shards). Because every bench prints from the returned
// CorpusResults, an unmodified bench binary re-run in merge mode emits
// stdout and CSVs byte-identical to a single-process sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fleet/telemetry.h"
#include "harness/env.h"
#include "harness/experiment.h"

namespace vroom::fleet {

// Shard identity i-of-N, parsed from VROOM_SHARD by harness::Env (the fleet
// and scripts/sweep_shards.sh share that one strict parser).
using ShardSpec = harness::ShardSpec;

struct FleetOptions {
  // Worker threads. 0 means "resolve": take VROOM_JOBS from the environment
  // if set and valid, else std::thread::hardware_concurrency().
  int workers = 0;
  // Optional sink for run telemetry; caller-owned, overwritten per run.
  Telemetry* telemetry = nullptr;
};

// Resolves a worker count: `requested` > 0 wins; otherwise VROOM_JOBS from
// `env` (run_plan passes its plan-start snapshot, so one plan sees one
// consistent knob set); otherwise the hardware concurrency (at least 1).
// The one-argument overload takes a fresh environment snapshot.
int resolve_worker_count(int requested, const harness::Env& env);
int resolve_worker_count(int requested);

// Reusable pool entry point beneath run_plan's sweep machinery: runs
// `count` independent tasks `fn(0) .. fn(count-1)` on `workers` threads
// (0 = resolve like run_plan: VROOM_JOBS, else hardware), claiming indices
// from one atomic cursor. With one worker — or one task — the tasks run in
// index order on the calling thread, the VROOM_JOBS=1 serial-replay mode.
// The caller owns the fleet determinism contract: tasks must be mutually
// independent (disjoint output slots, no claim-order-dependent state), so
// results cannot depend on the worker count. Used by the deployment
// scenario for its warm-revisit column and per-level macro passes.
void run_tasks(std::size_t count, const std::function<void(std::size_t)>& fn,
               int workers = 0);

// One cell of a sweep: a full corpus swept under one strategy with its own
// RunOptions. Cells are independent — different corpora, seeds, networks,
// loads_per_page per cell are all fine and each cell's result is identical
// to a standalone run_corpus(corpus, strategy, options) call.
struct SweepCell {
  const web::Corpus* corpus = nullptr;  // caller-owned; must outlive run_plan
  baselines::Strategy strategy;
  harness::RunOptions options;
  // Names the cell in telemetry rows, CorpusResult::strategy, and the
  // trace-counter CSV export. Empty means "use strategy.name" (the
  // historical run_matrix behaviour). Give distinct labels when one
  // strategy appears over several corpora, or its counter exports collide
  // on the same file slug.
  std::string label;
};

// A declarative (corpus × strategy) sweep: the unit the fleet executes.
// Build with add()/add_matrix() (chainable) or fill `cells` directly.
struct SweepPlan {
  std::vector<SweepCell> cells;

  SweepPlan& add(const web::Corpus& corpus, baselines::Strategy strategy,
                 harness::RunOptions options = {}, std::string label = {}) {
    cells.push_back(SweepCell{&corpus, std::move(strategy),
                              std::move(options), std::move(label)});
    return *this;
  }

  // One cell per strategy over a shared corpus and options — the run_matrix
  // grid shape.
  SweepPlan& add_matrix(const web::Corpus& corpus,
                        const std::vector<baselines::Strategy>& strategies,
                        const harness::RunOptions& options = {}) {
    for (const baselines::Strategy& strategy : strategies) {
      add(corpus, strategy, options);
    }
    return *this;
  }
};

// Shard i of N owns the contiguous cell slice [n_cells*i/N,
// n_cells*(i+1)/N) — integer arithmetic, so the N slices partition
// [0, n_cells) exactly for any N (shards beyond the cell count own empty
// slices and are valid no-ops). Splitting by cell keeps every cell's
// median selection and counter export inside one process.
std::pair<int, int> shard_cell_range(int n_cells, const ShardSpec& shard);

// The file shard processes publish cell `cell_index` to:
// `<dir>/cell_<index>.vsc`. Wire format: magic "VSC1", u32 LE result-cache
// salt generation, u32 LE cell index, then the
// harness::serialize_corpus_result payload. Published atomically
// (temp file + rename), so a merge never observes a torn cell.
std::string shard_cell_path(const std::string& dir, int cell_index);

// The outcome of reassembling a sharded sweep. On success `error` is empty,
// `results` holds one CorpusResult per plan cell in plan order —
// byte-identical to a single-process run_plan — and `cell_digests` holds
// each cell file's 64-bit payload hash (recorded in the merge manifest so
// sweeps are auditable end to end). On failure `error` names the first
// offending cell file and why (missing, wrong magic, stale salt
// generation, wrong cell index, corrupt payload, label/page mismatch);
// `results` is unspecified.
struct ShardMerge {
  std::vector<harness::CorpusResult> results;
  std::vector<std::uint64_t> cell_digests;
  std::string error;
};

// Reads every cell file of `plan` back from `dir`. Pure file I/O — no
// simulation, no worker pool; safe to call while unrelated shards of a
// *different* plan run, but requires every shard of this plan to have
// finished (a missing cell is a hard error, never silently skipped).
ShardMerge merge_shards(const SweepPlan& plan, const std::string& dir);

// Executes every cell of the plan on one shared worker pool and returns one
// CorpusResult per cell, in plan order, each bit-identical to a standalone
// run_corpus call with that cell's arguments (any worker count). The result
// cache and telemetry integrate per cell: cacheable cells hit the cache
// even when other cells (warm-cache / traced) bypass it, and the telemetry
// summary carries one row per cell.
//
// Environment-selected execution modes (see the header comment):
//   - VROOM_SHARD=i/N + VROOM_SHARD_DIR: simulate only shard i's cell
//     slice, publish each owned cell to the shard dir, return a partial
//     results vector (owned cells filled, others empty). Callers driving a
//     shard discard its stdout; warm-cache plans refuse to shard (abort).
//   - VROOM_SHARD_DIR alone: merge mode — no simulation; returns
//     merge_shards(plan, dir).results, aborting with the merge error on
//     any missing/stale/corrupt cell file.
// After a cached sweep, when VROOM_CACHE_MAX_BYTES is set, run_plan invokes
// harness::cache_gc on the cache directory (stale-generation sweep + LRU
// size cap) and reports the collection on stderr.
std::vector<harness::CorpusResult> run_plan(const SweepPlan& plan,
                                            const FleetOptions& fleet = {});

// Sweeps one strategy over the corpus: a one-cell plan. Same contract as
// the serial harness::run_corpus — one median-of-N load per page, in page
// order.
harness::CorpusResult run_corpus(const web::Corpus& corpus,
                                 const baselines::Strategy& strategy,
                                 const harness::RunOptions& options,
                                 const FleetOptions& fleet = {});

// Fans one strategy × corpus grid through one shared pool: a one-corpus
// plan. Results are returned in strategy order, each bit-identical to a
// standalone run_corpus call.
std::vector<harness::CorpusResult> run_matrix(
    const web::Corpus& corpus,
    const std::vector<baselines::Strategy>& strategies,
    const harness::RunOptions& options, const FleetOptions& fleet = {});

}  // namespace vroom::fleet
