// Parallel simulation fleet: executes corpus sweeps on a worker thread pool.
//
// The entry point is declarative: a `SweepPlan` lists (corpus × strategy ×
// options) *cells*, and `run_plan` compiles the whole plan into one flat
// (cell, page, load) job list executed by a single shared pool — so a
// multi-corpus bench grid (the paper's Fig 13/21 evaluation shape) never
// pays one straggling pool tail per corpus. `run_corpus` and `run_matrix`
// are thin wrappers over one-cell / one-corpus plans.
//
// Every job builds a fully private simulation world (event loop, network,
// page instance, servers, browser) exactly as the serial harness does, and
// derives its seeds purely from the job's identity — (cell options' seed,
// page id, load index) — never from execution order. The determinism
// contract: plan output is bit-identical, cell by cell, to standalone
// serial `run_corpus` calls for any worker count. `VROOM_JOBS=1`
// additionally preserves the serial execution *order*, not just its
// results.
//
// With more than one worker, jobs dispatch in deterministic
// longest-job-first order (page resource count as the size proxy, ties by
// job identity — see job_queue.h) instead of FIFO, so the heaviest pages
// cannot land last and leave the pool idling behind one straggler.
// Dispatch order never affects results, only wall-clock time.
//
// Warm-cache cells (RunOptions::cache != nullptr) share one mutable cache
// whose state depends on load order, so the fleet degrades the whole plan
// to a single worker automatically rather than silently changing semantics.
#pragma once

#include <string>
#include <vector>

#include "fleet/telemetry.h"
#include "harness/experiment.h"

namespace vroom::fleet {

struct FleetOptions {
  // Worker threads. 0 means "resolve": take VROOM_JOBS from the environment
  // if set and valid, else std::thread::hardware_concurrency().
  int workers = 0;
  // Optional sink for run telemetry; caller-owned, overwritten per run.
  Telemetry* telemetry = nullptr;
};

// Resolves a worker count: `requested` > 0 wins; otherwise VROOM_JOBS
// (invalid values warn on stderr and fall through); otherwise the hardware
// concurrency (at least 1).
int resolve_worker_count(int requested);

// One cell of a sweep: a full corpus swept under one strategy with its own
// RunOptions. Cells are independent — different corpora, seeds, networks,
// loads_per_page per cell are all fine and each cell's result is identical
// to a standalone run_corpus(corpus, strategy, options) call.
struct SweepCell {
  const web::Corpus* corpus = nullptr;  // caller-owned; must outlive run_plan
  baselines::Strategy strategy;
  harness::RunOptions options;
  // Names the cell in telemetry rows, CorpusResult::strategy, and the
  // trace-counter CSV export. Empty means "use strategy.name" (the
  // historical run_matrix behaviour). Give distinct labels when one
  // strategy appears over several corpora, or its counter exports collide
  // on the same file slug.
  std::string label;
};

// A declarative (corpus × strategy) sweep: the unit the fleet executes.
// Build with add()/add_matrix() (chainable) or fill `cells` directly.
struct SweepPlan {
  std::vector<SweepCell> cells;

  SweepPlan& add(const web::Corpus& corpus, baselines::Strategy strategy,
                 harness::RunOptions options = {}, std::string label = {}) {
    cells.push_back(SweepCell{&corpus, std::move(strategy),
                              std::move(options), std::move(label)});
    return *this;
  }

  // One cell per strategy over a shared corpus and options — the run_matrix
  // grid shape.
  SweepPlan& add_matrix(const web::Corpus& corpus,
                        const std::vector<baselines::Strategy>& strategies,
                        const harness::RunOptions& options = {}) {
    for (const baselines::Strategy& strategy : strategies) {
      add(corpus, strategy, options);
    }
    return *this;
  }
};

// Executes every cell of the plan on one shared worker pool and returns one
// CorpusResult per cell, in plan order, each bit-identical to a standalone
// run_corpus call with that cell's arguments (any worker count). The result
// cache and telemetry integrate per cell: cacheable cells hit the cache
// even when other cells (warm-cache / traced) bypass it, and the telemetry
// summary carries one row per cell.
std::vector<harness::CorpusResult> run_plan(const SweepPlan& plan,
                                            const FleetOptions& fleet = {});

// Sweeps one strategy over the corpus: a one-cell plan. Same contract as
// the serial harness::run_corpus — one median-of-N load per page, in page
// order.
harness::CorpusResult run_corpus(const web::Corpus& corpus,
                                 const baselines::Strategy& strategy,
                                 const harness::RunOptions& options,
                                 const FleetOptions& fleet = {});

// Fans one strategy × corpus grid through one shared pool: a one-corpus
// plan. Results are returned in strategy order, each bit-identical to a
// standalone run_corpus call.
std::vector<harness::CorpusResult> run_matrix(
    const web::Corpus& corpus,
    const std::vector<baselines::Strategy>& strategies,
    const harness::RunOptions& options, const FleetOptions& fleet = {});

}  // namespace vroom::fleet
