// Parallel simulation fleet: executes corpus sweeps on a worker thread pool.
//
// Every (strategy, page, load) job builds a fully private simulation world
// (event loop, network, page instance, servers, browser) exactly as the
// serial harness does, and derives its seeds purely from the job's identity
// — (options.seed, page id, load index) — never from execution order. The
// determinism contract: fleet output is bit-identical to the serial sweep
// for any worker count. `VROOM_JOBS=1` additionally preserves the serial
// execution *order*, not just its results.
//
// Warm-cache runs (RunOptions::cache != nullptr) share one mutable cache
// whose state depends on load order, so the fleet degrades them to a single
// worker automatically rather than silently changing semantics.
#pragma once

#include <vector>

#include "fleet/telemetry.h"
#include "harness/experiment.h"

namespace vroom::fleet {

struct FleetOptions {
  // Worker threads. 0 means "resolve": take VROOM_JOBS from the environment
  // if set and valid, else std::thread::hardware_concurrency().
  int workers = 0;
  // Optional sink for run telemetry; caller-owned, overwritten per run.
  Telemetry* telemetry = nullptr;
};

// Resolves a worker count: `requested` > 0 wins; otherwise VROOM_JOBS
// (invalid values warn on stderr and fall through); otherwise the hardware
// concurrency (at least 1).
int resolve_worker_count(int requested);

// Sweeps one strategy over the corpus. Same contract as the serial
// harness::run_corpus: one median-of-N load per page, in page order.
harness::CorpusResult run_corpus(const web::Corpus& corpus,
                                 const baselines::Strategy& strategy,
                                 const harness::RunOptions& options,
                                 const FleetOptions& fleet = {});

// Fans an entire strategy × corpus grid through one shared job queue, so
// slow strategies don't serialize behind fast ones. Results are returned in
// strategy order, each bit-identical to a standalone run_corpus call.
std::vector<harness::CorpusResult> run_matrix(
    const web::Corpus& corpus,
    const std::vector<baselines::Strategy>& strategies,
    const harness::RunOptions& options, const FleetOptions& fleet = {});

}  // namespace vroom::fleet
