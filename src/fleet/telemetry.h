// Run telemetry for fleet sweeps.
//
// Workers report into private per-worker slots (no contention on the hot
// path); only the in-flight gauge and the completion counter are shared
// atomics. Aggregation happens in summary(), which callers invoke after the
// pool has joined. Printing goes wherever the caller points it — benches
// send it to stderr so stdout stays byte-identical across worker counts.
//
// A run is a set of *cells* — one (corpus, strategy, options) entry of a
// SweepPlan — and every job belongs to exactly one cell. summary() rolls
// jobs up per cell as well as per run, so a multi-corpus sweep shows where
// its wall time and cache hits went.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/stats.h"
#include "sim/time.h"

namespace vroom::fleet {

// Per-cell aggregate: one row per SweepPlan cell, in plan order.
struct CellTelemetrySummary {
  std::string label;
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_from_cache = 0;
  double busy_seconds = 0;       // summed worker time spent on this cell
  double simulated_seconds = 0;  // summed virtual time of the cell's loads
};

struct TelemetrySummary {
  int workers = 0;
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  // Jobs satisfied from the on-disk result cache (VROOM_RESULT_CACHE)
  // instead of being simulated; always <= jobs_completed.
  std::size_t jobs_from_cache = 0;
  int peak_in_flight = 0;
  double wall_seconds = 0;        // begin_run() .. end_run()
  double jobs_per_second = 0;
  double busy_seconds_total = 0;  // summed across workers
  double utilization = 0;         // busy / (wall * workers)
  std::vector<double> worker_busy_seconds;
  double simulated_seconds = 0;   // summed virtual time of all loads
  double sim_to_wall_ratio = 0;   // how much faster than real time we simulate
  harness::Quartiles job_seconds; // per-job wall-time distribution
  std::vector<CellTelemetrySummary> cells;  // plan order
};

class Telemetry {
 public:
  // One planned cell: its display label and how many jobs it submits.
  struct CellPlan {
    std::string label;
    std::size_t jobs = 0;
  };

  // Sizes the per-worker slots and starts the wall clock. Must be called
  // before any worker reports; resets any previous run. The single-cell
  // overload serves runs without a plan (one anonymous cell).
  void begin_run(int workers, std::size_t jobs_submitted);
  void begin_run(int workers, std::size_t jobs_submitted,
                 std::vector<CellPlan> cells);
  void end_run();  // stops the wall clock; call after joining the pool

  // Worker-side hooks. `worker` indexes [0, workers); `cell` indexes the
  // plan cells passed to begin_run. job_started / job_finished bracket each
  // job; the finished hook records the job's wall duration and the virtual
  // time its simulation covered. A job answered by the result cache
  // additionally reports job_from_cache between the two.
  void job_started(int worker);
  void job_from_cache(int worker, int cell);
  void job_finished(int worker, int cell, double wall_seconds,
                    sim::Time simulated);

  std::size_t jobs_submitted() const { return jobs_submitted_; }
  std::size_t jobs_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  std::size_t jobs_from_cache() const {
    return from_cache_.load(std::memory_order_relaxed);
  }

  // Aggregates. Only valid once the pool has joined (no concurrent writers).
  TelemetrySummary summary() const;

  // Human-readable dump of summary(): the run paragraph plus, for
  // multi-cell plans, one row per cell.
  void print(std::FILE* out) const;

 private:
  struct CellSlot {  // per-worker per-cell accumulators
    std::size_t completed = 0;
    std::size_t from_cache = 0;
    double busy_seconds = 0;
    double simulated_seconds = 0;
  };
  struct alignas(64) WorkerSlot {  // cache-line padded: no false sharing
    double busy_seconds = 0;
    double simulated_seconds = 0;
    std::vector<double> job_seconds;
    std::vector<CellSlot> cells;
  };

  int workers_ = 0;
  std::size_t jobs_submitted_ = 0;
  double wall_seconds_ = 0;
  double wall_start_ = 0;  // monotonic clock, seconds
  std::vector<CellPlan> cell_plans_;
  std::vector<WorkerSlot> slots_;
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> from_cache_{0};
  std::atomic<int> in_flight_{0};
  std::atomic<int> peak_in_flight_{0};
};

}  // namespace vroom::fleet
