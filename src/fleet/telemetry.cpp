#include "fleet/telemetry.h"

#include <chrono>

namespace vroom::fleet {

namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Telemetry::begin_run(int workers, std::size_t jobs_submitted) {
  begin_run(workers, jobs_submitted, {CellPlan{"", jobs_submitted}});
}

void Telemetry::begin_run(int workers, std::size_t jobs_submitted,
                          std::vector<CellPlan> cells) {
  workers_ = workers;
  jobs_submitted_ = jobs_submitted;
  wall_seconds_ = 0;
  cell_plans_ = std::move(cells);
  slots_.assign(static_cast<std::size_t>(workers), WorkerSlot{});
  for (WorkerSlot& slot : slots_) {
    slot.cells.assign(cell_plans_.size(), CellSlot{});
  }
  completed_.store(0, std::memory_order_relaxed);
  from_cache_.store(0, std::memory_order_relaxed);
  in_flight_.store(0, std::memory_order_relaxed);
  peak_in_flight_.store(0, std::memory_order_relaxed);
  wall_start_ = monotonic_seconds();
}

void Telemetry::end_run() { wall_seconds_ = monotonic_seconds() - wall_start_; }

void Telemetry::job_started(int worker) {
  (void)worker;
  const int now = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  int peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (now > peak && !peak_in_flight_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void Telemetry::job_from_cache(int worker, int cell) {
  from_cache_.fetch_add(1, std::memory_order_relaxed);
  WorkerSlot& slot = slots_[static_cast<std::size_t>(worker)];
  if (static_cast<std::size_t>(cell) < slot.cells.size()) {
    ++slot.cells[static_cast<std::size_t>(cell)].from_cache;
  }
}

void Telemetry::job_finished(int worker, int cell, double wall_seconds,
                             sim::Time simulated) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(worker)];
  slot.busy_seconds += wall_seconds;
  slot.simulated_seconds += sim::to_seconds(simulated);
  slot.job_seconds.push_back(wall_seconds);
  if (static_cast<std::size_t>(cell) < slot.cells.size()) {
    CellSlot& cs = slot.cells[static_cast<std::size_t>(cell)];
    ++cs.completed;
    cs.busy_seconds += wall_seconds;
    cs.simulated_seconds += sim::to_seconds(simulated);
  }
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
}

TelemetrySummary Telemetry::summary() const {
  TelemetrySummary s;
  s.workers = workers_;
  s.jobs_submitted = jobs_submitted_;
  s.jobs_completed = completed_.load(std::memory_order_relaxed);
  s.jobs_from_cache = from_cache_.load(std::memory_order_relaxed);
  s.peak_in_flight = peak_in_flight_.load(std::memory_order_relaxed);
  s.wall_seconds = wall_seconds_;
  s.cells.resize(cell_plans_.size());
  for (std::size_t c = 0; c < cell_plans_.size(); ++c) {
    s.cells[c].label = cell_plans_[c].label;
    s.cells[c].jobs_submitted = cell_plans_[c].jobs;
  }
  std::vector<double> all_jobs;
  for (const WorkerSlot& slot : slots_) {
    s.worker_busy_seconds.push_back(slot.busy_seconds);
    s.busy_seconds_total += slot.busy_seconds;
    s.simulated_seconds += slot.simulated_seconds;
    all_jobs.insert(all_jobs.end(), slot.job_seconds.begin(),
                    slot.job_seconds.end());
    for (std::size_t c = 0; c < slot.cells.size() && c < s.cells.size(); ++c) {
      s.cells[c].jobs_completed += slot.cells[c].completed;
      s.cells[c].jobs_from_cache += slot.cells[c].from_cache;
      s.cells[c].busy_seconds += slot.cells[c].busy_seconds;
      s.cells[c].simulated_seconds += slot.cells[c].simulated_seconds;
    }
  }
  if (s.wall_seconds > 0) {
    s.jobs_per_second = static_cast<double>(s.jobs_completed) / s.wall_seconds;
    s.sim_to_wall_ratio = s.simulated_seconds / s.wall_seconds;
    if (s.workers > 0) {
      s.utilization = s.busy_seconds_total / (s.wall_seconds * s.workers);
    }
  }
  s.job_seconds = harness::quartiles(all_jobs);
  return s;
}

void Telemetry::print(std::FILE* out) const {
  const TelemetrySummary s = summary();
  std::fprintf(out,
               "[fleet] workers=%d jobs=%zu/%zu wall=%.3fs "
               "throughput=%.1f jobs/s peak_in_flight=%d\n",
               s.workers, s.jobs_completed, s.jobs_submitted, s.wall_seconds,
               s.jobs_per_second, s.peak_in_flight);
  if (s.jobs_from_cache > 0) {
    std::fprintf(out, "[fleet] result cache: %zu/%zu jobs (%.0f%% hits)\n",
                 s.jobs_from_cache, s.jobs_completed,
                 s.jobs_completed > 0
                     ? 100.0 * static_cast<double>(s.jobs_from_cache) /
                           static_cast<double>(s.jobs_completed)
                     : 0.0);
  }
  std::fprintf(out,
               "[fleet] busy=%.3fs (utilization %.0f%%)  simulated=%.1fs "
               "(%.0fx wall)  job p25/p50/p75=%.3f/%.3f/%.3fs\n",
               s.busy_seconds_total, s.utilization * 100, s.simulated_seconds,
               s.sim_to_wall_ratio, s.job_seconds.p25, s.job_seconds.p50,
               s.job_seconds.p75);
  if (s.cells.size() < 2) return;  // single-cell runs need no breakdown
  for (std::size_t c = 0; c < s.cells.size(); ++c) {
    const CellTelemetrySummary& cell = s.cells[c];
    std::fprintf(out,
                 "[fleet]   cell %zu \"%s\": jobs=%zu/%zu busy=%.3fs "
                 "simulated=%.1fs cache_hits=%zu\n",
                 c, cell.label.c_str(), cell.jobs_completed,
                 cell.jobs_submitted, cell.busy_seconds,
                 cell.simulated_seconds, cell.jobs_from_cache);
  }
}

}  // namespace vroom::fleet
