// Work distribution for the parallel simulation fleet.
//
// A sweep is flattened into a fixed vector of jobs up front — one job per
// (strategy, page, load) triple — and workers claim jobs through an atomic
// cursor. Because every job carries the indices needed to derive its seed
// and to address its result slot, claim *order* never affects output:
// results land in pre-assigned slots and seeding depends only on the job's
// identity, never on which worker ran it or when.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

namespace vroom::fleet {

// One unit of work: a single load of a single page under a single strategy.
struct Job {
  int strategy_index = 0;
  int page_index = 0;
  int load_index = 0;
};

class JobQueue {
 public:
  explicit JobQueue(std::vector<Job> jobs);

  // Claims the next job, or nullopt when the queue is drained. Safe to call
  // from any number of threads concurrently.
  std::optional<Job> pop();

  std::size_t size() const { return jobs_.size(); }
  // Jobs not yet claimed. Racy by nature; useful for progress telemetry only.
  std::size_t remaining() const;

  // Builds the flattened (strategy, page, load) grid in the exact order the
  // serial sweep visits it, so a single-worker drain replays the serial path.
  static std::vector<Job> grid(int strategies, int pages, int loads_per_page);

 private:
  std::vector<Job> jobs_;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace vroom::fleet
