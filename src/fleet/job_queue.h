// Work distribution for the parallel simulation fleet.
//
// A sweep is flattened into a fixed vector of jobs up front — one job per
// (cell, page, load) triple, where a cell is one (corpus, strategy, options)
// entry of a SweepPlan — and workers claim jobs through an atomic cursor.
// Because every job carries the indices needed to derive its seed and to
// address its result slot, claim *order* never affects output: results land
// in pre-assigned slots and seeding depends only on the job's identity,
// never on which worker ran it or when.
//
// Dispatch order is still a lever for wall-clock time: with FIFO in serial
// grid order, the heaviest pages can be claimed last and leave one worker
// simulating a 300-resource page while the rest of the pool idles.
// `order_longest_first` reorders the grid so the biggest jobs start first
// (classic LPT scheduling), deterministically.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

namespace vroom::fleet {

// One unit of work: a single load of a single page under a single plan cell.
struct Job {
  int cell_index = 0;
  int page_index = 0;
  int load_index = 0;
};

class JobQueue {
 public:
  explicit JobQueue(std::vector<Job> jobs);

  // Claims the next job, or nullopt when the queue is drained. Safe to call
  // from any number of threads concurrently.
  std::optional<Job> pop();

  std::size_t size() const { return jobs_.size(); }
  // Jobs not yet claimed. Racy by nature; useful for progress telemetry only.
  std::size_t remaining() const;

  // Builds the flattened (cell, page, load) grid in the exact order the
  // serial sweep visits it, so a single-worker drain replays the serial path.
  static std::vector<Job> grid(int cells, int pages, int loads_per_page);

 private:
  std::vector<Job> jobs_;
  std::atomic<std::size_t> cursor_{0};
};

// Deterministic longest-job-first dispatch order: sorts jobs by descending
// `size_of(job)` (the caller's size proxy — the fleet uses the page's
// resource count), with ties broken by job identity (cell, then page, then
// load, ascending). The result is a pure function of the job set and the
// size proxy — independent of the input order, the worker count, and any
// prior run — so reordering can never make results irreproducible.
std::vector<Job> order_longest_first(
    std::vector<Job> jobs,
    const std::function<std::size_t(const Job&)>& size_of);

}  // namespace vroom::fleet
