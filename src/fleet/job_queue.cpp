#include "fleet/job_queue.h"

#include <algorithm>
#include <tuple>

namespace vroom::fleet {

JobQueue::JobQueue(std::vector<Job> jobs) : jobs_(std::move(jobs)) {}

std::optional<Job> JobQueue::pop() {
  const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (i >= jobs_.size()) return std::nullopt;
  return jobs_[i];
}

std::size_t JobQueue::remaining() const {
  const std::size_t claimed = cursor_.load(std::memory_order_relaxed);
  return claimed >= jobs_.size() ? 0 : jobs_.size() - claimed;
}

std::vector<Job> JobQueue::grid(int cells, int pages, int loads_per_page) {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(cells) *
               static_cast<std::size_t>(pages) *
               static_cast<std::size_t>(loads_per_page));
  for (int c = 0; c < cells; ++c) {
    for (int p = 0; p < pages; ++p) {
      for (int l = 0; l < loads_per_page; ++l) {
        jobs.push_back(Job{c, p, l});
      }
    }
  }
  return jobs;
}

std::vector<Job> order_longest_first(
    std::vector<Job> jobs,
    const std::function<std::size_t(const Job&)>& size_of) {
  // Sizes are looked up once per job, not once per comparison: size_of may
  // walk corpus pages, and comparator calls are O(n log n).
  std::vector<std::size_t> size(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) size[i] = size_of(jobs[i]);
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (size[a] != size[b]) return size[a] > size[b];
    return std::tuple(jobs[a].cell_index, jobs[a].page_index,
                      jobs[a].load_index) <
           std::tuple(jobs[b].cell_index, jobs[b].page_index,
                      jobs[b].load_index);
  });
  std::vector<Job> out;
  out.reserve(jobs.size());
  for (std::size_t i : order) out.push_back(jobs[i]);
  return out;
}

}  // namespace vroom::fleet
