#include "fleet/job_queue.h"

namespace vroom::fleet {

JobQueue::JobQueue(std::vector<Job> jobs) : jobs_(std::move(jobs)) {}

std::optional<Job> JobQueue::pop() {
  const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (i >= jobs_.size()) return std::nullopt;
  return jobs_[i];
}

std::size_t JobQueue::remaining() const {
  const std::size_t claimed = cursor_.load(std::memory_order_relaxed);
  return claimed >= jobs_.size() ? 0 : jobs_.size() - claimed;
}

std::vector<Job> JobQueue::grid(int strategies, int pages,
                                int loads_per_page) {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(strategies) *
               static_cast<std::size_t>(pages) *
               static_cast<std::size_t>(loads_per_page));
  for (int s = 0; s < strategies; ++s) {
    for (int p = 0; p < pages; ++p) {
      for (int l = 0; l < loads_per_page; ++l) {
        jobs.push_back(Job{s, p, l});
      }
    }
  }
  return jobs;
}

}  // namespace vroom::fleet
