// URL and domain interning for the per-load simulation world.
//
// Page loads re-touch the same few hundred URLs thousands of times (fetch
// dedup, template lookup, endpoint routing, hint matching); keying those hot
// paths on std::string re-hashes and re-compares the full URL every time.
// The Interner assigns each distinct URL/domain a dense 32-bit id exactly
// once, caches everything derivable from the URL's syntax (domain id,
// resource type, native fetch priority, parsed version fields) at intern
// time, and lets the rest of the world run on ids. Strings survive only at
// the edges: trace events, CSV export, waterfall tables.
//
// Storage: string bytes, the UrlInfo table, and the index maps all live on
// a sim::Arena (one lifetime ⇒ one arena, bulk-reset between loads — see
// arena.h and DESIGN.md §13). Arena chunks never move, so the string_view
// index keys and the views returned by url()/domain() stay address-stable
// for the interner's whole life. A default-constructed Interner owns a
// private arena; the per-load world passes the fleet worker's pooled arena
// instead so consecutive loads reuse the same chunks.
//
// Ownership and lifetime: the interner is owned by the `PageInstance` (the
// page world); every realized resource URL and its origin are pre-interned
// at build time, so instance resources get ids 0..N-1 in resource order.
// Foreign URLs (stale hints, ghost fetches) intern lazily on first touch.
// Ids are meaningful only relative to one interner — they never cross loads
// or appear in results, so interning cannot affect simulated numbers. An id
// minted by a *different* interner (e.g. retained across an arena reset) is
// out of range or names the wrong URL; the debug asserts below catch the
// former. A page world is single-threaded (each fleet job builds a private
// world), so the interner is not synchronized.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/arena.h"
#include "web/resource.h"

namespace vroom::web {

using UrlId = std::uint32_t;
using DomainId = std::uint32_t;
inline constexpr std::uint32_t kInvalidId = 0xffffffffu;

// Syntax-derived facts about an interned URL, computed once at intern time.
struct UrlInfo {
  DomainId domain = kInvalidId;
  ResourceType type = ResourceType::Other;
  bool parse_ok = false;    // canonical <domain>/p../r..v..[u..].<ext> shape
  bool processable = false; // HTML/CSS/JS per extension
  // Browser-native request priority (Chrome's scheme, roughly): documents
  // highest, render-blocking CSS/JS next, fonts, then images/media.
  std::int8_t native_priority = 0;
  // Embedded fields, valid iff parse_ok.
  std::uint32_t resource_id = 0;
  std::uint32_t page_id = 0;
  std::uint64_t version = 0;
  std::uint32_t user = 0;
};

class Interner {
 public:
  // Backs storage with `arena` when given; otherwise owns a private arena.
  // The caller's arena must outlive the interner and not be reset while the
  // interner (or anything holding its views) is alive.
  explicit Interner(sim::Arena* arena = nullptr);
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  // Interns `url`, returning its stable id (existing id if already known).
  UrlId url_id(std::string_view url);

  // Non-inserting lookup: kInvalidId if `url` was never interned.
  UrlId find_url(std::string_view url) const {
    auto it = url_index_.find(url);
    return it == url_index_.end() ? kInvalidId : it->second;
  }

  // Accessors index with a debug bounds assert: an out-of-range id is
  // always a cross-interner bug (an id retained across a load boundary),
  // never a legitimate miss — see the lifetime note above.
  std::string_view url(UrlId id) const {
    assert(id < urls_.size() && "UrlId from a different interner/load");
    return urls_[id];
  }
  const UrlInfo& info(UrlId id) const {
    assert(id < info_.size() && "UrlId from a different interner/load");
    return info_[id];
  }
  std::size_t url_count() const { return urls_.size(); }

  DomainId domain_id(std::string_view domain);
  DomainId find_domain(std::string_view domain) const {
    auto it = domain_index_.find(domain);
    return it == domain_index_.end() ? kInvalidId : it->second;
  }
  std::string_view domain(DomainId id) const {
    assert(id < domains_.size() && "DomainId from a different interner/load");
    return domains_[id];
  }
  std::size_t domain_count() const { return domains_.size(); }

  // The memory resource backing this interner (the caller's arena or the
  // private fallback). The owning PageInstance allocates its own per-load
  // tables from the same resource.
  std::pmr::memory_resource* memory() const { return arena_; }

 private:
  sim::Arena* arena_;                        // never null after construction
  std::unique_ptr<sim::Arena> owned_arena_;  // set iff no arena was passed
  // Views into arena chunks: chunk memory never moves, so the index maps can
  // key on the same views without re-owning them.
  std::pmr::vector<std::string_view> urls_;
  std::pmr::vector<std::string_view> domains_;
  std::pmr::vector<UrlInfo> info_;
  std::pmr::unordered_map<std::string_view, UrlId> url_index_;
  std::pmr::unordered_map<std::string_view, DomainId> domain_index_;
};

}  // namespace vroom::web
