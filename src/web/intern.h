// URL and domain interning for the per-load simulation world.
//
// Page loads re-touch the same few hundred URLs thousands of times (fetch
// dedup, template lookup, endpoint routing, hint matching); keying those hot
// paths on std::string re-hashes and re-compares the full URL every time.
// The Interner assigns each distinct URL/domain a dense 32-bit id exactly
// once, caches everything derivable from the URL's syntax (domain id,
// resource type, native fetch priority, parsed version fields) at intern
// time, and lets the rest of the world run on ids. Strings survive only at
// the edges: trace events, CSV export, waterfall tables.
//
// Ownership and lifetime: the interner is owned by the `PageInstance` (the
// page world); every realized resource URL and its origin are pre-interned
// at build time, so instance resources get ids 0..N-1 in resource order.
// Foreign URLs (stale hints, ghost fetches) intern lazily on first touch.
// Ids are meaningful only relative to one interner — they never cross loads
// or appear in results, so interning cannot affect simulated numbers. A page
// world is single-threaded (each fleet job builds a private world), so the
// interner is not synchronized.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "web/resource.h"

namespace vroom::web {

using UrlId = std::uint32_t;
using DomainId = std::uint32_t;
inline constexpr std::uint32_t kInvalidId = 0xffffffffu;

// Syntax-derived facts about an interned URL, computed once at intern time.
struct UrlInfo {
  DomainId domain = kInvalidId;
  ResourceType type = ResourceType::Other;
  bool parse_ok = false;    // canonical <domain>/p../r..v..[u..].<ext> shape
  bool processable = false; // HTML/CSS/JS per extension
  // Browser-native request priority (Chrome's scheme, roughly): documents
  // highest, render-blocking CSS/JS next, fonts, then images/media.
  std::int8_t native_priority = 0;
  // Embedded fields, valid iff parse_ok.
  std::uint32_t resource_id = 0;
  std::uint32_t page_id = 0;
  std::uint64_t version = 0;
  std::uint32_t user = 0;
};

class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  // Interns `url`, returning its stable id (existing id if already known).
  UrlId url_id(std::string_view url);

  // Non-inserting lookup: kInvalidId if `url` was never interned.
  UrlId find_url(std::string_view url) const {
    auto it = url_index_.find(url);
    return it == url_index_.end() ? kInvalidId : it->second;
  }

  const std::string& url(UrlId id) const { return urls_[id]; }
  const UrlInfo& info(UrlId id) const { return info_[id]; }
  std::size_t url_count() const { return urls_.size(); }

  DomainId domain_id(std::string_view domain);
  DomainId find_domain(std::string_view domain) const {
    auto it = domain_index_.find(domain);
    return it == domain_index_.end() ? kInvalidId : it->second;
  }
  const std::string& domain(DomainId id) const { return domains_[id]; }
  std::size_t domain_count() const { return domains_.size(); }

 private:
  // std::deque keeps element addresses stable, so the index maps can key on
  // string_views into the stored strings without re-owning them.
  std::deque<std::string> urls_;
  std::deque<std::string> domains_;
  std::vector<UrlInfo> info_;
  std::unordered_map<std::string_view, UrlId> url_index_;
  std::unordered_map<std::string_view, DomainId> domain_index_;
};

}  // namespace vroom::web
