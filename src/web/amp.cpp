#include "web/amp.h"

namespace vroom::web {

PageModel amp_transform(const PageModel& page) {
  PageModel amp(page.page_id(), page.page_class(), page.first_party());
  for (std::size_t i = 1; i < page.first_party_group().size(); ++i) {
    amp.add_first_party_domain(page.first_party_group()[i]);
  }
  for (Resource r : page.resources()) {
    if (r.type == ResourceType::Js) {
      // Custom synchronous JS is disallowed; components are async.
      r.blocks_parser = false;
      if (r.id != 0) r.async = true;
    }
    if (r.type == ResourceType::Image && !r.in_iframe &&
        r.via == DiscoveryVia::JsExec) {
      // amp-img: content images are declared in markup with fixed
      // dimensions, visible to the preload scanner immediately.
      r.via = DiscoveryVia::HtmlTag;
      r.parent = 0;
    }
    if (r.is_iframe_doc) {
      // amp-ad renders ads without blocking the page's load metrics.
      r.post_onload = true;
    }
    amp.add(std::move(r));
  }
  return amp;
}

}  // namespace vroom::web
