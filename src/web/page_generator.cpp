#include "web/page_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace vroom::web {
namespace {

using sim::Rng;

struct Builder {
  PageModel& page;
  Rng& rng;
  const GeneratorParams& p;
  std::vector<std::string> first_party_domains;
  std::vector<std::string> third_party_domains;
  std::vector<std::string> ad_domains;  // subset of third parties

  std::string pick_first_party() {
    return first_party_domains[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(first_party_domains.size()) - 1))];
  }
  std::string pick_third_party() {
    return third_party_domains[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(third_party_domains.size()) - 1))];
  }
  std::string pick_ad_domain() {
    return ad_domains[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(ad_domains.size()) - 1))];
  }

  // Rotation period draws per volatility class.
  sim::Time draw_period(Volatility v) {
    switch (v) {
      case Volatility::Stable:
        return sim::from_seconds(rng.uniform(3.0, 16.0) * 7 * 86400.0);
      case Volatility::Daily:
        return sim::from_seconds(rng.uniform(0.6, 2.5) * 86400.0);
      case Volatility::Hourly:
        // Capped below the 2-hour span of the offline crawl window so the
        // stable-set intersection always filters hour-scale churn.
        return sim::from_seconds(rng.uniform(0.5, 2.0) * 3600.0);
      case Volatility::Personalized:
        // Hour-scale churn so offline intersection filters these out (§4.2).
        return sim::from_seconds(rng.uniform(0.4, 1.5) * 3600.0);
      case Volatility::PerLoad:
        return sim::hours(1);  // unused
    }
    return sim::days(30);
  }

  Volatility draw_volatility(bool in_iframe, ResourceType type) {
    if (in_iframe) {
      const std::size_t k = rng.weighted({p.iframe_stable, p.iframe_hourly,
                                          p.iframe_perload,
                                          p.iframe_personalized});
      switch (k) {
        case 0: return Volatility::Stable;
        case 1: return Volatility::Hourly;
        case 2: return Volatility::PerLoad;
        default: return Volatility::Personalized;
      }
    }
    // Infrastructure resources (stylesheets, scripts, fonts) rotate far less
    // than content images — bias them to Stable.
    if (type == ResourceType::Css || type == ResourceType::Js ||
        type == ResourceType::Font) {
      if (rng.chance(0.80)) return Volatility::Stable;
    }
    const std::size_t k =
        rng.weighted({p.main_stable, p.main_daily, p.main_hourly,
                      p.main_perload, p.main_personalized});
    switch (k) {
      case 0: return Volatility::Stable;
      case 1: return Volatility::Daily;
      case 2: return Volatility::Hourly;
      case 3: return Volatility::PerLoad;
      default: return Volatility::Personalized;
    }
  }

  Resource make(std::int32_t parent, ResourceType type, DiscoveryVia via,
                double offset, double size, std::string domain,
                bool in_iframe) {
    Resource r;
    r.id = static_cast<std::uint32_t>(page.size());
    r.parent = parent;
    r.type = type;
    r.via = via;
    r.discovery_offset = std::clamp(offset, 0.0, 1.0);
    r.base_size = std::max<std::int64_t>(static_cast<std::int64_t>(size), 128);
    r.domain = std::move(domain);
    r.in_iframe = in_iframe;
    r.volatility = draw_volatility(in_iframe, type);
    r.rotation_period = draw_period(r.volatility);
    r.rotation_phase = sim::from_seconds(
        rng.uniform(0.0, sim::to_seconds(r.rotation_period)));
    if (r.volatility == Volatility::Personalized && !in_iframe) {
      // Main-document personalization is overwhelmingly done by the page's
      // own organization (it is the one holding the user's account state).
      r.first_party_personalized = rng.chance(0.85);
      if (r.first_party_personalized) r.domain = pick_first_party();
    }
    if (type != ResourceType::Html) {
      r.cacheable = rng.chance(p.cacheable_frac);
      if (r.cacheable) {
        const std::size_t bucket = rng.weighted({0.20, 0.30, 0.30, 0.20});
        switch (bucket) {
          case 0: r.max_age = sim::hours(1); break;
          case 1: r.max_age = sim::days(1); break;
          case 2: r.max_age = sim::days(7); break;
          default: r.max_age = sim::days(365); break;
        }
      }
    }
    return r;
  }

  int poisson_count(double mean) {
    // Rounded exponential-ish dispersion around the mean; bounded below by 0.
    const double v = rng.normal(mean, std::sqrt(std::max(mean, 0.5)));
    return std::max(0, static_cast<int>(std::lround(v)));
  }

  // Recursively grows a script's children (ad/analytics chains).
  void grow_js_subtree(std::uint32_t js_id, bool in_iframe, int depth) {
    if (depth >= p.max_depth) return;
    if (!rng.chance(p.js_child_prob)) return;
    const int n = std::max(1, poisson_count(p.js_child_mean));
    for (int i = 0; i < n; ++i) {
      const double roll = rng.uniform();
      const std::string dom =
          in_iframe ? pick_ad_domain()
                    : (rng.chance(0.7) ? pick_third_party() : pick_first_party());
      const double offset = rng.uniform(0.55, 1.0);
      if (roll < 0.65) {
        Resource img =
            make(static_cast<std::int32_t>(js_id), ResourceType::Image,
                 DiscoveryVia::JsExec, offset,
                 rng.lognormal(p.chain_image_median, p.chain_image_sigma),
                 dom, in_iframe);
        // Most JS-created chain images are tracking pixels that never enter
        // the DOM; the load event does not wait for them.
        img.blocks_onload = !rng.chance(0.60);
        page.add(std::move(img));
      } else if (roll < 0.87) {
        Resource r = make(static_cast<std::int32_t>(js_id), ResourceType::Js,
                          DiscoveryVia::JsExec, offset,
                          rng.lognormal(p.chain_js_median, p.chain_js_sigma),
                          dom, in_iframe);
        r.async = true;  // JS-injected scripts do not block the parser
        const std::uint32_t id = page.add(std::move(r));
        grow_js_subtree(id, in_iframe, depth + 1);
      } else {
        Resource o =
            make(static_cast<std::int32_t>(js_id), ResourceType::Other,
                 DiscoveryVia::JsExec, offset, rng.lognormal(2e3, 0.8), dom,
                 in_iframe);
        o.blocks_onload = false;  // analytics POSTs/beacons
        page.add(std::move(o));
      }
    }
  }

  // Builds an iframe document and its subtree (ad unit).
  void grow_iframe(std::int32_t parent, DiscoveryVia via, double offset,
                   int depth, bool post_onload = false) {
    if (depth >= p.max_depth) return;
    const std::string ad_dom = pick_ad_domain();
    Resource doc = make(parent, ResourceType::Html, via, offset,
                        rng.lognormal(p.iframe_html_median,
                                      p.iframe_html_sigma),
                        ad_dom, /*in_iframe=*/true);
    doc.is_iframe_doc = true;
    doc.post_onload = post_onload;
    const std::uint32_t doc_id = page.add(std::move(doc));

    const int njs = poisson_count(p.iframe_js_mean);
    for (int i = 0; i < njs; ++i) {
      Resource r = make(static_cast<std::int32_t>(doc_id), ResourceType::Js,
                        DiscoveryVia::HtmlTag, rng.uniform(0.1, 0.9),
                        rng.lognormal(p.js_size_median, p.js_size_sigma),
                        pick_ad_domain(), true);
      r.blocks_parser = rng.chance(0.5);
      r.async = !r.blocks_parser;
      const std::uint32_t id = page.add(std::move(r));
      grow_js_subtree(id, /*in_iframe=*/true, depth + 1);
    }
    const int nimg = poisson_count(p.iframe_image_mean);
    for (int i = 0; i < nimg; ++i) {
      page.add(make(static_cast<std::int32_t>(doc_id), ResourceType::Image,
                    DiscoveryVia::HtmlTag, rng.uniform(0.1, 1.0),
                    rng.lognormal(p.image_size_median, p.image_size_sigma),
                    pick_ad_domain(), true));
    }
    if (rng.chance(p.nested_iframe_prob)) {
      grow_iframe(static_cast<std::int32_t>(doc_id), DiscoveryVia::HtmlTag,
                  rng.uniform(0.3, 1.0), depth + 2);
    }
  }
};

// Fills in everything under the root document (defined after generate_page).
void populate_body(Builder& b, PageModel& page, Rng& rng,
                   const GeneratorParams& p);

}  // namespace

GeneratorParams GeneratorParams::for_class(PageClass cls) {
  GeneratorParams p;
  switch (cls) {
    case PageClass::News:
      p.complexity = 1.0;
      p.main_hourly = 0.09;  // headlines churn faster on news fronts
      p.main_daily = 0.17;
      p.main_stable = 0.59;
      break;
    case PageClass::Sports:
      p.complexity = 0.95;
      break;
    case PageClass::Top100:
      p.complexity = 0.55;
      p.root_html_median = 55e3;
      p.iframe_count = 2.2;
      p.third_party_domains = 7;
      break;
    case PageClass::Mixed400:
      p.complexity = 0.60;
      p.root_html_median = 60e3;
      p.iframe_count = 2.6;
      p.third_party_domains = 8;
      break;
  }
  return p;
}

PageModel generate_page(std::uint64_t corpus_seed, std::uint32_t page_id,
                        PageClass cls) {
  return generate_page(corpus_seed, page_id, cls,
                       GeneratorParams::for_class(cls));
}

PageModel generate_page(std::uint64_t corpus_seed, std::uint32_t page_id,
                        PageClass cls, const GeneratorParams& p) {
  Rng rng(corpus_seed, std::string("page:") + page_class_name(cls) + ":" +
                           std::to_string(page_id));
  const std::string site = std::string(page_class_name(cls)) +
                           std::to_string(page_id) + ".com";
  PageModel page(page_id, cls, site);

  Builder b{page, rng, p, {}, {}, {}};
  b.first_party_domains.push_back(site);
  for (int i = 0; i < p.first_party_shards; ++i) {
    const std::string shard =
        (i == 0 ? "static." : "img" + std::to_string(i) + ".") + site;
    b.first_party_domains.push_back(shard);
    page.add_first_party_domain(shard);
  }
  for (int i = 0; i < p.third_party_domains; ++i) {
    // A shared global pool so popular third parties recur across sites.
    const char* kinds[] = {"cdn", "ads", "analytics", "social", "tag"};
    const std::string kind = kinds[rng.uniform_int(0, 4)];
    const std::string dom =
        kind + std::to_string(rng.uniform_int(0, 39)) + ".net";
    b.third_party_domains.push_back(dom);
    if (kind == "ads" || kind == "tag") b.ad_domains.push_back(dom);
  }
  if (b.ad_domains.empty()) b.ad_domains.push_back("ads0.net");

  // Root HTML.
  {
    Resource root;
    root.id = 0;
    root.parent = -1;
    root.type = ResourceType::Html;
    root.base_size = std::max<std::int64_t>(
        static_cast<std::int64_t>(
            rng.lognormal(p.root_html_median, p.root_html_sigma)),
        8000);
    root.domain = site;
    root.volatility = Volatility::Hourly;  // front pages re-render often
    root.rotation_period = sim::minutes(30);
    root.above_fold = true;
    root.visual_weight = 1.0;
    page.add(std::move(root));
  }

  populate_body(b, page, rng, p);
  return page;
}

namespace {

void populate_body(Builder& b, PageModel& page, Rng& rng,
                   const GeneratorParams& p) {
  const double cx = p.complexity;
  auto scaled = [&](double mean) { return b.poisson_count(mean * cx); };

  // CSS stylesheets.
  const int n_css = std::max(1, scaled(p.css_count));
  for (int i = 0; i < n_css; ++i) {
    Resource r = b.make(0, ResourceType::Css, DiscoveryVia::HtmlTag,
                        rng.uniform(0.02, 0.25),
                        rng.lognormal(p.css_size_median, p.css_size_sigma),
                        rng.chance(0.7) ? b.pick_first_party()
                                        : b.pick_third_party(),
                        false);
    r.above_fold = true;
    const std::uint32_t id = page.add(std::move(r));
    const int nc = b.poisson_count(p.css_child_mean);
    for (int j = 0; j < nc; ++j) {
      const bool font = rng.chance(0.45);
      page.add(b.make(static_cast<std::int32_t>(id),
                      font ? ResourceType::Font : ResourceType::Image,
                      DiscoveryVia::CssRef, 1.0,
                      font ? rng.lognormal(p.font_size_median,
                                           p.font_size_sigma)
                           : rng.lognormal(p.image_size_median,
                                           p.image_size_sigma),
                      b.pick_first_party(), false));
    }
  }

  // Synchronous scripts (block the parser at their document position).
  std::vector<std::uint32_t> main_scripts;
  const int n_sync = std::max(1, scaled(p.sync_js_count));
  for (int i = 0; i < n_sync; ++i) {
    Resource r = b.make(0, ResourceType::Js, DiscoveryVia::HtmlTag,
                        rng.uniform(0.03, 0.85),
                        rng.lognormal(p.js_size_median, p.js_size_sigma),
                        rng.chance(0.55) ? b.pick_first_party()
                                         : b.pick_third_party(),
                        false);
    r.blocks_parser = true;
    const bool first_party = page.is_first_party_org(r.domain);
    const std::uint32_t id = page.add(std::move(r));
    if (first_party) main_scripts.push_back(id);
    b.grow_js_subtree(id, false, 1);
  }

  // Async scripts.
  const int n_async = scaled(p.async_js_count);
  for (int i = 0; i < n_async; ++i) {
    Resource r = b.make(0, ResourceType::Js, DiscoveryVia::HtmlTag,
                        rng.uniform(0.1, 0.95),
                        rng.lognormal(p.js_size_median, p.js_size_sigma),
                        rng.chance(0.35) ? b.pick_first_party()
                                         : b.pick_third_party(),
                        false);
    r.async = true;
    const bool first_party = page.is_first_party_org(r.domain);
    const std::uint32_t id = page.add(std::move(r));
    if (first_party) main_scripts.push_back(id);
    b.grow_js_subtree(id, false, 1);
  }

  // Images. A couple of above-the-fold hero images dominate the visual
  // completeness metric; the rest are body/story images. A large fraction of
  // content images is inserted by first-party template/lazy-load scripts —
  // invisible to a preload scanner, found only by executing the script.
  const int n_img = std::max(4, scaled(p.image_count));
  const int n_hero = rng.chance(0.8) ? 2 : 1;
  for (int i = 0; i < n_img; ++i) {
    const bool hero = i < n_hero;
    const double js_frac =
        hero ? p.js_rendered_hero_frac : p.js_rendered_image_frac;
    const bool js_rendered = !main_scripts.empty() && rng.chance(js_frac);
    std::int32_t parent = 0;
    DiscoveryVia via = DiscoveryVia::HtmlTag;
    if (js_rendered) {
      parent = static_cast<std::int32_t>(
          main_scripts[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(main_scripts.size()) - 1))]);
      via = DiscoveryVia::JsExec;
    }
    Resource r = b.make(
        parent, ResourceType::Image, via,
        hero ? rng.uniform(0.05, 0.2) : rng.uniform(0.1, 1.0),
        hero ? rng.lognormal(p.hero_image_median, p.hero_image_sigma)
             : rng.lognormal(p.image_size_median, p.image_size_sigma),
        rng.chance(0.6) ? b.pick_first_party() : b.pick_third_party(), false);
    r.above_fold = hero || r.discovery_offset < 0.35;
    r.visual_weight = r.above_fold ? std::sqrt(
                                         static_cast<double>(r.base_size))
                                   : 0.0;
    if (rng.chance(p.device_conditional_frac)) {
      r.device_axis = static_cast<std::int8_t>(rng.uniform_int(0, 2));
    }
    page.add(std::move(r));
  }

  // Fonts referenced directly from the root document.
  const int n_font = scaled(p.font_count);
  for (int i = 0; i < n_font; ++i) {
    page.add(b.make(0, ResourceType::Font, DiscoveryVia::HtmlTag,
                    rng.uniform(0.05, 0.4),
                    rng.lognormal(p.font_size_median, p.font_size_sigma),
                    b.pick_first_party(), false));
  }

  // Ad iframes.
  const int n_iframe = scaled(p.iframe_count);
  for (int i = 0; i < n_iframe; ++i) {
    const bool via_js = rng.chance(0.5);  // many ad slots are JS-injected
    if (via_js) {
      Resource loader = b.make(0, ResourceType::Js, DiscoveryVia::HtmlTag,
                               rng.uniform(0.2, 0.9),
                               rng.lognormal(12e3, 0.6), b.pick_ad_domain(),
                               false);
      loader.async = true;
      const std::uint32_t id = page.add(std::move(loader));
      // Ad scripts commonly defer iframe insertion past the load event so
      // the ad auction cannot hurt the page's load metrics.
      b.grow_iframe(static_cast<std::int32_t>(id), DiscoveryVia::JsExec,
                    rng.uniform(0.7, 1.0), 1,
                    /*post_onload=*/rng.chance(0.55));
    } else {
      b.grow_iframe(0, DiscoveryVia::HtmlTag, rng.uniform(0.3, 1.0), 1);
    }
  }
}

// Site-wide infrastructure slots shared by every page of the site: built
// from a site-scoped random stream so sibling pages produce *identical*
// resources (ids, domains, sizes, rotation phases) whose realized URLs
// therefore match across pages.
void add_shared_infra(Builder& b, PageModel& page, Rng& site_rng,
                      const GeneratorParams& p, std::uint32_t site_id) {
  const std::uint32_t override_id = 1'000'000 + site_id;
  struct Slot {
    ResourceType type;
    double median, sigma;
    bool sync_js = false;
  };
  const Slot slots[] = {
      {ResourceType::Css, p.css_size_median * 1.4, 0.5},
      {ResourceType::Css, p.css_size_median, 0.5},
      {ResourceType::Js, p.js_size_median * 2.0, 0.5, true},  // framework
      {ResourceType::Js, p.js_size_median, 0.5, true},
      {ResourceType::Js, p.js_size_median, 0.5},
      {ResourceType::Font, p.font_size_median, 0.3},
      {ResourceType::Font, p.font_size_median, 0.3},
      {ResourceType::Image, 9e3, 0.4},  // logo/sprite assets
      {ResourceType::Image, 6e3, 0.4},
  };
  auto make_shared = [&](std::int32_t parent, ResourceType type,
                         DiscoveryVia via, double median, double sigma,
                         bool sync_js) {
    Resource r = b.make(parent, type, via, site_rng.uniform(0.02, 0.3),
                        site_rng.lognormal(median, sigma),
                        b.pick_first_party(), false);
    r.volatility = Volatility::Stable;
    r.rotation_period = sim::days(60);
    r.rotation_phase =
        sim::from_seconds(site_rng.uniform(0.0, 60.0 * 86400.0));
    r.blocks_parser = sync_js;
    r.async = type == ResourceType::Js && !sync_js;
    r.cacheable = true;
    r.max_age = sim::days(7);
    r.url_page_override = override_id;
    return page.add(std::move(r));
  };

  for (const Slot& slot : slots) {
    const std::uint32_t id = make_shared(0, slot.type, DiscoveryVia::HtmlTag,
                                         slot.median, slot.sigma,
                                         slot.sync_js);
    // The framework script pulls in shared polyfills/sprites at runtime and
    // the stylesheets reference shared fonts/background art — none of it
    // visible to an online HTML scan, which is exactly what cross-page
    // offline resolution recovers.
    if (slot.type == ResourceType::Js && slot.sync_js) {
      for (int c = 0; c < 3; ++c) {
        const bool js = c == 0;
        make_shared(static_cast<std::int32_t>(id),
                    js ? ResourceType::Js : ResourceType::Image,
                    DiscoveryVia::JsExec, js ? p.js_size_median : 7e3, 0.4,
                    false);
      }
    } else if (slot.type == ResourceType::Css) {
      for (int c = 0; c < 2; ++c) {
        const bool font = c == 0;
        make_shared(static_cast<std::int32_t>(id),
                    font ? ResourceType::Font : ResourceType::Image,
                    DiscoveryVia::CssRef, font ? p.font_size_median : 8e3,
                    0.3, false);
      }
    }
  }
}

}  // namespace

std::vector<PageModel> generate_site_pages(std::uint64_t corpus_seed,
                                           std::uint32_t site_id,
                                           PageClass cls, int n_pages) {
  std::vector<PageModel> pages;
  pages.reserve(static_cast<std::size_t>(n_pages));
  GeneratorParams p = GeneratorParams::for_class(cls);
  // Shared infra replaces part of each page's own CSS/JS budget.
  p.css_count = std::max(1.0, p.css_count - 2);
  p.sync_js_count = std::max(1.0, p.sync_js_count - 2);
  p.font_count = std::max(0.0, p.font_count - 2);

  const std::string site = std::string(page_class_name(cls)) + "site" +
                           std::to_string(site_id) + ".com";
  for (int i = 0; i < n_pages; ++i) {
    const auto page_id =
        static_cast<std::uint32_t>(500'000 + site_id * 1'000 +
                                   static_cast<std::uint32_t>(i));
    Rng rng(corpus_seed, "sitepage:" + std::to_string(site_id) + ":" +
                             std::to_string(i));
    PageModel page(page_id, cls, site);

    Builder b{page, rng, p, {}, {}, {}};
    b.first_party_domains.push_back(site);
    for (int s = 0; s < p.first_party_shards; ++s) {
      const std::string shard =
          (s == 0 ? "static." : "img" + std::to_string(s) + ".") + site;
      b.first_party_domains.push_back(shard);
      page.add_first_party_domain(shard);
    }
    for (int t = 0; t < p.third_party_domains; ++t) {
      const char* kinds[] = {"cdn", "ads", "analytics", "social", "tag"};
      const std::string kind = kinds[rng.uniform_int(0, 4)];
      const std::string dom =
          kind + std::to_string(rng.uniform_int(0, 39)) + ".net";
      b.third_party_domains.push_back(dom);
      if (kind == "ads" || kind == "tag") b.ad_domains.push_back(dom);
    }
    if (b.ad_domains.empty()) b.ad_domains.push_back("ads0.net");

    Resource root;
    root.id = 0;
    root.parent = -1;
    root.type = ResourceType::Html;
    root.base_size = std::max<std::int64_t>(
        static_cast<std::int64_t>(
            rng.lognormal(p.root_html_median, p.root_html_sigma)),
        8000);
    root.domain = site;
    root.volatility = Volatility::Hourly;
    root.rotation_period = sim::minutes(30);
    root.above_fold = true;
    root.visual_weight = 1.0;
    page.add(std::move(root));

    // Identical shared block, via a fresh site-scoped stream each time.
    Rng site_rng(corpus_seed, "site-shared:" + std::to_string(site_id));
    Builder shared{page, site_rng, p, b.first_party_domains,
                   b.third_party_domains, b.ad_domains};
    add_shared_infra(shared, page, site_rng, p, site_id);

    populate_body(b, page, rng, p);
    pages.push_back(std::move(page));
  }
  return pages;
}

}  // namespace vroom::web
