// Template description of one resource in a page's dependency tree.
//
// A `Resource` is a *slot*: its realized URL (and thus whether two loads of
// the page fetch "the same" resource) depends on volatility class, wall-clock
// time, user, and load nonce — realized by `PageInstance`. This split is what
// lets one generator drive both the page-evolution measurements (Figure 7)
// and Vroom's server-side accuracy results (Figure 21), as in the real study.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace vroom::web {

enum class ResourceType : std::uint8_t {
  Html,
  Css,
  Js,
  Image,
  Font,
  Media,
  Other,
};

// Resources that the browser must parse or execute; the 25 %-of-bytes class
// Vroom prioritizes (§4.3).
constexpr bool is_processable(ResourceType t) {
  return t == ResourceType::Html || t == ResourceType::Css ||
         t == ResourceType::Js;
}

const char* type_name(ResourceType t);
const char* type_ext(ResourceType t);
ResourceType type_from_ext(std::string_view ext);

// How the parent reveals this resource during processing. Drives what the
// server's online HTML scan can see (HtmlTag only) versus what requires
// executing scripts (JsExec) or parsing stylesheets (CssRef).
enum class DiscoveryVia : std::uint8_t { HtmlTag, CssRef, JsExec };

// Rotation behaviour of the realized URL over time.
enum class Volatility : std::uint8_t {
  Stable,        // rotates on a multi-week timescale
  Daily,         // story images, section content
  Hourly,        // headlines, trending modules
  PerLoad,       // ad cache-busters: different on every load
  Personalized,  // varies per user (and slowly over time)
};

const char* volatility_name(Volatility v);

struct Resource {
  std::uint32_t id = 0;
  std::int32_t parent = -1;  // -1 for the root HTML
  ResourceType type = ResourceType::Other;
  DiscoveryVia via = DiscoveryVia::HtmlTag;
  // Fraction of the parent's processing at which this child is revealed.
  double discovery_offset = 0.0;
  std::int64_t base_size = 0;  // bytes; realized size jitters per version
  std::string domain;
  Volatility volatility = Volatility::Stable;
  // Rotation period for time-driven volatility classes (ignored for
  // PerLoad). Phase decorrelates resources sharing a period.
  sim::Time rotation_period = sim::days(30);
  sim::Time rotation_phase = 0;

  bool is_iframe_doc = false;  // embedded HTML document (type == Html)
  bool in_iframe = false;      // this resource or an ancestor is iframe content
  // Ad units injected after the load event (common for JS-placed iframes so
  // ads do not hurt the page's load metrics). Never gates onload/AFT.
  bool post_onload = false;
  // Tracking beacons / pixels created by scripts but never inserted into the
  // DOM: fetched during the load, but the load event does not wait for them.
  bool blocks_onload = true;
  bool async = false;          // async script / non-render-blocking CSS
  bool blocks_parser = false;  // synchronous <script> in document order

  bool cacheable = false;
  sim::Time max_age = 0;

  bool above_fold = false;
  double visual_weight = 0.0;  // contribution to Speed Index completeness

  // Site-shared infrastructure slot (stylesheets, framework JS, logo assets
  // common to every page of a site/page-type): the realized URL embeds this
  // site-level id instead of the page id, so the *same URL* appears on every
  // sibling page. Enables cross-page offline dependency resolution (§7).
  static constexpr std::uint32_t kNoPageOverride = 0xffffffff;
  std::uint32_t url_page_override = kNoPageOverride;

  std::uint32_t effective_page_id(std::uint32_t model_page_id) const {
    return url_page_override == kNoPageOverride ? model_page_id
                                                : url_page_override;
  }

  // Device customization: -1 means the resource is identical on all devices;
  // otherwise the realized URL carries a variant equal to the device's value
  // on this axis (different-resolution image for tablets, etc.).
  std::int8_t device_axis = -1;
  // True if the domain that personalizes this resource is the same
  // organization as the page's first party (see §4.2 discussion).
  bool first_party_personalized = false;
};

}  // namespace vroom::web
