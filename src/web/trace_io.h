// Page-template serialization: a line-oriented text format so users can
// persist generated pages, edit them, or import dependency trees derived
// from real HAR/WProf captures and replay them through the simulator.
//
// Format (one resource per line, '#' comments, whitespace-separated
// key=value pairs; the header line carries page-level fields):
//
//   page id=7 class=news first_party=news7.com shards=static.news7.com,...
//   res id=0 parent=-1 type=html via=tag off=0 size=91234 domain=news7.com \
//       vol=hourly period=1800000000 phase=0 flags=above_fold
//   res id=1 parent=0 type=css ...
//
// Every field of web::Resource round-trips.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "web/page_model.h"

namespace vroom::web {

// Serializes a page template; deterministic output, stable field order.
std::string page_to_trace(const PageModel& page);
void write_trace(std::ostream& os, const PageModel& page);

// Parses a trace produced by page_to_trace (or hand-written in the same
// format). Returns nullopt and fills `error` on malformed input.
std::optional<PageModel> page_from_trace(const std::string& text,
                                         std::string* error = nullptr);

}  // namespace vroom::web
