#include "web/intern.h"

#include "web/url.h"

namespace vroom::web {
namespace {

std::int8_t native_priority_of(ResourceType t) {
  switch (t) {
    case ResourceType::Html: return 3;
    case ResourceType::Css:
    case ResourceType::Js: return 2;
    case ResourceType::Font: return 1;
    default: return 0;
  }
}

}  // namespace

Interner::Interner(sim::Arena* arena)
    : arena_(arena != nullptr ? arena : new sim::Arena()),
      owned_arena_(arena != nullptr ? nullptr : arena_),
      urls_(arena_),
      domains_(arena_),
      info_(arena_),
      url_index_(arena_),
      domain_index_(arena_) {}

UrlId Interner::url_id(std::string_view url) {
  auto it = url_index_.find(url);
  if (it != url_index_.end()) return it->second;

  const UrlId id = static_cast<UrlId>(urls_.size());
  const std::string_view stored = arena_->copy_string(url);
  urls_.push_back(stored);
  UrlInfo info;
  info.domain = domain_id(url_domain_view(stored));
  if (auto parsed = parse_url(stored)) {
    info.parse_ok = true;
    info.type = type_from_ext(parsed->ext);
    info.processable = is_processable(info.type);
    info.native_priority = native_priority_of(info.type);
    info.resource_id = parsed->resource_id;
    info.page_id = parsed->page_id;
    info.version = parsed->version;
    info.user = parsed->user;
  }
  info_.push_back(info);
  url_index_.emplace(stored, id);
  return id;
}

DomainId Interner::domain_id(std::string_view domain) {
  auto it = domain_index_.find(domain);
  if (it != domain_index_.end()) return it->second;
  const DomainId id = static_cast<DomainId>(domains_.size());
  const std::string_view stored = arena_->copy_string(domain);
  domains_.push_back(stored);
  domain_index_.emplace(stored, id);
  return id;
}

}  // namespace vroom::web
