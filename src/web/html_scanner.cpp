#include "web/html_scanner.h"

#include <algorithm>
#include <cassert>

namespace vroom::web {

std::vector<ScannedLink> scan_html(const PageInstance& instance,
                                   std::uint32_t doc_id) {
  const PageModel& model = instance.model();
  assert(model.resource(doc_id).type == ResourceType::Html);
  std::vector<ScannedLink> out;
  for (std::uint32_t child : model.children(doc_id)) {
    const Resource& r = model.resource(child);
    if (r.via != DiscoveryVia::HtmlTag) continue;
    out.push_back(ScannedLink{child, std::string(instance.resource(child).url),
                              r.discovery_offset});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.offset != b.offset) return a.offset < b.offset;
    return a.template_id < b.template_id;
  });
  return out;
}

sim::Time scan_cost(std::int64_t html_bytes) {
  // ~1.1 us per byte: a 90 KB news front page costs ~100 ms, matching the
  // paper's reported median overhead.
  return static_cast<sim::Time>(html_bytes * 11 / 10);
}

}  // namespace vroom::web
