// Template of a web page: the full dependency tree of resource slots.
//
// The model is the server-side ground truth a real crawl would converge to;
// concrete loads are realized by `PageInstance`. Resource 0 is always the
// root HTML.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "web/resource.h"

namespace vroom::web {

enum class PageClass : std::uint8_t { Top100, News, Sports, Mixed400 };

const char* page_class_name(PageClass c);

class PageModel {
 public:
  PageModel(std::uint32_t page_id, PageClass cls, std::string first_party);

  std::uint32_t page_id() const { return page_id_; }
  PageClass page_class() const { return cls_; }
  const std::string& first_party() const { return first_party_; }

  // Domains owned by the same organization as the first party (static/img
  // shards); relevant for the incremental-deployment scenario in §6.1.
  const std::vector<std::string>& first_party_group() const {
    return first_party_group_;
  }
  void add_first_party_domain(std::string d) {
    first_party_group_.push_back(std::move(d));
  }
  bool is_first_party_org(const std::string& domain) const;

  // Appends a resource; id must equal the current size. Returns the id.
  std::uint32_t add(Resource r);

  const Resource& resource(std::uint32_t id) const { return resources_[id]; }
  const std::vector<Resource>& resources() const { return resources_; }
  std::size_t size() const { return resources_.size(); }

  const std::vector<std::uint32_t>& children(std::uint32_t id) const {
    return children_[id];
  }

  const Resource& root() const { return resources_[0]; }

  // Sum of base sizes by processability (calibration checks).
  std::int64_t total_bytes() const;
  std::int64_t processable_bytes() const;

  // Depth of the dependency subtree rooted at `id` (leaf == 1); Polaris-style
  // chain-length priority.
  int chain_depth(std::uint32_t id) const;

  // True if this resource, or any ancestor, is injected after the load event
  // (post-onload ad units) — i.e. it never loads before onload fires.
  bool in_post_onload_subtree(std::uint32_t id) const;

  // Descendants of document `doc_id`, pruned at embedded-HTML boundaries:
  // iframe documents themselves are included, but nothing below them — the
  // personalization rule of §4.2 (an iframe's own domain advises on its
  // subtree). Returned in processing order (preorder, children by discovery
  // offset).
  std::vector<std::uint32_t> hintable_descendants(std::uint32_t doc_id) const;

 private:
  std::uint32_t page_id_;
  PageClass cls_;
  std::string first_party_;
  std::vector<std::string> first_party_group_;
  std::vector<Resource> resources_;
  std::vector<std::vector<std::uint32_t>> children_;
};

}  // namespace vroom::web
