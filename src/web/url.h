// Structured URLs for synthetic pages.
//
// Realized resource URLs are self-describing so that any origin server can
// resolve a request for *any* version of a resource (including stale URLs a
// client fetched because of an outdated dependency hint, exactly as a real
// origin would serve a stale story image). Format:
//
//   <domain>/p<page>/r<resource>v<version>u<user>.<ext>
//
// where <version> is the volatility-driven rotation counter and <user> is
// non-zero only for personalized resources.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vroom::web {

struct ParsedUrl {
  std::string domain;
  std::uint32_t page_id = 0;
  std::uint32_t resource_id = 0;
  std::uint64_t version = 0;
  std::uint32_t user = 0;
  std::string ext;

  bool operator==(const ParsedUrl&) const = default;
};

// Builds the canonical URL string.
std::string make_url(std::string_view domain, std::uint32_t page_id,
                     std::uint32_t resource_id, std::uint64_t version,
                     std::uint32_t user, std::string_view ext);

// Parses a canonical URL; returns nullopt for malformed input.
std::optional<ParsedUrl> parse_url(std::string_view url);

// Extracts only the domain (prefix up to the first '/').
std::string url_domain(std::string_view url);

// Non-allocating variant; the view aliases `url`'s storage.
constexpr std::string_view url_domain_view(std::string_view url) {
  const std::size_t slash = url.find('/');
  return slash == std::string_view::npos ? url : url.substr(0, slash);
}

}  // namespace vroom::web
