// Synthetic page generator calibrated to the paper's measured corpus.
//
// Calibration targets (paper §2, §4.1, §6.2 and HTTP Archive figures cited
// there):
//   * ~100 resources on the average mobile page; News/Sports pages larger
//   * resources spread across tens of domains, mostly third-party
//   * processable resources (HTML/CSS/JS) ~= 25 % of page bytes
//   * ~22 % of a page's URLs change across back-to-back loads (ads)
//   * ~70 % of resources persist over one hour, ~50 % over one week
//   * most per-load churn lives inside third-party iframes (ad chains), so
//     the root-HTML-derived, non-iframe "predictable" subset is > 80 % of
//     resources and > 95 % of bytes (Fig 21a)
// The generator is deterministic per (corpus seed, page id).
#pragma once

#include <cstdint>
#include <vector>

#include "web/page_model.h"

namespace vroom::web {

struct GeneratorParams {
  // Scale knob: 1.0 for News/Sports-class pages, ~0.55 for the average
  // top-100 page.
  double complexity = 1.0;

  // Root HTML size (lognormal median / sigma).
  double root_html_median = 90e3;
  double root_html_sigma = 0.45;

  // Direct children of the root (means; actual counts are randomized).
  double css_count = 6;
  double sync_js_count = 6;
  double async_js_count = 5;
  double image_count = 48;
  double font_count = 3;
  double iframe_count = 4;

  // Subtree growth. Ad/analytics chains are deep: scripts load scripts that
  // load trackers — none of it visible to a preload scanner.
  double js_child_prob = 0.70;   // a script spawns children at all
  double js_child_mean = 2.2;    // children per spawning script
  double css_child_mean = 0.8;
  double iframe_js_mean = 1.5;
  double iframe_image_mean = 3.0;
  double nested_iframe_prob = 0.35;
  int max_depth = 6;

  // Sizes (lognormal medians in bytes / sigmas).
  double css_size_median = 14e3, css_size_sigma = 0.8;
  double js_size_median = 18e3, js_size_sigma = 0.8;
  // Chain scripts are ad/analytics libraries (gpt.js-class): heavyweight,
  // discovered only by executing their parent. Chain images stay light
  // (pixels, creatives).
  double chain_js_median = 14e3, chain_js_sigma = 0.8;
  double chain_image_median = 4e3, chain_image_sigma = 0.9;
  double image_size_median = 11e3, image_size_sigma = 1.1;
  double hero_image_median = 140e3, hero_image_sigma = 0.5;
  double font_size_median = 28e3, font_size_sigma = 0.4;
  double iframe_html_median = 14e3, iframe_html_sigma = 0.6;

  // Volatility mix for main-document (non-iframe) resources. Infrastructure
  // types (CSS/JS/fonts) are biased further toward Stable in the generator.
  double main_stable = 0.60;
  double main_daily = 0.18;
  double main_hourly = 0.07;
  double main_perload = 0.10;
  double main_personalized = 0.05;

  // Volatility mix inside iframes (ad content).
  double iframe_stable = 0.22;
  double iframe_hourly = 0.18;
  double iframe_perload = 0.55;
  double iframe_personalized = 0.05;

  // Fraction of main-document images customized per device axis.
  double device_conditional_frac = 0.13;

  // Fraction of content images inserted by first-party template/lazy-load
  // scripts rather than written in the root markup — invisible to a preload
  // scanner, discovered only by executing the script.
  double js_rendered_image_frac = 0.40;
  double js_rendered_hero_frac = 0.30;

  // Cacheability.
  double cacheable_frac = 0.90;

  // Domains. A handful of third parties (ad exchanges, CDNs, analytics)
  // serve most third-party bytes, concentrating per-domain request load.
  int first_party_shards = 2;   // static./img. shards owned by first party
  int third_party_domains = 9;  // distinct third parties touched by the page

  static GeneratorParams for_class(PageClass cls);
};

// Generates the dependency-tree template for one page.
PageModel generate_page(std::uint64_t corpus_seed, std::uint32_t page_id,
                        PageClass cls);
PageModel generate_page(std::uint64_t corpus_seed, std::uint32_t page_id,
                        PageClass cls, const GeneratorParams& params);

// Generates `n_pages` pages of one site that share an infrastructure slot
// set (site-wide CSS, framework JS, fonts, logo assets) with identical URLs
// across siblings — the structure exploited by cross-page offline
// dependency resolution (§7 of the paper).
std::vector<PageModel> generate_site_pages(std::uint64_t corpus_seed,
                                           std::uint32_t site_id,
                                           PageClass cls, int n_pages);

}  // namespace vroom::web
