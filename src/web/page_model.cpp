#include "web/page_model.h"

#include <algorithm>
#include <cassert>

namespace vroom::web {

const char* page_class_name(PageClass c) {
  switch (c) {
    case PageClass::Top100: return "top100";
    case PageClass::News: return "news";
    case PageClass::Sports: return "sports";
    case PageClass::Mixed400: return "mixed400";
  }
  return "?";
}

PageModel::PageModel(std::uint32_t page_id, PageClass cls,
                     std::string first_party)
    : page_id_(page_id), cls_(cls), first_party_(std::move(first_party)) {
  first_party_group_.push_back(first_party_);
}

bool PageModel::is_first_party_org(const std::string& domain) const {
  return std::find(first_party_group_.begin(), first_party_group_.end(),
                   domain) != first_party_group_.end();
}

std::uint32_t PageModel::add(Resource r) {
  const auto id = static_cast<std::uint32_t>(resources_.size());
  assert(r.id == id);
  assert(r.parent < static_cast<std::int32_t>(id));
  resources_.push_back(std::move(r));
  children_.emplace_back();
  if (resources_.back().parent >= 0) {
    children_[static_cast<std::size_t>(resources_.back().parent)].push_back(id);
  }
  return id;
}

std::int64_t PageModel::total_bytes() const {
  std::int64_t sum = 0;
  for (const auto& r : resources_) sum += r.base_size;
  return sum;
}

std::int64_t PageModel::processable_bytes() const {
  std::int64_t sum = 0;
  for (const auto& r : resources_) {
    if (is_processable(r.type)) sum += r.base_size;
  }
  return sum;
}

std::vector<std::uint32_t> PageModel::hintable_descendants(
    std::uint32_t doc_id) const {
  std::vector<std::uint32_t> out;
  // Preorder walk; children visited in discovery-offset order so `out` is
  // the order the client will process the resources (Table 1 requirement).
  std::vector<std::uint32_t> stack;
  auto push_children = [&](std::uint32_t id) {
    std::vector<std::uint32_t> kids = children_[id];
    std::sort(kids.begin(), kids.end(), [&](std::uint32_t a, std::uint32_t b) {
      const double oa = resources_[a].discovery_offset;
      const double ob = resources_[b].discovery_offset;
      if (oa != ob) return oa > ob;  // reversed: stack pops smallest first
      return a > b;
    });
    for (std::uint32_t k : kids) stack.push_back(k);
  };
  push_children(doc_id);
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    out.push_back(id);
    // Prune below embedded HTML documents.
    if (resources_[id].type == ResourceType::Html) continue;
    push_children(id);
  }
  return out;
}

bool PageModel::in_post_onload_subtree(std::uint32_t id) const {
  for (std::int32_t cur = static_cast<std::int32_t>(id); cur >= 0;
       cur = resources_[static_cast<std::size_t>(cur)].parent) {
    if (resources_[static_cast<std::size_t>(cur)].post_onload) return true;
  }
  return false;
}

int PageModel::chain_depth(std::uint32_t id) const {
  int best = 0;
  for (std::uint32_t c : children_[id]) best = std::max(best, chain_depth(c));
  return best + 1;
}

}  // namespace vroom::web
