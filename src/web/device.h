// Client device profiles.
//
// Pages customize resources by device characteristics (screen class, pixel
// density, viewport width) — §4.1.2 and Figure 9 of the paper. A device
// profile captures the axes that matter for that customization plus a CPU
// speed scale (the Nexus 6 is the paper's reference device).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace vroom::web {

enum class DeviceAxis : std::uint8_t { Screen = 0, Dpi = 1, Width = 2 };
constexpr int kNumDeviceAxes = 3;

struct DeviceProfile {
  std::string name;
  int screen = 0;  // 0 = phone, 1 = tablet
  int dpi = 0;     // density bucket 0..2
  int width = 0;   // viewport-width bucket 0..2
  double cpu_scale = 1.0;  // multiplier on per-byte processing cost

  int axis_value(DeviceAxis a) const {
    switch (a) {
      case DeviceAxis::Screen: return screen;
      case DeviceAxis::Dpi: return dpi;
      case DeviceAxis::Width: return width;
    }
    return 0;
  }

  bool same_rendering(const DeviceProfile& o) const {
    return screen == o.screen && dpi == o.dpi && width == o.width;
  }
};

// The devices used throughout the evaluation. nexus6() is the reference.
DeviceProfile nexus6();     // phone, high dpi
DeviceProfile oneplus3();   // phone, high dpi, slightly different viewport
DeviceProfile nexus10();    // tablet
DeviceProfile nexus5();     // phone, lower dpi
DeviceProfile galaxy_tab(); // tablet, lower dpi

std::vector<DeviceProfile> all_devices();

}  // namespace vroom::web
