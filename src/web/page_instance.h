// Realization of a PageModel at a concrete (wall time, device, user, load).
//
// Realization turns each resource slot into a concrete URL and size by
// applying its volatility class:
//   Stable/Daily/Hourly : version = (time + phase) / rotation_period
//   PerLoad             : version derived from the load nonce (never repeats)
//   Personalized        : hour-scale version plus a per-user URL component
// Device-conditional slots additionally embed the device's value on the
// customization axis. Two instances "share" a resource iff the realized URLs
// match — the same set-intersection semantics the paper uses for page
// persistence (Fig 7), device similarity (Fig 9), and server accuracy
// (Fig 21).
#pragma once

#include <cstdint>
#include <memory_resource>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/arena.h"
#include "sim/time.h"
#include "web/device.h"
#include "web/intern.h"
#include "web/page_model.h"
#include "web/url.h"

namespace vroom::web {

struct LoadIdentity {
  sim::Time wall_time = 0;
  DeviceProfile device;
  std::uint32_t user = 0;  // 0 = generic/no cookie
  std::uint64_t nonce = 0; // distinguishes back-to-back loads
};

struct InstanceResource {
  std::uint32_t template_id = 0;
  // View of the interner's stable arena copy (the URL is pre-interned at
  // build, so realization stores no second string). Dies with the instance.
  std::string_view url;
  UrlId url_id = kInvalidId;  // pre-interned in the instance's interner
  std::int64_t size = 0;
};

// Computes the realized rotation version of a resource at a wall time.
std::uint64_t rotation_version(const Resource& r, sim::Time wall_time);

// Realized size: base size with deterministic per-version jitter.
std::int64_t realized_size(const Resource& r, std::uint64_t version);

// Realizes one slot's URL under an identity. Exposed so server-side offline
// resolution can realize with the knowledge a *server* has (its own domain's
// cookie, an emulated device, its own load nonce).
std::string realize_url(const PageModel& model, const Resource& r,
                        const LoadIdentity& id);

class PageInstance {
 public:
  // Realizes `model` at `id`. When `arena` is given, every per-load table —
  // interner storage, the resource list, the url→template map — lives on it
  // and is reclaimed wholesale when the arena resets after the load (see
  // DESIGN.md §13). Without an arena the instance owns one, so standalone
  // uses (tests, accuracy set arithmetic) are unchanged.
  PageInstance(const PageModel& model, const LoadIdentity& id,
               sim::Arena* arena = nullptr);

  const PageModel& model() const { return *model_; }
  const LoadIdentity& identity() const { return id_; }

  const InstanceResource& resource(std::uint32_t id) const {
    return resources_[id];
  }
  const std::pmr::vector<InstanceResource>& resources() const {
    return resources_;
  }
  std::size_t size() const { return resources_.size(); }

  // Finds the template id behind a realized URL of *this* instance, or
  // nullopt for URLs of other instances (stale hints) / unknown URLs.
  std::optional<std::uint32_t> find_by_url(std::string_view url) const;

  // Id-keyed variant: the template id behind an interned URL, or nullopt
  // for URLs interned after build (they are foreign by construction).
  std::optional<std::uint32_t> template_of(UrlId id) const {
    if (id >= template_by_url_.size()) return std::nullopt;
    const std::uint32_t t = template_by_url_[id];
    if (t == kInvalidId) return std::nullopt;
    return t;
  }

  // The page world's URL/domain interner. Every resource URL and origin is
  // pre-interned at build, so resource i's URL has UrlId i; foreign URLs
  // (stale hints) intern lazily through this accessor. Mutable through a
  // const instance because a page world is single-threaded — see intern.h.
  Interner& interner() const { return interner_; }

  // The memory resource backing this world's per-load state (the caller's
  // arena or the interner's private fallback). The browser allocates its
  // fetch table and task state from the same resource.
  std::pmr::memory_resource* memory() const { return interner_.memory(); }

  // Set of realized URLs (for persistence / accuracy set arithmetic).
  // Copies out of the arena: the caller's strings outlive the instance.
  std::vector<std::string> url_set() const;

 private:
  const PageModel* model_;
  LoadIdentity id_;
  // Declared (and thus constructed) before the pmr members it backs.
  mutable Interner interner_;
  std::pmr::vector<InstanceResource> resources_;
  // template_by_url_[url_id] = template id, kInvalidId for non-resource ids.
  // Sized at build; later-interned URLs are foreign, template_of covers them.
  std::pmr::vector<std::uint32_t> template_by_url_;
};

// Realizes the URL + size a given (possibly stale) request would resolve to
// on the origin: any syntactically valid URL for a known resource id is
// servable, with size derived from the embedded version. Returns nullopt if
// the URL does not belong to `model`.
std::optional<std::int64_t> servable_size(const PageModel& model,
                                          std::string_view url);

}  // namespace vroom::web
