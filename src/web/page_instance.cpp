#include "web/page_instance.h"

#include <cassert>

#include "sim/random.h"

namespace vroom::web {
namespace {

// Low bits of the realized version encode the device variant so that the
// same slot yields distinct URLs per device bucket.
constexpr std::uint64_t kDeviceVariantSpace = 8;

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  return sim::derive_seed(a, "mix") ^ sim::derive_seed(b, "mix2");
}

}  // namespace

std::uint64_t rotation_version(const Resource& r, sim::Time wall_time) {
  switch (r.volatility) {
    case Volatility::Stable:
    case Volatility::Daily:
    case Volatility::Hourly:
    case Volatility::Personalized: {
      assert(r.rotation_period > 0);
      const sim::Time t = wall_time + r.rotation_phase;
      return static_cast<std::uint64_t>(t / r.rotation_period);
    }
    case Volatility::PerLoad:
      return 0;  // caller folds the nonce in
  }
  return 0;
}

std::int64_t realized_size(const Resource& r, std::uint64_t version) {
  // +/-15 % deterministic jitter so rotated content has a slightly different
  // weight, as real story images do.
  const std::uint64_t h = mix(version, r.id);
  const double jitter = 0.85 + 0.30 * (static_cast<double>(h % 10007) / 10007.0);
  std::int64_t s = static_cast<std::int64_t>(r.base_size * jitter);
  return s < 64 ? 64 : s;
}

namespace {

std::uint64_t full_version_of(const Resource& r, const LoadIdentity& id) {
  std::uint64_t version;
  if (r.volatility == Volatility::PerLoad) {
    // Unpredictable across back-to-back loads: version derives from the
    // load nonce, so equal nonces (the same load) agree and different
    // nonces differ.
    version = sim::derive_seed(id.nonce, "perload") % 1000000007ULL;
    version = mix(version, r.id) % 1000000007ULL;
  } else {
    version = rotation_version(r, id.wall_time);
  }
  std::uint64_t variant = 0;
  if (r.device_axis >= 0) {
    variant = static_cast<std::uint64_t>(id.device.axis_value(
                  static_cast<DeviceAxis>(r.device_axis))) + 1;
  }
  return version * kDeviceVariantSpace + variant;
}

}  // namespace

std::string realize_url(const PageModel& model, const Resource& r,
                        const LoadIdentity& id) {
  const std::uint64_t full_version = full_version_of(r, id);
  const std::uint32_t user_part =
      r.volatility == Volatility::Personalized ? id.user : 0;
  return make_url(r.domain, r.effective_page_id(model.page_id()), r.id,
                  full_version, user_part, type_ext(r.type));
}

PageInstance::PageInstance(const PageModel& model, const LoadIdentity& id,
                           sim::Arena* arena)
    : model_(&model),
      id_(id),
      interner_(arena),
      resources_(interner_.memory()),
      template_by_url_(interner_.memory()) {
  resources_.reserve(model.size());
  template_by_url_.reserve(model.size());
  for (const Resource& r : model.resources()) {
    const std::uint64_t full_version = full_version_of(r, id);
    InstanceResource ir;
    ir.template_id = r.id;
    ir.url_id = interner_.url_id(realize_url(model, r, id));
    // The interner's arena copy is the one stored string per URL; the
    // instance keeps a view of it.
    ir.url = interner_.url(ir.url_id);
    ir.size = realized_size(r, full_version);
    // Realized URLs are distinct per slot, so pre-interning in build order
    // assigns resource i the UrlId i.
    assert(ir.url_id == template_by_url_.size());
    template_by_url_.push_back(r.id);
    resources_.push_back(ir);
  }
}

std::optional<std::uint32_t> PageInstance::find_by_url(
    std::string_view url) const {
  const UrlId id = interner_.find_url(url);
  if (id == kInvalidId) return std::nullopt;
  return template_of(id);
}

std::vector<std::string> PageInstance::url_set() const {
  std::vector<std::string> out;
  out.reserve(resources_.size());
  for (const auto& r : resources_) out.emplace_back(r.url);
  return out;
}

std::optional<std::int64_t> servable_size(const PageModel& model,
                                          std::string_view url) {
  auto parsed = parse_url(url);
  if (!parsed) return std::nullopt;
  if (parsed->resource_id >= model.size()) return std::nullopt;
  const Resource& r = model.resource(parsed->resource_id);
  if (parsed->page_id != r.effective_page_id(model.page_id())) {
    return std::nullopt;
  }
  if (r.domain != parsed->domain) return std::nullopt;
  return realized_size(r, parsed->version);
}

}  // namespace vroom::web
