#include "web/device.h"

namespace vroom::web {

DeviceProfile nexus6() { return {"Nexus6", 0, 2, 1, 1.0}; }
DeviceProfile oneplus3() { return {"OnePlus3", 0, 2, 2, 0.85}; }
DeviceProfile nexus10() { return {"Nexus10", 1, 1, 2, 1.1}; }
DeviceProfile nexus5() { return {"Nexus5", 0, 1, 1, 1.25}; }
DeviceProfile galaxy_tab() { return {"GalaxyTab", 1, 0, 2, 1.35}; }

std::vector<DeviceProfile> all_devices() {
  return {nexus6(), oneplus3(), nexus10(), nexus5(), galaxy_tab()};
}

}  // namespace vroom::web
