// Page corpora mirroring the paper's evaluation sets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "web/page_generator.h"
#include "web/page_model.h"

namespace vroom::web {

class Corpus {
 public:
  Corpus(std::string name, std::uint64_t seed) : name_(std::move(name)),
                                                 seed_(seed) {}

  const std::string& name() const { return name_; }
  std::uint64_t seed() const { return seed_; }
  const std::vector<PageModel>& pages() const { return pages_; }
  std::size_t size() const { return pages_.size(); }
  const PageModel& page(std::size_t i) const { return pages_[i]; }

  void add_pages(PageClass cls, int count, std::uint32_t first_id = 0);

  // Alexa US top-100 landing pages (Figures 1, 7, 9).
  static Corpus top100(std::uint64_t seed);
  // Top-50 News + top-50 Sports landing pages (most figures).
  static Corpus news_sports(std::uint64_t seed);
  // 100 random pages from the top 400 (§6.1).
  static Corpus mixed400_sample(std::uint64_t seed, int count = 100);
  // 265 pages from News/Sports sites spanning page types (§6.2, Fig 21).
  static Corpus accuracy_set(std::uint64_t seed, int count = 265);
  // A small smoke corpus for tests.
  static Corpus smoke(std::uint64_t seed, int count = 4);

 private:
  std::string name_;
  std::uint64_t seed_;
  std::vector<PageModel> pages_;
};

}  // namespace vroom::web
