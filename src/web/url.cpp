#include "web/url.h"

#include <charconv>

namespace vroom::web {
namespace {

// Parses an unsigned integer starting at `pos`; advances `pos` past it.
template <typename T>
bool parse_uint(std::string_view s, std::size_t& pos, T& out) {
  const char* begin = s.data() + pos;
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr == begin) return false;
  pos += static_cast<std::size_t>(ptr - begin);
  return true;
}

}  // namespace

std::string make_url(std::string_view domain, std::uint32_t page_id,
                     std::uint32_t resource_id, std::uint64_t version,
                     std::uint32_t user, std::string_view ext) {
  std::string url;
  url.reserve(domain.size() + ext.size() + 32);
  url.append(domain);
  url.append("/p").append(std::to_string(page_id));
  url.append("/r").append(std::to_string(resource_id));
  url.append("v").append(std::to_string(version));
  if (user != 0) url.append("u").append(std::to_string(user));
  url.push_back('.');
  url.append(ext);
  return url;
}

std::optional<ParsedUrl> parse_url(std::string_view url) {
  const std::size_t slash = url.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  ParsedUrl p;
  p.domain = std::string(url.substr(0, slash));
  std::size_t pos = slash + 1;
  if (pos >= url.size() || url[pos] != 'p') return std::nullopt;
  ++pos;
  if (!parse_uint(url, pos, p.page_id)) return std::nullopt;
  if (pos >= url.size() || url[pos] != '/') return std::nullopt;
  ++pos;
  if (pos >= url.size() || url[pos] != 'r') return std::nullopt;
  ++pos;
  if (!parse_uint(url, pos, p.resource_id)) return std::nullopt;
  if (pos >= url.size() || url[pos] != 'v') return std::nullopt;
  ++pos;
  if (!parse_uint(url, pos, p.version)) return std::nullopt;
  if (pos < url.size() && url[pos] == 'u') {
    ++pos;
    if (!parse_uint(url, pos, p.user)) return std::nullopt;
  }
  if (pos >= url.size() || url[pos] != '.') return std::nullopt;
  ++pos;
  // The extension must consume the remainder of the URL and look like one
  // make_url() emits: non-empty, alphanumeric only. Without this check the
  // catch-all tail accepted any garbage suffix ("r2v3.js.evil" parsed as
  // ext="js.evil", parse_ok=true), the same partial-parse laxness
  // harness/env.cpp's strict contract forbids.
  const std::string_view ext = url.substr(pos);
  if (ext.empty()) return std::nullopt;
  for (const char c : ext) {
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9');
    if (!alnum) return std::nullopt;
  }
  p.ext = std::string(ext);
  return p;
}

std::string url_domain(std::string_view url) {
  const std::size_t slash = url.find('/');
  return std::string(slash == std::string_view::npos ? url
                                                     : url.substr(0, slash));
}

}  // namespace vroom::web
