#include "web/resource.h"

namespace vroom::web {

const char* type_name(ResourceType t) {
  switch (t) {
    case ResourceType::Html: return "html";
    case ResourceType::Css: return "css";
    case ResourceType::Js: return "js";
    case ResourceType::Image: return "image";
    case ResourceType::Font: return "font";
    case ResourceType::Media: return "media";
    case ResourceType::Other: return "other";
  }
  return "?";
}

const char* type_ext(ResourceType t) {
  switch (t) {
    case ResourceType::Html: return "html";
    case ResourceType::Css: return "css";
    case ResourceType::Js: return "js";
    case ResourceType::Image: return "jpg";
    case ResourceType::Font: return "woff";
    case ResourceType::Media: return "mp4";
    case ResourceType::Other: return "bin";
  }
  return "bin";
}

ResourceType type_from_ext(std::string_view ext) {
  if (ext == "html") return ResourceType::Html;
  if (ext == "css") return ResourceType::Css;
  if (ext == "js") return ResourceType::Js;
  if (ext == "jpg") return ResourceType::Image;
  if (ext == "woff") return ResourceType::Font;
  if (ext == "mp4") return ResourceType::Media;
  return ResourceType::Other;
}

const char* volatility_name(Volatility v) {
  switch (v) {
    case Volatility::Stable: return "stable";
    case Volatility::Daily: return "daily";
    case Volatility::Hourly: return "hourly";
    case Volatility::PerLoad: return "per-load";
    case Volatility::Personalized: return "personalized";
  }
  return "?";
}

}  // namespace vroom::web
