// AMP-like page transform (§8: Google's AMP project rewrites pages so most
// resources load asynchronously; the paper notes Vroom speeds up legacy
// pages AND can still help AMP pages by starting the asynchronous fetches
// earlier via hints).
//
// The transform applies AMP's structural restrictions to a legacy template:
//   * no parser-blocking scripts (custom JS is replaced by async runtime
//     components);
//   * content images declared in markup with dimensions (amp-img), so the
//     preload scanner sees every content image immediately;
//   * ads in sandboxed amp-ad iframes that render after the load event.
// Everything else (sizes, domains, volatility) is preserved, so AMP-vs-
// legacy comparisons isolate the page structure.
#pragma once

#include "web/page_model.h"

namespace vroom::web {

PageModel amp_transform(const PageModel& page);

}  // namespace vroom::web
