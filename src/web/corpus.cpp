#include "web/corpus.h"

namespace vroom::web {

void Corpus::add_pages(PageClass cls, int count, std::uint32_t first_id) {
  pages_.reserve(pages_.size() + static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    pages_.push_back(
        generate_page(seed_, first_id + static_cast<std::uint32_t>(i), cls));
  }
}

Corpus Corpus::top100(std::uint64_t seed) {
  Corpus c("top100", seed);
  c.add_pages(PageClass::Top100, 100);
  return c;
}

Corpus Corpus::news_sports(std::uint64_t seed) {
  Corpus c("news+sports", seed);
  c.add_pages(PageClass::News, 50);
  c.add_pages(PageClass::Sports, 50, /*first_id=*/100);
  return c;
}

Corpus Corpus::mixed400_sample(std::uint64_t seed, int count) {
  Corpus c("mixed400", seed);
  c.add_pages(PageClass::Mixed400, count, /*first_id=*/200);
  return c;
}

Corpus Corpus::accuracy_set(std::uint64_t seed, int count) {
  Corpus c("accuracy265", seed);
  const int news = count / 2;
  c.add_pages(PageClass::News, news, /*first_id=*/1000);
  c.add_pages(PageClass::Sports, count - news,
              /*first_id=*/1000 + static_cast<std::uint32_t>(news));
  return c;
}

Corpus Corpus::smoke(std::uint64_t seed, int count) {
  Corpus c("smoke", seed);
  c.add_pages(PageClass::News, count, /*first_id=*/9000);
  return c;
}

}  // namespace vroom::web
