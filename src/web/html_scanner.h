// Server-side HTML link extraction ("online analysis", §4.1.2).
//
// When a VROOM-compliant server serves an HTML object it parses the bytes on
// the fly and extracts every URL present in the markup. In the simulation an
// HTML instance's markup links are exactly its direct children revealed via
// HtmlTag — script-generated (JsExec) and stylesheet-referenced (CssRef)
// URLs are not visible in markup and are correspondingly invisible to the
// scanner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "web/page_instance.h"

namespace vroom::web {

struct ScannedLink {
  std::uint32_t template_id = 0;
  std::string url;
  double offset = 0.0;  // document position, preserves processing order
};

// Links visible in the markup of document `doc_id` within `instance`,
// ordered by document position.
std::vector<ScannedLink> scan_html(const PageInstance& instance,
                                   std::uint32_t doc_id);

// Modeled server-side cost of the on-the-fly parse (the paper measures a
// median ~100 ms across top-1000 landing pages).
sim::Time scan_cost(std::int64_t html_bytes);

}  // namespace vroom::web
