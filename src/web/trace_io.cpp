#include "web/trace_io.h"

#include <charconv>
#include <cmath>
#include <map>
#include <sstream>
#include <type_traits>
#include <vector>

namespace vroom::web {
namespace {

const char* via_name(DiscoveryVia v) {
  switch (v) {
    case DiscoveryVia::HtmlTag: return "tag";
    case DiscoveryVia::CssRef: return "css";
    case DiscoveryVia::JsExec: return "js";
  }
  return "?";
}

std::optional<DiscoveryVia> via_from(const std::string& s) {
  if (s == "tag") return DiscoveryVia::HtmlTag;
  if (s == "css") return DiscoveryVia::CssRef;
  if (s == "js") return DiscoveryVia::JsExec;
  return std::nullopt;
}

std::optional<ResourceType> type_from(const std::string& s) {
  for (ResourceType t :
       {ResourceType::Html, ResourceType::Css, ResourceType::Js,
        ResourceType::Image, ResourceType::Font, ResourceType::Media,
        ResourceType::Other}) {
    if (s == type_name(t)) return t;
  }
  return std::nullopt;
}

std::optional<Volatility> volatility_from(const std::string& s) {
  for (Volatility v :
       {Volatility::Stable, Volatility::Daily, Volatility::Hourly,
        Volatility::PerLoad, Volatility::Personalized}) {
    if (s == volatility_name(v)) return v;
  }
  return std::nullopt;
}

std::optional<PageClass> class_from(const std::string& s) {
  for (PageClass c : {PageClass::Top100, PageClass::News, PageClass::Sports,
                      PageClass::Mixed400}) {
    if (s == page_class_name(c)) return c;
  }
  return std::nullopt;
}

// Splits "key=value key=value ..." tokens of one line.
std::map<std::string, std::string> parse_fields(std::istringstream& line) {
  std::map<std::string, std::string> out;
  std::string token;
  while (line >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    out[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

template <typename T>
bool get_num(const std::map<std::string, std::string>& f, const char* key,
             T& out) {
  auto it = f.find(key);
  if (it == f.end()) return false;
  const std::string& s = it->second;
  // Both branches follow harness/env.cpp's strict contract: the whole field
  // must be the number. The float path used std::stod, which accepted
  // trailing garbage ("0.5x"), leading whitespace, hex, and inf/nan.
  if constexpr (std::is_floating_point_v<T>) {
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size() || !std::isfinite(v)) {
      return false;
    }
    out = static_cast<T>(v);
    return true;
  } else {
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && ptr == s.data() + s.size();
  }
}

}  // namespace

void write_trace(std::ostream& os, const PageModel& page) {
  os.precision(17);  // doubles must round-trip exactly
  os << "# vroom-sim page trace v1\n";
  os << "page id=" << page.page_id() << " class="
     << page_class_name(page.page_class())
     << " first_party=" << page.first_party();
  if (page.first_party_group().size() > 1) {
    os << " shards=";
    for (std::size_t i = 1; i < page.first_party_group().size(); ++i) {
      if (i > 1) os << ',';
      os << page.first_party_group()[i];
    }
  }
  os << '\n';
  for (const Resource& r : page.resources()) {
    os << "res id=" << r.id << " parent=" << r.parent
       << " type=" << type_name(r.type) << " via=" << via_name(r.via)
       << " off=" << r.discovery_offset << " size=" << r.base_size
       << " domain=" << r.domain << " vol=" << volatility_name(r.volatility)
       << " period=" << r.rotation_period << " phase=" << r.rotation_phase;
    if (r.max_age > 0) os << " max_age=" << r.max_age;
    if (r.visual_weight > 0) os << " weight=" << r.visual_weight;
    if (r.device_axis >= 0) {
      os << " device_axis=" << static_cast<int>(r.device_axis);
    }
    if (r.url_page_override != Resource::kNoPageOverride) {
      os << " page_override=" << r.url_page_override;
    }
    std::string flags;
    auto flag = [&](bool v, const char* name) {
      if (!v) return;
      if (!flags.empty()) flags += ',';
      flags += name;
    };
    flag(r.is_iframe_doc, "iframe_doc");
    flag(r.in_iframe, "in_iframe");
    flag(r.async, "async");
    flag(r.blocks_parser, "blocks_parser");
    flag(r.cacheable, "cacheable");
    flag(r.above_fold, "above_fold");
    flag(r.post_onload, "post_onload");
    flag(!r.blocks_onload, "beacon");
    flag(r.first_party_personalized, "fp_personalized");
    if (!flags.empty()) os << " flags=" << flags;
    os << '\n';
  }
}

std::string page_to_trace(const PageModel& page) {
  std::ostringstream os;
  write_trace(os, page);
  return os.str();
}

std::optional<PageModel> page_from_trace(const std::string& text,
                                         std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<PageModel> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  std::istringstream in(text);
  std::string line;
  std::optional<PageModel> page;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    auto fields = parse_fields(ls);
    const std::string at = " (line " + std::to_string(line_no) + ")";

    if (kind == "page") {
      std::uint32_t id = 0;
      if (!get_num(fields, "id", id)) return fail("page: missing id" + at);
      auto cls = class_from(fields.count("class") ? fields.at("class") : "");
      if (!cls) return fail("page: bad class" + at);
      auto fp = fields.find("first_party");
      if (fp == fields.end()) return fail("page: missing first_party" + at);
      page.emplace(id, *cls, fp->second);
      if (auto sh = fields.find("shards"); sh != fields.end()) {
        std::istringstream ss(sh->second);
        std::string dom;
        while (std::getline(ss, dom, ',')) page->add_first_party_domain(dom);
      }
      continue;
    }
    if (kind != "res") return fail("unknown record '" + kind + "'" + at);
    if (!page) return fail("res before page header" + at);

    Resource r;
    if (!get_num(fields, "id", r.id)) return fail("res: missing id" + at);
    if (!get_num(fields, "parent", r.parent)) {
      return fail("res: missing parent" + at);
    }
    auto type = type_from(fields.count("type") ? fields.at("type") : "");
    if (!type) return fail("res: bad type" + at);
    r.type = *type;
    auto via = via_from(fields.count("via") ? fields.at("via") : "");
    if (!via) return fail("res: bad via" + at);
    r.via = *via;
    if (!get_num(fields, "off", r.discovery_offset) ||
        r.discovery_offset < 0 || r.discovery_offset > 1) {
      return fail("res: bad off" + at);
    }
    if (!get_num(fields, "size", r.base_size) || r.base_size <= 0) {
      return fail("res: bad size" + at);
    }
    auto dom = fields.find("domain");
    if (dom == fields.end()) return fail("res: missing domain" + at);
    r.domain = dom->second;
    auto vol = volatility_from(fields.count("vol") ? fields.at("vol") : "");
    if (!vol) return fail("res: bad vol" + at);
    r.volatility = *vol;
    get_num(fields, "period", r.rotation_period);
    get_num(fields, "phase", r.rotation_phase);
    get_num(fields, "max_age", r.max_age);
    get_num(fields, "weight", r.visual_weight);
    int axis = -1;
    if (get_num(fields, "device_axis", axis)) {
      r.device_axis = static_cast<std::int8_t>(axis);
    }
    get_num(fields, "page_override", r.url_page_override);
    if (auto fl = fields.find("flags"); fl != fields.end()) {
      std::istringstream fs(fl->second);
      std::string flag;
      while (std::getline(fs, flag, ',')) {
        if (flag == "iframe_doc") r.is_iframe_doc = true;
        else if (flag == "in_iframe") r.in_iframe = true;
        else if (flag == "async") r.async = true;
        else if (flag == "blocks_parser") r.blocks_parser = true;
        else if (flag == "cacheable") r.cacheable = true;
        else if (flag == "above_fold") r.above_fold = true;
        else if (flag == "post_onload") r.post_onload = true;
        else if (flag == "beacon") r.blocks_onload = false;
        else if (flag == "fp_personalized") r.first_party_personalized = true;
        else return fail("res: unknown flag '" + flag + "'" + at);
      }
    }
    if (r.id != page->size()) return fail("res: ids must be dense" + at);
    if (r.parent >= static_cast<std::int32_t>(r.id)) {
      return fail("res: parent must precede child" + at);
    }
    if (r.volatility != Volatility::PerLoad && r.rotation_period <= 0) {
      return fail("res: rotating resource needs period" + at);
    }
    page->add(std::move(r));
  }
  if (!page) return fail("empty trace");
  if (page->size() == 0) return fail("trace has no resources");
  if (page->root().type != ResourceType::Html) {
    return fail("resource 0 must be the root HTML");
  }
  return page;
}

}  // namespace vroom::web
