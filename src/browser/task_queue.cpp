#include "browser/task_queue.h"

#include <algorithm>

#include "trace/trace.h"

namespace vroom::browser {

namespace {
const char* task_name(int priority) {
  switch (static_cast<TaskPriority>(priority)) {
    case TaskPriority::ImageDecode: return "task:image-decode";
    case TaskPriority::AsyncScript: return "task:async-script";
    case TaskPriority::Parse: return "task:parse";
    case TaskPriority::Scheduler: return "task:scheduler";
  }
  return "task:?";
}
}  // namespace

void TaskQueue::post(sim::Time duration, TaskPriority priority,
                     std::function<void()> body) {
  queue_.push_back(Task{duration, static_cast<int>(priority), next_seq_++,
                        std::move(body)});
  if (!running_) start_next();
}

void TaskQueue::start_next() {
  if (queue_.empty()) {
    if (running_) {
      running_ = false;
      if (observer_) observer_(false);
    }
    return;
  }
  // Highest priority first; FIFO within a priority.
  auto best = queue_.begin();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->priority > best->priority) best = it;
  }
  Task task = std::move(*best);
  queue_.erase(best);
  if (!running_) {
    running_ = true;
    if (observer_) observer_(true);
  }
  total_busy_ += task.duration;
  const sim::Time started = loop_.now();
  loop_.schedule_in(task.duration, [this, started,
                                    priority = task.priority,
                                    body = std::move(task.body)] {
    if (trace::Recorder* tr = trace::of(loop_)) {
      tr->complete(trace::Layer::Browser, "browser", "main-thread",
                   task_name(priority), started);
      tr->counters().add("browser.tasks_executed");
      tr->counters().add("browser.cpu_busy_us", loop_.now() - started);
    }
    body();  // may post more tasks
    start_next();
  });
}

}  // namespace vroom::browser
