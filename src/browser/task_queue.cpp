#include "browser/task_queue.h"

#include <algorithm>

namespace vroom::browser {

void TaskQueue::post(sim::Time duration, TaskPriority priority,
                     std::function<void()> body) {
  queue_.push_back(Task{duration, static_cast<int>(priority), next_seq_++,
                        std::move(body)});
  if (!running_) start_next();
}

void TaskQueue::start_next() {
  if (queue_.empty()) {
    if (running_) {
      running_ = false;
      if (observer_) observer_(false);
    }
    return;
  }
  // Highest priority first; FIFO within a priority.
  auto best = queue_.begin();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->priority > best->priority) best = it;
  }
  Task task = std::move(*best);
  queue_.erase(best);
  if (!running_) {
    running_ = true;
    if (observer_) observer_(true);
  }
  total_busy_ += task.duration;
  loop_.schedule_in(task.duration, [this, body = std::move(task.body)] {
    body();  // may post more tasks
    start_next();
  });
}

}  // namespace vroom::browser
