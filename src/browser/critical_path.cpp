#include "browser/critical_path.h"

namespace vroom::browser {

void NetWaitTracker::set_cpu_busy(bool busy) {
  cpu_busy_ = busy;
  update_state();
}

void NetWaitTracker::fetch_started() {
  ++outstanding_;
  update_state();
}

void NetWaitTracker::fetch_finished() {
  --outstanding_;
  update_state();
}

void NetWaitTracker::stop() {
  update_state();
  stopped_ = true;
  if (waiting_) {
    net_wait_ += loop_.now() - wait_started_;
    waiting_ = false;
  }
}

void NetWaitTracker::update_state() {
  if (stopped_) return;
  const bool should_wait = !cpu_busy_ && outstanding_ > 0;
  if (should_wait && !waiting_) {
    waiting_ = true;
    wait_started_ = loop_.now();
  } else if (!should_wait && waiting_) {
    waiting_ = false;
    net_wait_ += loop_.now() - wait_started_;
  }
}

}  // namespace vroom::browser
