// Page-load measurement results.
//
// PLT is the time to the onload event; Above-the-Fold Time (AFT) is when the
// last above-fold element reaches its final rendered state; Speed Index is
// the visual-weight-averaged render time (equivalently, the integral of
// visual incompleteness over time, in milliseconds, as produced by the
// visualmetrics tool the paper uses).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace vroom::browser {

struct ResourceTiming {
  std::string url;
  std::optional<std::uint32_t> template_id;  // nullopt for ghost fetches
  bool referenced = false;   // actually needed by this load
  bool processable = false;  // HTML/CSS/JS
  bool in_iframe = false;
  bool hinted = false;
  bool pushed = false;
  bool from_cache = false;
  std::int64_t bytes = 0;
  sim::Time discovered = sim::kNever;  // client learned the URL
  sim::Time requested = sim::kNever;
  sim::Time complete = sim::kNever;    // body fully received
  sim::Time processed = sim::kNever;   // parsed/executed/decoded
};

struct LoadResult {
  bool finished = false;
  sim::Time plt = sim::kNever;
  sim::Time aft = sim::kNever;
  double speed_index_ms = 0;

  // Milestones: first byte of the root HTML, first paint (first above-fold
  // render event), and the root document's parse completion
  // (DOMContentLoaded, approximately).
  sim::Time ttfb = sim::kNever;
  sim::Time first_paint = sim::kNever;
  sim::Time dom_content_loaded = sim::kNever;

  // Resource-discovery metrics over *referenced* resources (Figure 16).
  sim::Time all_discovered = sim::kNever;
  sim::Time all_fetched = sim::kNever;
  sim::Time high_prio_discovered = sim::kNever;
  sim::Time high_prio_fetched = sim::kNever;

  // Critical-path proxy (Figure 4): virtual time during which the CPU sat
  // idle while at least one fetch was outstanding, before onload.
  sim::Time net_wait = 0;
  sim::Time cpu_busy = 0;

  std::int64_t bytes_fetched = 0;
  std::int64_t wasted_bytes = 0;  // ghost fetches from inaccurate hints
  int requests = 0;
  int cache_hits = 0;
  // Events the simulation loop executed for this load. Pure observability
  // (throughput benchmarks report simulated events/sec from it); never feeds
  // back into simulated numbers.
  std::int64_t sim_events = 0;

  std::vector<ResourceTiming> timings;

  // Snapshot of trace::Counters for this load, sorted by name; empty when
  // tracing was disabled (the usual case).
  std::vector<std::pair<std::string, std::int64_t>> trace_counters;

  double net_wait_fraction() const {
    return plt > 0 && plt != sim::kNever
               ? static_cast<double>(net_wait) / static_cast<double>(plt)
               : 0.0;
  }
};

// Speed Index from (render time, visual weight) samples; t=0 completeness is
// zero and each sample contributes weight/total at its render time.
double speed_index_ms(const std::vector<std::pair<sim::Time, double>>& paints);

// Stable binary (de)serialization of a LoadResult — every field including
// per-resource timings and trace_counters — for the on-disk result cache.
// Fixed-width little-endian integers, doubles as IEEE-754 bit patterns,
// length-prefixed strings; a leading format version guards evolution.
// deserialize_load_result returns false (leaving *out unspecified) on any
// truncation, trailing bytes, or version mismatch.
std::string serialize_load_result(const LoadResult& r);
bool deserialize_load_result(std::string_view bytes, LoadResult* out);

}  // namespace vroom::browser
