// WProf-style critical-path extraction (Wang et al., NSDI'13 — [41] in the
// paper).
//
// Reconstructs the dependency chain that determined the load time from the
// per-resource timings of a finished load: starting from the resource whose
// processing completed last among those the load event waits for, walk back
// through fetch and discovery edges to the navigation. Each chain segment is
// classified as Network (bytes in flight), Compute (parse/execute), or
// Queue (waiting for the main thread / request scheduling), giving the
// breakdown behind Figure 4's "fraction of critical path waiting on
// network".
#pragma once

#include <string>
#include <vector>

#include "browser/cpu_model.h"
#include "browser/metrics.h"
#include "web/page_instance.h"

namespace vroom::browser {

enum class PathKind : std::uint8_t { Network, Compute, Queue };

const char* path_kind_name(PathKind k);

struct PathSegment {
  std::string url;
  sim::Time start = 0;
  sim::Time end = 0;
  PathKind kind = PathKind::Network;

  sim::Time duration() const { return end - start; }
};

struct CriticalPathReport {
  std::vector<PathSegment> segments;  // navigation -> onload order

  sim::Time total() const;
  sim::Time time_in(PathKind k) const;
  double network_fraction() const;
};

// Extracts the critical path of a finished load. The instance provides the
// dependency tree (who discovered whom) and processing costs.
CriticalPathReport extract_critical_path(const LoadResult& result,
                                         const web::PageInstance& instance,
                                         const CpuCosts& cpu);

}  // namespace vroom::browser
