// Browser engine model: the page-load state machine.
//
// Reproduces the dependency structure of Figure 5: the client fetches the
// root HTML, parses it on a single-threaded CPU, discovers children at
// their document positions, blocks the parser on synchronous scripts,
// executes scripts to reveal JS-generated resources, and fires onload when
// every referenced resource is fetched and processed. Fetch *policy* —
// when discovered/hinted resources are actually requested — is pluggable,
// which is where the status quo, Polaris, and Vroom's staged client
// scheduler differ.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "browser/cache.h"
#include "browser/cpu_model.h"
#include "browser/critical_path.h"
#include "browser/metrics.h"
#include "browser/task_queue.h"
#include "http/connection_pool.h"
#include "web/page_instance.h"

namespace vroom::browser {

class Browser;

enum class FetchReason : std::uint8_t {
  Document,     // the navigation itself
  Parser,       // discovered while parsing/executing
  Hint,         // dependency-hint preload
  Speculative,  // client-side predicted (Polaris-style)
};

// Pluggable client-side fetch scheduling.
class FetchPolicy {
 public:
  virtual ~FetchPolicy() = default;
  virtual void on_load_start(Browser&) {}
  // The engine needs `url` (parser/exec discovery). The default requests it
  // immediately — today's browser behaviour.
  virtual void on_discovered(Browser& b, const std::string& url,
                             bool processable);
  // Dependency hints arrived in a response's headers.
  virtual void on_hints(Browser&, const http::HintSet&) {}
  // Any fetch finished (used by staged schedulers to advance stages). Runs
  // as a main-thread task, so a busy CPU delays it (§5.2).
  virtual void on_fetch_complete(Browser&, const std::string& /*url*/) {}
};

struct LoadConfig {
  CpuCosts cpu = CpuCosts::nexus6();
  // Network-bottleneck lower bound: all URLs known and fetched at t=0, no
  // evaluation (Figure 2's modified-HTML experiment).
  bool know_all_upfront = false;
  Cache* cache = nullptr;         // optional persistent cache (warm loads)
  FetchPolicy* policy = nullptr;  // nullptr => status-quo policy
};

class Browser {
 public:
  Browser(net::Network& net, http::ConnectionPool& pool,
          const web::PageInstance& instance, LoadConfig config);

  // Begins the navigation. Drive the event loop to completion afterwards.
  void start();

  bool finished() const { return result_.finished; }
  const LoadResult& result() const { return result_; }

  // ---- API for policies and push wiring ----

  sim::EventLoop& loop() { return net_.loop(); }
  const web::PageInstance& instance() const { return *instance_; }
  TaskQueue& tasks() { return tasks_; }

  // Issues a network fetch; dedups against in-flight, completed, pushed and
  // cached copies. Safe to call with URLs foreign to the current instance
  // (stale hints become "ghost" fetches counted as wasted bytes).
  void fetch_url(const std::string& url, int priority, FetchReason reason);

  bool url_complete(const std::string& url) const;
  bool url_outstanding(const std::string& url) const;

  // Records that the client learned `url` from a dependency hint even if it
  // has not been requested yet (discovery-latency accounting, Figure 16).
  void note_hinted(const std::string& url);
  int outstanding_fetches() const { return outstanding_; }

  // True if `url` is a processable type (HTML/CSS/JS) per its extension.
  static bool url_processable(const std::string& url);

  // Push events (wired from the connection pool's PushObserver).
  void on_push_promise(const std::string& url, std::int64_t bytes);
  void on_push_complete(const std::string& url, std::int64_t bytes);

 private:
  enum class FetchStateKind : std::uint8_t { Idle, InFlight, Complete };

  struct FetchState {
    FetchStateKind state = FetchStateKind::Idle;
    std::optional<std::uint32_t> template_id;
    bool referenced = false;
    bool gates_onload = false;
    bool hinted = false;
    bool pushed = false;
    bool from_cache = false;
    bool processing_scheduled = false;
    bool processed = false;
    std::int64_t bytes = 0;
    sim::Time discovered = sim::kNever;
    sim::Time requested = sim::kNever;
    sim::Time complete_t = sim::kNever;
    sim::Time processed_t = sim::kNever;
    std::vector<std::function<void()>> on_complete_waiters;
  };

  struct DocState {
    std::uint32_t doc_id = 0;
    std::vector<std::uint32_t> children;  // HtmlTag children by offset
    std::size_t next = 0;
    double pos = 0.0;
    sim::Time parse_total = 0;
    bool started = false;
    bool done = false;
  };

  FetchState& state_for(const std::string& url);
  const FetchState* find_state(const std::string& url) const;

  void handle_headers(const http::ResponseMeta& meta);
  void handle_complete(const http::ResponseMeta& meta);
  void finish_fetch(const std::string& url, std::int64_t bytes,
                    bool from_cache, bool not_modified);

  // Marks `url` as needed by the page. `how` records the discovery
  // provenance for trace events (navigation / parser / preload-scan /
  // js-exec / css-ref).
  void reference(std::uint32_t template_id, const char* how = "parser");
  void maybe_process(const std::string& url);
  void schedule_processing(const std::string& url, std::uint32_t template_id);
  void after_processed(const std::string& url, std::uint32_t template_id);

  // CSSOM dependency: script execution waits until every discovered
  // render-blocking stylesheet of the main document has been fetched and
  // parsed. Returns true if `resume` was queued (caller must not proceed).
  bool blocked_on_css(std::function<void()> resume);

  void start_document(std::uint32_t doc_id);
  void advance_parser(std::uint32_t doc_id);
  void on_doc_done(std::uint32_t doc_id);
  void exec_sync_script(std::uint32_t doc_id, std::uint32_t script_id);

  void discover_children_via(std::uint32_t parent,
                             web::DiscoveryVia via);
  void record_paint(double weight);
  void maybe_finish();
  void finalize_result();

  sim::Time abs_now() const {
    return instance_->identity().wall_time + net_.loop().now();
  }

  net::Network& net_;
  http::ConnectionPool& pool_;
  const web::PageInstance* instance_;
  LoadConfig config_;
  TaskQueue tasks_;
  NetWaitTracker net_wait_;
  std::unique_ptr<FetchPolicy> default_policy_;
  FetchPolicy* policy_;

  std::unordered_map<std::string, FetchState> fetches_;
  std::unordered_map<std::uint32_t, DocState> docs_;
  int docs_pending_ = 0;
  int referenced_incomplete_ = 0;
  int outstanding_ = 0;
  int css_blocking_ = 0;  // render-blocking stylesheets not yet parsed
  std::vector<std::function<void()>> css_waiters_;
  bool root_done_ = false;
  bool started_ = false;

  std::vector<std::pair<sim::Time, double>> paints_;
  sim::Time aft_ = 0;

  LoadResult result_;
};

}  // namespace vroom::browser
