// Browser engine model: the page-load state machine.
//
// Reproduces the dependency structure of Figure 5: the client fetches the
// root HTML, parses it on a single-threaded CPU, discovers children at
// their document positions, blocks the parser on synchronous scripts,
// executes scripts to reveal JS-generated resources, and fires onload when
// every referenced resource is fetched and processed. Fetch *policy* —
// when discovered/hinted resources are actually requested — is pluggable,
// which is where the status quo, Polaris, and Vroom's staged client
// scheduler differ.
//
// Hot-path bookkeeping runs on interned ids (web/intern.h): fetch state is
// a dense vector indexed by UrlId, endpoints route by DomainId, and the
// per-URL facts (type, priority, processability) come from the interner's
// cached UrlInfo instead of re-parsing. URL strings appear only at the
// edges (trace events, result timings, the cross-load cache).
//
// Per-load tables — the dense fetch table, the touch-order shadow map, doc
// parser states, and the main-thread task queue — allocate from the page
// world's arena (instance.memory(), see sim/arena.h and DESIGN.md §13):
// they live exactly one load and are reclaimed wholesale when the fleet
// worker resets its arena. LoadResult is the exception — it escapes the
// load, so it stays on owned heap storage.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <memory_resource>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "browser/cache.h"
#include "browser/cpu_model.h"
#include "browser/critical_path.h"
#include "browser/metrics.h"
#include "browser/task_queue.h"
#include "http/connection_pool.h"
#include "web/page_instance.h"

namespace vroom::browser {

class Browser;

enum class FetchReason : std::uint8_t {
  Document,     // the navigation itself
  Parser,       // discovered while parsing/executing
  Hint,         // dependency-hint preload
  Speculative,  // client-side predicted (Polaris-style)
};

// Pluggable client-side fetch scheduling. Policies speak interned UrlIds;
// `b.url_of(id)` recovers the string when one is needed at an edge.
class FetchPolicy {
 public:
  virtual ~FetchPolicy() = default;
  virtual void on_load_start(Browser&) {}
  // The engine needs the resource (parser/exec discovery). The default
  // requests it immediately — today's browser behaviour.
  virtual void on_discovered(Browser& b, web::UrlId url, bool processable);
  // Dependency hints arrived in a response's headers.
  virtual void on_hints(Browser&, const http::HintSet&) {}
  // Any fetch finished (used by staged schedulers to advance stages). Runs
  // as a main-thread task, so a busy CPU delays it (§5.2).
  virtual void on_fetch_complete(Browser&, web::UrlId /*url*/) {}
};

struct LoadConfig {
  CpuCosts cpu = CpuCosts::nexus6();
  // Network-bottleneck lower bound: all URLs known and fetched at t=0, no
  // evaluation (Figure 2's modified-HTML experiment).
  bool know_all_upfront = false;
  Cache* cache = nullptr;         // optional persistent cache (warm loads)
  FetchPolicy* policy = nullptr;  // nullptr => status-quo policy
};

class Browser {
 public:
  Browser(net::Network& net, http::ConnectionPool& pool,
          const web::PageInstance& instance, LoadConfig config);

  // Begins the navigation. Drive the event loop to completion afterwards.
  void start();

  bool finished() const { return result_.finished; }
  const LoadResult& result() const { return result_; }

  // ---- API for policies and push wiring ----

  sim::EventLoop& loop() { return net_.loop(); }
  const web::PageInstance& instance() const { return *instance_; }
  TaskQueue& tasks() { return tasks_; }

  // Interns a URL in the page world's interner (hints carry strings).
  web::UrlId intern(std::string_view url) {
    return instance_->interner().url_id(url);
  }
  // View of the interner's arena copy; valid for the life of the load.
  std::string_view url_of(web::UrlId id) const {
    return instance_->interner().url(id);
  }

  // Issues a network fetch; dedups against in-flight, completed, pushed and
  // cached copies. Safe to call with URLs foreign to the current instance
  // (stale hints become "ghost" fetches counted as wasted bytes).
  void fetch_url(web::UrlId id, int priority, FetchReason reason);
  void fetch_url(const std::string& url, int priority, FetchReason reason) {
    fetch_url(intern(url), priority, reason);
  }

  bool url_complete(web::UrlId id) const;
  bool url_outstanding(web::UrlId id) const;

  // Records that the client learned the URL from a dependency hint even if
  // it has not been requested yet (discovery-latency accounting, Figure 16).
  void note_hinted(web::UrlId id);
  int outstanding_fetches() const { return outstanding_; }

  // True if `url` is a processable type (HTML/CSS/JS) per its extension.
  static bool url_processable(std::string_view url);
  // Interned variant reading the cached UrlInfo.
  bool processable(web::UrlId id) const {
    return instance_->interner().info(id).processable;
  }
  // Browser-native request priority for an interned URL.
  int native_priority(web::UrlId id) const {
    return instance_->interner().info(id).native_priority;
  }

  // Push events (wired from the connection pool's PushObserver).
  void on_push_promise(const std::string& url, std::int64_t bytes);
  void on_push_complete(const std::string& url, std::int64_t bytes);

 private:
  enum class FetchStateKind : std::uint8_t { Idle, InFlight, Complete };

  struct FetchState {
    FetchStateKind state = FetchStateKind::Idle;
    bool touched = false;  // slot initialized (dense vector, lazy init)
    std::optional<std::uint32_t> template_id;
    bool referenced = false;
    bool gates_onload = false;
    bool hinted = false;
    bool pushed = false;
    bool from_cache = false;
    bool processing_scheduled = false;
    bool processed = false;
    std::int64_t bytes = 0;
    sim::Time discovered = sim::kNever;
    sim::Time requested = sim::kNever;
    sim::Time complete_t = sim::kNever;
    sim::Time processed_t = sim::kNever;
    std::vector<std::function<void()>> on_complete_waiters;
  };

  struct DocState {
    // Allocator-aware so docs_[id] places `children` on the same arena as
    // the map's nodes (uses-allocator construction).
    using allocator_type = std::pmr::polymorphic_allocator<std::byte>;
    DocState() = default;
    explicit DocState(const allocator_type& alloc) : children(alloc) {}

    std::uint32_t doc_id = 0;
    std::pmr::vector<std::uint32_t> children;  // HtmlTag children by offset
    std::size_t next = 0;
    double pos = 0.0;
    sim::Time parse_total = 0;
    bool started = false;
    bool done = false;
  };

  FetchState& state_for(web::UrlId id);
  const FetchState* find_state(web::UrlId id) const;

  void handle_headers(const http::ResponseMeta& meta);
  void handle_complete(const http::ResponseMeta& meta);
  void finish_fetch(web::UrlId id, std::int64_t bytes, bool from_cache,
                    bool not_modified);

  // Marks the resource as needed by the page. `how` records the discovery
  // provenance for trace events (navigation / parser / preload-scan /
  // js-exec / css-ref).
  void reference(std::uint32_t template_id, const char* how = "parser");
  void maybe_process(web::UrlId id);
  void schedule_processing(web::UrlId id, std::uint32_t template_id);
  void after_processed(web::UrlId id, std::uint32_t template_id);

  // CSSOM dependency: script execution waits until every discovered
  // render-blocking stylesheet of the main document has been fetched and
  // parsed. Returns true if `resume` was queued (caller must not proceed).
  bool blocked_on_css(std::function<void()> resume);

  void start_document(std::uint32_t doc_id);
  void advance_parser(std::uint32_t doc_id);
  void on_doc_done(std::uint32_t doc_id);
  void exec_sync_script(std::uint32_t doc_id, std::uint32_t script_id);

  void discover_children_via(std::uint32_t parent,
                             web::DiscoveryVia via);
  void record_paint(double weight);
  void maybe_finish();
  void finalize_result();

  sim::Time abs_now() const {
    return instance_->identity().wall_time + net_.loop().now();
  }

  net::Network& net_;
  http::ConnectionPool& pool_;
  const web::PageInstance* instance_;
  LoadConfig config_;
  TaskQueue tasks_;
  NetWaitTracker net_wait_;
  std::unique_ptr<FetchPolicy> default_policy_;
  FetchPolicy* policy_;

  // Dense, indexed by UrlId. Instance resources occupy ids 0..N-1; foreign
  // URLs (stale hints) get ids as they intern. Arena-backed: the table's
  // buffer comes from the page world's arena; element destructors (waiter
  // vectors) still run when the browser dies, before any arena reset.
  std::pmr::vector<FetchState> fetches_;
  // Enumeration order of the fetch table is load-bearing: iframe documents
  // pending at root-done start in this order, which shifts task timing.
  // The table used to BE a string-keyed unordered_map, so its enumeration
  // (libstdc++ hash-bucket order) is frozen into every recorded result.
  // This shadow map replays the same key/insertion history — one insert per
  // first-touched URL — so enumeration stays bit-identical. Keys view into
  // the interner's stable storage; nodes come from the same arena (the
  // allocator cannot perturb libstdc++'s bucket order — DESIGN.md §13).
  std::pmr::unordered_map<std::string_view, web::UrlId> touch_order_;
  std::pmr::unordered_map<std::uint32_t, DocState> docs_;
  int docs_pending_ = 0;
  int referenced_incomplete_ = 0;
  int outstanding_ = 0;
  int css_blocking_ = 0;  // render-blocking stylesheets not yet parsed
  std::vector<std::function<void()>> css_waiters_;
  bool root_done_ = false;
  bool started_ = false;

  std::vector<std::pair<sim::Time, double>> paints_;
  sim::Time aft_ = 0;

  LoadResult result_;
};

}  // namespace vroom::browser
