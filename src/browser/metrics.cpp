#include "browser/metrics.h"

#include <bit>
#include <cstring>

namespace vroom::browser {

namespace {

// --- little-endian wire helpers ---------------------------------------

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}
void put_bool(std::string& out, bool v) { out.push_back(v ? 1 : 0); }
void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u64(std::uint64_t* v) {
    if (bytes_.size() - pos_ < 8) return fail();
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(bytes_[pos_ + static_cast<
                    std::size_t>(i)]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool i64(std::int64_t* v) {
    std::uint64_t u = 0;
    if (!u64(&u)) return false;
    *v = static_cast<std::int64_t>(u);
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (bytes_.size() - pos_ < 4) return fail();
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes_[pos_ + static_cast<
                    std::size_t>(i)]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool f64(double* v) {
    std::uint64_t u = 0;
    if (!u64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }
  bool boolean(bool* v) {
    if (bytes_.size() - pos_ < 1) return fail();
    const unsigned char c = static_cast<unsigned char>(bytes_[pos_++]);
    if (c > 1) return fail();  // canonical encoding only
    *v = c != 0;
    return true;
  }
  bool string(std::string* s) {
    std::uint32_t n = 0;
    if (!u32(&n)) return false;
    if (bytes_.size() - pos_ < n) return fail();
    s->assign(bytes_.substr(pos_, n));
    pos_ += n;
    return true;
  }
  bool done() const { return ok_ && pos_ == bytes_.size(); }
  bool ok() const { return ok_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }
  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Bump whenever the field set or their order changes; a mismatch makes
// deserialize_load_result fail cleanly instead of misreading old bytes.
constexpr std::uint32_t kLoadResultFormatVersion = 2;

}  // namespace

double speed_index_ms(
    const std::vector<std::pair<sim::Time, double>>& paints) {
  double total_weight = 0;
  for (const auto& [t, w] : paints) total_weight += w;
  if (total_weight <= 0) return 0;
  // SI = integral over time of (1 - completeness) = sum_i w_i/W * t_i when
  // completeness steps at each paint event.
  double si = 0;
  for (const auto& [t, w] : paints) {
    si += (w / total_weight) * sim::to_ms(t);
  }
  return si;
}

std::string serialize_load_result(const LoadResult& r) {
  std::string out;
  put_u32(out, kLoadResultFormatVersion);
  put_bool(out, r.finished);
  put_i64(out, r.plt);
  put_i64(out, r.aft);
  put_double(out, r.speed_index_ms);
  put_i64(out, r.ttfb);
  put_i64(out, r.first_paint);
  put_i64(out, r.dom_content_loaded);
  put_i64(out, r.all_discovered);
  put_i64(out, r.all_fetched);
  put_i64(out, r.high_prio_discovered);
  put_i64(out, r.high_prio_fetched);
  put_i64(out, r.net_wait);
  put_i64(out, r.cpu_busy);
  put_i64(out, r.bytes_fetched);
  put_i64(out, r.wasted_bytes);
  put_u32(out, static_cast<std::uint32_t>(r.requests));
  put_u32(out, static_cast<std::uint32_t>(r.cache_hits));
  put_i64(out, r.sim_events);
  put_u32(out, static_cast<std::uint32_t>(r.timings.size()));
  for (const ResourceTiming& t : r.timings) {
    put_string(out, t.url);
    put_bool(out, t.template_id.has_value());
    put_u32(out, t.template_id.value_or(0));
    put_bool(out, t.referenced);
    put_bool(out, t.processable);
    put_bool(out, t.in_iframe);
    put_bool(out, t.hinted);
    put_bool(out, t.pushed);
    put_bool(out, t.from_cache);
    put_i64(out, t.bytes);
    put_i64(out, t.discovered);
    put_i64(out, t.requested);
    put_i64(out, t.complete);
    put_i64(out, t.processed);
  }
  put_u32(out, static_cast<std::uint32_t>(r.trace_counters.size()));
  for (const auto& [name, value] : r.trace_counters) {
    put_string(out, name);
    put_i64(out, value);
  }
  return out;
}

bool deserialize_load_result(std::string_view bytes, LoadResult* out) {
  Reader in(bytes);
  std::uint32_t version = 0;
  if (!in.u32(&version) || version != kLoadResultFormatVersion) return false;
  LoadResult r;
  std::uint32_t requests = 0;
  std::uint32_t cache_hits = 0;
  if (!in.boolean(&r.finished) || !in.i64(&r.plt) || !in.i64(&r.aft) ||
      !in.f64(&r.speed_index_ms) || !in.i64(&r.ttfb) ||
      !in.i64(&r.first_paint) || !in.i64(&r.dom_content_loaded) ||
      !in.i64(&r.all_discovered) || !in.i64(&r.all_fetched) ||
      !in.i64(&r.high_prio_discovered) || !in.i64(&r.high_prio_fetched) ||
      !in.i64(&r.net_wait) || !in.i64(&r.cpu_busy) ||
      !in.i64(&r.bytes_fetched) || !in.i64(&r.wasted_bytes) ||
      !in.u32(&requests) || !in.u32(&cache_hits)) {
    return false;
  }
  r.requests = static_cast<int>(requests);
  r.cache_hits = static_cast<int>(cache_hits);
  if (!in.i64(&r.sim_events)) return false;
  std::uint32_t n_timings = 0;
  if (!in.u32(&n_timings)) return false;
  r.timings.reserve(n_timings);
  for (std::uint32_t i = 0; i < n_timings; ++i) {
    ResourceTiming t;
    bool has_template = false;
    std::uint32_t template_id = 0;
    if (!in.string(&t.url) || !in.boolean(&has_template) ||
        !in.u32(&template_id) || !in.boolean(&t.referenced) ||
        !in.boolean(&t.processable) || !in.boolean(&t.in_iframe) ||
        !in.boolean(&t.hinted) || !in.boolean(&t.pushed) ||
        !in.boolean(&t.from_cache) || !in.i64(&t.bytes) ||
        !in.i64(&t.discovered) || !in.i64(&t.requested) ||
        !in.i64(&t.complete) || !in.i64(&t.processed)) {
      return false;
    }
    if (has_template) t.template_id = template_id;
    r.timings.push_back(std::move(t));
  }
  std::uint32_t n_counters = 0;
  if (!in.u32(&n_counters)) return false;
  r.trace_counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    std::string name;
    std::int64_t value = 0;
    if (!in.string(&name) || !in.i64(&value)) return false;
    r.trace_counters.emplace_back(std::move(name), value);
  }
  if (!in.done()) return false;  // trailing bytes = corrupt entry
  *out = std::move(r);
  return true;
}

}  // namespace vroom::browser
