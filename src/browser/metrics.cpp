#include "browser/metrics.h"

namespace vroom::browser {

double speed_index_ms(
    const std::vector<std::pair<sim::Time, double>>& paints) {
  double total_weight = 0;
  for (const auto& [t, w] : paints) total_weight += w;
  if (total_weight <= 0) return 0;
  // SI = integral over time of (1 - completeness) = sum_i w_i/W * t_i when
  // completeness steps at each paint event.
  double si = 0;
  for (const auto& [t, w] : paints) {
    si += (w / total_weight) * sim::to_ms(t);
  }
  return si;
}

}  // namespace vroom::browser
