#include "browser/cpu_model.h"

namespace vroom::browser {

CpuCosts CpuCosts::zero() {
  CpuCosts c;
  c.html_parse_us_per_byte = 0;
  c.css_parse_us_per_byte = 0;
  c.js_exec_us_per_byte = 0;
  c.image_decode_us_per_byte = 0;
  c.font_us_per_byte = 0;
  c.task_overhead = 0;
  return c;
}

CpuCosts CpuCosts::nexus6() { return CpuCosts{}; }

bool CpuCosts::is_zero() const {
  return html_parse_us_per_byte == 0 && css_parse_us_per_byte == 0 &&
         js_exec_us_per_byte == 0 && image_decode_us_per_byte == 0 &&
         task_overhead == 0;
}

sim::Time CpuCosts::process_cost(web::ResourceType type,
                                 std::int64_t bytes) const {
  double us_per_byte = 0;
  switch (type) {
    case web::ResourceType::Html: us_per_byte = html_parse_us_per_byte; break;
    case web::ResourceType::Css: us_per_byte = css_parse_us_per_byte; break;
    case web::ResourceType::Js: us_per_byte = js_exec_us_per_byte; break;
    case web::ResourceType::Image:
      us_per_byte = image_decode_us_per_byte;
      break;
    case web::ResourceType::Font: us_per_byte = font_us_per_byte; break;
    case web::ResourceType::Media:
    case web::ResourceType::Other: us_per_byte = 0.005; break;
  }
  return static_cast<sim::Time>(static_cast<double>(bytes) * us_per_byte *
                                device_scale);
}

}  // namespace vroom::browser
