// Browser HTTP cache with freshness lifetimes.
//
// Lives *across* page loads (warm-cache study, Figure 20): entries are
// stamped with absolute wall-clock time, while each load's event loop runs
// in its own relative time — callers pass absolute instants.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/time.h"

namespace vroom::browser {

class Cache {
 public:
  struct Entry {
    std::int64_t size = 0;
    sim::Time stored_at = 0;  // absolute wall time
    sim::Time max_age = 0;
  };

  void insert(const std::string& url, std::int64_t size, sim::Time now_abs,
              sim::Time max_age);

  // Entry exists and is within its freshness lifetime: usable without any
  // network traffic.
  bool fresh(const std::string& url, sim::Time now_abs) const;
  // Entry exists but may be stale: usable after a conditional revalidation.
  bool has(const std::string& url) const;

  const Entry* find(const std::string& url) const;
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace vroom::browser
