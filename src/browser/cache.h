// Browser HTTP cache with freshness lifetimes.
//
// Lives *across* page loads (warm-cache study, Figure 20): entries are
// stamped with absolute wall-clock time, while each load's event loop runs
// in its own relative time — callers pass absolute instants. Because it
// outlives the per-load world, the cache deliberately owns heap std::string
// keys instead of arena-backed interner views (DESIGN.md §13); lookups take
// string_view so per-load callers probe without allocating.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sim/time.h"

namespace vroom::browser {

class Cache {
 public:
  struct Entry {
    std::int64_t size = 0;
    sim::Time stored_at = 0;  // absolute wall time
    sim::Time max_age = 0;
  };

  void insert(std::string_view url, std::int64_t size, sim::Time now_abs,
              sim::Time max_age);

  // Entry exists and is within its freshness lifetime: usable without any
  // network traffic.
  bool fresh(std::string_view url, sim::Time now_abs) const;
  // Entry exists but may be stale: usable after a conditional revalidation.
  bool has(std::string_view url) const;

  const Entry* find(std::string_view url) const;
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  // Heterogeneous hash/eq: find(string_view) without a temporary key.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, Entry, Hash, std::equal_to<>> entries_;
};

}  // namespace vroom::browser
