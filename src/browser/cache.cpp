#include "browser/cache.h"

namespace vroom::browser {

void Cache::insert(const std::string& url, std::int64_t size,
                   sim::Time now_abs, sim::Time max_age) {
  if (max_age <= 0) return;  // uncacheable
  entries_[url] = Entry{size, now_abs, max_age};
}

bool Cache::fresh(const std::string& url, sim::Time now_abs) const {
  auto it = entries_.find(url);
  if (it == entries_.end()) return false;
  return now_abs - it->second.stored_at <= it->second.max_age;
}

bool Cache::has(const std::string& url) const {
  return entries_.count(url) > 0;
}

const Cache::Entry* Cache::find(const std::string& url) const {
  auto it = entries_.find(url);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace vroom::browser
