#include "browser/cache.h"

namespace vroom::browser {

void Cache::insert(std::string_view url, std::int64_t size, sim::Time now_abs,
                   sim::Time max_age) {
  if (max_age <= 0) return;  // uncacheable
  // Owned string key: the entry outlives the per-load arena the view may
  // point into.
  auto it = entries_.find(url);
  if (it == entries_.end()) {
    entries_.emplace(std::string(url), Entry{size, now_abs, max_age});
  } else {
    it->second = Entry{size, now_abs, max_age};
  }
}

bool Cache::fresh(std::string_view url, sim::Time now_abs) const {
  auto it = entries_.find(url);
  if (it == entries_.end()) return false;
  return now_abs - it->second.stored_at <= it->second.max_age;
}

bool Cache::has(std::string_view url) const {
  return entries_.find(url) != entries_.end();
}

const Cache::Entry* Cache::find(std::string_view url) const {
  auto it = entries_.find(url);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace vroom::browser
