#include "browser/wprof.h"

#include <algorithm>
#include <map>

#include "browser/cpu_model.h"

namespace vroom::browser {

const char* path_kind_name(PathKind k) {
  switch (k) {
    case PathKind::Network: return "network";
    case PathKind::Compute: return "compute";
    case PathKind::Queue: return "queue";
  }
  return "?";
}

sim::Time CriticalPathReport::total() const {
  sim::Time t = 0;
  for (const auto& s : segments) t += s.duration();
  return t;
}

sim::Time CriticalPathReport::time_in(PathKind k) const {
  sim::Time t = 0;
  for (const auto& s : segments) {
    if (s.kind == k) t += s.duration();
  }
  return t;
}

double CriticalPathReport::network_fraction() const {
  const sim::Time tot = total();
  return tot > 0 ? static_cast<double>(time_in(PathKind::Network)) /
                       static_cast<double>(tot)
                 : 0.0;
}

namespace {

// Appends the [discovered -> processed] life of one resource, most recent
// segment first (the caller reverses at the end).
void append_resource_segments(const ResourceTiming& t,
                              const web::PageInstance& instance,
                              const CpuCosts& cpu,
                              std::vector<PathSegment>& out) {
  const web::Resource& r = instance.model().resource(*t.template_id);
  // Processing: [processed - cost, processed] is compute; anything between
  // fetch completion and compute start is main-thread queueing.
  if (t.processed != sim::kNever && t.complete != sim::kNever) {
    const sim::Time cost =
        cpu.process_cost(r.type, instance.resource(r.id).size) +
        cpu.task_overhead;
    const sim::Time compute_start = std::max(t.complete, t.processed - cost);
    if (t.processed > compute_start) {
      out.push_back({t.url, compute_start, t.processed, PathKind::Compute});
    }
    if (compute_start > t.complete) {
      out.push_back({t.url, t.complete, compute_start, PathKind::Queue});
    }
  }
  // Fetch: [requested, complete] is network.
  if (t.complete != sim::kNever && t.requested != sim::kNever &&
      t.complete > t.requested) {
    out.push_back({t.url, t.requested, t.complete, PathKind::Network});
  }
  // Discovery-to-request gap: request scheduling.
  if (t.requested != sim::kNever && t.discovered != sim::kNever &&
      t.requested > t.discovered) {
    out.push_back({t.url, t.discovered, t.requested, PathKind::Queue});
  }
}

}  // namespace

CriticalPathReport extract_critical_path(const LoadResult& result,
                                         const web::PageInstance& instance,
                                         const CpuCosts& cpu) {
  CriticalPathReport report;
  // Index timings by template id.
  std::map<std::uint32_t, const ResourceTiming*> by_id;
  for (const auto& t : result.timings) {
    if (t.template_id && t.referenced) by_id[*t.template_id] = &t;
  }
  if (by_id.empty()) return report;

  // Start from the gating resource processed last.
  const ResourceTiming* cur = nullptr;
  for (const auto& [id, t] : by_id) {
    const web::Resource& r = instance.model().resource(id);
    if (!r.blocks_onload) continue;
    if (t->processed == sim::kNever) continue;
    if (cur == nullptr || t->processed > cur->processed) cur = t;
  }
  if (cur == nullptr) return report;

  std::vector<PathSegment> reversed;
  while (cur != nullptr) {
    append_resource_segments(*cur, instance, cpu, reversed);
    const web::Resource& r = instance.model().resource(*cur->template_id);
    if (r.parent < 0) break;
    // The discovery dependency: normally the parent's processing revealed
    // this resource; a hinted resource instead became known when the hinting
    // document's headers arrived — jump to the root document in that case.
    const ResourceTiming* parent = nullptr;
    auto it = by_id.find(static_cast<std::uint32_t>(r.parent));
    if (it != by_id.end()) parent = it->second;
    if (cur->hinted && parent != nullptr &&
        parent->processed != sim::kNever &&
        cur->discovered < parent->processed) {
      auto root_it = by_id.find(0);
      parent = root_it == by_id.end() ? nullptr : root_it->second;
    }
    if (parent == nullptr || parent == cur) break;
    cur = parent;
  }
  std::reverse(reversed.begin(), reversed.end());

  // Enforce a single non-overlapping left-to-right timeline: each earlier
  // segment is clipped at the start of the one that follows it.
  sim::Time limit = sim::kNever;
  for (auto rit = reversed.rbegin(); rit != reversed.rend(); ++rit) {
    if (rit->end > limit) rit->end = limit;
    if (rit->start > rit->end) rit->start = rit->end;
    limit = std::min(limit, rit->start);
  }
  for (auto& s : reversed) {
    if (s.duration() > 0) report.segments.push_back(s);
  }
  return report;
}

}  // namespace vroom::browser
