// Per-byte processing costs of the mobile browser's main thread.
//
// Calibrated so that a News/Sports-class page processed with zero network
// delay (the paper's USB-tethered CPU-bottleneck experiment, Figure 2) takes
// ~5 s on the Nexus 6 reference device. JavaScript dominates, matching the
// paper's observation that the CPU — not bandwidth — is the binding
// constraint on mobile.
#pragma once

#include "sim/time.h"
#include "web/resource.h"

namespace vroom::browser {

struct CpuCosts {
  double html_parse_us_per_byte = 1.0;
  double css_parse_us_per_byte = 0.45;
  double js_exec_us_per_byte = 6.5;
  double image_decode_us_per_byte = 0.02;
  double font_us_per_byte = 0.01;
  sim::Time task_overhead = sim::us(150);  // queueing/dispatch per task
  double device_scale = 1.0;               // DeviceProfile::cpu_scale

  // Zero-cost profile for the network-bottleneck lower bound.
  static CpuCosts zero();
  static CpuCosts nexus6();

  sim::Time process_cost(web::ResourceType type, std::int64_t bytes) const;
  bool is_zero() const;
};

}  // namespace vroom::browser
