#include "browser/browser.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

#include "trace/trace.h"
#include "web/url.h"

namespace vroom::browser {

namespace {

const char* reason_name(FetchReason r) {
  switch (r) {
    case FetchReason::Document: return "document";
    case FetchReason::Parser: return "parser";
    case FetchReason::Hint: return "hint";
    case FetchReason::Speculative: return "speculative";
  }
  return "?";
}

}  // namespace

void FetchPolicy::on_discovered(Browser& b, web::UrlId url,
                                bool /*processable*/) {
  // Status quo: request every resource the moment the engine needs it.
  b.fetch_url(url, b.native_priority(url), FetchReason::Parser);
}

namespace {
class StatusQuoPolicy final : public FetchPolicy {};
}  // namespace

Browser::Browser(net::Network& net, http::ConnectionPool& pool,
                 const web::PageInstance& instance, LoadConfig config)
    : net_(net),
      pool_(pool),
      instance_(&instance),
      config_(config),
      tasks_(net.loop(), instance.memory()),
      net_wait_(net.loop()),
      fetches_(instance.memory()),
      touch_order_(instance.memory()),
      docs_(instance.memory()) {
  if (config_.policy == nullptr) {
    default_policy_ = std::make_unique<StatusQuoPolicy>();
    policy_ = default_policy_.get();
  } else {
    policy_ = config_.policy;
  }
  tasks_.set_state_observer([this](bool busy) { net_wait_.set_cpu_busy(busy); });
  // Every instance resource is pre-interned with id == resource index, so
  // most loads never grow this again (foreign hint URLs are the exception).
  fetches_.resize(instance.interner().url_count());
}

bool Browser::url_processable(std::string_view url) {
  auto parsed = web::parse_url(url);
  if (!parsed) return false;
  return web::is_processable(web::type_from_ext(parsed->ext));
}

Browser::FetchState& Browser::state_for(web::UrlId id) {
  if (id >= fetches_.size()) fetches_.resize(id + 1);
  FetchState& fs = fetches_[id];
  if (!fs.touched) {
    fs.touched = true;
    fs.template_id = instance_->template_of(id);
    touch_order_.emplace(instance_->interner().url(id), id);
  }
  return fs;
}

const Browser::FetchState* Browser::find_state(web::UrlId id) const {
  if (id >= fetches_.size() || !fetches_[id].touched) return nullptr;
  return &fetches_[id];
}

bool Browser::url_complete(web::UrlId id) const {
  const FetchState* fs = find_state(id);
  return fs && fs->state == FetchStateKind::Complete;
}

bool Browser::url_outstanding(web::UrlId id) const {
  const FetchState* fs = find_state(id);
  return fs && fs->state == FetchStateKind::InFlight;
}

void Browser::note_hinted(web::UrlId id) {
  FetchState& fs = state_for(id);
  fs.hinted = true;
  fs.discovered = std::min(fs.discovered, net_.loop().now());
}

void Browser::start() {
  assert(!started_);
  started_ = true;
  policy_->on_load_start(*this);
  if (config_.know_all_upfront) {
    // Figure 2's network-bound experiment: the root HTML was rewritten to
    // list every resource; the browser fetches all of them but evaluates
    // nothing.
    for (const auto& ir : instance_->resources()) {
      if (instance_->model().in_post_onload_subtree(ir.template_id)) continue;
      FetchState& fs = state_for(ir.url_id);
      fs.referenced = true;
      fs.discovered = 0;
      ++referenced_incomplete_;
      const bool processable = this->processable(ir.url_id);
      fetch_url(ir.url_id, processable ? 1 : 0, FetchReason::Document);
    }
    return;
  }
  reference(0, "navigation");
}

void Browser::reference(std::uint32_t template_id, const char* how) {
  const web::Resource& res = instance_->model().resource(template_id);
  if (res.post_onload) {
    // Injected after the load event; outside the measurement window.
    return;
  }
  const web::InstanceResource& ir = instance_->resource(template_id);
  FetchState& fs = state_for(ir.url_id);
  if (fs.referenced) return;
  fs.referenced = true;
  fs.discovered = std::min(fs.discovered, net_.loop().now());
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    tr->instant(trace::Layer::Browser, "browser", "loader", "discover",
                {trace::arg("url", ir.url), trace::arg("via", how)});
    tr->counters().add("browser.discoveries");
    if (std::strcmp(how, "preload-scan") == 0) {
      tr->counters().add("browser.preload_scan_discoveries");
    }
  }
  const web::Resource& r = instance_->model().resource(template_id);
  fs.gates_onload = r.blocks_onload;
  if (fs.gates_onload) ++referenced_incomplete_;
  if (r.type == web::ResourceType::Css && !r.in_iframe && !r.async) {
    ++css_blocking_;  // released in after_processed()
  }
  policy_->on_discovered(*this, ir.url_id, web::is_processable(r.type));
  if (url_complete(ir.url_id)) maybe_process(ir.url_id);
}

void Browser::fetch_url(web::UrlId id, int priority, FetchReason reason) {
  FetchState& fs = state_for(id);
  if (fs.state != FetchStateKind::Idle) return;  // dedup
  if (reason == FetchReason::Hint) fs.hinted = true;

  const web::UrlInfo& info = instance_->interner().info(id);
  const std::string_view url = url_of(id);

  const sim::Time now_abs = abs_now();
  if (config_.cache != nullptr && config_.cache->fresh(url, now_abs)) {
    fs.state = FetchStateKind::InFlight;
    fs.from_cache = true;
    fs.requested = net_.loop().now();
    ++result_.cache_hits;
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      tr->instant(trace::Layer::Cache, "browser", "cache", "cache.hit",
                  {trace::arg("url", url)});
      tr->counters().add("cache.hits");
    }
    // Memory/disk cache lookup latency.
    net_.loop().schedule_in(sim::us(500), [this, id] {
      finish_fetch(id, 0, /*from_cache=*/true, /*not_modified=*/false);
    });
    return;
  }

  fs.state = FetchStateKind::InFlight;
  fs.requested = net_.loop().now();
  ++outstanding_;
  ++result_.requests;
  net_wait_.fetch_started();
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    tr->instant(trace::Layer::Browser, "browser", "loader", "request",
                {trace::arg("url", url), trace::arg("priority", priority),
                 trace::arg("reason", reason_name(reason))});
    tr->counters().add("browser.requests");
    if (config_.cache != nullptr) {
      tr->instant(trace::Layer::Cache, "browser", "cache", "cache.miss",
                  {trace::arg("url", url)});
      tr->counters().add("cache.misses");
    }
  }

  http::Request req;
  req.url = url;
  req.url_id = id;
  req.priority = priority;
  req.device = instance_->identity().device;
  req.user = instance_->identity().user;
  req.conditional = config_.cache != nullptr && config_.cache->has(url);
  req.is_document = info.parse_ok && info.type == web::ResourceType::Html;

  http::ResponseHandlers handlers;
  handlers.on_headers = [this](const http::ResponseMeta& meta) {
    handle_headers(meta);
  };
  handlers.on_complete = [this](const http::ResponseMeta& meta) {
    handle_complete(meta);
  };
  pool_.endpoint(info.domain, instance_->interner().domain(info.domain))
      .fetch(req, std::move(handlers));
}

void Browser::handle_headers(const http::ResponseMeta& meta) {
  if (result_.ttfb == sim::kNever && instance_->size() > 0 &&
      meta.url_id == instance_->resource(0).url_id) {
    result_.ttfb = net_.loop().now();
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      tr->instant(trace::Layer::Browser, "browser", "main-thread", "ttfb");
    }
  }
  if (meta.hints.empty()) return;
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    const auto n = static_cast<std::int64_t>(meta.hints.hints.size());
    tr->instant(trace::Layer::Vroom, "browser", "scheduler", "hints.received",
                {trace::arg("url", meta.url), trace::arg("count", n)});
    tr->counters().add("vroom.hints_received", n);
  }
  // The request scheduler examines hint headers on the main thread; a busy
  // CPU delays it (§5.2).
  tasks_.post(config_.cpu.task_overhead, TaskPriority::Scheduler,
              [this, hints = meta.hints] { policy_->on_hints(*this, hints); });
}

void Browser::handle_complete(const http::ResponseMeta& meta) {
  finish_fetch(meta.url_id, meta.body_bytes, /*from_cache=*/false,
               meta.not_modified);
}

void Browser::finish_fetch(web::UrlId id, std::int64_t bytes, bool from_cache,
                           bool not_modified) {
  FetchState& fs = state_for(id);
  assert(fs.state == FetchStateKind::InFlight);
  fs.state = FetchStateKind::Complete;
  fs.complete_t = net_.loop().now();
  if (!from_cache) {
    fs.bytes = not_modified ? http::k304Bytes
                            : bytes + http::kResponseHeaderBytes;
    result_.bytes_fetched += fs.bytes;
    --outstanding_;
    net_wait_.fetch_finished();
  }
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    tr->complete(trace::Layer::Browser, "browser", "loader", "fetch",
                 fs.requested,
                 {trace::arg("url", url_of(id)), trace::arg("bytes", fs.bytes),
                  trace::arg("via", from_cache  ? "cache"
                                    : fs.pushed ? "push"
                                                : "network")});
  }

  // Store in cache using the model's cacheability metadata.
  if (config_.cache != nullptr) {
    const web::UrlInfo& info = instance_->interner().info(id);
    if (info.parse_ok && info.resource_id < instance_->model().size()) {
      const web::Resource& r = instance_->model().resource(info.resource_id);
      if (r.cacheable) {
        const std::int64_t size =
            fs.template_id ? instance_->resource(*fs.template_id).size : bytes;
        config_.cache->insert(url_of(id), size, abs_now(), r.max_age);
      }
    }
  }

  if (!fs.template_id.has_value() && !from_cache) {
    // Ghost fetch: a stale or extraneous hint; pure overhead for this load.
    result_.wasted_bytes += fs.bytes;
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      tr->instant(trace::Layer::Browser, "browser", "loader", "ghost_fetch",
                  {trace::arg("url", url_of(id)),
                   trace::arg("bytes", fs.bytes)});
      tr->counters().add("browser.ghost_fetches");
      tr->counters().add("browser.ghost_bytes", fs.bytes);
    }
  }

  if (config_.know_all_upfront) {
    if (fs.referenced && !fs.processed) {
      fs.processed = true;
      fs.processed_t = fs.complete_t;
      --referenced_incomplete_;
    }
  } else if (fs.referenced) {
    // Preload scanner: the moment an HTML document's bytes are in, every
    // resource visible in its markup is discovered and requested — ahead of
    // (and regardless of) where the blocking parser is. Script-generated
    // and stylesheet-referenced resources still require execution/parsing.
    if (fs.template_id.has_value()) {
      const web::Resource& r = instance_->model().resource(*fs.template_id);
      if (r.type == web::ResourceType::Html) {
        discover_children_via(*fs.template_id, web::DiscoveryVia::HtmlTag);
      }
    }
    maybe_process(id);
  }

  auto waiters = std::move(fetches_[id].on_complete_waiters);
  fetches_[id].on_complete_waiters.clear();
  for (auto& w : waiters) w();

  if (!result_.finished) {
    tasks_.post(config_.cpu.task_overhead, TaskPriority::Scheduler,
                [this, id] { policy_->on_fetch_complete(*this, id); });
  }
  maybe_finish();
}

void Browser::maybe_process(web::UrlId id) {
  FetchState& fs = state_for(id);
  if (fs.state != FetchStateKind::Complete || !fs.referenced ||
      fs.processing_scheduled || fs.processed) {
    return;
  }
  assert(fs.template_id.has_value());
  const std::uint32_t tid = *fs.template_id;
  const web::Resource& r = instance_->model().resource(tid);

  if (r.type == web::ResourceType::Js && r.blocks_parser) {
    return;  // execution is driven by the parser, in document order
  }
  fs.processing_scheduled = true;

  if (r.type == web::ResourceType::Html) {
    if (tid == 0 || root_done_) {
      start_document(tid);
    }
    // Iframe documents wait for the root document to finish parsing
    // (footnote 4 of the paper); on_doc_done(0) starts them.
    return;
  }
  schedule_processing(id, tid);
}

bool Browser::blocked_on_css(std::function<void()> resume) {
  if (css_blocking_ == 0) return false;
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    tr->instant(trace::Layer::Browser, "browser", "main-thread",
                "block.cssom",
                {trace::arg("pending_stylesheets", css_blocking_)});
    tr->counters().add("browser.cssom_blocks");
  }
  css_waiters_.push_back(std::move(resume));
  return true;
}

void Browser::schedule_processing(web::UrlId id, std::uint32_t template_id) {
  const web::Resource& r = instance_->model().resource(template_id);
  if (r.type == web::ResourceType::Js && !r.in_iframe &&
      blocked_on_css([this, id, template_id] {
        schedule_processing(id, template_id);
      })) {
    return;  // CSSOM not ready; execution resumes when stylesheets land
  }
  const std::int64_t size = instance_->resource(template_id).size;
  TaskPriority prio = TaskPriority::ImageDecode;
  if (r.type == web::ResourceType::Css) {
    prio = TaskPriority::Parse;
  } else if (r.type == web::ResourceType::Js) {
    prio = TaskPriority::AsyncScript;
  }
  const sim::Time cost =
      config_.cpu.process_cost(r.type, size) + config_.cpu.task_overhead;
  tasks_.post(cost, prio,
              [this, id, template_id] { after_processed(id, template_id); });
}

void Browser::after_processed(web::UrlId id, std::uint32_t template_id) {
  FetchState& fs = state_for(id);
  assert(!fs.processed);
  fs.processed = true;
  fs.processed_t = net_.loop().now();
  const web::Resource& r = instance_->model().resource(template_id);
  if (r.type == web::ResourceType::Js) {
    discover_children_via(template_id, web::DiscoveryVia::JsExec);
  } else if (r.type == web::ResourceType::Css) {
    discover_children_via(template_id, web::DiscoveryVia::CssRef);
    if (!r.in_iframe && !r.async && --css_blocking_ == 0) {
      auto waiters = std::move(css_waiters_);
      css_waiters_.clear();
      for (auto& w : waiters) w();
    }
  }
  if (r.above_fold) {
    const double weight =
        r.visual_weight > 0
            ? r.visual_weight
            : std::sqrt(static_cast<double>(std::max<std::int64_t>(
                  instance_->resource(template_id).size, 1)));
    record_paint(weight);
  }
  if (fs.gates_onload) --referenced_incomplete_;
  maybe_finish();
}

void Browser::start_document(std::uint32_t doc_id) {
  DocState& d = docs_[doc_id];
  if (d.started) return;
  d.started = true;
  d.doc_id = doc_id;
  const web::PageModel& model = instance_->model();
  for (std::uint32_t c : model.children(doc_id)) {
    if (model.resource(c).via == web::DiscoveryVia::HtmlTag) {
      d.children.push_back(c);
    }
  }
  std::sort(d.children.begin(), d.children.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const double oa = model.resource(a).discovery_offset;
              const double ob = model.resource(b).discovery_offset;
              if (oa != ob) return oa < ob;
              return a < b;
            });
  d.parse_total = config_.cpu.process_cost(
      web::ResourceType::Html, instance_->resource(doc_id).size);
  advance_parser(doc_id);
}

void Browser::advance_parser(std::uint32_t doc_id) {
  DocState& d = docs_[doc_id];
  const web::PageModel& model = instance_->model();
  if (d.next >= d.children.size()) {
    // Final segment to the end of the document.
    const auto remaining = static_cast<sim::Time>(
        (1.0 - d.pos) * static_cast<double>(d.parse_total));
    tasks_.post(remaining + config_.cpu.task_overhead, TaskPriority::Parse,
                [this, doc_id] { on_doc_done(doc_id); });
    return;
  }
  const std::uint32_t child = d.children[d.next];
  const double offset = model.resource(child).discovery_offset;
  const auto segment = static_cast<sim::Time>(
      std::max(0.0, offset - d.pos) * static_cast<double>(d.parse_total));
  tasks_.post(
      segment + config_.cpu.task_overhead, TaskPriority::Parse,
      [this, doc_id, child, offset] {
        DocState& dd = docs_[doc_id];
        dd.pos = offset;
        ++dd.next;
        const web::Resource& cr = instance_->model().resource(child);
        reference(child);
        if (cr.type == web::ResourceType::Js && cr.blocks_parser) {
          const web::UrlId curl = instance_->resource(child).url_id;
          FetchState& cfs = state_for(curl);
          if (cfs.state == FetchStateKind::Complete) {
            exec_sync_script(doc_id, child);
          } else {
            // Parser blocks until the script arrives — the classic
            // network-delays-CPU dependency of Figure 5(a).
            if (trace::Recorder* tr = trace::of(net_.loop())) {
              const sim::Time blocked_at = net_.loop().now();
              tr->instant(trace::Layer::Browser, "browser", "main-thread",
                          "parser_block.script",
                          {trace::arg("url", url_of(curl))});
              tr->counters().add("browser.parser_blocks");
              cfs.on_complete_waiters.push_back([this, blocked_at] {
                if (trace::Recorder* t2 = trace::of(net_.loop())) {
                  t2->counters().add("browser.parser_block_us",
                                     net_.loop().now() - blocked_at);
                }
              });
            }
            cfs.on_complete_waiters.push_back(
                [this, doc_id, child] { exec_sync_script(doc_id, child); });
          }
          return;
        }
        advance_parser(doc_id);
      });
}

void Browser::exec_sync_script(std::uint32_t doc_id, std::uint32_t script_id) {
  if (!instance_->model().resource(script_id).in_iframe &&
      blocked_on_css(
          [this, doc_id, script_id] { exec_sync_script(doc_id, script_id); })) {
    return;  // script waits for CSSOM; the parser stays blocked behind it
  }
  const web::UrlId url = instance_->resource(script_id).url_id;
  FetchState& fs = state_for(url);
  fs.processing_scheduled = true;
  const sim::Time cost =
      config_.cpu.process_cost(web::ResourceType::Js,
                               instance_->resource(script_id).size) +
      config_.cpu.task_overhead;
  tasks_.post(cost, TaskPriority::Parse, [this, doc_id, script_id, url] {
    after_processed(url, script_id);
    advance_parser(doc_id);
  });
}

void Browser::on_doc_done(std::uint32_t doc_id) {
  DocState& d = docs_[doc_id];
  d.done = true;
  const web::UrlId url = instance_->resource(doc_id).url_id;
  after_processed(url, doc_id);  // paints the document, may fire onload
  if (doc_id == 0) {
    root_done_ = true;
    result_.dom_content_loaded = net_.loop().now();
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      tr->instant(trace::Layer::Browser, "browser", "main-thread",
                  "dom_content_loaded");
    }
    // Start any iframe documents that were waiting on the root parse, in
    // the fetch table's frozen enumeration order (see touch_order_).
    for (const auto& [u, id] : touch_order_) {
      const FetchState& fs = fetches_[id];
      if (!fs.template_id || !fs.referenced) continue;
      const web::Resource& r = instance_->model().resource(*fs.template_id);
      if (r.type == web::ResourceType::Html && *fs.template_id != 0 &&
          fs.state == FetchStateKind::Complete &&
          !docs_.count(*fs.template_id)) {
        start_document(*fs.template_id);
      }
    }
  }
}

void Browser::discover_children_via(std::uint32_t parent,
                                    web::DiscoveryVia via) {
  // HtmlTag children reached through this path were found by the preload
  // scanner (markup scanned as soon as the document's bytes are in); the
  // blocking parser re-references them later as a no-op.
  const char* how = via == web::DiscoveryVia::HtmlTag ? "preload-scan"
                    : via == web::DiscoveryVia::JsExec ? "js-exec"
                                                       : "css-ref";
  for (std::uint32_t c : instance_->model().children(parent)) {
    if (instance_->model().resource(c).via == via) reference(c, how);
  }
}

void Browser::on_push_promise(const std::string& url, std::int64_t /*bytes*/) {
  FetchState& fs = state_for(intern(url));
  if (fs.state != FetchStateKind::Idle) {
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      // The client got there first; the promise is redundant.
      tr->counters().add("browser.push_promises_raced");
    }
    return;  // already requested
  }
  fs.state = FetchStateKind::InFlight;
  fs.pushed = true;
  fs.discovered = std::min(fs.discovered, net_.loop().now());
  fs.requested = net_.loop().now();
  ++outstanding_;
  net_wait_.fetch_started();
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    tr->instant(trace::Layer::Browser, "browser", "loader",
                "push.promise_accepted", {trace::arg("url", url)});
    tr->counters().add("browser.push_promises_accepted");
  }
}

void Browser::on_push_complete(const std::string& url, std::int64_t bytes) {
  const web::UrlId id = intern(url);
  FetchState& fs = state_for(id);
  if (!fs.pushed || fs.state != FetchStateKind::InFlight) {
    return;  // client independently requested it; that fetch wins
  }
  finish_fetch(id, bytes, /*from_cache=*/false, /*not_modified=*/false);
}

void Browser::record_paint(double weight) {
  const sim::Time now = net_.loop().now();
  if (result_.first_paint == sim::kNever) {
    result_.first_paint = now;
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      tr->instant(trace::Layer::Browser, "browser", "main-thread",
                  "first_paint", {trace::arg("weight", weight)});
    }
  }
  paints_.emplace_back(now, weight);
  aft_ = std::max(aft_, now);
}

void Browser::maybe_finish() {
  if (!started_ || result_.finished) return;
  if (referenced_incomplete_ > 0) return;
  if (!config_.know_all_upfront && !root_done_) return;
  finalize_result();
}

void Browser::finalize_result() {
  result_.finished = true;
  result_.plt = net_.loop().now();
  result_.aft = aft_;
  result_.speed_index_ms = speed_index_ms(paints_);
  net_wait_.stop();
  result_.net_wait = net_wait_.net_wait();
  result_.cpu_busy = tasks_.total_busy();
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    tr->instant(trace::Layer::Browser, "browser", "main-thread", "onload",
                {trace::arg("plt_ms", sim::to_ms(result_.plt))});
    for (const auto& [u, id] : touch_order_) {
      const FetchState& fs = fetches_[id];
      if (fs.pushed && !fs.referenced) {
        tr->instant(trace::Layer::Browser, "browser", "loader",
                    "push.wasted",
                    {trace::arg("url", url_of(id)),
                     trace::arg("bytes", fs.bytes)});
        tr->counters().add("browser.pushes_wasted");
        tr->counters().add("browser.push_bytes_wasted", fs.bytes);
      }
    }
  }

  sim::Time all_disc = 0, all_fetch = 0, hp_disc = 0, hp_fetch = 0;
  for (const auto& [u, id] : touch_order_) {
    const FetchState& fs = fetches_[id];
    ResourceTiming t;
    t.url = url_of(id);
    t.template_id = fs.template_id;
    t.referenced = fs.referenced;
    t.processable = instance_->interner().info(id).processable;
    if (fs.template_id) {
      t.in_iframe = instance_->model().resource(*fs.template_id).in_iframe;
    }
    t.hinted = fs.hinted;
    t.pushed = fs.pushed;
    t.from_cache = fs.from_cache;
    t.bytes = fs.bytes;
    t.discovered = fs.discovered;
    t.requested = fs.requested;
    t.complete = fs.complete_t;
    t.processed = fs.processed_t;
    result_.timings.push_back(std::move(t));

    // Discovery/fetch-latency metrics cover the resources the load event
    // waits for (beacons may legitimately still be in flight at onload).
    if (fs.referenced && fs.gates_onload) {
      all_disc = std::max(all_disc, fs.discovered);
      all_fetch = std::max(all_fetch, fs.complete_t);
      if (result_.timings.back().processable) {
        hp_disc = std::max(hp_disc, fs.discovered);
        hp_fetch = std::max(hp_fetch, fs.complete_t);
      }
    }
  }
  result_.all_discovered = all_disc;
  result_.all_fetched = all_fetch;
  result_.high_prio_discovered = hp_disc;
  result_.high_prio_fetched = hp_fetch;
}

}  // namespace vroom::browser
