// Single-threaded main-thread task executor.
//
// Non-preemptive: once a task starts, later arrivals wait regardless of
// priority — which is exactly why Vroom's JavaScript request scheduler can
// be delayed by a long-running script (§5.2), an effect the client-side
// scheduler experiments depend on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory_resource>

#include "sim/event_loop.h"

namespace vroom::browser {

enum class TaskPriority : int {
  ImageDecode = 0,
  AsyncScript = 1,
  Parse = 2,       // HTML/CSS parsing and synchronous script execution
  Scheduler = 3,   // tiny request-scheduler callbacks
};

class TaskQueue {
 public:
  // Queue storage (deque blocks) comes from `memory` — the page world's
  // per-load arena when the browser constructs it, the default heap
  // resource otherwise.
  explicit TaskQueue(sim::EventLoop& loop,
                     std::pmr::memory_resource* memory =
                         std::pmr::get_default_resource())
      : loop_(loop), queue_(memory) {}

  // Enqueues a task occupying the CPU for `duration`; `body` runs at task
  // completion.
  void post(sim::Time duration, TaskPriority priority,
            std::function<void()> body);

  bool busy() const { return running_; }
  bool idle() const { return !running_ && queue_.empty(); }
  sim::Time total_busy() const { return total_busy_; }

  // Observer invoked whenever the CPU transitions busy <-> idle (used by the
  // critical-path tracker).
  void set_state_observer(std::function<void(bool busy)> obs) {
    observer_ = std::move(obs);
  }

 private:
  struct Task {
    sim::Time duration;
    int priority;
    std::uint64_t seq;
    std::function<void()> body;
  };

  void start_next();

  sim::EventLoop& loop_;
  std::pmr::deque<Task> queue_;
  bool running_ = false;
  std::uint64_t next_seq_ = 0;
  sim::Time total_busy_ = 0;
  std::function<void(bool)> observer_;
};

}  // namespace vroom::browser
