// Network-wait tracking for the critical-path analysis of Figure 4.
//
// While the page load is incomplete, any interval in which the main thread
// is idle but at least one fetch is outstanding is time the critical path
// spends waiting on the network — the under-utilization Vroom removes.
#pragma once

#include "sim/event_loop.h"

namespace vroom::browser {

class NetWaitTracker {
 public:
  explicit NetWaitTracker(sim::EventLoop& loop) : loop_(loop) {}

  void set_cpu_busy(bool busy);
  void fetch_started();
  void fetch_finished();
  void stop();  // onload: freeze accumulators

  sim::Time net_wait() const { return net_wait_; }

 private:
  void update_state();

  sim::EventLoop& loop_;
  bool cpu_busy_ = false;
  int outstanding_ = 0;
  bool stopped_ = false;
  bool waiting_ = false;
  sim::Time wait_started_ = 0;
  sim::Time net_wait_ = 0;
};

}  // namespace vroom::browser
