// Cross-layer structured tracing (WProf-spirit, zero overhead when off).
//
// A `Recorder` is owned by one simulation world and reached through the
// world's event loop (`sim::EventLoop::recorder()`), so every layer — link,
// TCP, HTTP sessions, origin servers, browser engine, Vroom scheduler — can
// emit typed events stamped with virtual time without new plumbing. When no
// recorder is attached the hook at every call site is a single pointer null
// check; the simulation's virtual-time behaviour is identical either way.
//
// Events carry a layer (category), a `track` (Chrome-trace process: the
// browser, or one origin domain) and a `lane` (Chrome-trace thread: the
// browser main thread / loader, or one TCP connection). Two sinks exist:
//   * chrome_trace_json() — the Trace Event Format that chrome://tracing
//     and Perfetto load directly (one pid per track, one tid per lane);
//   * waterfall.h — a compact per-load text table for terminal use.
// A `Counters` registry (monotonic counters + high-water gauges) rides on
// the recorder; `harness::run_corpus` aggregates it across loads and exports
// it through the VROOM_OUT_DIR CSV path.
//
// Enable per-process with VROOM_TRACE=<dir> (the harness then writes one
// JSON file per load) or programmatically via RunOptions::trace.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace vroom::trace {

// Which subsystem emitted the event; becomes the Chrome-trace category.
enum class Layer : std::uint8_t { Sim, Net, Http, Browser, Server, Vroom,
                                  Cache, Deploy };

const char* layer_name(Layer layer);

// One key/value annotation. Numbers are emitted unquoted in the JSON.
struct Arg {
  std::string key;
  std::string value;
  bool quoted = true;
};

Arg arg(std::string key, std::string value);
Arg arg(std::string key, std::string_view value);  // copies; views are
                                                   // per-load, events are not
Arg arg(std::string key, const char* value);
Arg arg(std::string key, std::int64_t value);
Arg arg(std::string key, int value);
Arg arg(std::string key, double value);

using Args = std::vector<Arg>;

// Monotonic counters and high-water gauges, keyed by dotted names
// ("net.downlink_bytes", "server.pushes_issued"). std::map keeps the
// export order deterministic.
class Counters {
 public:
  void add(const std::string& name, std::int64_t delta = 1);
  void set_max(const std::string& name, std::int64_t value);
  std::int64_t value(const std::string& name) const;
  bool empty() const { return values_.empty(); }
  const std::map<std::string, std::int64_t>& values() const { return values_; }

 private:
  std::map<std::string, std::int64_t> values_;
};

class Recorder {
 public:
  // 'i' instant, 'X' complete span (ts..ts+dur), 'C' counter sample.
  struct Event {
    sim::Time ts = 0;
    sim::Time dur = 0;
    char phase = 'i';
    Layer layer = Layer::Sim;
    int track = 0;  // Chrome-trace pid index
    int lane = 0;   // Chrome-trace tid index
    std::string name;
    std::string args_json;  // pre-rendered `"k":v,...` fragment (may be empty)
  };

  // Attaches itself to the loop; detaches on destruction. One recorder per
  // simulation world (worlds are thread-private, so this is TSAN-clean).
  explicit Recorder(sim::EventLoop& loop);
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Point event at now().
  void instant(Layer layer, const std::string& track, const std::string& lane,
               std::string name, const Args& args = {});
  // Span from `start` (virtual time) to now().
  void complete(Layer layer, const std::string& track, const std::string& lane,
                std::string name, sim::Time start, const Args& args = {});
  // Counter-track sample ("C" events render as stacked area charts).
  void counter(Layer layer, const std::string& track, std::string name,
               std::int64_t value);

  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  std::size_t event_count() const { return events_.size(); }
  const std::vector<Event>& events() const { return events_; }
  // Events ordered by (ts, emission order): per-lane timestamps are monotone.
  std::vector<Event> sorted_events() const;

  const std::string& track_name(int track) const { return tracks_[static_cast<
      std::size_t>(track)]; }
  const std::string& lane_name(int lane) const { return lanes_[static_cast<
      std::size_t>(lane)].second; }

  // Chrome Trace Event Format (JSON object with "traceEvents"), loadable in
  // chrome://tracing and Perfetto. Deterministic for a deterministic world.
  std::string chrome_trace_json() const;
  // Writes chrome_trace_json() to `path` (directories created as needed);
  // warns on stderr and returns false on I/O failure.
  bool write_json(const std::string& path) const;

  static std::string json_escape(const std::string& s);

 private:
  int track_id(const std::string& track);
  int lane_id(int track, const std::string& lane);
  void push(Layer layer, const std::string& track, const std::string& lane,
            char phase, std::string name, sim::Time ts, sim::Time dur,
            const Args& args);

  sim::EventLoop& loop_;
  std::vector<Event> events_;
  std::vector<std::string> tracks_;                   // index = pid
  std::vector<std::pair<int, std::string>> lanes_;    // index = tid
  std::map<std::string, int> track_ids_;
  std::map<std::string, int> lane_ids_;  // "track\x1flane" -> tid
  Counters counters_;
};

// The recorder attached to `loop`, or nullptr when tracing is off. The
// single null check this compiles to is the entire disabled-path cost.
inline Recorder* of(sim::EventLoop& loop) {
  return loop.recorder();
}

// (The process-level VROOM_TRACE=<dir> switch is parsed by harness::Env —
// the single home of every VROOM_* environment knob; this library stays
// environment-free.)

}  // namespace vroom::trace
