#include "trace/waterfall.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace vroom::trace {

namespace {

// Column of the bar a virtual-time instant falls in.
int bar_col(sim::Time t, sim::Time span, int width) {
  if (span <= 0) return 0;
  const auto col = static_cast<int>((static_cast<double>(t) /
                                     static_cast<double>(span)) * width);
  return std::clamp(col, 0, width - 1);
}

}  // namespace

std::string waterfall_table(const std::string& title,
                            const browser::LoadResult& result,
                            const WaterfallOptions& options) {
  std::string out;
  char line[512];

  std::snprintf(line, sizeof line,
                "--- %s: PLT %.2fs, net-wait %.0f%%, %d requests, %.0f KB "
                "(%.0f KB wasted, %d cache hits) ---\n",
                title.c_str(), sim::to_seconds(result.plt),
                100 * result.net_wait_fraction(), result.requests,
                result.bytes_fetched / 1e3, result.wasted_bytes / 1e3,
                result.cache_hits);
  out += line;

  std::vector<const browser::ResourceTiming*> rows;
  for (const auto& t : result.timings) {
    if (t.requested != sim::kNever) rows.push_back(&t);
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto* a, const auto* b) {
                     if (a->requested != b->requested) {
                       return a->requested < b->requested;
                     }
                     return a->url < b->url;
                   });

  const sim::Time span = result.plt != sim::kNever ? result.plt : 0;
  const int bar_w = options.bar_width;
  std::snprintf(line, sizeof line, "%-40s %8s %8s %8s %4s  %s\n", "url",
                "disc(ms)", "start(ms)", "done(ms)", "via",
                bar_w > 0 ? "timeline (. wait, = transfer)" : "");
  out += line;

  int shown = 0;
  for (const auto* t : rows) {
    if (options.max_rows > 0 && shown++ >= options.max_rows) break;
    // Provenance column: how the client came to issue (or receive) this
    // fetch. Pushes beat hints beat parser discovery; ghosts are hinted
    // fetches the page never referenced.
    const char* via = t->pushed ? "push"
                      : t->from_cache ? "cash"
                      : t->hinted ? "hint"
                                  : "disc";
    if (!t->referenced) via = "ghst";

    std::string bar;
    if (bar_w > 0 && span > 0) {
      bar.assign(static_cast<std::size_t>(bar_w), ' ');
      const sim::Time done =
          t->complete != sim::kNever ? t->complete : span;
      const int c0 = bar_col(t->requested, span, bar_w);
      const int c1 = bar_col(done, span, bar_w);
      for (int c = c0; c <= c1; ++c) bar[static_cast<std::size_t>(c)] = '=';
      if (t->discovered != sim::kNever && t->discovered < t->requested) {
        for (int c = bar_col(t->discovered, span, bar_w); c < c0; ++c) {
          bar[static_cast<std::size_t>(c)] = '.';
        }
      }
      if (t->processed != sim::kNever) {
        bar[static_cast<std::size_t>(bar_col(t->processed, span, bar_w))] =
            '#';
      }
    }

    auto ms_cell = [](sim::Time t2) {
      return t2 == sim::kNever ? -1.0 : sim::to_ms(t2);
    };
    std::snprintf(line, sizeof line, "%-40.40s %8.0f %8.0f %8.0f %4s  |%s|\n",
                  t->url.c_str(), ms_cell(t->discovered),
                  ms_cell(t->requested), ms_cell(t->complete), via,
                  bar.c_str());
    out += line;
  }
  if (options.max_rows > 0 &&
      static_cast<int>(rows.size()) > options.max_rows) {
    std::snprintf(line, sizeof line, "  … %zu more requests\n",
                  rows.size() - static_cast<std::size_t>(options.max_rows));
    out += line;
  }
  return out;
}

}  // namespace vroom::trace
