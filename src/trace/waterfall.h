// Compact per-load waterfall table — the terminal-friendly sink of the
// trace layer. Renders one row per requested resource (discovery, request,
// first-complete, processed times plus hint/push/cache provenance) and a
// bar column that shows where each fetch sat on the timeline, so examples
// and quick diagnostics share one format instead of ad-hoc printf timelines.
#pragma once

#include <string>

#include "browser/metrics.h"

namespace vroom::trace {

struct WaterfallOptions {
  int max_rows = 25;   // 0 = unlimited
  int bar_width = 32;  // timeline bar columns; 0 disables the bar
};

// Text table for one load, rows ordered by request time. `title` becomes
// the header line together with the load's headline metrics.
std::string waterfall_table(const std::string& title,
                            const browser::LoadResult& result,
                            const WaterfallOptions& options = {});

}  // namespace vroom::trace
