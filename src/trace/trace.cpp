#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace vroom::trace {

const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::Sim: return "sim";
    case Layer::Net: return "net";
    case Layer::Http: return "http";
    case Layer::Browser: return "browser";
    case Layer::Server: return "server";
    case Layer::Vroom: return "vroom";
    case Layer::Cache: return "cache";
    case Layer::Deploy: return "deploy";
  }
  return "unknown";
}

Arg arg(std::string key, std::string value) {
  return Arg{std::move(key), std::move(value), /*quoted=*/true};
}

Arg arg(std::string key, std::string_view value) {
  return Arg{std::move(key), std::string(value), /*quoted=*/true};
}

Arg arg(std::string key, const char* value) {
  return Arg{std::move(key), std::string(value), /*quoted=*/true};
}

Arg arg(std::string key, std::int64_t value) {
  return Arg{std::move(key), std::to_string(value), /*quoted=*/false};
}

Arg arg(std::string key, int value) {
  return arg(std::move(key), static_cast<std::int64_t>(value));
}

Arg arg(std::string key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return Arg{std::move(key), std::string(buf), /*quoted=*/false};
}

void Counters::add(const std::string& name, std::int64_t delta) {
  values_[name] += delta;
}

void Counters::set_max(const std::string& name, std::int64_t value) {
  auto [it, inserted] = values_.emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

std::int64_t Counters::value(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

Recorder::Recorder(sim::EventLoop& loop) : loop_(loop) {
  loop_.set_recorder(this);
}

Recorder::~Recorder() {
  if (loop_.recorder() == this) loop_.set_recorder(nullptr);
}

int Recorder::track_id(const std::string& track) {
  auto [it, inserted] =
      track_ids_.emplace(track, static_cast<int>(tracks_.size()));
  if (inserted) tracks_.push_back(track);
  return it->second;
}

int Recorder::lane_id(int track, const std::string& lane) {
  const std::string key =
      std::to_string(track) + '\x1f' + lane;
  auto [it, inserted] =
      lane_ids_.emplace(key, static_cast<int>(lanes_.size()));
  if (inserted) lanes_.emplace_back(track, lane);
  return it->second;
}

std::string Recorder::json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

std::string render_args(const Args& args) {
  std::string out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    out += Recorder::json_escape(args[i].key);
    out += "\":";
    if (args[i].quoted) {
      out.push_back('"');
      out += Recorder::json_escape(args[i].value);
      out.push_back('"');
    } else {
      out += args[i].value;
    }
  }
  return out;
}

}  // namespace

void Recorder::push(Layer layer, const std::string& track,
                    const std::string& lane, char phase, std::string name,
                    sim::Time ts, sim::Time dur, const Args& args) {
  Event e;
  e.ts = ts;
  e.dur = dur;
  e.phase = phase;
  e.layer = layer;
  e.track = track_id(track);
  e.lane = lane_id(e.track, lane);
  e.name = std::move(name);
  e.args_json = render_args(args);
  events_.push_back(std::move(e));
}

void Recorder::instant(Layer layer, const std::string& track,
                       const std::string& lane, std::string name,
                       const Args& args) {
  push(layer, track, lane, 'i', std::move(name), loop_.now(), 0, args);
}

void Recorder::complete(Layer layer, const std::string& track,
                        const std::string& lane, std::string name,
                        sim::Time start, const Args& args) {
  const sim::Time now = loop_.now();
  if (start > now) start = now;
  push(layer, track, lane, 'X', std::move(name), start, now - start, args);
}

void Recorder::counter(Layer layer, const std::string& track,
                       std::string name, std::int64_t value) {
  Args args;
  args.push_back(arg(name, value));
  push(layer, track, /*lane=*/"counters", 'C', std::move(name), loop_.now(),
       0, args);
}

std::vector<Recorder::Event> Recorder::sorted_events() const {
  std::vector<Event> out = events_;
  // Stable: ties (simultaneous events) keep emission order, which the event
  // loop already makes deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  return out;
}

std::string Recorder::chrome_trace_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // Metadata: name every pid (track) and tid (lane) so the viewers group
  // lanes under their origin/browser process.
  for (std::size_t pid = 0; pid < tracks_.size(); ++pid) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
       << json_escape(tracks_[pid]) << "\"}}";
  }
  for (std::size_t tid = 0; tid < lanes_.size(); ++tid) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << lanes_[tid].first << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(lanes_[tid].second) << "\"}}";
  }
  for (const Event& e : sorted_events()) {
    sep();
    os << "{\"ph\":\"" << e.phase << "\",\"cat\":\"" << layer_name(e.layer)
       << "\",\"name\":\"" << json_escape(e.name) << "\",\"pid\":" << e.track
       << ",\"tid\":" << e.lane << ",\"ts\":" << e.ts;
    if (e.phase == 'X') os << ",\"dur\":" << e.dur;
    os << ",\"args\":{" << e.args_json << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

bool Recorder::write_json(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream f(path);
  if (f) f << chrome_trace_json();
  if (!f) {
    std::fprintf(stderr,
                 "[trace] warning: could not write trace file \"%s\"\n",
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace vroom::trace
