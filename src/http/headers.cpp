#include "http/headers.h"

#include <sstream>

namespace vroom::http {
namespace {

constexpr const char* kWireNames[] = {"Link", "x-semi-important",
                                      "x-unimportant"};

// "<url>; rel=preload" for Link, "<url>" for the custom headers.
void append_entry(std::ostringstream& os, HintPriority p,
                  const std::string& url, bool first) {
  if (!first) os << ", ";
  os << '<' << url << '>';
  if (p == HintPriority::Preload) os << "; rel=preload";
}

}  // namespace

const char* hint_header_name(HintPriority p) {
  switch (p) {
    case HintPriority::Preload: return "Link preload";
    case HintPriority::SemiImportant: return "x-semi-important";
    case HintPriority::Unimportant: return "x-unimportant";
  }
  return "?";
}

std::int64_t HintSet::header_bytes() const {
  // Each listed URL costs roughly its length plus separators; our synthetic
  // URLs are ~45-60 bytes.
  return static_cast<std::int64_t>(hints.size()) * 60;
}

std::vector<const Hint*> HintSet::by_priority(HintPriority p) const {
  std::vector<const Hint*> out;
  for (const Hint& h : hints) {
    if (h.priority == p) out.push_back(&h);
  }
  return out;
}

std::string serialize_hints(const HintSet& hints) {
  std::ostringstream os;
  bool any = false;
  for (HintPriority p : {HintPriority::Preload, HintPriority::SemiImportant,
                         HintPriority::Unimportant}) {
    auto entries = hints.by_priority(p);
    if (entries.empty()) continue;
    if (any) os << '\n';
    any = true;
    os << kWireNames[static_cast<int>(p)] << ": ";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      append_entry(os, p, entries[i]->url, i == 0);
    }
  }
  if (any) {
    os << "\nAccess-Control-Expose-Headers: Link, x-semi-important, "
          "x-unimportant";
  }
  return os.str();
}

bool parse_hints(const std::string& wire, HintSet& out) {
  out.hints.clear();
  std::istringstream in(wire);
  std::string line;
  int order[3] = {0, 0, 0};
  while (std::getline(in, line)) {
    const std::size_t colon = line.find(": ");
    if (colon == std::string::npos) {
      if (line.empty()) continue;
      out.hints.clear();
      return false;
    }
    const std::string name = line.substr(0, colon);
    if (name == "Access-Control-Expose-Headers") continue;
    HintPriority prio;
    if (name == "Link") {
      prio = HintPriority::Preload;
    } else if (name == "x-semi-important") {
      prio = HintPriority::SemiImportant;
    } else if (name == "x-unimportant") {
      prio = HintPriority::Unimportant;
    } else {
      out.hints.clear();
      return false;
    }
    std::size_t pos = colon + 2;
    while (pos < line.size()) {
      const std::size_t lt = line.find('<', pos);
      if (lt == std::string::npos) break;
      const std::size_t gt = line.find('>', lt);
      if (gt == std::string::npos) {
        out.hints.clear();
        return false;
      }
      out.add(line.substr(lt + 1, gt - lt - 1), prio,
              order[static_cast<int>(prio)]++);
      pos = gt + 1;
    }
  }
  return true;
}

}  // namespace vroom::http
