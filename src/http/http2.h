// HTTP/2 session model: one TCP connection per domain, multiplexed requests,
// server push.
//
// Each response (and each pushed resource) occupies its own stream. With the
// RoundRobin writer discipline frames interleave across streams — stock
// HTTP/2 behaviour; with Ordered, responses drain in the order the server
// wrote them — the ordered response writer Vroom adds to Mahimahi (§5.1).
// The PUSH_PROMISE becomes visible to the client when the triggering
// response's headers arrive.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "http/message.h"
#include "net/tcp.h"

namespace vroom::http {

class Http2Session : public Endpoint {
 public:
  // `domain_id` is the page world's interner id for `domain` (see
  // web/intern.h); 0xffffffff when the caller does not intern.
  Http2Session(net::Network& net, std::string domain, RequestHandler& handler,
               PushObserver push_observer,
               net::WriterDiscipline discipline =
                   net::WriterDiscipline::RoundRobin,
               std::uint32_t domain_id = 0xffffffffu);

  void fetch(const Request& req, ResponseHandlers handlers) override;
  const std::string& domain() const override { return domain_; }

  std::int64_t bytes_received() const { return conn_->bytes_delivered(); }

 private:
  void ensure_connected();
  void dispatch(const Request& req, ResponseHandlers handlers);
  void write_response(const Request& req, sim::Time requested,
                      ServerReply reply, ResponseHandlers handlers);

  net::Network& net_;
  std::string domain_;
  RequestHandler& handler_;
  PushObserver push_observer_;
  net::WriterDiscipline discipline_;
  std::uint32_t domain_id_;
  std::unique_ptr<net::TcpConnection> conn_;
  bool connecting_ = false;
  std::uint32_t next_stream_ = 1;
  int requests_sent_ = 0;   // HPACK dynamic-table warm-up accounting
  int responses_sent_ = 0;
  std::vector<std::pair<Request, ResponseHandlers>> pending_;
};

}  // namespace vroom::http
