// HTTP request/response message model and the client/server interfaces the
// protocol sessions bridge.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "http/headers.h"
#include "sim/time.h"
#include "web/device.h"
#include "web/intern.h"

namespace vroom::http {

// HTTP/1.1 sends headers uncompressed (UA, accept lists, cookies) on every
// request. HTTP/2's HPACK indexes repeated fields into a per-connection
// dynamic table: the first request pays close to full price, subsequent
// ones only the non-repeating bytes (path, a few varying fields).
constexpr std::int64_t kH1RequestHeaderBytes = 1100;
constexpr std::int64_t kH2RequestHeaderBytesFirst = 450;
constexpr std::int64_t kH2RequestHeaderBytesIndexed = 120;
constexpr std::int64_t kResponseHeaderBytesFirst = 350;
constexpr std::int64_t kResponseHeaderBytesIndexed = 180;
// Legacy aliases used by sizing arithmetic that predates the HPACK model.
constexpr std::int64_t kH2RequestHeaderBytes = kH2RequestHeaderBytesFirst;
constexpr std::int64_t kResponseHeaderBytes = kResponseHeaderBytesFirst;
constexpr std::int64_t k304Bytes = 250;  // revalidation "Not Modified"

struct Request {
  std::string url;
  // Interned id in the page world's interner (kInvalidId when the caller
  // does not intern, e.g. protocol-level tests). Servers and sessions pass
  // it through so the client never re-hashes the URL string.
  web::UrlId url_id = web::kInvalidId;
  bool is_document = false;  // HTML navigation/iframe fetch
  int priority = 0;          // larger = more urgent (client-side queueing)
  web::DeviceProfile device;
  std::uint32_t user = 0;    // cookie identity for the *target* domain only
  bool conditional = false;  // If-None-Match revalidation of a cached copy
};

struct ResponseMeta {
  std::string url;
  web::UrlId url_id = web::kInvalidId;  // copied from the request
  std::int64_t body_bytes = 0;
  HintSet hints;
  bool pushed = false;
  bool not_modified = false;  // 304 — body_bytes is zero
};

struct ResponseHandlers {
  // Fires when the response headers reach the client (hints become visible
  // here, before the body finishes).
  std::function<void(const ResponseMeta&)> on_headers;
  // Fires when the full body has been received.
  std::function<void(const ResponseMeta&)> on_complete;
};

// Server-push callbacks surfaced to the page loader.
struct PushObserver {
  // PUSH_PROMISE: client now knows the URL is on its way.
  std::function<void(const std::string& url, std::int64_t bytes)> on_promise;
  std::function<void(const std::string& url, std::int64_t bytes)> on_complete;
};

struct PushItem {
  std::string url;
  std::int64_t body_bytes = 0;
};

// What the origin decides to send back for one request.
struct ServerReply {
  std::int64_t body_bytes = 0;
  HintSet hints;
  std::vector<PushItem> pushes;   // same-domain content pushes, in order
  sim::Time extra_delay = 0;      // e.g. on-the-fly HTML analysis (§4.1.2)
  bool not_modified = false;
};

// Implemented by server/OriginServer.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual ServerReply handle(const Request& req) = 0;
};

// Client-side view of one domain (an HTTP/1.1 connection group or an HTTP/2
// session).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void fetch(const Request& req, ResponseHandlers handlers) = 0;
  virtual const std::string& domain() const = 0;
};

}  // namespace vroom::http
