// Dependency-hint headers (Table 1 of the paper).
//
// VROOM-compliant servers attach three headers to responses, in decreasing
// priority: `Link rel=preload` for resources that must be parsed/executed,
// `x-semi-important` for lazily processed ones (async scripts), and
// `x-unimportant` for content that is never evaluated (images, media).
// Within a header, URLs are listed in the order the client will process
// them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vroom::http {

enum class HintPriority : std::uint8_t {
  Preload = 0,        // Link rel=preload
  SemiImportant = 1,  // x-semi-important
  Unimportant = 2,    // x-unimportant
};

const char* hint_header_name(HintPriority p);

struct Hint {
  std::string url;
  HintPriority priority = HintPriority::Preload;
  // Position within its priority class; preserves processing order.
  int order = 0;

  bool operator==(const Hint&) const = default;
};

struct HintSet {
  std::vector<Hint> hints;

  bool empty() const { return hints.empty(); }
  void add(std::string url, HintPriority p, int order) {
    hints.push_back(Hint{std::move(url), p, order});
  }
  // Byte weight the hints add to the HTTP response headers.
  std::int64_t header_bytes() const;
  std::vector<const Hint*> by_priority(HintPriority p) const;
};

// Wire format, exactly as a VROOM-compliant server would emit (Table 1 and
// §5.1 including the CORS exposure the JS scheduler needs):
//
//   Link: <b.com/x.js>; rel=preload, <a.com/y.css>; rel=preload
//   x-semi-important: <c.com/z.js>
//   x-unimportant: <d.com/img.jpg>, <e.com/ad.html>
//   Access-Control-Expose-Headers: Link, x-semi-important, x-unimportant
//
// serialize_hints emits one string with '\n'-separated header lines (empty
// classes omitted); parse_hints inverts it, preserving per-class order.
std::string serialize_hints(const HintSet& hints);
// Returns false (leaving `out` empty) on malformed input.
bool parse_hints(const std::string& wire, HintSet& out);

}  // namespace vroom::http
