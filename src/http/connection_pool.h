// Per-domain endpoint factory for one page load.
//
// Chooses the protocol per domain (supporting mixed deployments: e.g. only
// the first-party organization speaks full VROOM/HTTP-2 in the incremental
// adoption study of §6.1) and wires server push events back to the page
// loader.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "http/http1.h"
#include "http/http2.h"
#include "http/message.h"

namespace vroom::http {

enum class Protocol { Http1, Http2 };

class ConnectionPool {
 public:
  using HandlerLookup = std::function<RequestHandler&(const std::string&)>;
  using ProtocolChooser = std::function<Protocol(const std::string&)>;

  ConnectionPool(net::Network& net, HandlerLookup lookup,
                 ProtocolChooser protocol, PushObserver push_observer,
                 net::WriterDiscipline h2_discipline =
                     net::WriterDiscipline::RoundRobin);

  // Returns (creating on first use) the endpoint for a domain.
  Endpoint& endpoint(const std::string& domain);

  // Id-keyed fast path: `domain_id` is the page world's interner id for
  // `domain` (see web/intern.h). After the first call for a domain the
  // lookup is one vector index — no string hashing or map walk. Identical
  // endpoints to the string path (the id only memoizes).
  Endpoint& endpoint(std::uint32_t domain_id, std::string_view domain);

  // Total response bytes received over HTTP/2 sessions (stats).
  std::int64_t h2_bytes() const;

 private:
  Endpoint& create_endpoint(const std::string& domain,
                            std::uint32_t domain_id);

  net::Network& net_;
  HandlerLookup lookup_;
  ProtocolChooser protocol_;
  PushObserver push_observer_;
  net::WriterDiscipline h2_discipline_;
  std::map<std::string, std::unique_ptr<Endpoint>> endpoints_;
  std::vector<Endpoint*> by_domain_id_;  // nullptr where not yet resolved
};

}  // namespace vroom::http
