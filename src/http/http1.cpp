#include "http/http1.h"

#include <algorithm>
#include <utility>

#include "trace/trace.h"

namespace vroom::http {

Http1Group::Http1Group(net::Network& net, std::string domain,
                       RequestHandler& handler, std::uint32_t domain_id)
    : net_(net),
      domain_(std::move(domain)),
      handler_(handler),
      domain_id_(domain_id) {}

void Http1Group::fetch(const Request& req, ResponseHandlers handlers) {
  // Insert keeping the queue ordered by priority (desc), FIFO within equal
  // priorities.
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const auto& e) { return e.req.priority <
                                                      req.priority; });
  queue_.insert(it, Pending{req, std::move(handlers), net_.loop().now()});
  pump();
}

void Http1Group::claim(Conn& c, Pending pending) {
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    const sim::Time waited = net_.loop().now() - pending.enqueued;
    if (waited > 0) {
      // All six connections were occupied while this request sat queued:
      // HTTP/1.1's head-of-line blocking, the cost HTTP/2 multiplexing (and
      // eventually push) was designed to remove.
      tr->complete(trace::Layer::Http, domain_, "h1-queue", "h1.queue_wait",
                   pending.enqueued, {trace::arg("url", pending.req.url)});
      tr->counters().add("http.h1_hol_waits");
      tr->counters().add("http.h1_hol_wait_us", waited);
    }
  }
  c.busy = true;
  run_request(c, std::move(pending.req), std::move(pending.handlers));
}

void Http1Group::pump() {
  if (queue_.empty()) return;
  // Reuse an idle established connection first.
  for (auto& cp : conns_) {
    if (!cp->busy && !cp->connecting && cp->tcp->established()) {
      if (queue_.empty()) return;
      Pending pending = std::move(queue_.front());
      queue_.pop_front();
      claim(*cp, std::move(pending));
      if (queue_.empty()) return;
    }
  }
  // Open new connections up to the limit while work remains.
  while (!queue_.empty() &&
         conns_.size() < static_cast<std::size_t>(kMaxConnections)) {
    auto cp = std::make_unique<Conn>();
    Conn* c = cp.get();
    c->tcp = std::make_unique<net::TcpConnection>(
        net_, domain_, /*needs_dns=*/!dns_done_,
        net::WriterDiscipline::Ordered, domain_id_);
    dns_done_ = true;
    c->connecting = true;
    conns_.push_back(std::move(cp));
    c->tcp->connect([this, c] {
      c->connecting = false;
      pump();
    });
    // The connection only picks work up once established (via pump), so a
    // queued request may be taken by whichever connection frees up first.
    break;  // open one at a time per pump; re-entered on events
  }
  // If every connection is busy/connecting, the queue drains later.
}

void Http1Group::run_request(Conn& c, Request req, ResponseHandlers handlers) {
  const sim::Time started = net_.loop().now();
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    tr->counters().add("http.h1_requests");
  }
  c.tcp->send_request(
      kH1RequestHeaderBytes,
      [this, &c, started, req, handlers = std::move(handlers)]() mutable {
        ServerReply reply = handler_.handle(req);
        const sim::Time delay = net_.config().server_think + reply.extra_delay;
        net_.loop().schedule_in(delay, [this, &c, started, req,
                                        reply = std::move(reply),
                                        handlers =
                                            std::move(handlers)]() mutable {
          auto meta = std::make_shared<ResponseMeta>();
          meta->url = req.url;
          meta->url_id = req.url_id;
          meta->body_bytes = reply.not_modified ? 0 : reply.body_bytes;
          meta->hints = std::move(reply.hints);
          meta->not_modified = reply.not_modified;
          auto shared =
              std::make_shared<ResponseHandlers>(std::move(handlers));
          net::TcpConnection::Chunk chunk;
          chunk.bytes = (reply.not_modified
                             ? k304Bytes
                             : kResponseHeaderBytes + reply.body_bytes) +
                        meta->hints.header_bytes();
          chunk.on_first_byte = [meta, shared] {
            if (shared->on_headers) shared->on_headers(*meta);
          };
          chunk.on_delivered = [this, &c, started, meta, shared] {
            if (trace::Recorder* tr = trace::of(net_.loop())) {
              tr->complete(trace::Layer::Http, domain_, c.tcp->lane(),
                           "h1.fetch", started,
                           {trace::arg("url", meta->url),
                            trace::arg("bytes", meta->body_bytes)});
            }
            if (shared->on_complete) shared->on_complete(*meta);
            c.busy = false;
            pump();
          };
          c.tcp->send_chunk(std::move(chunk));
        });
      });
}

}  // namespace vroom::http
