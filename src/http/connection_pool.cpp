#include "http/connection_pool.h"

#include <utility>

namespace vroom::http {

ConnectionPool::ConnectionPool(net::Network& net, HandlerLookup lookup,
                               ProtocolChooser protocol,
                               PushObserver push_observer,
                               net::WriterDiscipline h2_discipline)
    : net_(net),
      lookup_(std::move(lookup)),
      protocol_(std::move(protocol)),
      push_observer_(std::move(push_observer)),
      h2_discipline_(h2_discipline) {}

Endpoint& ConnectionPool::endpoint(const std::string& domain) {
  auto it = endpoints_.find(domain);
  if (it != endpoints_.end()) return *it->second;
  return create_endpoint(domain, 0xffffffffu);
}

Endpoint& ConnectionPool::endpoint(std::uint32_t domain_id,
                                   std::string_view domain) {
  if (domain_id < by_domain_id_.size() &&
      by_domain_id_[domain_id] != nullptr) {
    return *by_domain_id_[domain_id];
  }
  const std::string key(domain);
  auto it = endpoints_.find(key);
  Endpoint& ep = it != endpoints_.end() ? *it->second
                                        : create_endpoint(key, domain_id);
  if (domain_id != 0xffffffffu) {
    if (domain_id >= by_domain_id_.size()) {
      by_domain_id_.resize(domain_id + 1, nullptr);
    }
    by_domain_id_[domain_id] = &ep;
  }
  return ep;
}

Endpoint& ConnectionPool::create_endpoint(const std::string& domain,
                                          std::uint32_t domain_id) {
  RequestHandler& handler = lookup_(domain);
  std::unique_ptr<Endpoint> ep;
  if (protocol_(domain) == Protocol::Http2) {
    ep = std::make_unique<Http2Session>(net_, domain, handler, push_observer_,
                                        h2_discipline_, domain_id);
  } else {
    ep = std::make_unique<Http1Group>(net_, domain, handler, domain_id);
  }
  auto [pos, _] = endpoints_.emplace(domain, std::move(ep));
  return *pos->second;
}

std::int64_t ConnectionPool::h2_bytes() const {
  std::int64_t sum = 0;
  for (const auto& [dom, ep] : endpoints_) {
    if (auto* h2 = dynamic_cast<const Http2Session*>(ep.get())) {
      sum += h2->bytes_received();
    }
  }
  return sum;
}

}  // namespace vroom::http
