#include "http/message.h"

// Interface definitions only; out-of-line virtual destructors anchor the
// vtables here.

namespace vroom::http {}  // namespace vroom::http
