#include "http/http2.h"

#include <utility>

#include "trace/trace.h"
#include "web/resource.h"
#include "web/url.h"

namespace vroom::http {

Http2Session::Http2Session(net::Network& net, std::string domain,
                           RequestHandler& handler, PushObserver push_observer,
                           net::WriterDiscipline discipline,
                           std::uint32_t domain_id)
    : net_(net),
      domain_(std::move(domain)),
      handler_(handler),
      push_observer_(std::move(push_observer)),
      discipline_(discipline),
      domain_id_(domain_id) {}

void Http2Session::ensure_connected() {
  if (conn_) return;
  conn_ = std::make_unique<net::TcpConnection>(net_, domain_,
                                               /*needs_dns=*/true,
                                               discipline_, domain_id_);
  connecting_ = true;
  conn_->connect([this] {
    connecting_ = false;
    auto pending = std::move(pending_);
    pending_.clear();
    for (auto& [req, handlers] : pending) dispatch(req, std::move(handlers));
  });
}

void Http2Session::fetch(const Request& req, ResponseHandlers handlers) {
  ensure_connected();
  if (connecting_) {
    pending_.emplace_back(req, std::move(handlers));
    return;
  }
  dispatch(req, std::move(handlers));
}

void Http2Session::dispatch(const Request& req, ResponseHandlers handlers) {
  // HPACK: the first request on the connection populates the dynamic table;
  // later requests reference it.
  const std::int64_t req_bytes = requests_sent_++ == 0
                                     ? kH2RequestHeaderBytesFirst
                                     : kH2RequestHeaderBytesIndexed;
  const sim::Time requested = net_.loop().now();
  conn_->send_request(
      req_bytes,
      [this, req, requested, handlers = std::move(handlers)]() mutable {
        // At the origin: think time (+ any policy-specific delay, e.g.
        // on-the-fly HTML parsing) before the response starts to flow.
        ServerReply reply = handler_.handle(req);
        const sim::Time delay = net_.config().server_think + reply.extra_delay;
        net_.loop().schedule_in(
            delay, [this, req, requested, reply = std::move(reply),
                    handlers = std::move(handlers)]() mutable {
              write_response(req, requested, std::move(reply),
                             std::move(handlers));
            });
      });
}

void Http2Session::write_response(const Request& req, sim::Time requested,
                                  ServerReply reply,
                                  ResponseHandlers handlers) {
  auto meta = std::make_shared<ResponseMeta>();
  meta->url = req.url;
  meta->url_id = req.url_id;
  meta->body_bytes = reply.not_modified ? 0 : reply.body_bytes;
  meta->hints = std::move(reply.hints);
  meta->not_modified = reply.not_modified;

  // Push promises ride with the triggering response's headers.
  auto promises = std::make_shared<std::vector<PushItem>>(reply.pushes);

  const std::int64_t resp_header = responses_sent_++ == 0
                                       ? kResponseHeaderBytesFirst
                                       : kResponseHeaderBytesIndexed;
  net::TcpConnection::Chunk chunk;
  chunk.bytes = (reply.not_modified ? k304Bytes
                                    : resp_header + reply.body_bytes) +
                meta->hints.header_bytes();
  auto shared_handlers =
      std::make_shared<ResponseHandlers>(std::move(handlers));
  const std::uint32_t sid = next_stream_;
  const std::string lane = "stream#" + std::to_string(sid);
  chunk.on_first_byte = [this, meta, promises, lane, shared_handlers] {
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      // PUSH_PROMISE frames become visible to the client with the
      // triggering response's headers.
      for (const PushItem& p : *promises) {
        tr->instant(trace::Layer::Http, domain_, lane, "push_promise",
                    {trace::arg("url", p.url),
                     trace::arg("bytes", p.body_bytes)});
        tr->counters().add("http.h2_push_promises");
      }
    }
    if (push_observer_.on_promise) {
      for (const PushItem& p : *promises) {
        push_observer_.on_promise(p.url, p.body_bytes);
      }
    }
    if (shared_handlers->on_headers) shared_handlers->on_headers(*meta);
  };
  chunk.on_delivered = [this, requested, meta, lane, shared_handlers] {
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      tr->complete(trace::Layer::Http, domain_, lane, "stream", requested,
                   {trace::arg("url", meta->url),
                    trace::arg("bytes", meta->body_bytes)});
    }
    if (shared_handlers->on_complete) shared_handlers->on_complete(*meta);
  };
  if (trace::Recorder* tr = trace::of(net_.loop())) {
    tr->counters().add("http.h2_streams");
  }
  conn_->send_chunk(next_stream_++, req.priority, std::move(chunk));

  // Pushed content follows on its own streams; under the Ordered discipline
  // it drains right after the triggering response. Pushed streams carry the
  // priority of their content class so they cannot starve client-requested
  // critical resources.
  for (const PushItem& p : reply.pushes) {
    net::TcpConnection::Chunk pc;
    pc.bytes = kResponseHeaderBytes + p.body_bytes;
    const sim::Time pushed_at = net_.loop().now();
    const std::string push_lane = "stream#" + std::to_string(next_stream_);
    pc.on_delivered = [this, pushed_at, push_lane, url = p.url,
                       bytes = p.body_bytes] {
      if (trace::Recorder* tr = trace::of(net_.loop())) {
        tr->complete(trace::Layer::Http, domain_, push_lane, "push.stream",
                     pushed_at,
                     {trace::arg("url", url), trace::arg("bytes", bytes)});
        tr->counters().add("http.h2_pushed_streams");
        tr->counters().add("http.h2_push_bytes", bytes);
      }
      if (push_observer_.on_complete) push_observer_.on_complete(url, bytes);
    };
    const bool processable =
        web::is_processable(web::type_from_ext(web::parse_url(p.url)
                                                   ? web::parse_url(p.url)->ext
                                                   : "bin"));
    conn_->send_chunk(next_stream_++, processable ? 2 : 0, std::move(pc));
  }
}

}  // namespace vroom::http
