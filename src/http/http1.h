// HTTP/1.1 connection group: up to six parallel connections per domain, one
// outstanding request per connection, no server push.
//
// Requests beyond the parallelism limit queue (higher `Request::priority`
// first, FIFO within a priority) — the browser behaviour whose head-of-line
// blocking HTTP/2 was designed to remove.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "http/message.h"
#include "net/tcp.h"

namespace vroom::http {

class Http1Group : public Endpoint {
 public:
  static constexpr int kMaxConnections = 6;

  // `domain_id` is the page world's interner id for `domain` (see
  // web/intern.h); 0xffffffff when the caller does not intern.
  Http1Group(net::Network& net, std::string domain, RequestHandler& handler,
             std::uint32_t domain_id = 0xffffffffu);

  void fetch(const Request& req, ResponseHandlers handlers) override;
  const std::string& domain() const override { return domain_; }

 private:
  struct Conn {
    std::unique_ptr<net::TcpConnection> tcp;
    bool connecting = false;
    bool busy = false;
  };
  struct Pending {
    Request req;
    ResponseHandlers handlers;
    sim::Time enqueued = 0;  // for head-of-line wait tracing
  };

  void pump();
  void claim(Conn& c, Pending pending);
  void run_request(Conn& c, Request req, ResponseHandlers handlers);

  net::Network& net_;
  std::string domain_;
  RequestHandler& handler_;
  std::uint32_t domain_id_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::deque<Pending> queue_;
  bool dns_done_ = false;  // only the first connection pays the DNS lookup
};

}  // namespace vroom::http
