#include "sim/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vroom::sim {

std::uint64_t hash64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

// splitmix64 finalizer — a bijective mix that decorrelates nearby inputs.
std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t root, std::string_view purpose) {
  return splitmix64(root ^ hash64(purpose));
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t child) {
  // Finalize the root first so the fold with `child` is not a raw XOR of
  // caller-controlled values (those collide whenever root1^child1 ==
  // root2^child2).
  return splitmix64(splitmix64(root) ^ child);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform() < p;
}

double Rng::lognormal(double median, double sigma) {
  std::lognormal_distribution<double> d(std::log(median), sigma);
  return d(engine_);
}

double Rng::pareto(double scale, double shape, double cap) {
  const double u = uniform(0.0, 1.0);
  const double v = scale / std::pow(1.0 - u, 1.0 / shape);
  return std::min(v, cap);
}

double Rng::exponential(double mean) {
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0) throw std::invalid_argument("weighted: non-positive total");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (x < weights[i]) return i;
    x -= weights[i];
  }
  return weights.size() - 1;
}

}  // namespace vroom::sim
