// Bump-allocating arena for objects with per-load lifetime.
//
// A page-load world (PageInstance, interner storage, fetch tables, browser
// task state) is built, used, and torn down together: one lifetime, so one
// arena and no individual frees — the same idiom PooledEventLoop applies to
// loop storage. The arena hands out memory by bumping a pointer through
// geometrically growing chunks; deallocate is a no-op; reset() rewinds every
// chunk but keeps the memory, so a fleet worker's second load allocates its
// whole world without touching the system allocator.
//
// The arena is a std::pmr::memory_resource, so per-load containers opt in
// with std::pmr types and keep running their destructors normally — only the
// *memory* is bulk-recycled, which keeps non-trivial members (std::function
// waiters, std::string edges) safe without arena-awareness.
//
// Lifetime hazard (see DESIGN.md §13): pointers and string_views into the
// arena — including every interned URL — die at reset(). Nothing that
// outlives a load (LoadResult, browser::Cache entries, the result cache) may
// hold arena-backed storage; they copy at the edge.
//
// Single-threaded by design, like the page world it backs: each fleet worker
// acquires its own arena (PooledArena below), so no synchronization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string_view>
#include <vector>

namespace vroom::sim {

class Arena final : public std::pmr::memory_resource {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_(first_chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `align`. Never fails short of OOM.
  void* allocate(std::size_t bytes, std::size_t align) {
    return do_allocate(bytes, align);
  }

  // Copies `s` into the arena and returns a view of the stable copy (with a
  // terminating NUL one past the end, so .data() is C-safe). The view dies
  // at reset().
  std::string_view copy_string(std::string_view s);

  // Rewinds every chunk but keeps the memory mapped, returning the arena to
  // a state indistinguishable from fresh for allocation purposes. All
  // outstanding pointers into the arena become dangling.
  void reset();

  // Bytes handed out since construction or the last reset() (including
  // alignment padding).
  std::size_t bytes_used() const { return bytes_used_; }
  // Total chunk bytes held (survives reset; the reuse the pool exists for).
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void* do_allocate(std::size_t bytes, std::size_t align) override;
  void do_deallocate(void*, std::size_t, std::size_t) override {}
  bool do_is_equal(const std::pmr::memory_resource& other)
      const noexcept override {
    return this == &other;
  }

  // Grows into a chunk that fits `bytes` and makes it current.
  void add_chunk(std::size_t bytes);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index into chunks_; valid iff !chunks_.empty()
  std::size_t offset_ = 0;   // bump offset within the current chunk
  std::size_t next_chunk_bytes_;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

// Thread-local pool of Arenas: acquire on construction, reset-and-return on
// destruction — the exact protocol of PooledEventLoop. A fleet worker's
// consecutive loads reuse the chunks the first load grew, so steady-state
// world construction performs zero system allocations for arena-backed
// state. Reentrant: a nested world (offline resolver crawling inside a live
// load) acquires a second arena.
class PooledArena {
 public:
  PooledArena();
  ~PooledArena();
  PooledArena(const PooledArena&) = delete;
  PooledArena& operator=(const PooledArena&) = delete;

  Arena& operator*() { return *arena_; }
  Arena* operator->() { return arena_; }
  Arena* get() { return arena_; }

 private:
  Arena* arena_;
};

}  // namespace vroom::sim
