// Deterministic random streams for reproducible experiments.
//
// Every experiment derives independent generators from a root seed plus a
// string "purpose" tag (e.g. "page:news:17:layout"), so adding a new draw in
// one module never perturbs the stream consumed by another. This property is
// what makes the per-figure benches stable as the codebase grows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace vroom::sim {

// 64-bit FNV-1a; stable across platforms, good enough for seed derivation.
std::uint64_t hash64(std::string_view s);

// Mixes a root seed with a purpose tag into a child seed (splitmix64 finalizer).
std::uint64_t derive_seed(std::uint64_t root, std::string_view purpose);

// Mixes a root seed with a numeric child id (page id, load index, shard
// number). The root passes through the splitmix64 finalizer *before* the
// child is folded in, so distinct (root, child) pairs land in unrelated
// streams — unlike a bare `root ^ child`, which collides for every pair of
// inputs with the same XOR (e.g. (seed, page) and (seed ^ d, page ^ d)).
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t child);

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}
  Rng(std::uint64_t root, std::string_view purpose)
      : engine_(derive_seed(root, purpose)) {}

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);
  bool chance(double p);

  // Log-normal parameterized by the *median* and sigma of the underlying
  // normal — resource sizes and RTTs on the web are classically log-normal.
  double lognormal(double median, double sigma);

  // Bounded Pareto, for heavy-tailed object counts/sizes.
  double pareto(double scale, double shape, double cap);

  double exponential(double mean);
  double normal(double mean, double stddev);

  // Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted(const std::vector<double>& weights);

  template <typename It>
  void shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vroom::sim
