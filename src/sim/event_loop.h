// Discrete-event loop with virtual time.
//
// Events are callbacks scheduled at absolute or relative virtual times and
// executed in (time, insertion-order) order, so simultaneous events are
// deterministic. The loop never sleeps: running it advances virtual time
// instantaneously, which makes week-long page-evolution experiments cheap.
//
// Internals are built for the per-load hot path (a page load executes a few
// thousand events, a fleet run hundreds of millions): callbacks live in a
// recycled slab of SmallFn slots (no per-event heap allocation for typical
// closures), the heap orders 24-byte POD entries, and cancellation is O(1)
// and idempotent — a cancelled entry becomes a tombstone that the pop path
// skips when its generation no longer matches the slot. reset() keeps the
// slab and heap capacity so fleet workers reuse one loop's storage across
// consecutive loads.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/small_fn.h"
#include "sim/time.h"

namespace vroom::trace {
class Recorder;
}

namespace vroom::sim {

// Handle used to cancel a pending event. Holds the event's slab slot and its
// generation (the global insertion seq); cancelling a fired, re-used, or
// default-constructed id is a no-op because the generation no longer matches.
class EventId {
 public:
  EventId() = default;

 private:
  friend class EventLoop;
  EventId(std::uint32_t slot, std::uint64_t seq) : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;  // 0 means "no event"
};

class EventLoop {
 public:
  using Callback = SmallFn;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  // Schedules `cb` at absolute virtual time `at` (clamped to now()).
  EventId schedule_at(Time at, Callback cb);

  // Schedules `cb` after `delay` microseconds of virtual time.
  EventId schedule_in(Time delay, Callback cb) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  // Drops a pending event. Idempotent: default-constructed, already-fired,
  // and already-cancelled ids are no-ops, and never perturb pending().
  void cancel(EventId id);

  // Runs events until the queue is empty or `until` is reached, whichever
  // comes first. Returns the number of events executed.
  std::size_t run(Time until = kNever);

  // Runs at most one event; returns false if the queue was empty or the next
  // event lies beyond `until`.
  bool step(Time until = kNever);

  // Advances virtual time to `at` without executing anything; never rewinds
  // (`at` <= now() is a no-op). The direct-replay entry point: a caller
  // that already holds a time-sorted work stream (deploy's macro arrival
  // replay) moves the clock itself instead of paying a heap event per item,
  // and everything stamped off now() — trace events, link accounting —
  // reads the same times the event-driven equivalent would. The caller owns
  // the invariant that no pending event is being jumped over.
  void advance_to(Time at) {
    if (at > now_) now_ = at;
  }

  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return live_; }

  // Returns the loop to its just-constructed state (now()==0, fresh seqs, no
  // recorder) but keeps the slab and heap capacity, so a pooled loop reused
  // across page loads stops paying per-load allocation warmup. A reset loop
  // is indistinguishable from a new one: seqs restart at 1, so event
  // ordering — and therefore every simulated number — is unchanged.
  void reset();

  // Structured-trace recorder attached to this simulation world (see
  // src/trace/). Null when tracing is disabled — instrumentation sites
  // check this pointer and do nothing else, which keeps the disabled-path
  // cost to one branch. The loop does not own the recorder.
  trace::Recorder* recorder() const { return recorder_; }
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

 private:
  // Min-heap entry; the callback lives in slots_[slot]. An entry is live iff
  // its seq still matches the slot's generation — cancel() frees the slot,
  // leaving the entry behind as a tombstone for the pop path to skip.
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Callback cb;
    std::uint64_t seq = 0;        // generation; 0 means "free"
    std::uint32_t next_free = 0;  // free-list link, valid while free
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  Time now_ = 0;
  trace::Recorder* recorder_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;  // scheduled and neither fired nor cancelled
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
};

// Thread-local pool of EventLoops: acquire on construction, reset-and-return
// on destruction. Fleet workers build one simulation world per (page, load)
// job; pooling lets consecutive jobs on a worker reuse the slab and heap
// storage the previous load grew. Reentrant — a nested world (e.g. the
// offline resolver crawling inside a live load) simply acquires a second
// loop.
class PooledEventLoop {
 public:
  PooledEventLoop();
  ~PooledEventLoop();
  PooledEventLoop(const PooledEventLoop&) = delete;
  PooledEventLoop& operator=(const PooledEventLoop&) = delete;

  EventLoop& operator*() { return *loop_; }
  EventLoop* operator->() { return loop_; }
  EventLoop* get() { return loop_; }

 private:
  EventLoop* loop_;
};

}  // namespace vroom::sim
