// Discrete-event loop with virtual time.
//
// Events are callbacks scheduled at absolute or relative virtual times and
// executed in (time, insertion-order) order, so simultaneous events are
// deterministic. The loop never sleeps: running it advances virtual time
// instantaneously, which makes week-long page-evolution experiments cheap.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace vroom::trace {
class Recorder;
}

namespace vroom::sim {

// Handle used to cancel a pending event. Cancellation is lazy: the event
// stays in the queue but its callback is dropped when it fires.
class EventId {
 public:
  EventId() = default;

 private:
  friend class EventLoop;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;  // 0 means "no event"
};

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  // Schedules `cb` at absolute virtual time `at` (clamped to now()).
  EventId schedule_at(Time at, Callback cb);

  // Schedules `cb` after `delay` microseconds of virtual time.
  EventId schedule_in(Time delay, Callback cb) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  // Drops a pending event. Safe to call with a default-constructed or
  // already-fired id.
  void cancel(EventId id);

  // Runs events until the queue is empty or `until` is reached, whichever
  // comes first. Returns the number of events executed.
  std::size_t run(Time until = kNever);

  // Runs at most one event; returns false if the queue was empty or the next
  // event lies beyond `until`.
  bool step(Time until = kNever);

  bool empty() const { return queue_.size() == cancelled_.size(); }
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  // Structured-trace recorder attached to this simulation world (see
  // src/trace/). Null when tracing is disabled — instrumentation sites
  // check this pointer and do nothing else, which keeps the disabled-path
  // cost to one branch. The loop does not own the recorder.
  trace::Recorder* recorder() const { return recorder_; }
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  trace::Recorder* recorder_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted insertion not required; small
};

}  // namespace vroom::sim
