#include "sim/arena.h"

#include <cstring>

namespace vroom::sim {

namespace {

std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

void Arena::add_chunk(std::size_t bytes) {
  // Reuse a retained chunk if the next one already fits; otherwise grow
  // geometrically so a world of any size settles into O(log size) chunks.
  if (current_ + 1 < chunks_.size() && chunks_[current_ + 1].size >= bytes) {
    ++current_;
    offset_ = 0;
    return;
  }
  std::size_t size = next_chunk_bytes_;
  while (size < bytes) size *= 2;
  next_chunk_bytes_ = size * 2;
  Chunk chunk;
  chunk.data = std::make_unique<char[]>(size);
  chunk.size = size;
  bytes_reserved_ += size;
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
  offset_ = 0;
}

void* Arena::do_allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (chunks_.empty()) add_chunk(bytes);
  std::size_t at = align_up(offset_, align);
  if (at + bytes > chunks_[current_].size) {
    add_chunk(bytes);
    at = 0;  // chunk starts max-aligned (operator new[])
  }
  char* p = chunks_[current_].data.get() + at;
  bytes_used_ += (at - offset_) + bytes;
  offset_ = at + bytes;
  return p;
}

std::string_view Arena::copy_string(std::string_view s) {
  char* p = static_cast<char*>(do_allocate(s.size() + 1, 1));
  std::memcpy(p, s.data(), s.size());
  p[s.size()] = '\0';
  return std::string_view(p, s.size());
}

void Arena::reset() {
  current_ = 0;
  offset_ = 0;
  bytes_used_ = 0;
}

namespace {

// One pool per thread, mirroring the EventLoop pool: fleet workers never
// share arenas, and an arena acquired on a thread returns to that thread's
// pool.
struct ArenaPool {
  std::vector<std::unique_ptr<Arena>> free_list;

  Arena* acquire() {
    if (free_list.empty()) return new Arena();
    Arena* arena = free_list.back().release();
    free_list.pop_back();
    return arena;
  }

  void release(Arena* arena) {
    arena->reset();
    free_list.emplace_back(arena);
  }
};

ArenaPool& thread_pool() {
  thread_local ArenaPool pool;
  return pool;
}

}  // namespace

PooledArena::PooledArena() : arena_(thread_pool().acquire()) {}

PooledArena::~PooledArena() { thread_pool().release(arena_); }

}  // namespace vroom::sim
