// Virtual time for the discrete-event simulator.
//
// All simulated durations and instants are expressed in microseconds as a
// signed 64-bit integer. Helper constructors keep call sites readable
// (`sim::ms(35)` instead of `35'000`).
#pragma once

#include <cstdint>

namespace vroom::sim {

using Time = std::int64_t;  // microseconds since simulation start

constexpr Time kNever = INT64_MAX;

constexpr Time us(std::int64_t v) { return v; }
constexpr Time ms(std::int64_t v) { return v * 1'000; }
constexpr Time seconds(std::int64_t v) { return v * 1'000'000; }
constexpr Time minutes(std::int64_t v) { return v * 60'000'000; }
constexpr Time hours(std::int64_t v) { return v * 3'600'000'000LL; }
constexpr Time days(std::int64_t v) { return v * 86'400'000'000LL; }

// Fractional-second constructor, rounding to the nearest microsecond.
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e3; }

}  // namespace vroom::sim
