// Small-buffer-optimized move-only callable for the event loop.
//
// Nearly every event callback in the simulator is a lambda capturing a
// handful of pointers and small ids; std::function heap-allocates most of
// them (libstdc++'s inline buffer is 16 bytes). SmallFn stores captures up
// to kInlineSize bytes inline in the event slab and only falls back to the
// heap for oversized closures (e.g. ones capturing whole Request objects).
// Move-only, so closures may own move-only state.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vroom::sim {

class SmallFn {
 public:
  // Sized so a lambda capturing `this` plus a std::string (32 bytes in
  // libstdc++) plus an id or two stays inline.
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      heap_ = new D(std::forward<F>(f));
      ops_ = &heap_ops<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept
      : heap_(other.heap_), ops_(other.ops_) {
    if (ops_ != nullptr && heap_ == nullptr) {
      ops_->relocate(other.buf_, buf_);
    }
    other.ops_ = nullptr;
    other.heap_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      heap_ = other.heap_;
      ops_ = other.ops_;
      if (ops_ != nullptr && heap_ == nullptr) {
        ops_->relocate(other.buf_, buf_);
      }
      other.ops_ = nullptr;
      other.heap_ = nullptr;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() {
    if (ops_ == nullptr) return;
    ops_->destroy(heap_ != nullptr ? heap_ : static_cast<void*>(buf_));
    ops_ = nullptr;
    heap_ = nullptr;
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    ops_->invoke(heap_ != nullptr ? heap_ : static_cast<void*>(buf_));
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct into `to` from `from`, then destroy `from`. Only used
    // for inline storage; heap storage relocates by stealing the pointer.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* from, void* to) {
        D* src = static_cast<D*>(from);
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* p) { (*static_cast<D*>(p))(); },
      nullptr,
      [](void* p) { delete static_cast<D*>(p); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  void* heap_ = nullptr;  // non-null iff the callable lives on the heap
  const Ops* ops_ = nullptr;
};

}  // namespace vroom::sim
