#include "sim/event_loop.h"

#include <algorithm>

namespace vroom::sim {

EventId EventLoop::schedule_at(Time at, Callback cb) {
  if (at < now_) at = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{at, seq, std::move(cb)});
  return EventId{seq};
}

void EventLoop::cancel(EventId id) {
  if (id.seq_ == 0) return;
  cancelled_.push_back(id.seq_);
}

bool EventLoop::step(Time until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), top.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (top.at > until) return false;
    // Move the callback out before popping; the callback may schedule more
    // events, which mutates the queue.
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    now_ = ev.at;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run(Time until) {
  std::size_t n = 0;
  while (step(until)) ++n;
  return n;
}

}  // namespace vroom::sim
