#include "sim/event_loop.h"

#include <algorithm>
#include <memory>

namespace vroom::sim {

std::uint32_t EventLoop::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventLoop::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  s.seq = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId EventLoop::schedule_at(Time at, Callback cb) {
  if (at < now_) at = now_;
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].cb = std::move(cb);
  slots_[slot].seq = seq;
  heap_.push_back(HeapEntry{at, seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return EventId{slot, seq};
}

void EventLoop::cancel(EventId id) {
  if (id.seq_ == 0 || id.slot_ >= slots_.size()) return;
  if (slots_[id.slot_].seq != id.seq_) return;  // fired or already cancelled
  release_slot(id.slot_);
  --live_;
  // The heap entry stays behind as a tombstone; step() skips it when its seq
  // no longer matches the slot's generation.
}

bool EventLoop::step(Time until) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (slots_[top.slot].seq != top.seq) {  // cancelled: drop the tombstone
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      continue;
    }
    if (top.at > until) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    // Move the callback out and free the slot before invoking: the callback
    // may schedule more events, which can grow the slab.
    Callback cb = std::move(slots_[top.slot].cb);
    release_slot(top.slot);
    --live_;
    now_ = top.at;
    cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run(Time until) {
  std::size_t n = 0;
  while (step(until)) ++n;
  return n;
}

void EventLoop::reset() {
  heap_.clear();
  // Destroy any surviving callbacks but keep the slab's capacity.
  const std::size_t capacity = slots_.size();
  slots_.clear();
  slots_.resize(capacity);
  free_head_ = kNoFreeSlot;
  for (std::size_t i = capacity; i-- > 0;) {
    slots_[i].next_free = free_head_;
    free_head_ = static_cast<std::uint32_t>(i);
  }
  live_ = 0;
  now_ = 0;
  next_seq_ = 1;
  recorder_ = nullptr;
}

namespace {

// One pool per thread: fleet workers never share loops, and a loop acquired
// on a thread is returned to that thread's pool.
struct LoopPool {
  std::vector<std::unique_ptr<EventLoop>> free_list;

  EventLoop* acquire() {
    if (free_list.empty()) return new EventLoop();
    EventLoop* loop = free_list.back().release();
    free_list.pop_back();
    return loop;
  }

  void release(EventLoop* loop) {
    loop->reset();
    free_list.emplace_back(loop);
  }
};

LoopPool& thread_pool() {
  thread_local LoopPool pool;
  return pool;
}

}  // namespace

PooledEventLoop::PooledEventLoop() : loop_(thread_pool().acquire()) {}

PooledEventLoop::~PooledEventLoop() { thread_pool().release(loop_); }

}  // namespace vroom::sim
