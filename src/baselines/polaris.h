// Polaris-style client-side request prioritization (Netravali et al.,
// NSDI'16), as characterized in §2 and §6.1 of the Vroom paper.
//
// The client holds a previously computed fine-grained dependency graph of
// the page. It still discovers each resource by fetching and evaluating its
// ancestors (no server aid), but instead of requesting resources in
// discovery order it schedules requests through a bounded-parallelism
// priority queue, favouring resources that head long dependency chains and
// must be processed — reducing access-link contention on the critical path.
#pragma once

#include <deque>
#include <unordered_set>

#include "browser/browser.h"

namespace vroom::baselines {

class PolarisScheduler : public browser::FetchPolicy {
 public:
  explicit PolarisScheduler(int max_concurrent = 10)
      : max_concurrent_(max_concurrent) {}

  void on_discovered(browser::Browser& b, web::UrlId url,
                     bool processable) override;
  void on_fetch_complete(browser::Browser& b, web::UrlId url) override;

 private:
  struct Pending {
    web::UrlId url;
    int priority;
  };

  int priority_of(browser::Browser& b, web::UrlId url,
                  bool processable) const;
  void pump(browser::Browser& b);

  int max_concurrent_;
  int outstanding_ = 0;
  std::deque<Pending> queue_;
  std::unordered_set<web::UrlId> issued_;
};

}  // namespace vroom::baselines
