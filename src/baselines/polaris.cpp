#include "baselines/polaris.h"

#include <algorithm>

namespace vroom::baselines {

int PolarisScheduler::priority_of(browser::Browser& b, web::UrlId url,
                                  bool processable) const {
  const web::PageModel& model = b.instance().model();
  int prio = processable ? 50 : 0;
  if (auto id = b.instance().template_of(url)) {
    // Longer remaining dependency chains first — Polaris's key heuristic.
    prio += model.chain_depth(*id) * 100;
    if (*id == 0) prio += 10000;  // the navigation itself
    if (model.resource(*id).type == web::ResourceType::Html) prio += 500;
  }
  return prio;
}

void PolarisScheduler::on_discovered(browser::Browser& b, web::UrlId url,
                                     bool processable) {
  if (issued_.count(url) > 0 || b.url_complete(url) || b.url_outstanding(url)) {
    return;
  }
  const int prio = priority_of(b, url, processable);
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const Pending& p) { return p.priority < prio; });
  queue_.insert(it, Pending{url, prio});
  pump(b);
}

void PolarisScheduler::on_fetch_complete(browser::Browser& b, web::UrlId url) {
  if (issued_.erase(url) > 0) --outstanding_;
  pump(b);
}

void PolarisScheduler::pump(browser::Browser& b) {
  while (outstanding_ < max_concurrent_ && !queue_.empty()) {
    Pending p = queue_.front();
    queue_.pop_front();
    if (b.url_complete(p.url) || b.url_outstanding(p.url)) continue;
    issued_.insert(p.url);
    ++outstanding_;
    b.fetch_url(p.url, p.priority, browser::FetchReason::Parser);
  }
}

}  // namespace vroom::baselines
