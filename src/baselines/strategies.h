// Named, fully-specified page-load configurations for every scheme the
// paper evaluates (see DESIGN.md's per-experiment index).
#pragma once

#include <memory>
#include <string>

#include "browser/browser.h"
#include "core/vroom_provider.h"
#include "http/connection_pool.h"

namespace vroom::baselines {

struct Strategy {
  std::string name;
  http::Protocol protocol = http::Protocol::Http2;

  // Server side.
  bool server_aid = false;
  core::VroomProviderConfig provider;
  bool first_party_only = false;  // aid limited to the first-party org
  // Vroom's modified origins write responses in request order (§5.1);
  // stock HTTP/2 interleaves frames across streams.
  bool ordered_writer = false;

  // Client side.
  enum class Sched {
    Default,
    VroomStaged,
    FetchAsap,
    Polaris,
    VroomPolaris,  // §6.1 future work: Vroom aid + Polaris client queue
  } sched = Sched::Default;

  // Special modes for the Figure 2 bounds.
  bool know_all_upfront = false;  // network-bound: fetch all, evaluate none
  bool zero_cpu = false;
  bool local_network = false;  // CPU-bound: servers on a USB-tethered desktop

  // Canonical text encoding of *every* knob that affects simulation (name,
  // protocol, server-aid provider config including the offline-resolver
  // parameters, scheduler, writer discipline, bound modes). Two strategies
  // with equal fingerprints produce bit-identical loads for the same (seed,
  // page, nonce, device, network); the result cache keys on it.
  std::string fingerprint() const;
};

// Creates the client fetch policy an instance of this strategy needs (one
// per page load; staged schedulers carry per-load state).
std::unique_ptr<browser::FetchPolicy> make_policy(const Strategy& s);

// --- The paper's configurations ---

Strategy http11();                    // "Loads from Web" proxy (Fig 1/3/13)
Strategy http2_baseline();            // global HTTP/2, no aid
Strategy push_all_static();           // Fig 3: first party pushes its statics
Strategy vroom();                     // the full system
// Vroom served from a shared front-end's hint cache: offline-only advice
// resolved `hint_age` before serve time (deploy::FrontEnd staleness cells).
Strategy vroom_stale_hints(sim::Time hint_age);
Strategy vroom_first_party_only();    // §6.1 incremental deployment
Strategy vroom_prev_load_deps();      // Fig 17: deps from one prior load
Strategy vroom_offline_only();        // §4.1 strawman 2 (used in Fig 21 too)
Strategy vroom_online_only();         // §4.1 strawman 1
Strategy push_high_prio_no_hints();   // Fig 18
Strategy push_all_no_hints();         // Fig 18
Strategy push_all_fetch_asap();       // Fig 19 strawman
Strategy polaris();                   // Fig 14
Strategy vroom_plus_polaris();        // §6.1 future-work combination
Strategy lower_bound_network();       // Fig 2
Strategy lower_bound_cpu();           // Fig 2

}  // namespace vroom::baselines
