#include "baselines/lower_bound.h"

// Header-only sample struct; the strategies that produce the two bounds live
// in strategies.cpp and the combination in harness/experiment.cpp.
