// The Figure 2 achievable lower bound: for each page, the larger of the
// network-bound and CPU-bound load times — the best a page-load redesign can
// do without rewriting the page, if it fully utilizes at least one of the
// client's two resources.
#pragma once

#include <algorithm>

#include "sim/time.h"

namespace vroom::baselines {

struct LowerBoundSample {
  sim::Time network_bound = 0;
  sim::Time cpu_bound = 0;
  sim::Time bound() const { return std::max(network_bound, cpu_bound); }
};

}  // namespace vroom::baselines
