// Vroom + Polaris combination (§6.1: "combining the complementary
// approaches used in VROOM and Polaris is a promising direction").
//
// Server aid stays exactly Vroom's (push + staged dependency hints). The
// client additionally applies Polaris-style prioritization to the resources
// it must still discover on its own — the unpredictable tail that Vroom
// defers to the client: engine discoveries go through a bounded-parallelism
// queue favouring long dependency chains, so the unhinted remainder cannot
// crowd the link at the moment hinted high-priority resources arrive.
#pragma once

#include <deque>
#include <unordered_set>

#include "core/client_scheduler.h"

namespace vroom::baselines {

class VroomPolarisScheduler final : public core::VroomClientScheduler {
 public:
  explicit VroomPolarisScheduler(int max_concurrent_discoveries = 8)
      : max_concurrent_(max_concurrent_discoveries) {}

  void on_discovered(browser::Browser& b, web::UrlId url,
                     bool processable) override;
  void on_fetch_complete(browser::Browser& b, web::UrlId url) override;

 private:
  struct Pending {
    web::UrlId url;
    int priority;
    bool processable;
  };

  void pump(browser::Browser& b);

  int max_concurrent_;
  int outstanding_ = 0;
  std::deque<Pending> queue_;
  std::unordered_set<web::UrlId> issued_;
};

}  // namespace vroom::baselines
