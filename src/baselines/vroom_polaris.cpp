#include "baselines/vroom_polaris.h"

#include <algorithm>

namespace vroom::baselines {

void VroomPolarisScheduler::on_discovered(browser::Browser& b, web::UrlId url,
                                          bool processable) {
  // Resources already covered by hints (or pushes) are in flight; the
  // chain-priority queue is only for what the client discovers itself.
  if (b.url_complete(url) || b.url_outstanding(url) ||
      issued_.count(url) > 0) {
    // Still let the base class account for pending documents.
    core::VroomClientScheduler::on_discovered(b, url, processable);
    return;
  }
  // Documents and render-blocking resources bypass the queue: the engine
  // cannot make progress without them.
  int prio = processable ? 50 : 0;
  if (auto id = b.instance().template_of(url)) {
    prio += b.instance().model().chain_depth(*id) * 100;
    if (b.instance().model().resource(*id).type == web::ResourceType::Html ||
        b.instance().model().resource(*id).blocks_parser) {
      core::VroomClientScheduler::on_discovered(b, url, processable);
      return;
    }
  }
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const Pending& p) { return p.priority < prio; });
  queue_.insert(it, Pending{url, prio, processable});
  pump(b);
}

void VroomPolarisScheduler::on_fetch_complete(browser::Browser& b,
                                              web::UrlId url) {
  if (issued_.erase(url) > 0) --outstanding_;
  core::VroomClientScheduler::on_fetch_complete(b, url);
  pump(b);
}

void VroomPolarisScheduler::pump(browser::Browser& b) {
  while (outstanding_ < max_concurrent_ && !queue_.empty()) {
    Pending p = queue_.front();
    queue_.pop_front();
    if (b.url_complete(p.url) || b.url_outstanding(p.url)) continue;
    issued_.insert(p.url);
    ++outstanding_;
    b.fetch_url(p.url, p.priority, browser::FetchReason::Parser);
  }
}

}  // namespace vroom::baselines
