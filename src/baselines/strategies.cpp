#include "baselines/strategies.h"

#include <limits>
#include <sstream>

#include "baselines/polaris.h"
#include "baselines/vroom_polaris.h"
#include "core/client_scheduler.h"

namespace vroom::baselines {

namespace {

const char* sched_name(Strategy::Sched s) {
  switch (s) {
    case Strategy::Sched::Default: return "default";
    case Strategy::Sched::VroomStaged: return "vroom-staged";
    case Strategy::Sched::FetchAsap: return "fetch-asap";
    case Strategy::Sched::Polaris: return "polaris";
    case Strategy::Sched::VroomPolaris: return "vroom-polaris";
  }
  return "?";
}

}  // namespace

std::string Strategy::fingerprint() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "strategy{name=" << name
     << ";proto=" << (protocol == http::Protocol::Http1 ? "h1" : "h2")
     << ";aid=" << server_aid << ";first_party_only=" << first_party_only
     << ";ordered_writer=" << ordered_writer << ";sched=" << sched_name(sched)
     << ";know_all=" << know_all_upfront << ";zero_cpu=" << zero_cpu
     << ";local_net=" << local_network;
  if (server_aid) {
    os << ";provider{mode=" << core::resolution_mode_name(provider.mode)
       << ";hints=" << provider.hints_enabled
       << ";push=" << core::push_selection_name(provider.push)
       << ";max_hints=" << provider.max_hints
       << ";hint_age=" << provider.hint_age
       << ";offline{loads=" << provider.offline.loads
       << ";spacing=" << provider.offline.spacing << ";dev_handling="
       << static_cast<int>(provider.offline.device_handling)
       << ";iou=" << provider.offline.iou_threshold << ";devices=";
    for (const auto& d : provider.offline.known_devices) {
      os << d.name << ':' << d.screen << ':' << d.dpi << ':' << d.width << ':'
         << d.cpu_scale << ',';
    }
    os << "}}";
  }
  os << "}";
  return os.str();
}

std::unique_ptr<browser::FetchPolicy> make_policy(const Strategy& s) {
  switch (s.sched) {
    case Strategy::Sched::Default:
      return nullptr;  // Browser installs its status-quo policy
    case Strategy::Sched::VroomStaged:
      return std::make_unique<core::VroomClientScheduler>(/*staged=*/true);
    case Strategy::Sched::FetchAsap:
      return std::make_unique<core::VroomClientScheduler>(/*staged=*/false);
    case Strategy::Sched::Polaris:
      return std::make_unique<PolarisScheduler>();
    case Strategy::Sched::VroomPolaris:
      return std::make_unique<VroomPolarisScheduler>();
  }
  return nullptr;
}

Strategy http11() {
  Strategy s;
  s.name = "HTTP/1.1";
  s.protocol = http::Protocol::Http1;
  return s;
}

Strategy http2_baseline() {
  Strategy s;
  s.name = "HTTP/2 Baseline";
  return s;
}

Strategy push_all_static() {
  Strategy s;
  s.name = "Push All Static";
  s.server_aid = true;
  s.ordered_writer = true;
  s.first_party_only = true;
  s.provider.mode = core::ResolutionMode::OfflineOnly;  // stable statics
  s.provider.hints_enabled = false;
  s.provider.push = core::PushSelection::AllLocal;
  return s;
}

Strategy vroom() {
  Strategy s;
  s.name = "Vroom";
  s.server_aid = true;
  s.ordered_writer = true;
  s.provider.mode = core::ResolutionMode::OfflinePlusOnline;
  s.provider.hints_enabled = true;
  s.provider.push = core::PushSelection::HighPriorityLocal;
  s.sched = Strategy::Sched::VroomStaged;
  return s;
}

Strategy vroom_stale_hints(sim::Time hint_age) {
  Strategy s = vroom();
  // A shared front-end serving cached advice: the offline stable set is
  // `hint_age` old and there is no serve-time HTML scan (the cached entry
  // was generated wholly at crawl time), so mode drops to OfflineOnly.
  s.provider.mode = core::ResolutionMode::OfflineOnly;
  s.provider.hint_age = hint_age;
  if (hint_age == 0) {
    s.name = "Vroom (front-end hints, fresh)";
    return s;
  }
  const std::int64_t minutes = hint_age / sim::minutes(1);
  s.name = "Vroom (hints " +
           (minutes % 60 == 0 ? std::to_string(minutes / 60) + "h"
                              : std::to_string(minutes) + "m") +
           " stale)";
  return s;
}

Strategy vroom_first_party_only() {
  Strategy s = vroom();
  s.name = "Vroom (first party only)";
  s.first_party_only = true;
  return s;
}

Strategy vroom_prev_load_deps() {
  Strategy s = vroom();
  s.name = "Deps from Previous Load";
  s.provider.mode = core::ResolutionMode::PreviousLoad;
  return s;
}

Strategy vroom_offline_only() {
  Strategy s = vroom();
  s.name = "Offline Only";
  s.provider.mode = core::ResolutionMode::OfflineOnly;
  return s;
}

Strategy vroom_online_only() {
  Strategy s = vroom();
  s.name = "Online Only";
  s.provider.mode = core::ResolutionMode::OnlineOnly;
  return s;
}

Strategy push_high_prio_no_hints() {
  Strategy s;
  s.name = "Push High Priority, No Hints";
  s.server_aid = true;
  s.ordered_writer = true;
  s.provider.mode = core::ResolutionMode::OfflinePlusOnline;
  s.provider.hints_enabled = false;
  s.provider.push = core::PushSelection::HighPriorityLocal;
  return s;
}

Strategy push_all_no_hints() {
  Strategy s = push_high_prio_no_hints();
  s.name = "Push All, No Hints";
  s.provider.push = core::PushSelection::AllLocal;
  return s;
}

Strategy push_all_fetch_asap() {
  Strategy s;
  s.name = "Push All, Fetch ASAP";
  s.server_aid = true;
  s.ordered_writer = true;
  s.provider.mode = core::ResolutionMode::OfflinePlusOnline;
  s.provider.hints_enabled = true;
  s.provider.push = core::PushSelection::AllLocal;
  s.sched = Strategy::Sched::FetchAsap;
  return s;
}

Strategy polaris() {
  Strategy s;
  s.name = "Polaris";
  s.sched = Strategy::Sched::Polaris;
  return s;
}

Strategy vroom_plus_polaris() {
  Strategy s = vroom();
  s.name = "Vroom + Polaris";
  s.sched = Strategy::Sched::VroomPolaris;
  return s;
}

Strategy lower_bound_network() {
  Strategy s;
  s.name = "Network Bottleneck";
  s.know_all_upfront = true;
  s.zero_cpu = true;
  return s;
}

Strategy lower_bound_cpu() {
  Strategy s;
  s.name = "CPU Bottleneck";
  s.local_network = true;
  return s;
}

}  // namespace vroom::baselines
