// User population model for deployment-scale simulation.
//
// Turns "millions of users against a shared Vroom front-end" into a
// deterministic arrival stream: every arrival carries a user, a page, a
// device class, a cookie flag and a warm-cache flag. The process is a
// non-homogeneous Poisson process (thinning against a diurnal rate
// profile), user activity and page popularity are Zipf-distributed, and
// warm-cache arrivals emerge from the revisit history (a user returning to
// a page within the cache TTL arrives warm). Everything derives from one
// seed through the sim::derive_seed chain, so the stream is bit-identical
// on every machine and at any VROOM_JOBS — the expensive per-condition page
// loads run on the fleet, the population itself is generated in one cheap
// serial pass.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "web/device.h"

namespace vroom::deploy {

// One device class of the population with its traffic share.
struct DeviceShare {
  web::DeviceProfile device;
  double weight = 1.0;
};

// Phone-heavy default mix (weights normalized at sampling time).
std::vector<DeviceShare> default_device_mix();

struct PopulationConfig {
  int users = 100000;          // distinct users behind the arrival stream
  double user_skew = 0.8;      // Zipf exponent of per-user activity
  double page_skew = 0.9;      // Zipf exponent of page popularity
  double cookie_frac = 0.55;   // fraction of users that send a login cookie
  sim::Time window = sim::hours(24);   // traffic window length
  double mean_arrivals_per_sec = 1.0;  // time-averaged offered load
  // Rate multiplier per hour of day, cycled over the window; normalized to
  // mean 1.0 at sampling time so mean_arrivals_per_sec stays the average.
  // Empty = default_diurnal_profile().
  std::vector<double> diurnal;
  // A user re-arriving at the same page within this gap has a warm browser
  // cache (their previous visit's cacheable resources are still fresh).
  sim::Time warm_ttl = sim::hours(12);
  // Device classes and traffic shares. Empty = default_device_mix().
  std::vector<DeviceShare> device_mix;
};

// The two-peak weekday profile (quiet overnight trough, midday plateau,
// evening peak); 24 per-hour multipliers with mean 1.0.
std::vector<double> default_diurnal_profile();

// Unnormalized Zipf weights over n ranks: weight(r) = 1/(r+1)^s. The one
// definition of "which ranks are hot" shared by the population's user/page
// samplers and the scenario's origin-link auto-sizing — the macro pass and
// the link sizing must agree on page popularity, so neither keeps a copy.
// Callers cumulative-sum or normalize as needed (in rank order, so every
// caller's floating-point story stays exactly what it was).
std::vector<double> zipf_weights(int n, double s);

// Rate multiplier at virtual time `t` (hour-of-day resolution, cycling).
double diurnal_multiplier(const PopulationConfig& cfg, sim::Time t);

struct Arrival {
  sim::Time at = 0;            // within [0, window)
  std::uint32_t user = 0;
  std::uint16_t page = 0;      // corpus page index
  std::uint8_t device = 0;     // index into the device mix
  bool cookie = false;
  bool warm = false;           // revisit within warm_ttl => warm cache

  bool operator==(const Arrival& o) const {
    return at == o.at && user == o.user && page == o.page &&
           device == o.device && cookie == o.cookie && warm == o.warm;
  }
};

// Generates the full arrival stream over `cfg.window`, sorted by time.
// Deterministic in (num_pages, cfg, seed) only. `max_arrivals` truncates
// the stream after generation (0 = no cap) — the VROOM_DEPLOY_ARRIVALS
// quick-run knob; truncation keeps the prefix, so capped runs are prefixes
// of uncapped ones.
std::vector<Arrival> build_population(int num_pages,
                                      const PopulationConfig& cfg,
                                      std::uint64_t seed,
                                      int max_arrivals = 0);

}  // namespace vroom::deploy
