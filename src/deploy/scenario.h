// Population-scale deployment scenario: the whole pipeline in one call.
//
// Running every page view of a day-long population through the full
// browser simulator would cost hours per load level. The scenario instead
// splits the problem at the point where the layers decouple:
//
//   micro (parallel, expensive)  — a PLT table measured with the real
//     simulator via fleet::SweepPlan: for every (device class, hint
//     condition) cell, one load per corpus page. Conditions are the hint
//     states a shared front-end can produce — fresh offline hints, hints
//     from crawls {1h, 6h, 24h, ...} old (priced through
//     VroomProviderConfig::hint_age: stale rotations become ghost
//     fetches), and hintless serves — plus a warm-cache revisit column
//     measured serially (prime + revisit, Figure 20 style).
//
//   macro (parallel per level)   — the population's arrival stream runs
//     against a deploy::FrontEnd and per-origin net::Link instances. Each
//     page view's PLT is the micro table entry for its (device, hint
//     condition) plus the front-end's synchronous hint wait plus the worst
//     per-origin queueing delay it experienced. Queueing is real FIFO
//     contention: concurrent users share each origin's access link, so p99
//     PLT degrades — and loads start timing out — as offered load crosses
//     link capacity. Nothing is a closed-form approximation of contention;
//     the queues are simulated. Arrivals replay directly over the
//     time-sorted stream (the link FIFO story is busy_until arithmetic, so
//     no event heap is involved), and origin links are keyed by dense
//     interned domain ids, not string maps.
//
// Determinism: micro cells run on the fleet (bit-identical at any
// VROOM_JOBS); the warm column parallelizes over independent (device,
// page) pairs with each pair's prime -> revisit order kept serial; the
// offered-load levels run concurrently on the same pool because each level
// owns its entire world (population, FrontEnd, links, recorder) — reports,
// bucket-serve totals, and trace sinks are assembled in level order after
// the join, and every shared obs metric merges commutatively (counter
// adds, gauge maxima, fixed-boundary histogram bucket adds). The whole
// report is therefore byte-stable across worker counts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "deploy/front_end.h"
#include "deploy/population.h"
#include "harness/experiment.h"
#include "sim/time.h"
#include "web/corpus.h"

namespace vroom::deploy {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  // Offered load levels to sweep, in page views per second (population
  // mean; the diurnal profile modulates the instantaneous rate).
  std::vector<double> offered_levels = {0.05, 0.2, 0.8, 3.2};
  // Hint-staleness conditions measured in the micro table, beyond fresh
  // (age 0). Macro serves map to the nearest measured age.
  std::vector<sim::Time> stale_ages = {sim::hours(1), sim::hours(6),
                                       sim::hours(24)};
  // Gap of the warm-cache micro column (prime, then revisit this long
  // after).
  sim::Time revisit_gap = sim::hours(1);
  // Per-origin access-link rate. 0 = auto-size to `origin_capacity_frac`
  // of the hottest origin's offered demand at the *top* load level, which
  // guarantees the sweep crosses capacity (the regime the scenario
  // exists to show).
  double origin_link_bps = 0;
  double origin_capacity_frac = 0.6;

  PopulationConfig population;  // mean_arrivals_per_sec set per level
  FrontEndConfig front_end;
  // Base options for the micro cells (seed/when/device are overridden per
  // cell; timeout doubles as the macro PLT cap).
  harness::RunOptions micro;
  // Like RunOptions::trace_sink: when set, each level's macro pass runs
  // with a trace::Recorder attached (front-end cache/stale/recrawl events,
  // per-origin queueing) and hands it here after the level finishes.
  std::function<void(int level_index, const trace::Recorder&)> trace_sink;
};

// The micro PLT lookup table. Bucket indices 0..ages.size()-1 correspond
// to hint conditions of age ages[i] (ages[0] == 0 is fresh); bucket
// ages.size() is the hintless condition; warm revisits use warm_plt.
struct MicroTable {
  std::vector<sim::Time> ages;
  // plt[device][bucket][page], microseconds, timeout-capped.
  std::vector<std::vector<std::vector<sim::Time>>> plt;
  // warm_plt[device][page]: revisit PLT with a primed browser cache.
  std::vector<std::vector<sim::Time>> warm_plt;

  int hintless_bucket() const { return static_cast<int>(ages.size()); }
  // Bucket for a front-end decision: None -> hintless, otherwise the
  // nearest measured age (lower index wins ties).
  int bucket_for(HintSource source, sim::Time staleness) const;
};

// One load level's outcome.
struct LevelReport {
  double offered_per_sec = 0;   // configured population mean
  std::int64_t arrivals = 0;
  std::int64_t timeouts = 0;    // PLT hit the cap (counted, not served)
  double served_per_sec = 0;    // completed loads / window
  double p50_plt_s = 0;
  double p99_plt_s = 0;
  // The same percentiles read back from the level's obs::Histogram of PLT
  // microseconds — the log-linear bucketing every metrics export uses.
  // Agrees with the exact values above to within one bucket width (~3%
  // relative); tests/obs_test.cpp asserts the bound.
  double hist_p50_plt_s = 0;
  double hist_p99_plt_s = 0;
  double mean_origin_wait_s = 0;  // per-load worst origin queueing delay
  double mean_fe_wait_ms = 0;     // synchronous hint-path wait
  double max_link_utilization = 0;
  double hit_ratio = 0;
  double stale_frac = 0;     // stale serves / serves
  double hintless_frac = 0;  // deadline-exceeded serves / serves
  double mean_staleness_s = 0;
  FrontEndStats front_end;
  std::vector<double> plt_seconds;  // all completed+timed-out loads, capped
};

// Staleness priced against content persistence (Figure 7's axis): for each
// measured hint age, how much of a page is still valid, how often the
// front-end actually served at that age, and what it cost in PLT.
struct StaleBucketReport {
  sim::Time age = 0;
  double persistence = 0;     // mean still-valid URL fraction at this age
  std::int64_t serves = 0;    // macro serves mapped to this bucket (all levels)
  double mean_micro_plt_s = 0;  // table mean over devices x pages
};

struct DeploymentReport {
  int pages = 0;
  std::vector<std::string> device_names;
  double origin_link_mbps = 0;
  sim::Time effective_recrawl = 0;
  // Traffic window actually simulated (population.window after the
  // VROOM_DEPLOY_WINDOW_HOURS override).
  sim::Time window = 0;
  MicroTable micro;
  std::vector<LevelReport> levels;
  std::vector<StaleBucketReport> stale_buckets;  // ages, fresh first
  // Total arrivals replayed across all levels (deterministic).
  std::int64_t macro_arrivals = 0;
  // Wall-clock seconds of the macro passes / the warm-revisit column —
  // wall-plane throughput facts for bench reporting (stderr only); never
  // part of any byte-identity check.
  double macro_wall_seconds = 0;
  double warm_wall_seconds = 0;
};

// Runs the full scenario: micro table on the fleet, then the warm column
// and one macro pass per offered level on the same worker pool. Honours
// VROOM_DEPLOY_ARRIVALS (cap arrivals per level) and
// VROOM_DEPLOY_WINDOW_HOURS (override cfg.population.window) for quick
// runs; the caller sizes the corpus (apply VROOM_BENCH_PAGES via
// harness::effective_page_count when constructing it, as the example does).
// Refuses VROOM_SHARD / VROOM_SHARD_DIR with a hard diagnostic: the
// embedded micro SweepPlan would shard by cell while the warm column and
// macro passes silently re-ran whole in every shard process.
DeploymentReport run_deployment(const web::Corpus& corpus,
                                const ScenarioConfig& cfg);

}  // namespace vroom::deploy
