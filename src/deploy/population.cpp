#include "deploy/population.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "sim/random.h"

namespace vroom::deploy {

namespace {

// Zipf-style sampler over n ranks with exponent s: weight(r) = 1/(r+1)^s.
// Rng::weighted is O(n) per draw; at population scale (10^4 users, 10^5
// arrivals) that is quadratic, so precompute cumulative weights once and
// binary-search per draw.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) {
    const std::vector<double> w = zipf_weights(n, s);
    cum_.reserve(w.size());
    double total = 0.0;
    for (const double v : w) {
      total += v;
      cum_.push_back(total);
    }
  }

  int draw(sim::Rng& rng) const {
    const double u = rng.uniform(0.0, cum_.back());
    const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
    return static_cast<int>(it - cum_.begin());
  }

 private:
  std::vector<double> cum_;
};

}  // namespace

std::vector<double> zipf_weights(int n, double s) {
  std::vector<double> w(static_cast<std::size_t>(std::max(0, n)));
  for (int r = 0; r < n; ++r) {
    w[static_cast<std::size_t>(r)] =
        1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  return w;
}

std::vector<DeviceShare> default_device_mix() {
  return {
      {web::nexus6(), 0.45},
      {web::nexus5(), 0.30},
      {web::nexus10(), 0.25},
  };
}

std::vector<double> default_diurnal_profile() {
  // Hand-shaped weekday curve: overnight trough (hours 1-5), morning ramp,
  // midday plateau, evening peak around hour 20. Mean is exactly 1.0 so the
  // configured mean arrival rate is the true time average.
  std::vector<double> p = {
      0.45, 0.30, 0.22, 0.18, 0.18, 0.25,  // 00-05
      0.45, 0.75, 1.05, 1.20, 1.25, 1.30,  // 06-11
      1.35, 1.30, 1.25, 1.20, 1.25, 1.35,  // 12-17
      1.55, 1.75, 1.85, 1.65, 1.20, 0.72,  // 18-23
  };
  double sum = 0.0;
  for (double v : p) sum += v;
  for (double& v : p) v *= static_cast<double>(p.size()) / sum;
  return p;
}

double diurnal_multiplier(const PopulationConfig& cfg, sim::Time t) {
  const std::vector<double> profile =
      cfg.diurnal.empty() ? default_diurnal_profile() : cfg.diurnal;
  if (profile.empty()) return 1.0;
  const auto hour = static_cast<std::size_t>((t / sim::hours(1)) %
                                             static_cast<sim::Time>(
                                                 profile.size()));
  return profile[hour];
}

std::vector<Arrival> build_population(int num_pages,
                                      const PopulationConfig& cfg,
                                      std::uint64_t seed,
                                      int max_arrivals) {
  std::vector<Arrival> arrivals;
  if (num_pages <= 0 || cfg.users <= 0 || cfg.window <= 0 ||
      cfg.mean_arrivals_per_sec <= 0.0) {
    return arrivals;
  }

  const std::vector<double> profile =
      cfg.diurnal.empty() ? default_diurnal_profile() : cfg.diurnal;
  double max_mult = 1.0;
  for (double v : profile) max_mult = std::max(max_mult, v);

  const std::vector<DeviceShare> mix =
      cfg.device_mix.empty() ? default_device_mix() : cfg.device_mix;
  std::vector<double> mix_weights;
  mix_weights.reserve(mix.size());
  for (const DeviceShare& share : mix) mix_weights.push_back(share.weight);

  // Independent streams per concern, so e.g. changing how devices are
  // assigned never shifts which users arrive when.
  const std::uint64_t root = sim::derive_seed(seed, "deploy:population");
  sim::Rng arrival_rng(root, "arrivals");
  sim::Rng who_rng(root, "users");
  sim::Rng page_rng(root, "pages");

  const ZipfSampler user_sampler(cfg.users, cfg.user_skew);
  const ZipfSampler page_sampler(num_pages, cfg.page_skew);

  // Per-user traits are a pure function of (root, user): assigned lazily on
  // first arrival, identical regardless of arrival order or truncation.
  struct UserTraits {
    std::uint8_t device;
    bool cookie;
  };
  std::unordered_map<std::uint32_t, UserTraits> traits;
  const auto traits_for = [&](std::uint32_t user) {
    auto it = traits.find(user);
    if (it != traits.end()) return it->second;
    sim::Rng r(sim::derive_seed(root, static_cast<std::uint64_t>(user)));
    UserTraits t;
    t.device = static_cast<std::uint8_t>(r.weighted(mix_weights));
    t.cookie = r.chance(cfg.cookie_frac);
    traits.emplace(user, t);
    return t;
  };

  // Warm-cache bookkeeping: last visit time per (user, page).
  std::unordered_map<std::uint64_t, sim::Time> last_visit;

  // Thinning (Lewis-Shedler): candidates from a homogeneous process at the
  // peak rate, accepted with probability rate(t)/peak.
  const double peak_rate = cfg.mean_arrivals_per_sec * max_mult;
  sim::Time t = 0;
  while (true) {
    t += sim::from_seconds(arrival_rng.exponential(1.0 / peak_rate));
    if (t >= cfg.window) break;
    if (!arrival_rng.chance(diurnal_multiplier(cfg, t) / max_mult)) continue;

    Arrival a;
    a.at = t;
    a.user = static_cast<std::uint32_t>(user_sampler.draw(who_rng));
    a.page = static_cast<std::uint16_t>(page_sampler.draw(page_rng));
    const UserTraits ut = traits_for(a.user);
    a.device = ut.device;
    a.cookie = ut.cookie;

    const std::uint64_t visit_key =
        (static_cast<std::uint64_t>(a.user) << 16) | a.page;
    const auto seen = last_visit.find(visit_key);
    a.warm = seen != last_visit.end() && t - seen->second <= cfg.warm_ttl;
    last_visit[visit_key] = t;

    arrivals.push_back(a);
    if (max_arrivals > 0 &&
        arrivals.size() >= static_cast<std::size_t>(max_arrivals)) {
      break;
    }
  }
  return arrivals;
}

}  // namespace vroom::deploy
