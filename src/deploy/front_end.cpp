#include "deploy/front_end.h"

#include <algorithm>
#include <cstring>

#include "server/replay_store.h"
#include "sim/arena.h"
#include "sim/random.h"
#include "web/page_instance.h"

namespace vroom::deploy {

const char* hint_source_name(HintSource s) {
  switch (s) {
    case HintSource::Fresh: return "fresh";
    case HintSource::Cached: return "cached";
    case HintSource::Stale: return "stale";
    case HintSource::None: return "none";
  }
  return "?";
}

FrontEnd::FrontEnd(const web::Corpus& corpus, FrontEndConfig config,
                   std::uint64_t seed)
    : corpus_(corpus), config_(std::move(config)), seed_(seed) {
  // A front-end resolves from its crawls only — it never renders the page
  // at serve time, so the online modes make no sense here.
  config_.provider.mode = core::ResolutionMode::OfflineOnly;
  config_.provider.hint_age = 0;  // staleness is modelled by snapshot time
  worker_busy_until_.assign(
      static_cast<std::size_t>(std::max(1, config_.gen_workers)), 0);
}

sim::Time FrontEnd::effective_recrawl_period() const {
  const auto pages = static_cast<sim::Time>(corpus_.size());
  return std::max(config_.recrawl_period, pages * config_.crawl_cost);
}

sim::Time FrontEnd::last_crawl(sim::Time now, int page_index) const {
  // One crawler cycles the corpus round-robin, spending crawl_cost per
  // page; it has been running since before the window, so every page has a
  // well-defined latest crawl (possibly at negative virtual time) and the
  // window starts with staleness already spread over [0, period).
  const sim::Time period = effective_recrawl_period();
  const sim::Time phase = static_cast<sim::Time>(page_index) *
                          config_.crawl_cost;
  // Largest phase + k*period <= now, for any integer k (floor division
  // that is correct for negative numerators too).
  sim::Time k = (now - phase) / period;
  if ((now - phase) % period < 0) --k;
  return phase + k * period;
}

int FrontEnd::generate(int page_index, const web::DeviceProfile& device,
                       sim::Time crawl_t) {
  ++stats_.generations;
  // Memo key over everything the resolution can observe: the page, the
  // snapshot time, and the device's full identity (name and cpu_scale
  // included — cheaper to hash than to prove they cannot matter).
  std::uint64_t cpu_bits = 0;
  static_assert(sizeof cpu_bits == sizeof device.cpu_scale);
  std::memcpy(&cpu_bits, &device.cpu_scale, sizeof cpu_bits);
  std::uint64_t fingerprint = sim::hash64(device.name);
  fingerprint = sim::derive_seed(
      fingerprint, static_cast<std::uint64_t>(device.screen * 9 +
                                              device.dpi * 3 + device.width));
  fingerprint = sim::derive_seed(fingerprint, cpu_bits);
  const std::uint64_t memo_key = sim::derive_seed(
      sim::derive_seed(static_cast<std::uint64_t>(page_index),
                       static_cast<std::uint64_t>(crawl_t)),
      fingerprint);
  if (const auto it = memo_.find(memo_key); it != memo_.end()) {
    return it->second;
  }
  const web::PageModel& model =
      corpus_.page(static_cast<std::size_t>(page_index));
  // The crawl's load identity: wall time of the snapshot, the arrival's
  // rendering class (the front-end emulates the client device, §4.1.2),
  // no cookie, and a nonce derived from (seed, page, snapshot) so repeat
  // generations of the same snapshot see the same instance.
  web::LoadIdentity id;
  id.wall_time = config_.day0 + crawl_t;
  id.device = device;
  id.user = 0;
  id.nonce = sim::derive_seed(
      sim::derive_seed(seed_, "deploy:crawl"),
      sim::derive_seed(static_cast<std::uint64_t>(model.page_id()),
                       static_cast<std::uint64_t>(crawl_t)));
  // Crawl world on the pooled per-thread arena: built, advised on, and
  // discarded — the same per-load lifetime as a live load's world.
  sim::PooledArena arena;
  const web::PageInstance crawl(model, id, arena.get());
  const server::ReplayStore store(crawl);
  core::VroomProvider provider(store, config_.provider);

  http::Request root;
  root.url = crawl.resource(0).url;
  root.url_id = 0;
  root.is_document = true;
  root.priority = 100;
  root.device = device;
  const server::DependencyAdvice advice =
      provider.advise(model.first_party(), root);
  const int hints = static_cast<int>(advice.hints.hints.size());
  memo_.emplace(memo_key, hints);
  return hints;
}

sim::Time FrontEnd::charge_worker(sim::Time now, sim::Time cost) {
  auto it = std::min_element(worker_busy_until_.begin(),
                             worker_busy_until_.end());
  const sim::Time wait = std::max<sim::Time>(0, *it - now);
  *it = now + wait + cost;
  return wait;
}

FrontEnd::CacheEntry* FrontEnd::cache_find(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return &*it->second;
}

void FrontEnd::cache_insert(CacheEntry entry) {
  const auto it = index_.find(entry.key);
  if (it != index_.end()) {
    *it->second = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(entry);
  index_[entry.key] = lru_.begin();
  while (lru_.size() >
         static_cast<std::size_t>(std::max(1, config_.hint_cache_entries))) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

ServeDecision FrontEnd::serve(sim::Time now, int page_index,
                              const web::DeviceProfile& device,
                              trace::Recorder* recorder) {
  ++stats_.serves;
  const sim::Time snapshot = last_crawl(now, page_index);
  // Hints depend on the rendering class, so the cache is keyed by it too.
  const std::uint64_t key = sim::derive_seed(
      static_cast<std::uint64_t>(page_index),
      static_cast<std::uint64_t>(device.screen * 9 + device.dpi * 3 +
                                 device.width));
  const std::string page_label =
      corpus_.page(static_cast<std::size_t>(page_index)).first_party();
  const auto trace_serve = [&](const char* name, const ServeDecision& d) {
    if (recorder == nullptr) return;
    recorder->instant(
        trace::Layer::Deploy, "frontend", "serve", name,
        {trace::arg("page", page_label),
         trace::arg("source", hint_source_name(d.source)),
         trace::arg("staleness_ms", sim::to_ms(d.staleness)),
         trace::arg("wait_ms", sim::to_ms(d.queue_wait))});
  };

  ServeDecision d;
  if (CacheEntry* entry = cache_find(key)) {
    ++stats_.cache_hits;
    d.cache_hit = true;
    d.hints = entry->hints;
    d.staleness = now - entry->snapshot;
    if (entry->snapshot >= snapshot) {
      d.source = HintSource::Cached;
      trace_serve("fe.cache_hit", d);
    } else {
      // Stale-while-revalidate: serve the old hints immediately and charge
      // a background regeneration so future serves catch up. Under load
      // the workers fall behind and stale serves dominate — the effect the
      // deployment report prices.
      d.source = HintSource::Stale;
      ++stats_.stale_serves;
      const int hints = generate(page_index, device, snapshot);
      charge_worker(now, config_.gen_base_cost +
                             static_cast<sim::Time>(hints) *
                                 config_.gen_per_hint_cost);
      entry->snapshot = snapshot;
      entry->hints = hints;
      trace_serve("fe.stale_serve", d);
      if (recorder != nullptr) {
        recorder->instant(trace::Layer::Deploy, "frontend", "crawler",
                          "fe.recrawl",
                          {trace::arg("page", page_label),
                           trace::arg("hints", hints)});
      }
    }
    stats_.total_staleness += d.staleness;
  } else {
    ++stats_.cache_misses;
    // Synchronous generation: the page view blocks on the hint path. If
    // the worker queue alone already blows the deadline, ship hintless —
    // a front-end must degrade to "no Vroom", never to "slower page".
    const sim::Time queue =
        std::max<sim::Time>(0, *std::min_element(worker_busy_until_.begin(),
                                                 worker_busy_until_.end()) -
                                   now);
    if (queue > config_.serve_deadline) {
      d.source = HintSource::None;
      ++stats_.hintless_serves;
      trace_serve("fe.cache_miss", d);
    } else {
      const int hints = generate(page_index, device, snapshot);
      const sim::Time cost = config_.gen_base_cost +
                             static_cast<sim::Time>(hints) *
                                 config_.gen_per_hint_cost;
      const sim::Time wait = charge_worker(now, cost) + cost;
      if (wait > config_.serve_deadline) {
        // Generation ran (the entry is still cached for later arrivals)
        // but this page view could not wait for it.
        d.source = HintSource::None;
        ++stats_.hintless_serves;
      } else {
        d.source = HintSource::Fresh;
        d.queue_wait = wait;
        d.hints = hints;
        d.staleness = now - snapshot;
        stats_.total_staleness += d.staleness;
      }
      cache_insert(CacheEntry{key, snapshot, hints});
      trace_serve("fe.cache_miss", d);
      if (recorder != nullptr) {
        recorder->instant(trace::Layer::Deploy, "frontend", "crawler",
                          "fe.recrawl",
                          {trace::arg("page", page_label),
                           trace::arg("hints", hints)});
      }
    }
  }
  stats_.total_queue_wait += d.queue_wait;
  return d;
}

}  // namespace vroom::deploy
