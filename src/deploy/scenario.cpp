#include "deploy/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "browser/cache.h"
#include "core/accuracy.h"
#include "fleet/fleet.h"
#include "harness/env.h"
#include "harness/result_cache.h"
#include "harness/stats.h"
#include "net/link.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "sim/arena.h"
#include "sim/event_loop.h"
#include "sim/random.h"
#include "trace/trace.h"
#include "web/url.h"

namespace vroom::deploy {

namespace {

// Zipf page-popularity weights, matching population.cpp's page sampler —
// the macro and the link auto-sizing must agree on which origins are hot.
std::vector<double> page_weights(int pages, double skew) {
  std::vector<double> w(static_cast<std::size_t>(pages));
  double total = 0.0;
  for (int p = 0; p < pages; ++p) {
    w[static_cast<std::size_t>(p)] =
        1.0 / std::pow(static_cast<double>(p + 1), skew);
    total += w[static_cast<std::size_t>(p)];
  }
  for (double& v : w) v /= total;
  return w;
}

sim::Time capped(sim::Time plt, sim::Time timeout) {
  return plt == sim::kNever ? timeout : std::min(plt, timeout);
}

// Per-page traffic profile: bytes per origin domain, plus the fraction of
// those bytes a warm (primed-cache) revisit still fetches.
struct PageProfile {
  std::vector<std::pair<std::string, std::int64_t>> domain_bytes;
  std::int64_t total_bytes = 0;
  double warm_bytes_frac = 1.0;
};

// Per-arrival macro metrics (DESIGN.md §12). The macro pass is serial and a
// pure function of the simulated world, so everything recorded here lives
// on the virtual plane and survives the cross-VROOM_JOBS byte-identity
// check on the export.
void record_arrival_metrics(sim::Time origin_wait, sim::Time fe_wait) {
  if (!obs::metrics_enabled()) return;
  static obs::Histogram& origin_wait_us =
      obs::registry().histogram("deploy.macro.origin_wait_us");
  static obs::Histogram& fe_wait_us =
      obs::registry().histogram("deploy.frontend.queue_wait_us");
  static obs::Gauge& max_wait =
      obs::registry().gauge("deploy.links.max_wait_us");
  origin_wait_us.record(origin_wait);
  fe_wait_us.record(fe_wait);
  max_wait.set_max(origin_wait);
}

}  // namespace

int MicroTable::bucket_for(HintSource source, sim::Time staleness) const {
  if (source == HintSource::None) return hintless_bucket();
  int best = 0;
  sim::Time best_dist = sim::kNever;
  for (std::size_t i = 0; i < ages.size(); ++i) {
    const sim::Time dist = std::llabs(staleness - ages[i]);
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

DeploymentReport run_deployment(const web::Corpus& corpus,
                                const ScenarioConfig& cfg) {
  DeploymentReport report;
  const int pages = static_cast<int>(corpus.size());
  report.pages = pages;
  if (pages == 0 || cfg.offered_levels.empty()) return report;

  const harness::Env env = harness::Env::from_environment();
  PopulationConfig pop = cfg.population;
  if (env.deploy_window_hours > 0) {
    pop.window = sim::hours(env.deploy_window_hours);
  }
  report.window = pop.window;
  const std::vector<DeviceShare> mix =
      pop.device_mix.empty() ? default_device_mix() : pop.device_mix;
  pop.device_mix = mix;
  for (const DeviceShare& share : mix) {
    report.device_names.push_back(share.device.name);
  }

  // --- Micro: the (device x hint condition) PLT table, on the fleet. ---
  MicroTable& micro = report.micro;
  micro.ages.push_back(0);
  for (sim::Time age : cfg.stale_ages) micro.ages.push_back(age);

  std::vector<baselines::Strategy> conditions;
  for (sim::Time age : micro.ages) {
    conditions.push_back(baselines::vroom_stale_hints(age));
  }
  conditions.push_back(baselines::http2_baseline());  // hintless serves

  fleet::SweepPlan plan;
  for (std::size_t d = 0; d < mix.size(); ++d) {
    for (std::size_t c = 0; c < conditions.size(); ++c) {
      harness::RunOptions opt = cfg.micro;
      opt.seed = cfg.seed;
      opt.device = mix[d].device;
      opt.loads_per_page = 1;
      plan.add(corpus, conditions[c], opt,
               "deploy:" + mix[d].device.name + ":" + conditions[c].name);
    }
  }
  const std::vector<harness::CorpusResult> cells = fleet::run_plan(plan);

  const int buckets = static_cast<int>(conditions.size());
  micro.plt.assign(mix.size(), {});
  for (std::size_t d = 0; d < mix.size(); ++d) {
    micro.plt[d].assign(static_cast<std::size_t>(buckets), {});
    for (int c = 0; c < buckets; ++c) {
      const harness::CorpusResult& cell =
          cells[d * static_cast<std::size_t>(buckets) +
                static_cast<std::size_t>(c)];
      auto& col = micro.plt[d][static_cast<std::size_t>(c)];
      col.reserve(cell.loads.size());
      for (const browser::LoadResult& load : cell.loads) {
        col.push_back(capped(load.plt, cfg.micro.timeout));
      }
    }
  }

  // Warm revisit column (Figure 20 style: prime, wait, revisit). Serial by
  // nature — the browser cache's state depends on load order.
  const baselines::Strategy fresh = conditions[0];
  micro.warm_plt.assign(mix.size(), {});
  std::vector<double> warm_bytes_frac(static_cast<std::size_t>(pages), 1.0);
  for (std::size_t d = 0; d < mix.size(); ++d) {
    micro.warm_plt[d].reserve(static_cast<std::size_t>(pages));
    for (int p = 0; p < pages; ++p) {
      const web::PageModel& page = corpus.page(static_cast<std::size_t>(p));
      browser::Cache cache;
      harness::RunOptions opt = cfg.micro;
      opt.seed = cfg.seed;
      opt.device = mix[d].device;
      opt.cache = &cache;
      const browser::LoadResult cold = harness::run_page_load(
          page, fresh, opt,
          harness::derive_load_nonce(cfg.seed, page.page_id(), 0));
      opt.when += cfg.revisit_gap;
      const browser::LoadResult warm = harness::run_page_load(
          page, fresh, opt,
          harness::derive_load_nonce(cfg.seed, page.page_id(), 1));
      micro.warm_plt[d].push_back(capped(warm.plt, cfg.micro.timeout));
      if (d == 0 && cold.bytes_fetched > 0) {
        warm_bytes_frac[static_cast<std::size_t>(p)] =
            static_cast<double>(warm.bytes_fetched) /
            static_cast<double>(cold.bytes_fetched);
      }
    }
  }

  // --- Per-page origin traffic profiles (for link contention). ---
  std::vector<PageProfile> profiles(static_cast<std::size_t>(pages));
  for (int p = 0; p < pages; ++p) {
    const web::PageModel& page = corpus.page(static_cast<std::size_t>(p));
    web::LoadIdentity id;
    id.wall_time = cfg.micro.when;
    id.device = mix[0].device;
    id.user = 0;
    id.nonce = harness::derive_load_nonce(cfg.seed, page.page_id(), 0);
    // Profile world on the pooled arena; reset-and-reused per page.
    sim::PooledArena arena;
    const web::PageInstance inst(page, id, arena.get());
    std::map<std::string, std::int64_t> by_domain;  // ordered => determinism
    for (const web::InstanceResource& r : inst.resources()) {
      by_domain[web::url_domain(r.url)] += r.size;
    }
    PageProfile& prof = profiles[static_cast<std::size_t>(p)];
    prof.warm_bytes_frac = warm_bytes_frac[static_cast<std::size_t>(p)];
    for (const auto& [domain, bytes] : by_domain) {
      prof.domain_bytes.emplace_back(domain, bytes);
      prof.total_bytes += bytes;
    }
  }

  // --- Origin link rate: configured, or auto-sized to cross capacity. ---
  const std::vector<double> weights = page_weights(pages, pop.page_skew);
  double link_bps = cfg.origin_link_bps;
  if (link_bps <= 0) {
    const double top_level =
        *std::max_element(cfg.offered_levels.begin(),
                          cfg.offered_levels.end());
    std::map<std::string, double> demand;  // bytes/sec per origin
    for (int p = 0; p < pages; ++p) {
      for (const auto& [domain, bytes] :
           profiles[static_cast<std::size_t>(p)].domain_bytes) {
        demand[domain] += top_level * weights[static_cast<std::size_t>(p)] *
                          static_cast<double>(bytes);
      }
    }
    double hottest = 0;
    for (const auto& [domain, bps] : demand) {
      hottest = std::max(hottest, bps);
    }
    link_bps = std::max(1.0, cfg.origin_capacity_frac * hottest * 8.0);
  }
  report.origin_link_mbps = link_bps / 1e6;

  // --- Macro: one serial contention pass per offered level. ---
  std::vector<std::int64_t> bucket_serves(
      static_cast<std::size_t>(buckets), 0);

  for (std::size_t li = 0; li < cfg.offered_levels.size(); ++li) {
    PopulationConfig level_pop = pop;
    level_pop.mean_arrivals_per_sec = cfg.offered_levels[li];
    const std::vector<Arrival> arrivals = build_population(
        pages, level_pop,
        sim::derive_seed(cfg.seed, "deploy:level-" + std::to_string(li)),
        env.deploy_arrivals);

    sim::EventLoop loop;
    std::unique_ptr<trace::Recorder> recorder;
    if (cfg.trace_sink) recorder = std::make_unique<trace::Recorder>(loop);

    FrontEnd fe(corpus, cfg.front_end,
                sim::derive_seed(cfg.seed, "deploy:frontend"));
    std::map<std::string, std::unique_ptr<net::Link>> links;
    const auto link_for = [&](const std::string& domain) -> net::Link& {
      auto it = links.find(domain);
      if (it == links.end()) {
        it = links
                 .emplace(domain, std::make_unique<net::Link>(
                                      loop, link_bps, "origin"))
                 .first;
      }
      return *it->second;
    };

    LevelReport level;
    level.offered_per_sec = cfg.offered_levels[li];
    level.arrivals = static_cast<std::int64_t>(arrivals.size());
    double origin_wait_sum_s = 0;
    // This level's PLTs through the shared log-linear bucketing — the same
    // boundaries every metrics export uses. Recorded unconditionally: the
    // histogram-derived report percentiles are deterministic level facts,
    // not opt-in telemetry.
    obs::Histogram level_hist;

    for (const Arrival& a : arrivals) {
      loop.schedule_at(a.at, [&, a] {
        const sim::Time now = loop.now();
        const web::DeviceProfile& device = mix[a.device].device;
        const ServeDecision d =
            fe.serve(now, a.page, device, recorder.get());

        const int bucket = micro.bucket_for(d.source, d.staleness);
        sim::Time base;
        if (a.warm) {
          base = micro.warm_plt[a.device][static_cast<std::size_t>(a.page)];
        } else {
          base = micro.plt[a.device][static_cast<std::size_t>(bucket)]
                          [static_cast<std::size_t>(a.page)];
        }
        if (d.source != HintSource::None) {
          bucket_serves[static_cast<std::size_t>(bucket)] += 1;
        }

        // Every origin of the page ships its bytes through that origin's
        // shared access link; the page stalls for the worst queue it hits.
        const PageProfile& prof = profiles[static_cast<std::size_t>(a.page)];
        sim::Time origin_wait = 0;
        for (const auto& [domain, bytes] : prof.domain_bytes) {
          net::Link& link = link_for(domain);
          origin_wait =
              std::max(origin_wait,
                       std::max<sim::Time>(0, link.busy_until() - now));
          const auto tx_bytes = static_cast<std::int64_t>(
              a.warm ? static_cast<double>(bytes) * prof.warm_bytes_frac
                     : static_cast<double>(bytes));
          if (tx_bytes > 0) {
            // Emit the transmission's full FIFO story for the macro-trace
            // auditor: when it joined the queue, when the link actually
            // started it, and how long it held the link.
            const sim::Time start = std::max(now, link.busy_until());
            const sim::Time tx = link.tx_time(tx_bytes);
            link.transmit(tx_bytes, [] {});
            if (recorder != nullptr) {
              recorder->instant(
                  trace::Layer::Deploy, domain, "tx", "deploy.origin_tx",
                  {trace::arg("enqueue_us", now),
                   trace::arg("start_us", start), trace::arg("tx_us", tx),
                   trace::arg("bytes", tx_bytes)});
            }
          }
        }

        const sim::Time plt =
            capped(base + d.queue_wait + origin_wait, cfg.micro.timeout);
        if (plt >= cfg.micro.timeout) level.timeouts += 1;
        level.plt_seconds.push_back(sim::to_seconds(plt));
        level_hist.record(plt);
        record_arrival_metrics(origin_wait, d.queue_wait);
        // A user gives up at the timeout, so the experienced wait caps there
        // too — otherwise day-long overload queues dominate the mean.
        origin_wait_sum_s +=
            sim::to_seconds(std::min(origin_wait, cfg.micro.timeout));
        if (recorder != nullptr) {
          recorder->instant(
              trace::Layer::Deploy, "population", "arrivals",
              "deploy.page_view",
              {trace::arg("page", static_cast<int>(a.page)),
               trace::arg("plt_s", sim::to_seconds(plt)),
               trace::arg("origin_wait_ms", sim::to_ms(origin_wait)),
               trace::arg("source", hint_source_name(d.source)),
               trace::arg("warm", a.warm ? 1 : 0)});
        }
      });
    }
    loop.run();

    if (recorder != nullptr) {
      // One closing summary per origin, from the link's own accounting —
      // the auditor cross-checks it against the per-transmission events.
      // `links` is an ordered map, so emission order is deterministic.
      for (const auto& [domain, link] : links) {
        recorder->instant(trace::Layer::Deploy, domain, "summary",
                          "deploy.link_summary",
                          {trace::arg("busy_us", link->busy_time()),
                           trace::arg("bytes", link->total_bytes()),
                           trace::arg("now_us", loop.now())});
      }
    }

    // Truncated streams (VROOM_DEPLOY_ARRIVALS) end early; rate math uses
    // the time actually covered, not the configured window.
    const bool truncated =
        env.deploy_arrivals > 0 &&
        level.arrivals == static_cast<std::int64_t>(env.deploy_arrivals);
    const double window_s = sim::to_seconds(
        truncated && !arrivals.empty() ? arrivals.back().at
                                       : level_pop.window);
    const std::int64_t completed = level.arrivals - level.timeouts;
    level.served_per_sec =
        window_s > 0 ? static_cast<double>(completed) / window_s : 0.0;
    // One sort serves both exact percentiles (values unchanged: same
    // interpolation as the old per-call sorts); the histogram read-back
    // answers within one log-linear bucket width of them.
    std::vector<double> sorted_plt = level.plt_seconds;
    std::sort(sorted_plt.begin(), sorted_plt.end());
    level.p50_plt_s = harness::percentile_sorted(sorted_plt, 50);
    level.p99_plt_s = harness::percentile_sorted(sorted_plt, 99);
    level.hist_p50_plt_s = level_hist.percentile(50) / 1e6;
    level.hist_p99_plt_s = level_hist.percentile(99) / 1e6;
    level.mean_origin_wait_s =
        level.arrivals > 0
            ? origin_wait_sum_s / static_cast<double>(level.arrivals)
            : 0.0;
    const FrontEndStats& fs = fe.stats();
    level.front_end = fs;
    level.hit_ratio = fs.hit_ratio();
    if (fs.serves > 0) {
      level.stale_frac = static_cast<double>(fs.stale_serves) /
                         static_cast<double>(fs.serves);
      level.hintless_frac = static_cast<double>(fs.hintless_serves) /
                            static_cast<double>(fs.serves);
      level.mean_fe_wait_ms =
          sim::to_ms(fs.total_queue_wait) / static_cast<double>(fs.serves);
    }
    const std::int64_t hinted = fs.serves - fs.hintless_serves;
    if (hinted > 0) {
      level.mean_staleness_s = sim::to_seconds(fs.total_staleness) /
                               static_cast<double>(hinted);
    }
    for (const auto& [domain, link] : links) {
      level.max_link_utilization =
          std::max(level.max_link_utilization, link->utilization());
    }
    if (obs::metrics_enabled()) {
      obs::Registry& reg = obs::registry();
      reg.histogram("deploy.macro.plt_us").merge(level_hist);
      reg.counter("deploy.macro.arrivals").add(level.arrivals);
      reg.counter("deploy.macro.timeouts").add(level.timeouts);
      reg.counter("deploy.frontend.cache_hits").add(fs.cache_hits);
      reg.counter("deploy.frontend.cache_misses").add(fs.cache_misses);
      reg.counter("deploy.frontend.stale_serves").add(fs.stale_serves);
      reg.counter("deploy.frontend.hintless_serves")
          .add(fs.hintless_serves);
      for (const auto& [domain, link] : links) {
        reg.histogram("deploy.links.utilization_permille")
            .record(static_cast<std::int64_t>(link->utilization() * 1000.0 +
                                              0.5));
      }
    }
    report.levels.push_back(std::move(level));
    if (cfg.trace_sink && recorder != nullptr) {
      cfg.trace_sink(static_cast<int>(li), *recorder);
    }
  }

  report.effective_recrawl =
      FrontEnd(corpus, cfg.front_end, cfg.seed).effective_recrawl_period();

  // --- Staleness priced against content persistence (Figure 7's axis). ---
  for (std::size_t b = 0; b < micro.ages.size(); ++b) {
    StaleBucketReport row;
    row.age = micro.ages[b];
    double persistence = 0;
    for (int p = 0; p < pages; ++p) {
      persistence += core::persistence_fraction(
          corpus.page(static_cast<std::size_t>(p)), cfg.micro.when,
          mix[0].device, /*user=*/1, row.age);
    }
    row.persistence = persistence / static_cast<double>(pages);
    row.serves = bucket_serves[b];
    double sum = 0;
    std::int64_t n = 0;
    for (std::size_t d = 0; d < mix.size(); ++d) {
      for (const sim::Time plt : micro.plt[d][b]) {
        sum += sim::to_seconds(plt);
        ++n;
      }
    }
    row.mean_micro_plt_s = n > 0 ? sum / static_cast<double>(n) : 0.0;
    report.stale_buckets.push_back(row);
  }

  // Re-export with the macro metrics folded in (the fleet's mid-run export
  // only covered the micro pass) and write the scenario's own provenance
  // record next to it.
  if (env.metrics_enabled()) {
    obs::PhaseTimer export_phase(obs::Phase::Export);
    obs::registry().export_to(env.metrics_dir);
    const auto hex = [](std::uint64_t v) {
      char buf[17];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(v));
      return std::string(buf);
    };
    char mbps[64];
    std::snprintf(mbps, sizeof mbps, "%.17g", report.origin_link_mbps);
    obs::Manifest manifest;
    manifest.set("schema", std::int64_t{1});
    manifest.set("kind", "deploy_scenario");
    manifest.set("seed", static_cast<std::uint64_t>(cfg.seed));
    manifest.set("pages", static_cast<std::int64_t>(pages));
    manifest.set("devices", static_cast<std::int64_t>(mix.size()));
    manifest.set("levels",
                 static_cast<std::int64_t>(cfg.offered_levels.size()));
    manifest.set("window_us", static_cast<std::int64_t>(report.window));
    manifest.set("origin_link_mbps", std::string(mbps));
    manifest.set("env.deploy_arrivals",
                 static_cast<std::int64_t>(env.deploy_arrivals));
    manifest.set("env.deploy_window_hours",
                 static_cast<std::int64_t>(env.deploy_window_hours));
    manifest.set("result_cache_salt_version",
                 static_cast<std::int64_t>(harness::kResultCacheSaltVersion));
    manifest.set("digest.metrics_prom",
                 hex(obs::registry().digest(obs::Plane::Virtual)));
    manifest.set("digest.wall_sidecar_prom",
                 hex(obs::registry().digest(obs::Plane::Wall)));
    manifest.write(env.metrics_dir + "/deploy_manifest.json");
  }

  return report;
}

}  // namespace vroom::deploy
