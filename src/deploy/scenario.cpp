#include "deploy/scenario.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <memory_resource>
#include <new>
#include <string>
#include <unordered_map>
#include <utility>

#include "browser/cache.h"
#include "core/accuracy.h"
#include "fleet/fleet.h"
#include "harness/env.h"
#include "harness/result_cache.h"
#include "harness/stats.h"
#include "net/link.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "sim/arena.h"
#include "sim/event_loop.h"
#include "sim/random.h"
#include "trace/trace.h"
#include "web/url.h"

namespace vroom::deploy {

namespace {

[[noreturn]] void fatal(const std::string& message) {
  std::fprintf(stderr, "[deploy] fatal: %s\n", message.c_str());
  std::abort();
}

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Zipf page-popularity weights, normalized; built from the same
// deploy::zipf_weights the population's page sampler uses, so the macro
// and the link auto-sizing agree on which origins are hot by construction.
std::vector<double> page_weights(int pages, double skew) {
  std::vector<double> w = zipf_weights(pages, skew);
  double total = 0.0;
  for (const double v : w) total += v;
  for (double& v : w) v /= total;
  return w;
}

sim::Time capped(sim::Time plt, sim::Time timeout) {
  return plt == sim::kNever ? timeout : std::min(plt, timeout);
}

// Per-page traffic profile: bytes per origin domain, plus the fraction of
// those bytes a warm (primed-cache) revisit still fetches. Domains are
// dense scenario-wide ids (see DomainTable) so the per-arrival hot loop
// indexes a flat link table instead of probing a string map; within a page
// they stay in domain-string order — the per-arrival loop iterates them,
// so that order is part of the frozen trace byte stream.
struct PageProfile {
  std::vector<std::pair<std::uint32_t, std::int64_t>> domain_bytes;
  std::int64_t total_bytes = 0;
  double warm_bytes_frac = 1.0;
};

// Scenario-wide dense domain ids. Assignment order is first touch over
// (page order, domain-string order within page) — deterministic, and
// internal only: nothing exported mentions an id, names[] recovers the
// label wherever traces need one.
struct DomainTable {
  std::vector<std::string> names;
  std::unordered_map<std::string, std::uint32_t> ids;

  std::uint32_t intern(const std::string& domain) {
    const auto it = ids.find(domain);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(names.size());
    names.push_back(domain);
    ids.emplace(domain, id);
    return id;
  }
};

// Per-arrival macro metrics (DESIGN.md §12). Everything recorded here
// lives on the virtual plane and is a pure function of the simulated
// world; histogram records and the gauge max commute, so concurrent level
// passes leave the export byte-identical to the serial order.
void record_arrival_metrics(sim::Time origin_wait, sim::Time fe_wait) {
  if (!obs::metrics_enabled()) return;
  static obs::Histogram& origin_wait_us =
      obs::registry().histogram("deploy.macro.origin_wait_us");
  static obs::Histogram& fe_wait_us =
      obs::registry().histogram("deploy.frontend.queue_wait_us");
  static obs::Gauge& max_wait =
      obs::registry().gauge("deploy.links.max_wait_us");
  origin_wait_us.record(origin_wait);
  fe_wait_us.record(fe_wait);
  max_wait.set_max(origin_wait);
}

// One offered-load level's complete world and outcome. Levels are fully
// independent — each owns its population, event loop, FrontEnd, links, and
// recorder — so they run concurrently on the fleet pool; everything that
// must come out in level order (the LevelReport, bucket-serve totals, the
// trace sink) is kept here and assembled serially after the join.
struct LevelRun {
  LevelReport report;
  std::vector<std::int64_t> bucket_serves;
  // The loop outlives the recorder (the recorder holds a loop reference)
  // and both outlive the task: cfg.trace_sink consumes the recorder in
  // level order on the assembling thread.
  std::unique_ptr<sim::EventLoop> loop;
  std::unique_ptr<trace::Recorder> recorder;
};

}  // namespace

int MicroTable::bucket_for(HintSource source, sim::Time staleness) const {
  if (source == HintSource::None) return hintless_bucket();
  int best = 0;
  sim::Time best_dist = sim::kNever;
  for (std::size_t i = 0; i < ages.size(); ++i) {
    const sim::Time dist = std::llabs(staleness - ages[i]);
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

DeploymentReport run_deployment(const web::Corpus& corpus,
                                const ScenarioConfig& cfg) {
  const harness::Env env = harness::Env::from_environment();
  if (env.shard.has_value() || !env.shard_dir.empty()) {
    // Mirror fleet::run_plan's warm-cache refusal: sharding would split the
    // embedded micro SweepPlan by cell while every shard process silently
    // re-ran the whole warm column and macro passes — n copies of the
    // expensive part and a merge that never sees them.
    fatal("VROOM_SHARD/VROOM_SHARD_DIR are set, but the deployment "
          "scenario cannot shard: only its micro SweepPlan would split "
          "while the warm column and macro passes re-run whole in every "
          "shard process. Unset them for deployment runs (shard the "
          "figure sweeps instead; DESIGN.md §14)");
  }

  DeploymentReport report;
  const int pages = static_cast<int>(corpus.size());
  report.pages = pages;
  if (pages == 0 || cfg.offered_levels.empty()) return report;

  PopulationConfig pop = cfg.population;
  if (env.deploy_window_hours > 0) {
    pop.window = sim::hours(env.deploy_window_hours);
  }
  report.window = pop.window;
  const std::vector<DeviceShare> mix =
      pop.device_mix.empty() ? default_device_mix() : pop.device_mix;
  pop.device_mix = mix;
  for (const DeviceShare& share : mix) {
    report.device_names.push_back(share.device.name);
  }

  // --- Micro: the (device x hint condition) PLT table, on the fleet. ---
  MicroTable& micro = report.micro;
  micro.ages.push_back(0);
  for (sim::Time age : cfg.stale_ages) micro.ages.push_back(age);

  std::vector<baselines::Strategy> conditions;
  for (sim::Time age : micro.ages) {
    conditions.push_back(baselines::vroom_stale_hints(age));
  }
  conditions.push_back(baselines::http2_baseline());  // hintless serves

  fleet::SweepPlan plan;
  for (std::size_t d = 0; d < mix.size(); ++d) {
    for (std::size_t c = 0; c < conditions.size(); ++c) {
      harness::RunOptions opt = cfg.micro;
      opt.seed = cfg.seed;
      opt.device = mix[d].device;
      opt.loads_per_page = 1;
      plan.add(corpus, conditions[c], opt,
               "deploy:" + mix[d].device.name + ":" + conditions[c].name);
    }
  }
  const std::vector<harness::CorpusResult> cells = fleet::run_plan(plan);

  const int buckets = static_cast<int>(conditions.size());
  micro.plt.assign(mix.size(), {});
  for (std::size_t d = 0; d < mix.size(); ++d) {
    micro.plt[d].assign(static_cast<std::size_t>(buckets), {});
    for (int c = 0; c < buckets; ++c) {
      const harness::CorpusResult& cell =
          cells[d * static_cast<std::size_t>(buckets) +
                static_cast<std::size_t>(c)];
      auto& col = micro.plt[d][static_cast<std::size_t>(c)];
      col.reserve(cell.loads.size());
      for (const browser::LoadResult& load : cell.loads) {
        col.push_back(capped(load.plt, cfg.micro.timeout));
      }
    }
  }

  // Warm revisit column (Figure 20 style: prime, wait, revisit). Each
  // (device, page) pair is an independent two-load story — its private
  // browser::Cache makes the prime -> revisit order matter *within* the
  // pair only — so pairs fan out on the pool; slots are pre-assigned, and
  // one worker replays today's d-major, p-minor serial order.
  const baselines::Strategy fresh = conditions[0];
  const double warm_started = monotonic_seconds();
  micro.warm_plt.assign(mix.size(),
                        std::vector<sim::Time>(
                            static_cast<std::size_t>(pages), 0));
  std::vector<double> warm_bytes_frac(static_cast<std::size_t>(pages), 1.0);
  fleet::run_tasks(
      mix.size() * static_cast<std::size_t>(pages), [&](std::size_t task) {
        const std::size_t d = task / static_cast<std::size_t>(pages);
        const int p = static_cast<int>(task % static_cast<std::size_t>(pages));
        const web::PageModel& page = corpus.page(static_cast<std::size_t>(p));
        browser::Cache cache;
        harness::RunOptions opt = cfg.micro;
        opt.seed = cfg.seed;
        opt.device = mix[d].device;
        opt.cache = &cache;
        const browser::LoadResult cold = harness::run_page_load(
            page, fresh, opt,
            harness::derive_load_nonce(cfg.seed, page.page_id(), 0));
        opt.when += cfg.revisit_gap;
        const browser::LoadResult warm = harness::run_page_load(
            page, fresh, opt,
            harness::derive_load_nonce(cfg.seed, page.page_id(), 1));
        micro.warm_plt[d][static_cast<std::size_t>(p)] =
            capped(warm.plt, cfg.micro.timeout);
        if (d == 0 && cold.bytes_fetched > 0) {
          warm_bytes_frac[static_cast<std::size_t>(p)] =
              static_cast<double>(warm.bytes_fetched) /
              static_cast<double>(cold.bytes_fetched);
        }
      });
  report.warm_wall_seconds = monotonic_seconds() - warm_started;

  // --- Per-page origin traffic profiles (for link contention). ---
  // World construction fans out per page; the dense domain ids are
  // interned afterwards in one serial pass so their assignment order is a
  // pure function of the corpus, not of task scheduling.
  std::vector<std::vector<std::pair<std::string, std::int64_t>>> by_page(
      static_cast<std::size_t>(pages));
  fleet::run_tasks(static_cast<std::size_t>(pages), [&](std::size_t p) {
    const web::PageModel& page = corpus.page(p);
    web::LoadIdentity id;
    id.wall_time = cfg.micro.when;
    id.device = mix[0].device;
    id.user = 0;
    id.nonce = harness::derive_load_nonce(cfg.seed, page.page_id(), 0);
    // Profile world on the pooled arena; reset-and-reused per page.
    sim::PooledArena arena;
    const web::PageInstance inst(page, id, arena.get());
    std::map<std::string, std::int64_t> by_domain;  // ordered => determinism
    for (const web::InstanceResource& r : inst.resources()) {
      by_domain[web::url_domain(r.url)] += r.size;
    }
    by_page[p].assign(by_domain.begin(), by_domain.end());
  });

  DomainTable domains;
  std::vector<PageProfile> profiles(static_cast<std::size_t>(pages));
  for (int p = 0; p < pages; ++p) {
    PageProfile& prof = profiles[static_cast<std::size_t>(p)];
    prof.warm_bytes_frac = warm_bytes_frac[static_cast<std::size_t>(p)];
    for (const auto& [domain, bytes] : by_page[static_cast<std::size_t>(p)]) {
      prof.domain_bytes.emplace_back(domains.intern(domain), bytes);
      prof.total_bytes += bytes;
    }
  }
  const auto n_domains = domains.names.size();
  // Domain ids in domain-string order: the deterministic emission order of
  // the per-level link summaries (the old string-keyed map iterated
  // sorted; the trace byte stream must not notice the dense rekeying).
  std::vector<std::uint32_t> domains_by_name(n_domains);
  for (std::uint32_t id = 0; id < n_domains; ++id) domains_by_name[id] = id;
  std::sort(domains_by_name.begin(), domains_by_name.end(),
            [&domains](std::uint32_t a, std::uint32_t b) {
              return domains.names[a] < domains.names[b];
            });

  // --- Origin link rate: configured, or auto-sized to cross capacity. ---
  const std::vector<double> weights = page_weights(pages, pop.page_skew);
  double link_bps = cfg.origin_link_bps;
  if (link_bps <= 0) {
    const double top_level =
        *std::max_element(cfg.offered_levels.begin(),
                          cfg.offered_levels.end());
    std::vector<double> demand(n_domains, 0.0);  // bytes/sec per origin
    for (int p = 0; p < pages; ++p) {
      for (const auto& [domain_id, bytes] :
           profiles[static_cast<std::size_t>(p)].domain_bytes) {
        demand[domain_id] += top_level * weights[static_cast<std::size_t>(p)] *
                             static_cast<double>(bytes);
      }
    }
    double hottest = 0;
    for (const double bps : demand) hottest = std::max(hottest, bps);
    link_bps = std::max(1.0, cfg.origin_capacity_frac * hottest * 8.0);
  }
  report.origin_link_mbps = link_bps / 1e6;

  // --- Macro: one contention pass per offered level, on the pool. ---
  std::vector<LevelRun> runs(cfg.offered_levels.size());
  const double macro_started = monotonic_seconds();

  fleet::run_tasks(cfg.offered_levels.size(), [&](std::size_t li) {
    LevelRun& run = runs[li];
    run.bucket_serves.assign(static_cast<std::size_t>(buckets), 0);
    PopulationConfig level_pop = pop;
    level_pop.mean_arrivals_per_sec = cfg.offered_levels[li];
    const std::vector<Arrival> arrivals = build_population(
        pages, level_pop,
        sim::derive_seed(cfg.seed, "deploy:level-" + std::to_string(li)),
        env.deploy_arrivals);

    run.loop = std::make_unique<sim::EventLoop>();
    sim::EventLoop& loop = *run.loop;
    if (cfg.trace_sink) {
      run.recorder = std::make_unique<trace::Recorder>(loop);
    }
    trace::Recorder* recorder = run.recorder.get();

    FrontEnd fe(corpus, cfg.front_end,
                sim::derive_seed(cfg.seed, "deploy:frontend"));
    // Per-level macro state lives on a pooled bump arena: the dense link
    // table and the Link instances themselves (trivially destructible, so
    // arena placement needs no teardown) are built, replayed through, and
    // dropped wholesale when the level finishes.
    sim::PooledArena arena;
    std::pmr::vector<net::Link*> links(n_domains, nullptr, arena.get());
    const auto link_for = [&](std::uint32_t domain_id) -> net::Link& {
      net::Link*& slot = links[domain_id];
      if (slot == nullptr) {
        slot = new (arena->allocate(sizeof(net::Link), alignof(net::Link)))
            net::Link(loop, link_bps, "origin");
      }
      return *slot;
    };

    LevelReport& level = run.report;
    level.offered_per_sec = cfg.offered_levels[li];
    level.arrivals = static_cast<std::int64_t>(arrivals.size());
    double origin_wait_sum_s = 0;
    // This level's PLTs through the shared log-linear bucketing — the same
    // boundaries every metrics export uses. Recorded unconditionally: the
    // histogram-derived report percentiles are deterministic level facts,
    // not opt-in telemetry.
    obs::Histogram level_hist;
    level.plt_seconds.reserve(arrivals.size());

    // Direct replay: the arrival stream is already time-sorted and nothing
    // ever schedules ahead of it, so the clock advances arrival by arrival
    // instead of through a heap event per page view. Link completions need
    // no events either — the FIFO story is busy_until arithmetic
    // (Link::enqueue), and the no-op delivery callbacks the event-driven
    // form paid for carried no state.
    for (const Arrival& a : arrivals) {
      loop.advance_to(a.at);
      const sim::Time now = a.at;
      const web::DeviceProfile& device = mix[a.device].device;
      const ServeDecision d = fe.serve(now, a.page, device, recorder);

      const int bucket = micro.bucket_for(d.source, d.staleness);
      sim::Time base;
      if (a.warm) {
        base = micro.warm_plt[a.device][static_cast<std::size_t>(a.page)];
      } else {
        base = micro.plt[a.device][static_cast<std::size_t>(bucket)]
                        [static_cast<std::size_t>(a.page)];
      }
      if (d.source != HintSource::None) {
        run.bucket_serves[static_cast<std::size_t>(bucket)] += 1;
      }

      // Every origin of the page ships its bytes through that origin's
      // shared access link; the page stalls for the worst queue it hits.
      const PageProfile& prof = profiles[static_cast<std::size_t>(a.page)];
      sim::Time origin_wait = 0;
      for (const auto& [domain_id, bytes] : prof.domain_bytes) {
        net::Link& link = link_for(domain_id);
        origin_wait =
            std::max(origin_wait,
                     std::max<sim::Time>(0, link.busy_until() - now));
        const auto tx_bytes = static_cast<std::int64_t>(
            a.warm ? static_cast<double>(bytes) * prof.warm_bytes_frac
                   : static_cast<double>(bytes));
        if (tx_bytes > 0) {
          // Emit the transmission's full FIFO story for the macro-trace
          // auditor: when it joined the queue, when the link actually
          // started it, and how long it held the link.
          const sim::Time start = std::max(now, link.busy_until());
          const sim::Time tx = link.tx_time(tx_bytes);
          link.enqueue(tx_bytes);
          if (recorder != nullptr) {
            recorder->instant(
                trace::Layer::Deploy, domains.names[domain_id], "tx",
                "deploy.origin_tx",
                {trace::arg("enqueue_us", now),
                 trace::arg("start_us", start), trace::arg("tx_us", tx),
                 trace::arg("bytes", tx_bytes)});
          }
        }
      }

      const sim::Time plt =
          capped(base + d.queue_wait + origin_wait, cfg.micro.timeout);
      if (plt >= cfg.micro.timeout) level.timeouts += 1;
      level.plt_seconds.push_back(sim::to_seconds(plt));
      level_hist.record(plt);
      record_arrival_metrics(origin_wait, d.queue_wait);
      // A user gives up at the timeout, so the experienced wait caps there
      // too — otherwise day-long overload queues dominate the mean.
      origin_wait_sum_s +=
          sim::to_seconds(std::min(origin_wait, cfg.micro.timeout));
      if (recorder != nullptr) {
        recorder->instant(
            trace::Layer::Deploy, "population", "arrivals",
            "deploy.page_view",
            {trace::arg("page", static_cast<int>(a.page)),
             trace::arg("plt_s", sim::to_seconds(plt)),
             trace::arg("origin_wait_ms", sim::to_ms(origin_wait)),
             trace::arg("source", hint_source_name(d.source)),
             trace::arg("warm", a.warm ? 1 : 0)});
      }
    }
    // The event-driven form ran until its queue drained, leaving the clock
    // at the last arrival or the last link delivery, whichever was later;
    // utilization denominators and the summary events depend on it.
    sim::Time final_now = arrivals.empty() ? 0 : arrivals.back().at;
    for (const net::Link* link : links) {
      if (link != nullptr) final_now = std::max(final_now, link->busy_until());
    }
    loop.advance_to(final_now);

    if (recorder != nullptr) {
      // One closing summary per origin, from the link's own accounting —
      // the auditor cross-checks it against the per-transmission events.
      // Ordered by domain string, exactly as the string-keyed map iterated.
      for (const std::uint32_t domain_id : domains_by_name) {
        const net::Link* link = links[domain_id];
        if (link == nullptr) continue;
        recorder->instant(trace::Layer::Deploy, domains.names[domain_id],
                          "summary", "deploy.link_summary",
                          {trace::arg("busy_us", link->busy_time()),
                           trace::arg("bytes", link->total_bytes()),
                           trace::arg("now_us", loop.now())});
      }
    }

    // Truncated streams (VROOM_DEPLOY_ARRIVALS) end early; rate math uses
    // the time actually covered, not the configured window.
    const bool truncated =
        env.deploy_arrivals > 0 &&
        level.arrivals == static_cast<std::int64_t>(env.deploy_arrivals);
    const double window_s = sim::to_seconds(
        truncated && !arrivals.empty() ? arrivals.back().at
                                       : level_pop.window);
    const std::int64_t completed = level.arrivals - level.timeouts;
    level.served_per_sec =
        window_s > 0 ? static_cast<double>(completed) / window_s : 0.0;
    // One sort serves both exact percentiles (values unchanged: same
    // interpolation as the old per-call sorts); the histogram read-back
    // answers within one log-linear bucket width of them.
    std::vector<double> sorted_plt = level.plt_seconds;
    std::sort(sorted_plt.begin(), sorted_plt.end());
    level.p50_plt_s = harness::percentile_sorted(sorted_plt, 50);
    level.p99_plt_s = harness::percentile_sorted(sorted_plt, 99);
    level.hist_p50_plt_s = level_hist.percentile(50) / 1e6;
    level.hist_p99_plt_s = level_hist.percentile(99) / 1e6;
    level.mean_origin_wait_s =
        level.arrivals > 0
            ? origin_wait_sum_s / static_cast<double>(level.arrivals)
            : 0.0;
    const FrontEndStats& fs = fe.stats();
    level.front_end = fs;
    level.hit_ratio = fs.hit_ratio();
    if (fs.serves > 0) {
      level.stale_frac = static_cast<double>(fs.stale_serves) /
                         static_cast<double>(fs.serves);
      level.hintless_frac = static_cast<double>(fs.hintless_serves) /
                            static_cast<double>(fs.serves);
      level.mean_fe_wait_ms =
          sim::to_ms(fs.total_queue_wait) / static_cast<double>(fs.serves);
    }
    const std::int64_t hinted = fs.serves - fs.hintless_serves;
    if (hinted > 0) {
      level.mean_staleness_s = sim::to_seconds(fs.total_staleness) /
                               static_cast<double>(hinted);
    }
    for (const net::Link* link : links) {
      if (link == nullptr) continue;
      level.max_link_utilization =
          std::max(level.max_link_utilization, link->utilization());
    }
    // Virtual-plane recording from inside the task is safe and exact: every
    // mutation commutes (atomic counter adds, fixed-bucket histogram
    // merges), so the export cannot tell level order from pool order.
    if (obs::metrics_enabled()) {
      obs::Registry& reg = obs::registry();
      reg.histogram("deploy.macro.plt_us").merge(level_hist);
      reg.counter("deploy.macro.arrivals").add(level.arrivals);
      reg.counter("deploy.macro.timeouts").add(level.timeouts);
      reg.counter("deploy.frontend.cache_hits").add(fs.cache_hits);
      reg.counter("deploy.frontend.cache_misses").add(fs.cache_misses);
      reg.counter("deploy.frontend.stale_serves").add(fs.stale_serves);
      reg.counter("deploy.frontend.hintless_serves")
          .add(fs.hintless_serves);
      for (const net::Link* link : links) {
        if (link == nullptr) continue;
        reg.histogram("deploy.links.utilization_permille")
            .record(static_cast<std::int64_t>(link->utilization() * 1000.0 +
                                              0.5));
      }
    }
  });
  report.macro_wall_seconds = monotonic_seconds() - macro_started;

  // Level-order assembly: reports, bucket-serve totals, and trace sinks
  // leave here exactly as the serial pass produced them.
  std::vector<std::int64_t> bucket_serves(
      static_cast<std::size_t>(buckets), 0);
  for (std::size_t li = 0; li < runs.size(); ++li) {
    LevelRun& run = runs[li];
    report.macro_arrivals += run.report.arrivals;
    for (std::size_t b = 0; b < bucket_serves.size(); ++b) {
      bucket_serves[b] += run.bucket_serves[b];
    }
    report.levels.push_back(std::move(run.report));
    if (cfg.trace_sink && run.recorder != nullptr) {
      cfg.trace_sink(static_cast<int>(li), *run.recorder);
    }
  }

  report.effective_recrawl =
      FrontEnd(corpus, cfg.front_end, cfg.seed).effective_recrawl_period();

  // --- Staleness priced against content persistence (Figure 7's axis). ---
  for (std::size_t b = 0; b < micro.ages.size(); ++b) {
    StaleBucketReport row;
    row.age = micro.ages[b];
    double persistence = 0;
    for (int p = 0; p < pages; ++p) {
      persistence += core::persistence_fraction(
          corpus.page(static_cast<std::size_t>(p)), cfg.micro.when,
          mix[0].device, /*user=*/1, row.age);
    }
    row.persistence = persistence / static_cast<double>(pages);
    row.serves = bucket_serves[b];
    double sum = 0;
    std::int64_t n = 0;
    for (std::size_t d = 0; d < mix.size(); ++d) {
      for (const sim::Time plt : micro.plt[d][b]) {
        sum += sim::to_seconds(plt);
        ++n;
      }
    }
    row.mean_micro_plt_s = n > 0 ? sum / static_cast<double>(n) : 0.0;
    report.stale_buckets.push_back(row);
  }

  // Re-export with the macro metrics folded in (the fleet's mid-run export
  // only covered the micro pass) and write the scenario's own provenance
  // record next to it.
  if (env.metrics_enabled()) {
    obs::PhaseTimer export_phase(obs::Phase::Export);
    obs::registry().export_to(env.metrics_dir);
    const auto hex = [](std::uint64_t v) {
      char buf[17];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(v));
      return std::string(buf);
    };
    char mbps[64];
    std::snprintf(mbps, sizeof mbps, "%.17g", report.origin_link_mbps);
    obs::Manifest manifest;
    manifest.set("schema", std::int64_t{1});
    manifest.set("kind", "deploy_scenario");
    manifest.set("seed", static_cast<std::uint64_t>(cfg.seed));
    manifest.set("pages", static_cast<std::int64_t>(pages));
    manifest.set("devices", static_cast<std::int64_t>(mix.size()));
    manifest.set("levels",
                 static_cast<std::int64_t>(cfg.offered_levels.size()));
    manifest.set("window_us", static_cast<std::int64_t>(report.window));
    manifest.set("origin_link_mbps", std::string(mbps));
    manifest.set("env.deploy_arrivals",
                 static_cast<std::int64_t>(env.deploy_arrivals));
    manifest.set("env.deploy_window_hours",
                 static_cast<std::int64_t>(env.deploy_window_hours));
    manifest.set("result_cache_salt_version",
                 static_cast<std::int64_t>(harness::kResultCacheSaltVersion));
    manifest.set("digest.metrics_prom",
                 hex(obs::registry().digest(obs::Plane::Virtual)));
    manifest.set("digest.wall_sidecar_prom",
                 hex(obs::registry().digest(obs::Plane::Wall)));
    manifest.write(env.metrics_dir + "/deploy_manifest.json");
  }

  return report;
}

}  // namespace vroom::deploy
