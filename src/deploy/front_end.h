// Shared Vroom front-end: one hint server for an entire user population.
//
// The paper evaluates Vroom one load at a time, with the origin resolving
// dependencies against its freshest crawls. At deployment scale the hint
// path is a shared service with real capacity limits, and three effects
// appear that per-load evaluation cannot show:
//
//   * a size-capped hint cache — hot pages hit, the long tail misses;
//   * finite hint-generation throughput — misses queue behind a small
//     worker pool, and when the queue exceeds the serve deadline the
//     front-end ships the page with NO hints rather than stall it;
//   * a crawl/recrawl scheduler with finite crawl throughput — hints are
//     generated from the latest crawl *snapshot*, so every served hint set
//     is somewhat stale, and cache hits can be staler still.
//
// FrontEnd models all three deterministically on top of the existing
// core::VroomProvider (generation really resolves the crawl-time instance;
// the hint count and header bytes are the real advice, not a constant).
// The deployment scenario prices the resulting staleness through the
// hint_age micro benchmarks (see scenario.h).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/vroom_provider.h"
#include "sim/time.h"
#include "trace/trace.h"
#include "web/corpus.h"
#include "web/device.h"

namespace vroom::deploy {

struct FrontEndConfig {
  // Hint cache entries, keyed by (page, device rendering class). Small by
  // design: the interesting regime is the tail missing.
  int hint_cache_entries = 64;
  // Hint-generation worker pool and per-request cost model.
  int gen_workers = 2;
  sim::Time gen_base_cost = sim::ms(40);
  sim::Time gen_per_hint_cost = sim::ms(2);
  // Budget the front-end will spend (queueing + generation) before giving
  // up and serving the page without hints.
  sim::Time serve_deadline = sim::ms(250);
  // Crawler: target refresh period and per-page crawl cost. The effective
  // period is max(recrawl_period, pages * crawl_cost) — a slow crawler
  // stretches the cycle, and hint staleness grows accordingly.
  sim::Time recrawl_period = sim::hours(1);
  sim::Time crawl_cost = sim::minutes(10);
  // Wall-clock origin of the traffic window (page rotations are computed
  // against day0 + virtual time, matching the harness convention).
  sim::Time day0 = sim::days(45);
  // How the front-end resolves dependencies from its crawls. The default
  // OfflineOnly is forced in the constructor: a front-end has no online
  // path (it is not the origin rendering the page).
  core::VroomProviderConfig provider;
};

// What kind of hint set a serve produced.
enum class HintSource : std::uint8_t {
  Fresh,   // generated on this request from the latest crawl snapshot
  Cached,  // cache hit, entry still matches the latest snapshot
  Stale,   // cache hit, but a newer crawl exists (stale-while-revalidate)
  None,    // generation would blow the serve deadline; shipped hintless
};

const char* hint_source_name(HintSource s);

// The front-end's answer for one page view.
struct ServeDecision {
  HintSource source = HintSource::None;
  bool cache_hit = false;
  // Extra latency the hint path added to this page view (queueing plus
  // generation when generated synchronously; 0 for cache hits and for
  // deadline-exceeded hintless serves).
  sim::Time queue_wait = 0;
  // Age of the crawl snapshot behind the served hints (serve time minus
  // snapshot time). Meaningless when source == None.
  sim::Time staleness = 0;
  int hints = 0;
};

struct FrontEndStats {
  std::int64_t serves = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t stale_serves = 0;   // subset of cache_hits
  std::int64_t hintless_serves = 0;
  std::int64_t generations = 0;    // synchronous + background revalidations
  sim::Time total_queue_wait = 0;  // summed over serves
  sim::Time total_staleness = 0;   // summed over hint-carrying serves

  double hit_ratio() const {
    const std::int64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
};

class FrontEnd {
 public:
  // `corpus` must outlive the front-end. `seed` feeds crawl-nonce
  // derivation only; all scheduling is deterministic arithmetic.
  FrontEnd(const web::Corpus& corpus, FrontEndConfig config,
           std::uint64_t seed);

  // Serves one page view arriving at virtual time `now`. `recorder` may be
  // nullptr; with one attached, fe.cache_hit / fe.cache_miss /
  // fe.stale_serve / fe.recrawl events are emitted on the Deploy layer.
  ServeDecision serve(sim::Time now, int page_index,
                      const web::DeviceProfile& device,
                      trace::Recorder* recorder = nullptr);

  // Virtual time of the latest completed crawl of `page_index` at `now`.
  // May be negative: the crawler has been cycling since before the window.
  sim::Time last_crawl(sim::Time now, int page_index) const;

  // Effective crawl refresh period (>= recrawl_period when the crawler is
  // throughput-bound).
  sim::Time effective_recrawl_period() const;

  const FrontEndStats& stats() const { return stats_; }
  const FrontEndConfig& config() const { return config_; }

 private:
  struct CacheEntry {
    std::uint64_t key = 0;
    sim::Time snapshot = 0;  // crawl virtual time the hints derive from
    int hints = 0;
  };

  // Resolves the crawl-snapshot advice for (page, device) at snapshot time
  // `crawl_t`; returns the hint count. This is the expensive step the
  // cache and the worker pool exist to amortize.
  //
  // The resolved count is a pure function of (page, device, crawl_t): the
  // crawl nonce derives from (seed, page, crawl_t) alone, so repeat
  // generations of one snapshot rebuild an identical crawl world. Those
  // repeats — stale refreshes and evicted-entry re-misses of hot pages —
  // dominate the deployment macro pass's CPU, so the count is memoized in
  // `memo_`. Only the simulator shortcut is cached: the *model* still
  // performs every generation (stats_.generations counts them all, and
  // callers still charge the worker pool per call).
  int generate(int page_index, const web::DeviceProfile& device,
               sim::Time crawl_t);

  // Charges one generation to the least-busy worker; returns the queueing
  // delay before it could start.
  sim::Time charge_worker(sim::Time now, sim::Time cost);

  CacheEntry* cache_find(std::uint64_t key);
  void cache_insert(CacheEntry entry);

  const web::Corpus& corpus_;
  FrontEndConfig config_;
  std::uint64_t seed_;
  FrontEndStats stats_;

  std::vector<sim::Time> worker_busy_until_;
  // LRU: most-recent at front; map points into the list.
  std::list<CacheEntry> lru_;
  std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> index_;
  // generate() results keyed by (page, full device identity, crawl_t);
  // bounded by the distinct snapshots of the traffic window.
  std::unordered_map<std::uint64_t, int> memo_;
};

}  // namespace vroom::deploy
