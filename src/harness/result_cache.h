// Content-keyed on-disk cache of browser::LoadResult.
//
// Every figure bench recomputes the same (seed, page, strategy, load) jobs —
// the exact redundancy Mahimahi-style record-and-replay exists to remove.
// With `VROOM_RESULT_CACHE=<dir>` set (off by default), the fleet consults
// this cache before simulating a job and stores each fresh result after, so
// regenerating the full figure set costs roughly one pass of unique jobs.
//
// The key is the job's complete causal identity: corpus seed, page id, load
// nonce, the strategy's canonical fingerprint() (every knob that affects
// simulation), a device + network profile hash, the run's wall time / user /
// timeout, and a code-version salt (kResultCacheSaltVersion) bumped whenever
// simulation behaviour changes. This is only sound because the keyed
// computation is reproducible: median selection is stable, nonces derive
// from (seed, page, load) without collisions, and fleet output is
// bit-identical at any worker count.
//
// Storage is one file per key under the cache directory, named by a 128-bit
// hash of the key string; the file embeds the full key and is verified on
// read, so hash collisions degrade to misses, never to wrong results.
// Writes go to a unique temp file and rename() into place, so concurrent
// workers (or concurrent processes) racing on the same key are safe — the
// loser's identical bytes simply win.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "baselines/strategies.h"
#include "browser/metrics.h"
#include "harness/experiment.h"

namespace vroom::harness {

// Code-version salt folded into every cache key. Bump on ANY change that can
// alter simulated results (browser model, network model, seed derivation,
// LoadResult fields, ...) so stale entries miss instead of lying.
inline constexpr int kResultCacheSaltVersion = 4;

// Canonical key string for one (strategy, options, page, load-nonce) job.
// Human-readable on purpose: it is embedded in cache files for verification
// and makes mismatches debuggable.
std::string result_cache_key(const baselines::Strategy& strategy,
                             const RunOptions& options, std::uint32_t page_id,
                             std::uint64_t nonce);

// Whether results under these options may be cached at all. Warm-cache runs
// (options.cache) depend on load order, and traced runs (VROOM_TRACE or
// options.trace_sink) emit per-load artifacts a cache hit cannot replay —
// both bypass the cache.
bool result_cache_usable(const RunOptions& options);

struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  // Unreadable / corrupt / key-mismatched entries (counted as misses too).
  std::uint64_t errors = 0;
};

class ResultCache {
 public:
  // Creates `dir` (mkdir -p) lazily on first put. Thread-safe: get/put may
  // be called concurrently from any number of fleet workers.
  explicit ResultCache(std::string dir);

  // Reads VROOM_RESULT_CACHE; returns nullptr when unset or empty (the
  // default: caching off).
  static std::unique_ptr<ResultCache> from_env();

  // Cache lookup. A verified hit returns the stored result; corrupt or
  // mismatched entries count as misses.
  std::optional<browser::LoadResult> get(const std::string& key);

  // Stores `result` under `key` (atomic temp-file + rename publish).
  // Failures warn on stderr once per cache and are otherwise ignored — the
  // cache is an accelerator, never a correctness dependency.
  void put(const std::string& key, const browser::LoadResult& result);

  ResultCacheStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(const std::string& key) const;

  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<bool> warned_{false};
  std::atomic<std::uint64_t> temp_seq_{0};
};

}  // namespace vroom::harness
