// Content-keyed on-disk cache of browser::LoadResult.
//
// Every figure bench recomputes the same (seed, page, strategy, load) jobs —
// the exact redundancy Mahimahi-style record-and-replay exists to remove.
// With `VROOM_RESULT_CACHE=<dir>` set (off by default), the fleet consults
// this cache before simulating a job and stores each fresh result after, so
// regenerating the full figure set costs roughly one pass of unique jobs.
//
// The key is the job's complete causal identity: corpus seed, page id, load
// nonce, the strategy's canonical fingerprint() (every knob that affects
// simulation), a device + network profile hash, the run's wall time / user /
// timeout, and a code-version salt (kResultCacheSaltVersion) bumped whenever
// simulation behaviour changes. This is only sound because the keyed
// computation is reproducible: median selection is stable, nonces derive
// from (seed, page, load) without collisions, and fleet output is
// bit-identical at any worker count.
//
// Storage is one file per key under the cache directory, named by a 128-bit
// hash of the key string; the file embeds the full key and is verified on
// read, so hash collisions degrade to misses, never to wrong results.
// Writes go to a unique temp file and rename() into place, so concurrent
// workers (or concurrent processes — the cache is the shared substrate of a
// sharded sweep, DESIGN.md §14) racing on the same key are safe — the
// loser's identical bytes simply win.
//
// The cache grows one file per unique job forever unless collected:
// cache_gc() below prunes stale salt generations and enforces an LRU size
// cap (entry files are mtime-bumped on every verified hit).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "baselines/strategies.h"
#include "browser/metrics.h"
#include "harness/env.h"
#include "harness/experiment.h"

namespace vroom::harness {

// Code-version salt folded into every cache key. Bump on ANY change that can
// alter simulated results (browser model, network model, seed derivation,
// LoadResult fields, ...) so stale entries miss instead of lying.
inline constexpr int kResultCacheSaltVersion = 5;

// A cache key with its 64-bit content hash computed once at construction.
// get() and put() both need the hash (it names the entry file); carrying it
// in the key type means a miss-then-store pair — and the hit path — hash
// the key string exactly once instead of once per call.
class CacheKey {
 public:
  explicit CacheKey(std::string key);

  const std::string& str() const { return key_; }
  std::uint64_t hash() const { return hash_; }

 private:
  std::string key_;
  std::uint64_t hash_ = 0;
};

// Canonical key for one (strategy, options, page, load-nonce) job. The key
// string is human-readable on purpose: it is embedded in cache files for
// verification and makes mismatches debuggable. It starts with the salt
// generation ("v<N>|"), which is what cache_gc's generation sweep parses.
CacheKey result_cache_key(const baselines::Strategy& strategy,
                          const RunOptions& options, std::uint32_t page_id,
                          std::uint64_t nonce);

// Whether results under these options may be cached at all. Warm-cache runs
// (options.cache) depend on load order, and traced runs (VROOM_TRACE or
// options.trace_sink) emit per-load artifacts a cache hit cannot replay —
// both bypass the cache. The Env overload is the primary: callers holding a
// plan-level snapshot (fleet::run_plan) pass it so one plan sees one
// consistent knob set; the other re-reads the environment per call.
bool result_cache_usable(const RunOptions& options, const Env& env);
bool result_cache_usable(const RunOptions& options);

struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  // Unreadable / corrupt / key-mismatched entries (counted as misses too).
  std::uint64_t errors = 0;
};

class ResultCache {
 public:
  // Creates `dir` (mkdir -p) lazily on first put. Thread-safe: get/put may
  // be called concurrently from any number of fleet workers.
  explicit ResultCache(std::string dir);

  // Reads VROOM_RESULT_CACHE from `env` (or, for the legacy overload, from
  // a fresh environment snapshot); returns nullptr when unset or empty
  // (the default: caching off).
  static std::unique_ptr<ResultCache> from_env(const Env& env);
  static std::unique_ptr<ResultCache> from_env();

  // Cache lookup. A verified hit returns the stored result and bumps the
  // entry file's mtime (the LRU clock cache_gc evicts by); corrupt or
  // mismatched entries count as misses.
  std::optional<browser::LoadResult> get(const CacheKey& key);

  // Stores `result` under `key` (atomic temp-file + rename publish).
  // Failures warn on stderr once per cache and are otherwise ignored — the
  // cache is an accelerator, never a correctness dependency.
  void put(const CacheKey& key, const browser::LoadResult& result);

  ResultCacheStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(const CacheKey& key) const;

  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<bool> warned_{false};
  std::atomic<std::uint64_t> temp_seq_{0};
};

// --- Garbage collection (DESIGN.md §14) --------------------------------
//
// The cache is append-only during runs; GC is a separate pass (invoked by
// fleet::run_plan after a cached sweep when VROOM_CACHE_MAX_BYTES is set,
// or directly by tooling). Two mechanisms, applied in order:
//
//   1. Salt-generation sweep: entries whose embedded key carries a salt
//      generation != current_salt_version can never hit again (the key
//      comparison would fail) — they are dead weight and are deleted first.
//   2. Size cap: when the surviving entries still exceed max_bytes, the
//      least-recently-used entries (oldest mtime; get() bumps mtime on
//      every verified hit) are evicted until the total fits. Because stale
//      generations are swept first, the current generation is never evicted
//      to make room while dead entries remain.
//
// Concurrent-safe against readers/writers: deletion of an entry a reader
// holds open is harmless on POSIX, and a racing put() simply re-creates it.
struct GcPolicy {
  std::string dir;              // cache directory to collect
  std::int64_t max_bytes = 0;   // size cap; 0 = no cap (sweep only)
  int current_salt_version = kResultCacheSaltVersion;
  bool sweep_stale_generations = true;
};

struct GcStats {
  std::uint64_t scanned = 0;          // entry files examined
  std::uint64_t scanned_bytes = 0;    // their total size before GC
  std::uint64_t stale_deleted = 0;    // wrong-generation entries removed
  std::uint64_t evicted = 0;          // size-cap LRU evictions
  std::uint64_t errors = 0;           // unparseable entries (removed too)
  std::uint64_t deleted_bytes = 0;    // bytes reclaimed
  std::uint64_t remaining_bytes = 0;  // total size after GC
};

GcStats cache_gc(const GcPolicy& policy);

}  // namespace vroom::harness
