// The process environment, parsed in one place.
//
// Every VROOM_* knob the toolkit honours is read and validated here —
// nowhere else calls getenv for them. Call Env::from_environment() at the
// point of use (it re-reads the environment each time, so tests that
// setenv/unsetenv always see current values) and take the already-parsed
// field. Malformed values warn on stderr in one unified format and leave
// the knob at its "unset" default instead of misbehaving.
//
// The knobs:
//   VROOM_JOBS=<n>          worker-pool size for corpus sweeps (fleet/)
//   VROOM_BENCH_PAGES=<n>   cap corpus sizes for quick bench passes
//   VROOM_RESULT_CACHE=<dir> on-disk LoadResult cache (DESIGN.md §8)
//   VROOM_TRACE=<dir>       write one Chrome-trace JSON file per load
//   VROOM_OUT_DIR=<dir>     export printed tables as CSV
//   VROOM_PROGRESS=1        live stderr progress ticker for long sweeps
//   VROOM_METRICS=<dir>     export obs metrics (CSV + Prometheus text) and
//                           run manifests after each fleet/deploy run
//   VROOM_PROFILE=1         print the wall-clock phase-profile table after
//                           each fleet run (stderr; nondeterministic)
//   VROOM_DEPLOY_ARRIVALS=<n>      cap arrivals per deployment load level
//   VROOM_DEPLOY_WINDOW_HOURS=<n>  override the deployment traffic window
//   VROOM_SHARD=i/N         run only plan cells of shard i (0-based) of N;
//                           requires VROOM_SHARD_DIR (DESIGN.md §14)
//   VROOM_SHARD_DIR=<dir>   shard output directory; set *without* VROOM_SHARD
//                           it switches fleet::run_plan into merge mode
//   VROOM_CACHE_MAX_BYTES=<n>  result-cache GC size cap, enforced after each
//                           cached fleet run (harness::cache_gc)
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

namespace vroom::harness {

// One shard of a cross-process sweep: this process owns shard `index` of
// `count` total. Parsed from VROOM_SHARD=i/N with the same strict
// whole-value contract as every numeric knob: both halves must be all
// digits, N >= 1, 0 <= i < N; anything else warns and reads as unset.
struct ShardSpec {
  int index = 0;
  int count = 1;
  bool operator==(const ShardSpec&) const = default;
};

struct Env {
  int jobs = 0;                  // VROOM_JOBS; 0 = unset (hardware default)
  int bench_pages = 0;           // VROOM_BENCH_PAGES; 0 = uncapped
  std::string result_cache_dir;  // VROOM_RESULT_CACHE; empty = caching off
  std::string trace_dir;         // VROOM_TRACE; empty = tracing off
  std::string out_dir;           // VROOM_OUT_DIR; empty = no CSV export
  bool progress = false;         // VROOM_PROGRESS; off unless set and != "0"
  std::string metrics_dir;       // VROOM_METRICS; empty = metrics off
  bool profile = false;          // VROOM_PROFILE; off unless set and != "0"
  // Deployment-scale simulation (src/deploy/). Both 0 = unset: the scenario
  // keeps its configured window and the population is never truncated.
  int deploy_arrivals = 0;       // VROOM_DEPLOY_ARRIVALS; 0 = uncapped
  int deploy_window_hours = 0;   // VROOM_DEPLOY_WINDOW_HOURS; 0 = default
  // Cross-process sharding (src/fleet/, DESIGN.md §14). `shard` is the
  // typed VROOM_SHARD=i/N accessor shared by the fleet and the
  // scripts/sweep_shards.sh driver — nothing else parses the spec.
  std::optional<ShardSpec> shard;  // VROOM_SHARD; nullopt = not a shard
  std::string shard_dir;           // VROOM_SHARD_DIR; empty = no shard I/O
  // Result-cache GC size cap in bytes (VROOM_CACHE_MAX_BYTES); 0 = uncapped.
  std::int64_t cache_max_bytes = 0;

  // Parses the environment afresh (never cached: scoped setenv in tests and
  // long-lived tools both see the current values).
  static Env from_environment();

  bool trace_enabled() const { return !trace_dir.empty(); }
  bool metrics_enabled() const { return !metrics_dir.empty(); }

  // Applies the VROOM_BENCH_PAGES cap to a corpus of `n` pages; the cap
  // never raises a count, only lowers it.
  int effective_page_count(int n) const {
    return bench_pages > 0 ? std::min(n, bench_pages) : n;
  }
};

}  // namespace vroom::harness
