// Plain-text table printers matching the shapes the paper reports: CDFs
// (per-percentile rows, one column per series) and quartile bars
// (p25/median/p75 per configuration).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace vroom::harness {

using Series = std::pair<std::string, std::vector<double>>;

// Prints a CDF table: rows at fixed percentiles, one column per series.
void print_cdf_table(const std::string& title, const std::string& unit,
                     const std::vector<Series>& series);

// Prints quartile bars (p25 / median / p75), one row per configuration.
void print_quartile_bars(const std::string& title, const std::string& unit,
                         const std::vector<Series>& series);

// Prints a single key/value stat line.
void print_stat(const std::string& name, double value,
                const std::string& unit);

}  // namespace vroom::harness
