#include "harness/export.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>

#include "harness/env.h"

namespace vroom::harness {

std::string slugify(const std::string& title) {
  std::string out;
  bool sep = false;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (sep && !out.empty()) out.push_back('_');
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
      sep = false;
    } else {
      sep = true;
    }
  }
  return out.empty() ? "untitled" : out;
}

std::string series_to_csv(const std::vector<Series>& series) {
  std::ostringstream os;
  // max_digits10 guarantees the decimal text parses back to the exact same
  // double; the stream default (6 significant digits) silently truncated
  // PLT/AFT series on round-trip.
  os.precision(std::numeric_limits<double>::max_digits10);
  std::size_t rows = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << series[i].first << '"';
    rows = std::max(rows, series[i].second.size());
  }
  os << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (i > 0) os << ',';
      if (r < series[i].second.size()) os << series[i].second[r];
    }
    os << '\n';
  }
  return os.str();
}

bool write_csv(const std::string& path, const std::string& csv) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    // A failed mkdir surfaces as the open/write failure below.
  }
  std::ofstream f(path);
  if (f) f << csv;
  if (!f) {
    std::fprintf(stderr,
                 "[harness] warning: could not write \"%s\"; "
                 "export skipped\n",
                 path.c_str());
    return false;
  }
  return true;
}

void maybe_export(const std::string& title,
                  const std::vector<Series>& series) {
  const std::string dir = Env::from_environment().out_dir;
  if (dir.empty()) return;
  write_csv(dir + "/" + slugify(title) + ".csv", series_to_csv(series));
}

std::string counters_to_csv(
    const std::vector<std::pair<std::string, std::int64_t>>& counters) {
  std::ostringstream os;
  os << "counter,value\n";
  for (const auto& [name, value] : counters) {
    os << '"' << name << '"' << ',' << value << '\n';
  }
  return os.str();
}

void maybe_export_counters(
    const std::string& title,
    const std::vector<std::pair<std::string, std::int64_t>>& counters) {
  if (counters.empty()) return;
  const std::string dir = Env::from_environment().out_dir;
  if (dir.empty()) return;
  write_csv(dir + "/" + slugify(title) + ".csv", counters_to_csv(counters));
}

std::string timings_to_csv(const browser::LoadResult& result) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "url,referenced,processable,in_iframe,hinted,pushed,from_cache,"
        "bytes,discovered_ms,requested_ms,complete_ms,processed_ms\n";
  auto cell = [&](sim::Time t) {
    if (t == sim::kNever) {
      os << "";
    } else {
      os << sim::to_ms(t);
    }
  };
  for (const auto& t : result.timings) {
    os << '"' << t.url << '"' << ',' << t.referenced << ',' << t.processable
       << ',' << t.in_iframe << ',' << t.hinted << ',' << t.pushed << ','
       << t.from_cache << ',' << t.bytes << ',';
    cell(t.discovered);
    os << ',';
    cell(t.requested);
    os << ',';
    cell(t.complete);
    os << ',';
    cell(t.processed);
    os << '\n';
  }
  return os.str();
}

}  // namespace vroom::harness
