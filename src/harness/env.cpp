#include "harness/env.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vroom::harness {

namespace {

// Strict positive-integer parse shared by every numeric knob: the whole
// value must be digits (std::from_chars, no leading sign/space, no suffix)
// and > 0. Anything else warns once per parse and reads as "unset".
int parse_positive_int(const char* name, const char* value) {
  if (value == nullptr) return 0;
  int parsed = 0;
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, parsed);
  if (ec == std::errc() && ptr == end && parsed > 0) return parsed;
  std::fprintf(stderr,
               "[env] warning: ignoring invalid %s=\"%s\" "
               "(want a positive integer)\n",
               name, value);
  return 0;
}

// 64-bit variant of the same contract for byte-sized knobs (an int caps at
// ~2 GiB, too small for a cache cap).
std::int64_t parse_positive_i64(const char* name, const char* value) {
  if (value == nullptr) return 0;
  std::int64_t parsed = 0;
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, parsed);
  if (ec == std::errc() && ptr == end && parsed > 0) return parsed;
  std::fprintf(stderr,
               "[env] warning: ignoring invalid %s=\"%s\" "
               "(want a positive integer)\n",
               name, value);
  return 0;
}

// VROOM_SHARD=i/N: both halves strict whole-value digits (from_chars ends
// exactly at the '/' and at the end of the string), N >= 1, 0 <= i < N.
std::optional<ShardSpec> parse_shard(const char* name, const char* value) {
  if (value == nullptr) return std::nullopt;
  const char* end = value + std::strlen(value);
  const char* slash = std::strchr(value, '/');
  const auto reject = [&]() -> std::optional<ShardSpec> {
    std::fprintf(stderr,
                 "[env] warning: ignoring invalid %s=\"%s\" "
                 "(want i/N with 0 <= i < N)\n",
                 name, value);
    return std::nullopt;
  };
  if (slash == nullptr || slash == value || slash + 1 == end) return reject();
  ShardSpec spec;
  const auto [ip, iec] = std::from_chars(value, slash, spec.index);
  if (iec != std::errc() || ip != slash) return reject();
  const auto [np, nec] = std::from_chars(slash + 1, end, spec.count);
  if (nec != std::errc() || np != end) return reject();
  if (spec.count < 1 || spec.index < 0 || spec.index >= spec.count) {
    return reject();
  }
  return spec;
}

std::string string_or_empty(const char* value) {
  return value != nullptr ? std::string(value) : std::string();
}

}  // namespace

Env Env::from_environment() {
  Env env;
  env.jobs = parse_positive_int("VROOM_JOBS", std::getenv("VROOM_JOBS"));
  env.bench_pages = parse_positive_int("VROOM_BENCH_PAGES",
                                       std::getenv("VROOM_BENCH_PAGES"));
  env.result_cache_dir = string_or_empty(std::getenv("VROOM_RESULT_CACHE"));
  env.trace_dir = string_or_empty(std::getenv("VROOM_TRACE"));
  env.out_dir = string_or_empty(std::getenv("VROOM_OUT_DIR"));
  env.deploy_arrivals = parse_positive_int(
      "VROOM_DEPLOY_ARRIVALS", std::getenv("VROOM_DEPLOY_ARRIVALS"));
  env.deploy_window_hours = parse_positive_int(
      "VROOM_DEPLOY_WINDOW_HOURS", std::getenv("VROOM_DEPLOY_WINDOW_HOURS"));
  const char* progress = std::getenv("VROOM_PROGRESS");
  env.progress = progress != nullptr && *progress != '\0' &&
                 std::strcmp(progress, "0") != 0;
  env.metrics_dir = string_or_empty(std::getenv("VROOM_METRICS"));
  const char* profile = std::getenv("VROOM_PROFILE");
  env.profile = profile != nullptr && *profile != '\0' &&
                std::strcmp(profile, "0") != 0;
  env.shard = parse_shard("VROOM_SHARD", std::getenv("VROOM_SHARD"));
  env.shard_dir = string_or_empty(std::getenv("VROOM_SHARD_DIR"));
  env.cache_max_bytes = parse_positive_i64(
      "VROOM_CACHE_MAX_BYTES", std::getenv("VROOM_CACHE_MAX_BYTES"));
  return env;
}

}  // namespace vroom::harness
