#include "harness/env.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vroom::harness {

namespace {

// Strict positive-integer parse shared by every numeric knob: the whole
// value must be digits (std::from_chars, no leading sign/space, no suffix)
// and > 0. Anything else warns once per parse and reads as "unset".
int parse_positive_int(const char* name, const char* value) {
  if (value == nullptr) return 0;
  int parsed = 0;
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, parsed);
  if (ec == std::errc() && ptr == end && parsed > 0) return parsed;
  std::fprintf(stderr,
               "[env] warning: ignoring invalid %s=\"%s\" "
               "(want a positive integer)\n",
               name, value);
  return 0;
}

std::string string_or_empty(const char* value) {
  return value != nullptr ? std::string(value) : std::string();
}

}  // namespace

Env Env::from_environment() {
  Env env;
  env.jobs = parse_positive_int("VROOM_JOBS", std::getenv("VROOM_JOBS"));
  env.bench_pages = parse_positive_int("VROOM_BENCH_PAGES",
                                       std::getenv("VROOM_BENCH_PAGES"));
  env.result_cache_dir = string_or_empty(std::getenv("VROOM_RESULT_CACHE"));
  env.trace_dir = string_or_empty(std::getenv("VROOM_TRACE"));
  env.out_dir = string_or_empty(std::getenv("VROOM_OUT_DIR"));
  env.deploy_arrivals = parse_positive_int(
      "VROOM_DEPLOY_ARRIVALS", std::getenv("VROOM_DEPLOY_ARRIVALS"));
  env.deploy_window_hours = parse_positive_int(
      "VROOM_DEPLOY_WINDOW_HOURS", std::getenv("VROOM_DEPLOY_WINDOW_HOURS"));
  const char* progress = std::getenv("VROOM_PROGRESS");
  env.progress = progress != nullptr && *progress != '\0' &&
                 std::strcmp(progress, "0") != 0;
  env.metrics_dir = string_or_empty(std::getenv("VROOM_METRICS"));
  const char* profile = std::getenv("VROOM_PROFILE");
  env.profile = profile != nullptr && *profile != '\0' &&
                std::strcmp(profile, "0") != 0;
  return env;
}

}  // namespace vroom::harness
