// Small statistics helpers shared by benches and tests.
#pragma once

#include <vector>

namespace vroom::harness {

// Linear-interpolated percentile; `p` in [0, 100]. Returns 0 for empty input.
double percentile(std::vector<double> values, double p);
double median(std::vector<double> values);

// Same interpolation over already-sorted input: callers needing several
// percentiles of one distribution sort once instead of once per call.
double percentile_sorted(const std::vector<double>& sorted, double p);

struct Quartiles {
  double p25 = 0, p50 = 0, p75 = 0;
};
Quartiles quartiles(const std::vector<double>& values);

}  // namespace vroom::harness
