#include "harness/report.h"

#include <cstdio>

#include "harness/export.h"
#include "harness/stats.h"

namespace vroom::harness {

namespace {
constexpr double kPercentiles[] = {5, 10, 25, 50, 75, 90, 95};
}

void print_cdf_table(const std::string& title, const std::string& unit,
                     const std::vector<Series>& series) {
  maybe_export(title, series);
  std::printf("\n== %s (%s) ==\n", title.c_str(), unit.c_str());
  std::printf("%6s", "pct");
  for (const auto& [name, values] : series) {
    std::printf("  %28s", name.c_str());
  }
  std::printf("\n");
  for (double p : kPercentiles) {
    std::printf("%5.0f%%", p);
    for (const auto& [name, values] : series) {
      std::printf("  %28.3f", percentile(values, p));
    }
    std::printf("\n");
  }
}

void print_quartile_bars(const std::string& title, const std::string& unit,
                         const std::vector<Series>& series) {
  maybe_export(title, series);
  std::printf("\n== %s (%s) ==\n", title.c_str(), unit.c_str());
  std::printf("%-34s  %10s  %10s  %10s\n", "configuration", "p25", "median",
              "p75");
  for (const auto& [name, values] : series) {
    const Quartiles q = quartiles(values);
    std::printf("%-34s  %10.3f  %10.3f  %10.3f\n", name.c_str(), q.p25, q.p50,
                q.p75);
  }
}

void print_stat(const std::string& name, double value,
                const std::string& unit) {
  std::printf("%-44s %10.3f %s\n", name.c_str(), value, unit.c_str());
}

}  // namespace vroom::harness
