#include "harness/result_cache.h"

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>
#include <vector>

#include "harness/env.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "sim/random.h"

namespace vroom::harness {

namespace {

constexpr char kMagic[4] = {'V', 'R', 'C', '1'};

// Registry mirrors of the per-cache stats (DESIGN.md §12). Counters add,
// so the totals stay order-independent however fleet workers interleave;
// handles are cached once — registration never sits on the hot path.
void count_cache_event(const char* which) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& hits = obs::registry().counter("cache.result.hits");
  static obs::Counter& misses =
      obs::registry().counter("cache.result.misses");
  static obs::Counter& stores =
      obs::registry().counter("cache.result.stores");
  static obs::Counter& errors =
      obs::registry().counter("cache.result.errors");
  switch (which[0]) {
    case 'h': hits.add(); break;
    case 'm': misses.add(); break;
    case 's': stores.add(); break;
    case 'e': errors.add(); break;
  }
}

// Canonical text for the profiles folded into the key. Exhaustive field
// lists: a knob that is not here would silently alias two different worlds.
void append_network(std::ostringstream& os, const net::NetworkConfig& n) {
  os << "net{down=" << n.downlink_bps << ";up=" << n.uplink_bps
     << ";cell_rtt=" << n.cellular_rtt << ";dns=" << n.dns_lookup
     << ";mss=" << n.mss_bytes << ";icwnd=" << n.init_cwnd_segments
     << ";maxcwnd=" << n.max_cwnd_segments
     << ";h2win=" << n.h2_stream_window_bytes
     << ";tls_rtts=" << n.tls_handshake_rtts << ";think=" << n.server_think
     << ";rtt_med=" << n.domain_rtt_median << ";rtt_sig=" << n.domain_rtt_sigma
     << ";rtt_min=" << n.domain_rtt_min << ";rtt_max=" << n.domain_rtt_max
     << ";loss=" << n.loss_rate << ";rto_min=" << n.rto_min
     << ";rrc=" << n.radio_promotion << ";rrc_idle=" << n.radio_idle_timeout
     << "}";
}

void append_device(std::ostringstream& os, const web::DeviceProfile& d) {
  os << "dev{" << d.name << ';' << d.screen << ';' << d.dpi << ';' << d.width
     << ';' << d.cpu_scale << "}";
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

CacheKey::CacheKey(std::string key)
    : key_(std::move(key)), hash_(sim::hash64(key_)) {}

CacheKey result_cache_key(const baselines::Strategy& strategy,
                          const RunOptions& options, std::uint32_t page_id,
                          std::uint64_t nonce) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "v" << kResultCacheSaltVersion << "|seed=" << options.seed
     << "|page=" << page_id << "|nonce=" << nonce << "|when=" << options.when
     << "|user=" << options.user << "|timeout=" << options.timeout << "|";
  // The network the load actually sees: the CPU-bottleneck strategy
  // overrides the run's profile with the USB-tethered one.
  const net::NetworkConfig effective =
      strategy.local_network ? net::NetworkConfig::local_usb()
                             : options.network.value_or(net::NetworkConfig::
                                                            lte());
  append_network(os, effective);
  os << "|";
  append_device(os, options.device);
  os << "|" << strategy.fingerprint();
  return CacheKey(os.str());
}

bool result_cache_usable(const RunOptions& options, const Env& env) {
  if (options.cache != nullptr) return false;  // order-dependent warm cache
  if (options.trace_sink) return false;        // per-load side effects
  if (env.trace_enabled()) return false;       // ditto (JSON per load)
  return true;
}

bool result_cache_usable(const RunOptions& options) {
  return result_cache_usable(options, Env::from_environment());
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::unique_ptr<ResultCache> ResultCache::from_env(const Env& env) {
  if (env.result_cache_dir.empty()) return nullptr;
  return std::make_unique<ResultCache>(env.result_cache_dir);
}

std::unique_ptr<ResultCache> ResultCache::from_env() {
  return from_env(Env::from_environment());
}

std::string ResultCache::path_for(const CacheKey& key) const {
  // 128 bits of key hash: two independent purpose-tagged derivations of the
  // same FNV digest (precomputed once in the CacheKey). The full key inside
  // the file disambiguates residual collisions.
  const std::uint64_t h = key.hash();
  return dir_ + "/" + hex16(sim::derive_seed(h, "cache-file-a")) +
         hex16(sim::derive_seed(h, "cache-file-b")) + ".vrc";
}

std::optional<browser::LoadResult> ResultCache::get(const CacheKey& key) {
  const std::string path = path_for(key);
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    count_cache_event("miss");
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string bytes = buf.str();
  const auto corrupt = [this]() -> std::optional<browser::LoadResult> {
    errors_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    count_cache_event("error");
    count_cache_event("miss");
    return std::nullopt;
  };
  if (bytes.size() < sizeof kMagic + 4 ||
      bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
    return corrupt();
  }
  std::size_t pos = sizeof kMagic;
  std::uint32_t key_len = 0;
  for (int i = 0; i < 4; ++i) {
    key_len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[pos + static_cast<
                       std::size_t>(i)]))
               << (8 * i);
  }
  pos += 4;
  if (bytes.size() - pos < key_len ||
      bytes.compare(pos, key_len, key.str()) != 0) {
    return corrupt();  // hash collision or foreign file: treat as a miss
  }
  pos += key_len;
  browser::LoadResult result;
  if (!browser::deserialize_load_result(
          std::string_view(bytes).substr(pos), &result)) {
    return corrupt();
  }
  // LRU clock for cache_gc: a hit makes the entry "recently used". Best
  // effort — a failed bump only makes the entry look older than it is.
  std::error_code ec;
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now(), ec);
  hits_.fetch_add(1, std::memory_order_relaxed);
  count_cache_event("hit");
  return result;
}

void ResultCache::put(const CacheKey& key,
                      const browser::LoadResult& result) {
  const auto warn_once = [this](const std::string& what) {
    if (!warned_.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "[cache] warning: %s; result caching degraded to "
                   "pass-through\n",
                   what.c_str());
    }
  };
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // (A failed mkdir surfaces as the open failure below.)
  const std::string final_path = path_for(key);
  // Unique temp name per (process, put): concurrent writers — even across
  // processes — never share a temp file, and rename() publishes atomically.
  const std::string tmp_path =
      final_path + ".tmp-" + std::to_string(::getpid()) + "-" +
      std::to_string(temp_seq_.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
    if (f) {
      f.write(kMagic, sizeof kMagic);
      const std::uint32_t key_len =
          static_cast<std::uint32_t>(key.str().size());
      char len_bytes[4];
      for (int i = 0; i < 4; ++i) {
        len_bytes[i] = static_cast<char>(key_len >> (8 * i));
      }
      f.write(len_bytes, 4);
      f.write(key.str().data(),
              static_cast<std::streamsize>(key.str().size()));
      const std::string payload = browser::serialize_load_result(result);
      f.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    }
    if (!f) {
      warn_once("could not write \"" + tmp_path + "\"");
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    warn_once("could not publish \"" + final_path + "\": " + ec.message());
    std::filesystem::remove(tmp_path, ec);
    return;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  count_cache_event("store");
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

namespace {

// Reads the salt generation embedded in an entry file's key: the header is
// magic + key length + key, and every key starts "v<digits>|". Returns
// nullopt for anything that does not parse — such a file can never be a hit
// and GC removes it as garbage.
std::optional<int> entry_generation(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  char header[sizeof kMagic + 4];
  if (!f.read(header, sizeof header) ||
      std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    return std::nullopt;
  }
  // The generation prefix fits in a handful of bytes; 24 is generous.
  char prefix[24];
  f.read(prefix, sizeof prefix);
  const std::streamsize got = f.gcount();
  if (got < 3 || prefix[0] != 'v') return std::nullopt;
  int version = 0;
  const auto [ptr, ec] =
      std::from_chars(prefix + 1, prefix + got, version);
  if (ec != std::errc() || ptr == prefix + 1 || ptr >= prefix + got ||
      *ptr != '|') {
    return std::nullopt;
  }
  return version;
}

}  // namespace

GcStats cache_gc(const GcPolicy& policy) {
  GcStats stats;
  std::error_code ec;
  std::filesystem::directory_iterator it(policy.dir, ec);
  if (ec) return stats;  // no directory = nothing to collect

  struct Entry {
    std::filesystem::path path;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
  };
  std::vector<Entry> live;
  std::int64_t live_bytes = 0;

  const auto remove_entry = [&stats](const Entry& e) {
    std::error_code rec;
    std::filesystem::remove(e.path, rec);
    // A failed unlink (already-raced delete) just means nothing reclaimed.
    if (!rec) stats.deleted_bytes += e.bytes;
  };

  for (const auto& dirent : it) {
    if (!dirent.is_regular_file(ec) || ec) continue;
    Entry e;
    e.path = dirent.path();
    if (e.path.extension() != ".vrc") continue;  // temp files, foreign files
    e.bytes = static_cast<std::uint64_t>(dirent.file_size(ec));
    if (ec) continue;
    e.mtime = dirent.last_write_time(ec);
    if (ec) continue;
    ++stats.scanned;
    stats.scanned_bytes += e.bytes;
    const std::optional<int> generation = entry_generation(e.path);
    if (!generation.has_value()) {
      ++stats.errors;  // unreadable/corrupt: can never hit, reclaim now
      remove_entry(e);
      continue;
    }
    if (policy.sweep_stale_generations &&
        *generation != policy.current_salt_version) {
      ++stats.stale_deleted;
      remove_entry(e);
      continue;
    }
    live_bytes += static_cast<std::int64_t>(e.bytes);
    live.push_back(std::move(e));
  }

  if (policy.max_bytes > 0 && live_bytes > policy.max_bytes) {
    // LRU: oldest mtime evicts first (get() bumps mtime on every verified
    // hit). Path breaks mtime ties so the eviction order is deterministic
    // on coarse-granularity filesystems.
    std::sort(live.begin(), live.end(), [](const Entry& a, const Entry& b) {
      return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
    });
    for (const Entry& e : live) {
      if (live_bytes <= policy.max_bytes) break;
      ++stats.evicted;
      remove_entry(e);
      live_bytes -= static_cast<std::int64_t>(e.bytes);
    }
  }
  stats.remaining_bytes = static_cast<std::uint64_t>(live_bytes);
  return stats;
}

}  // namespace vroom::harness
