#include "harness/result_cache.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>

#include "harness/env.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "sim/random.h"

namespace vroom::harness {

namespace {

constexpr char kMagic[4] = {'V', 'R', 'C', '1'};

// Registry mirrors of the per-cache stats (DESIGN.md §12). Counters add,
// so the totals stay order-independent however fleet workers interleave;
// handles are cached once — registration never sits on the hot path.
void count_cache_event(const char* which) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& hits = obs::registry().counter("cache.result.hits");
  static obs::Counter& misses =
      obs::registry().counter("cache.result.misses");
  static obs::Counter& stores =
      obs::registry().counter("cache.result.stores");
  static obs::Counter& errors =
      obs::registry().counter("cache.result.errors");
  switch (which[0]) {
    case 'h': hits.add(); break;
    case 'm': misses.add(); break;
    case 's': stores.add(); break;
    case 'e': errors.add(); break;
  }
}

// Canonical text for the profiles folded into the key. Exhaustive field
// lists: a knob that is not here would silently alias two different worlds.
void append_network(std::ostringstream& os, const net::NetworkConfig& n) {
  os << "net{down=" << n.downlink_bps << ";up=" << n.uplink_bps
     << ";cell_rtt=" << n.cellular_rtt << ";dns=" << n.dns_lookup
     << ";mss=" << n.mss_bytes << ";icwnd=" << n.init_cwnd_segments
     << ";maxcwnd=" << n.max_cwnd_segments
     << ";h2win=" << n.h2_stream_window_bytes
     << ";tls_rtts=" << n.tls_handshake_rtts << ";think=" << n.server_think
     << ";rtt_med=" << n.domain_rtt_median << ";rtt_sig=" << n.domain_rtt_sigma
     << ";rtt_min=" << n.domain_rtt_min << ";rtt_max=" << n.domain_rtt_max
     << ";loss=" << n.loss_rate << ";rto_min=" << n.rto_min
     << ";rrc=" << n.radio_promotion << ";rrc_idle=" << n.radio_idle_timeout
     << "}";
}

void append_device(std::ostringstream& os, const web::DeviceProfile& d) {
  os << "dev{" << d.name << ';' << d.screen << ';' << d.dpi << ';' << d.width
     << ';' << d.cpu_scale << "}";
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string result_cache_key(const baselines::Strategy& strategy,
                             const RunOptions& options, std::uint32_t page_id,
                             std::uint64_t nonce) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "v" << kResultCacheSaltVersion << "|seed=" << options.seed
     << "|page=" << page_id << "|nonce=" << nonce << "|when=" << options.when
     << "|user=" << options.user << "|timeout=" << options.timeout << "|";
  // The network the load actually sees: the CPU-bottleneck strategy
  // overrides the run's profile with the USB-tethered one.
  const net::NetworkConfig effective =
      strategy.local_network ? net::NetworkConfig::local_usb()
                             : options.network.value_or(net::NetworkConfig::
                                                            lte());
  append_network(os, effective);
  os << "|";
  append_device(os, options.device);
  os << "|" << strategy.fingerprint();
  return os.str();
}

bool result_cache_usable(const RunOptions& options) {
  if (options.cache != nullptr) return false;  // order-dependent warm cache
  if (options.trace_sink) return false;        // per-load side effects
  if (Env::from_environment().trace_enabled()) {
    return false;  // ditto (JSON per load)
  }
  return true;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::unique_ptr<ResultCache> ResultCache::from_env() {
  std::string dir = Env::from_environment().result_cache_dir;
  if (dir.empty()) return nullptr;
  return std::make_unique<ResultCache>(std::move(dir));
}

std::string ResultCache::path_for(const std::string& key) const {
  // 128 bits of key hash: two independent purpose-tagged derivations of the
  // same FNV digest. The full key inside the file disambiguates residual
  // collisions.
  const std::uint64_t h = sim::hash64(key);
  return dir_ + "/" + hex16(sim::derive_seed(h, "cache-file-a")) +
         hex16(sim::derive_seed(h, "cache-file-b")) + ".vrc";
}

std::optional<browser::LoadResult> ResultCache::get(const std::string& key) {
  std::ifstream f(path_for(key), std::ios::binary);
  if (!f) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    count_cache_event("miss");
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string bytes = buf.str();
  const auto corrupt = [this]() -> std::optional<browser::LoadResult> {
    errors_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    count_cache_event("error");
    count_cache_event("miss");
    return std::nullopt;
  };
  if (bytes.size() < sizeof kMagic + 4 ||
      bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
    return corrupt();
  }
  std::size_t pos = sizeof kMagic;
  std::uint32_t key_len = 0;
  for (int i = 0; i < 4; ++i) {
    key_len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[pos + static_cast<
                       std::size_t>(i)]))
               << (8 * i);
  }
  pos += 4;
  if (bytes.size() - pos < key_len ||
      bytes.compare(pos, key_len, key) != 0) {
    return corrupt();  // hash collision or foreign file: treat as a miss
  }
  pos += key_len;
  browser::LoadResult result;
  if (!browser::deserialize_load_result(
          std::string_view(bytes).substr(pos), &result)) {
    return corrupt();
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  count_cache_event("hit");
  return result;
}

void ResultCache::put(const std::string& key,
                      const browser::LoadResult& result) {
  const auto warn_once = [this](const std::string& what) {
    if (!warned_.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "[cache] warning: %s; result caching degraded to "
                   "pass-through\n",
                   what.c_str());
    }
  };
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // (A failed mkdir surfaces as the open failure below.)
  const std::string final_path = path_for(key);
  // Unique temp name per (process, put): concurrent writers — even across
  // processes — never share a temp file, and rename() publishes atomically.
  const std::string tmp_path =
      final_path + ".tmp-" + std::to_string(::getpid()) + "-" +
      std::to_string(temp_seq_.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
    if (f) {
      f.write(kMagic, sizeof kMagic);
      const std::uint32_t key_len = static_cast<std::uint32_t>(key.size());
      char len_bytes[4];
      for (int i = 0; i < 4; ++i) {
        len_bytes[i] = static_cast<char>(key_len >> (8 * i));
      }
      f.write(len_bytes, 4);
      f.write(key.data(), static_cast<std::streamsize>(key.size()));
      const std::string payload = browser::serialize_load_result(result);
      f.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    }
    if (!f) {
      warn_once("could not write \"" + tmp_path + "\"");
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    warn_once("could not publish \"" + final_path + "\": " + ec.message());
    std::filesystem::remove(tmp_path, ec);
    return;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  count_cache_event("store");
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace vroom::harness
