// Experiment runner: composes a full page-load session (event loop, network,
// realized page instance, replay store, origin farm, connection pool,
// browser, policies) for one (page, strategy) pair, and sweeps corpora the
// way the paper does — each page loaded three times, reporting the load with
// the median PLT.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baselines/strategies.h"
#include "browser/browser.h"
#include "trace/trace.h"
#include "web/corpus.h"

namespace vroom::harness {

struct RunOptions {
  std::uint64_t seed = 42;
  // Wall time of the load: far enough in that every rotation class has
  // cycled many times.
  sim::Time when = sim::days(45);
  web::DeviceProfile device = web::nexus6();
  std::uint32_t user = 1;
  int loads_per_page = 3;
  sim::Time timeout = sim::seconds(120);
  browser::Cache* cache = nullptr;  // persistent cache for warm-load runs
  // Access-network profile; defaults to the paper's good-signal LTE. The
  // CPU-bottleneck lower-bound strategy always overrides this with the
  // USB-tethered profile.
  std::optional<net::NetworkConfig> network;
  // Programmatic tracing: when set, every load runs with a trace::Recorder
  // attached and the recorder is handed here after the load finishes (the
  // recorder cannot be supplied up front — it must bind to the per-load
  // event loop built inside run_page_load). Independently, VROOM_TRACE=<dir>
  // enables recording and writes one Chrome-trace JSON file per load.
  std::function<void(const trace::Recorder&)> trace_sink;
};

// One load of one page under one strategy.
browser::LoadResult run_page_load(const web::PageModel& page,
                                  const baselines::Strategy& strategy,
                                  const RunOptions& options,
                                  std::uint64_t nonce);

// The paper's per-page procedure: N loads, keep the median-PLT load.
browser::LoadResult run_page_median(const web::PageModel& page,
                                    const baselines::Strategy& strategy,
                                    const RunOptions& options);

// The per-load instance nonce, shared by run_page_median, the fleet worker
// loop, and every test that reconstructs a load: (seed, page id, load index)
// mixed through two independent sim::derive_seed stages. The historical
// `seed ^ page_id` fold collided whenever two (seed, page) pairs XOR-ed
// equal, silently giving such loads identical realized instances.
std::uint64_t derive_load_nonce(std::uint64_t seed, std::uint32_t page_id,
                                int load_index);

// Median selection shared by run_page_median and the parallel fleet:
// stable-sorts by PLT and keeps the middle load. `runs` must be in
// load-index order so both paths sort identical input and stay
// bit-identical; stability makes PLT ties resolve to the lower load index
// rather than an implementation-defined pick.
browser::LoadResult select_median_load(std::vector<browser::LoadResult> runs);

struct CorpusResult {
  std::string strategy;
  std::vector<browser::LoadResult> loads;  // one per page

  std::vector<double> plt_seconds() const;
  std::vector<double> aft_seconds() const;
  std::vector<double> speed_indices() const;
  std::vector<double> net_wait_fractions() const;
  // Sums each load's trace-counter snapshot across the corpus (median loads
  // only, matching `loads`); empty when tracing was disabled.
  std::vector<std::pair<std::string, std::int64_t>> counter_totals() const;
};

// Stable versioned LE binary (de)serialization of a CorpusResult — the
// strategy label plus every per-page LoadResult, each through the
// browser::serialize_load_result wire format (length-prefixed so the
// framing survives LoadResult format evolution). This is the payload of a
// shard cell file (DESIGN.md §14): a shard process publishes each owned
// cell's CorpusResult and fleet::merge_shards reassembles them
// byte-identically to a single-process run. deserialize_corpus_result
// returns false (leaving *out unspecified) on truncation, trailing bytes,
// or any version mismatch.
std::string serialize_corpus_result(const CorpusResult& r);
bool deserialize_corpus_result(std::string_view bytes, CorpusResult* out);

// Sweeps the corpus under one strategy. Defined in fleet/fleet.cpp: the
// sweep runs on the parallel fleet, with worker count taken from VROOM_JOBS
// (default: hardware concurrency; VROOM_JOBS=1 preserves the serial order).
// Results are bit-identical regardless of worker count.
CorpusResult run_corpus(const web::Corpus& corpus,
                        const baselines::Strategy& strategy,
                        const RunOptions& options);

// Honors VROOM_BENCH_PAGES (environment) to cap corpus size for quick runs;
// returns `n` unchanged when unset. Malformed or non-positive values are
// rejected with a warning on stderr.
int effective_page_count(int n);

}  // namespace vroom::harness
