#include "harness/stats.h"

#include <algorithm>
#include <cmath>

namespace vroom::harness {

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

Quartiles quartiles(const std::vector<double>& values) {
  return Quartiles{percentile(values, 25.0), percentile(values, 50.0),
                   percentile(values, 75.0)};
}

}  // namespace vroom::harness
