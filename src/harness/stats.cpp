#include "harness/stats.h"

#include <algorithm>
#include <cmath>

namespace vroom::harness {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

Quartiles quartiles(const std::vector<double>& values) {
  return Quartiles{percentile(values, 25.0), percentile(values, 50.0),
                   percentile(values, 75.0)};
}

}  // namespace vroom::harness
