#include "harness/experiment.h"

#include <algorithm>
#include <map>
#include <memory>

#include "core/client_scheduler.h"
#include "harness/env.h"
#include "harness/export.h"
#include "harness/stats.h"
#include "http/connection_pool.h"
#include "obs/phase_profiler.h"
#include "server/origin_server.h"
#include "sim/arena.h"
#include "sim/random.h"
#include "trace/trace.h"

namespace vroom::harness {

int effective_page_count(int n) {
  return Env::from_environment().effective_page_count(n);
}

browser::LoadResult run_page_load(const web::PageModel& page,
                                  const baselines::Strategy& strategy,
                                  const RunOptions& options,
                                  std::uint64_t nonce) {
  // Wall-clock phase attribution (VROOM_PROFILE / DESIGN.md §12): the outer
  // span charges everything in this function to world-build except the
  // nested intern / sim / trace-flush spans, whose time is subtracted by
  // the profiler's self-time accounting. Virtual-time behaviour is
  // identical with profiling on or off.
  obs::PhaseTimer build_phase(obs::Phase::WorldBuild);
  // Pooled: reuses a thread-local EventLoop's heap/slab backing storage
  // across the thousands of loads a worker runs, instead of reallocating it
  // from scratch per load.
  sim::PooledEventLoop pooled;
  sim::EventLoop& loop = *pooled;
  // Pooled bump arena for everything with per-load lifetime (interner
  // storage, instance tables, browser fetch/task state). Declared before
  // the world objects so they die before the arena returns to the pool and
  // resets; consecutive loads on a worker then rebuild their world inside
  // the chunks this load grew (DESIGN.md §13).
  sim::PooledArena arena;
  const net::NetworkConfig ncfg =
      strategy.local_network
          ? net::NetworkConfig::local_usb()
          : options.network.value_or(net::NetworkConfig::lte());
  // Per-domain RTT draws depend only on (seed, page), so every strategy sees
  // the same network conditions for the same page. The XOR fold here can
  // alias two (seed, page) pairs onto one RTT stream, but unlike the load
  // nonce (see derive_load_nonce) that is a benign correlation: the draw is
  // still a pure function of (seed, page), so reproducibility — and the
  // result-cache key, which carries seed and page separately — is unaffected.
  net::Network network(loop, ncfg,
                       sim::derive_seed(options.seed ^ page.page_id(), "rtt"));

  web::LoadIdentity ident;
  ident.wall_time = options.when;
  ident.device = options.device;
  ident.user = options.user;
  ident.nonce = nonce;
  std::optional<web::PageInstance> instance_storage;
  {
    // Instance realization is the parse-and-intern phase: resource
    // rotation, URL/domain interning, per-load tables.
    obs::PhaseTimer intern_phase(obs::Phase::Intern);
    instance_storage.emplace(page, ident, arena.get());
  }
  const web::PageInstance& instance = *instance_storage;

  server::ReplayStore store(instance);
  server::ServerFarm farm(store);

  // Tracing: off unless VROOM_TRACE=<dir> is set or the caller supplied a
  // sink. The recorder attaches itself to this load's event loop, so every
  // layer's hooks (null-checked pointer reads) start emitting.
  const std::string trace_dir = Env::from_environment().trace_dir;
  const bool trace_to_dir = !trace_dir.empty();
  std::unique_ptr<trace::Recorder> recorder;
  if (trace_to_dir || options.trace_sink) {
    recorder = std::make_unique<trace::Recorder>(loop);
    farm.set_recorder(recorder.get());
  }

  std::unique_ptr<core::VroomProvider> provider;
  if (strategy.server_aid) {
    provider = std::make_unique<core::VroomProvider>(store, strategy.provider);
    if (strategy.first_party_only) {
      farm.set_provider_first_party_only(provider.get());
    } else {
      farm.set_provider_for_all(provider.get());
    }
  }
  if (options.cache != nullptr) {
    browser::Cache* cache = options.cache;
    farm.set_cache_digest([cache, &ident, &loop](const std::string& url) {
      return cache->fresh(url, ident.wall_time + loop.now());
    });
  }

  browser::Browser* browser_ptr = nullptr;
  http::PushObserver observer;
  observer.on_promise = [&browser_ptr](const std::string& url,
                                       std::int64_t bytes) {
    if (browser_ptr != nullptr) browser_ptr->on_push_promise(url, bytes);
  };
  observer.on_complete = [&browser_ptr](const std::string& url,
                                        std::int64_t bytes) {
    if (browser_ptr != nullptr) browser_ptr->on_push_complete(url, bytes);
  };

  const http::Protocol proto = strategy.protocol;
  http::ConnectionPool pool(
      network,
      [&farm](const std::string& domain) -> http::RequestHandler& {
        return farm.server(domain);
      },
      [proto](const std::string&) { return proto; }, observer,
      strategy.ordered_writer ? net::WriterDiscipline::Ordered
                              : net::WriterDiscipline::RoundRobin);

  std::unique_ptr<browser::FetchPolicy> policy =
      baselines::make_policy(strategy);

  browser::LoadConfig lc;
  lc.cpu = strategy.zero_cpu ? browser::CpuCosts::zero()
                             : browser::CpuCosts::nexus6();
  lc.cpu.device_scale = options.device.cpu_scale;
  lc.know_all_upfront = strategy.know_all_upfront;
  lc.cache = options.cache;
  lc.policy = policy.get();

  browser::Browser browser(network, pool, instance, lc);
  browser_ptr = &browser;
  browser.start();
  std::size_t executed = 0;
  {
    obs::PhaseTimer sim_phase(obs::Phase::Sim);
    executed = loop.run(options.timeout);
  }

  browser::LoadResult result = browser.result();
  result.sim_events = static_cast<std::int64_t>(executed);
  if (!result.finished) {
    // Timed out: report the timeout as the PLT so tails stay visible.
    result.plt = options.timeout;
    result.aft = options.timeout;
  }
  if (recorder) {
    obs::PhaseTimer flush_phase(obs::Phase::TraceFlush);
    const auto& values = recorder->counters().values();
    result.trace_counters.assign(values.begin(), values.end());
    if (options.trace_sink) options.trace_sink(*recorder);
    if (trace_to_dir) {
      // One file per load, named by job identity so any VROOM_JOBS worker
      // assignment produces the same set of files.
      recorder->write_json(trace_dir + "/trace_" + slugify(strategy.name) +
                           "_p" + std::to_string(page.page_id()) + "_n" +
                           std::to_string(nonce) + ".json");
    }
  }
  return result;
}

std::uint64_t derive_load_nonce(std::uint64_t seed, std::uint32_t page_id,
                                int load_index) {
  return sim::derive_seed(sim::derive_seed(seed, page_id),
                          "load-nonce-" + std::to_string(load_index));
}

browser::LoadResult select_median_load(std::vector<browser::LoadResult> runs) {
  // stable_sort: `runs` arrives in load-index order, so PLT ties resolve to
  // the lower load index on every path (serial or fleet, any worker count)
  // instead of whatever an unstable sort's implementation picks.
  std::stable_sort(runs.begin(), runs.end(),
                   [](const browser::LoadResult& a,
                      const browser::LoadResult& b) { return a.plt < b.plt; });
  return std::move(runs[runs.size() / 2]);
}

browser::LoadResult run_page_median(const web::PageModel& page,
                                    const baselines::Strategy& strategy,
                                    const RunOptions& options) {
  std::vector<browser::LoadResult> runs;
  runs.reserve(static_cast<std::size_t>(options.loads_per_page));
  for (int i = 0; i < options.loads_per_page; ++i) {
    const std::uint64_t nonce = derive_load_nonce(options.seed,
                                                  page.page_id(), i);
    runs.push_back(run_page_load(page, strategy, options, nonce));
  }
  return select_median_load(std::move(runs));
}

// run_corpus is defined in fleet/fleet.cpp — the sweep executes on the
// parallel fleet (VROOM_JOBS workers) and stays bit-identical to this
// file's serial per-page procedure.

std::vector<double> CorpusResult::plt_seconds() const {
  std::vector<double> v;
  v.reserve(loads.size());
  for (const auto& r : loads) v.push_back(sim::to_seconds(r.plt));
  return v;
}

std::vector<double> CorpusResult::aft_seconds() const {
  std::vector<double> v;
  v.reserve(loads.size());
  for (const auto& r : loads) v.push_back(sim::to_seconds(r.aft));
  return v;
}

std::vector<double> CorpusResult::speed_indices() const {
  std::vector<double> v;
  v.reserve(loads.size());
  for (const auto& r : loads) v.push_back(r.speed_index_ms);
  return v;
}

std::vector<double> CorpusResult::net_wait_fractions() const {
  std::vector<double> v;
  v.reserve(loads.size());
  for (const auto& r : loads) v.push_back(r.net_wait_fraction());
  return v;
}

std::vector<std::pair<std::string, std::int64_t>>
CorpusResult::counter_totals() const {
  std::map<std::string, std::int64_t> totals;
  for (const auto& r : loads) {
    for (const auto& [name, value] : r.trace_counters) totals[name] += value;
  }
  return {totals.begin(), totals.end()};
}

namespace {

// Same wire idiom as browser/metrics.cpp: fixed-width little-endian
// integers, length-prefixed strings, a leading format version.
constexpr std::uint32_t kCorpusResultFormatVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool take_u32(std::string_view& in, std::uint32_t* v) {
  if (in.size() < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
          << (8 * i);
  }
  in.remove_prefix(4);
  return true;
}

}  // namespace

std::string serialize_corpus_result(const CorpusResult& r) {
  std::string out;
  put_u32(out, kCorpusResultFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(r.strategy.size()));
  out.append(r.strategy);
  put_u32(out, static_cast<std::uint32_t>(r.loads.size()));
  for (const auto& load : r.loads) {
    // Each load is framed by its own length so this format survives
    // LoadResult wire evolution without reparsing knowledge of its fields.
    const std::string payload = browser::serialize_load_result(load);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
  }
  return out;
}

bool deserialize_corpus_result(std::string_view bytes, CorpusResult* out) {
  std::uint32_t version = 0;
  if (!take_u32(bytes, &version) || version != kCorpusResultFormatVersion) {
    return false;
  }
  std::uint32_t strategy_len = 0;
  if (!take_u32(bytes, &strategy_len) || bytes.size() < strategy_len) {
    return false;
  }
  CorpusResult result;
  result.strategy.assign(bytes.substr(0, strategy_len));
  bytes.remove_prefix(strategy_len);
  std::uint32_t n_loads = 0;
  if (!take_u32(bytes, &n_loads)) return false;
  result.loads.reserve(n_loads);
  for (std::uint32_t i = 0; i < n_loads; ++i) {
    std::uint32_t payload_len = 0;
    if (!take_u32(bytes, &payload_len) || bytes.size() < payload_len) {
      return false;
    }
    browser::LoadResult load;
    // The nested deserializer enforces exact consumption of its slice, so a
    // mis-framed payload fails here instead of shifting later loads.
    if (!browser::deserialize_load_result(bytes.substr(0, payload_len),
                                          &load)) {
      return false;
    }
    result.loads.push_back(std::move(load));
    bytes.remove_prefix(payload_len);
  }
  if (!bytes.empty()) return false;  // trailing garbage
  *out = std::move(result);
  return true;
}

}  // namespace vroom::harness
