// Machine-readable result export (CSV) so figure data can be plotted with
// external tooling. Benches honour VROOM_OUT_DIR: when set, each printed
// table is also written as `<dir>/<slug>.csv`.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "browser/metrics.h"
#include "harness/report.h"

namespace vroom::harness {

// "Figure 13 (a) Page Load Time" -> "figure_13_a_page_load_time".
std::string slugify(const std::string& title);

// One column per series, rows are the raw per-page values (padded rows are
// omitted when series lengths differ). Returns the CSV text. Doubles are
// printed with max_digits10 so every value round-trips exactly.
std::string series_to_csv(const std::vector<Series>& series);

// Writes CSV, creating parent directories as needed (mkdir -p semantics).
// Returns false and warns on stderr on I/O failure.
bool write_csv(const std::string& path, const std::string& csv);

// If VROOM_OUT_DIR is set, writes `series` as <dir>/<slugify(title)>.csv.
void maybe_export(const std::string& title,
                  const std::vector<Series>& series);

// Trace-counter totals (e.g. CorpusResult::counter_totals()) as two-column
// name,value CSV.
std::string counters_to_csv(
    const std::vector<std::pair<std::string, std::int64_t>>& counters);

// If VROOM_OUT_DIR is set and `counters` is non-empty, writes it as
// <dir>/<slugify(title)>.csv.
void maybe_export_counters(
    const std::string& title,
    const std::vector<std::pair<std::string, std::int64_t>>& counters);

// Per-resource timing dump of one load (waterfall analysis in spreadsheets).
std::string timings_to_csv(const browser::LoadResult& result);

}  // namespace vroom::harness
