#include "server/origin_server.h"

#include <cassert>

#include "web/url.h"

namespace vroom::server {

OriginServer::OriginServer(std::string domain, const ReplayStore& store)
    : domain_(std::move(domain)), store_(store) {}

http::ServerReply OriginServer::handle(const http::Request& req) {
  ++requests_served_;
  if (recorder_) recorder_->counters().add("server.requests");
  http::ServerReply reply;
  auto entry = store_.lookup(req);
  if (!entry) {
    reply.body_bytes = 500;  // error page
    return reply;
  }
  assert(web::url_domain_view(req.url) == domain_);

  if (req.conditional && entry->current) {
    // The cached copy is still the live version of this slot.
    reply.not_modified = true;
    if (recorder_) {
      recorder_->instant(trace::Layer::Server, domain_, "origin",
                         "revalidate.304", {trace::arg("url", req.url)});
      recorder_->counters().add("server.revalidations_304");
    }
    return reply;
  }
  reply.body_bytes = entry->size;
  reply.extra_delay = extra_think_;

  if (provider_ && entry->type == web::ResourceType::Html) {
    DependencyAdvice advice = provider_->advise(domain_, req);
    reply.hints = std::move(advice.hints);
    reply.extra_delay += advice.extra_delay;
    if (recorder_ && !reply.hints.empty()) {
      recorder_->instant(
          trace::Layer::Server, domain_, "origin", "hints.attached",
          {trace::arg("url", req.url),
           trace::arg("count",
                      static_cast<std::int64_t>(reply.hints.hints.size()))});
      recorder_->counters().add(
          "server.hints_attached",
          static_cast<std::int64_t>(reply.hints.hints.size()));
    }
    for (http::PushItem& p : advice.pushes) {
      // A domain can only securely push content it owns, and skips content
      // the client's cache digest says it already holds.
      const bool cross_domain = web::url_domain_view(p.url) != domain_;
      const bool in_digest = !cross_domain && digest_ && digest_(p.url);
      const bool do_push = !cross_domain && !in_digest;
      if (recorder_) {
        const char* decision = do_push ? "push"
                               : cross_domain ? "skip:cross-domain"
                                              : "skip:cache-digest";
        recorder_->instant(trace::Layer::Server, domain_, "origin",
                           "push.decision",
                           {trace::arg("url", p.url),
                            trace::arg("decision", decision),
                            trace::arg("policy", advice.push_policy)});
        if (do_push) {
          recorder_->counters().add("server.pushes_issued");
          recorder_->counters().add("server.push_bytes", p.body_bytes);
        } else if (cross_domain) {
          recorder_->counters().add("server.pushes_skipped_cross_domain");
        } else {
          recorder_->counters().add("server.pushes_skipped_digest");
        }
      }
      if (!do_push) continue;
      push_bytes_ += p.body_bytes;
      reply.pushes.push_back(std::move(p));
    }
  }
  return reply;
}

OriginServer& ServerFarm::server(const std::string& domain) {
  auto it = servers_.find(domain);
  if (it != servers_.end()) return *it->second;
  auto s = std::make_unique<OriginServer>(domain, store_);
  configure(*s, domain);
  auto [pos, _] = servers_.emplace(domain, std::move(s));
  return *pos->second;
}

void ServerFarm::configure(OriginServer& s, const std::string& domain) {
  const bool aid =
      provider_ != nullptr &&
      (!first_party_only_ ||
       store_.instance().model().is_first_party_org(domain));
  s.set_provider(aid ? provider_ : nullptr);
  if (digest_) s.set_cache_digest(digest_);
  s.set_recorder(recorder_);
  // Ad exchanges and tag managers run auctions/matching on each request;
  // their first-byte latency is far above a static origin's.
  if (domain.rfind("ads", 0) == 0 || domain.rfind("tag", 0) == 0) {
    s.set_extra_think(sim::ms(80));
  }
}

void ServerFarm::set_provider_for_all(DependencyProvider* provider) {
  provider_ = provider;
  first_party_only_ = false;
  for (auto& [dom, s] : servers_) configure(*s, dom);
}

void ServerFarm::set_provider_first_party_only(DependencyProvider* provider) {
  provider_ = provider;
  first_party_only_ = true;
  for (auto& [dom, s] : servers_) configure(*s, dom);
}

void ServerFarm::set_cache_digest(OriginServer::CacheDigest digest) {
  digest_ = std::move(digest);
  for (auto& [dom, s] : servers_) configure(*s, dom);
}

void ServerFarm::set_recorder(trace::Recorder* recorder) {
  recorder_ = recorder;
  for (auto& [dom, s] : servers_) s->set_recorder(recorder);
}

}  // namespace vroom::server
