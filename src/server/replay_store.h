// Record-and-replay content store (the Mahimahi role in the paper's setup).
//
// A store is built around one realized `PageInstance` — the "recorded" page.
// It can also serve *stale* URLs from other realizations of the same page
// (e.g. a client fetching a last-hour story image because of an outdated
// dependency hint), just as a real origin keeps recently rotated content
// addressable.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "http/message.h"
#include "web/page_instance.h"

namespace vroom::server {

class ReplayStore {
 public:
  explicit ReplayStore(const web::PageInstance& instance)
      : instance_(&instance) {}

  struct Entry {
    std::int64_t size = 0;
    web::ResourceType type = web::ResourceType::Other;
    bool current = false;  // part of the recorded instance (vs stale version)
    std::uint32_t template_id = 0;
  };

  // Resolves a URL to servable content; nullopt if the URL does not belong
  // to this page at all.
  std::optional<Entry> lookup(std::string_view url) const;

  // Request overload: when the request carries the page world's interned
  // UrlId (the common case — the store and the client share the instance's
  // interner), current-content hits resolve with one vector index instead of
  // hashing the URL. Stale/foreign URLs fall back to the string path.
  std::optional<Entry> lookup(const http::Request& req) const;

  const web::PageInstance& instance() const { return *instance_; }

 private:
  const web::PageInstance* instance_;
};

}  // namespace vroom::server
