#include "server/replay_store.h"

namespace vroom::server {

std::optional<ReplayStore::Entry> ReplayStore::lookup(
    const http::Request& req) const {
  if (req.url_id != web::kInvalidId) {
    if (auto id = instance_->template_of(req.url_id)) {
      Entry e;
      e.size = instance_->resource(*id).size;
      e.type = instance_->model().resource(*id).type;
      e.current = true;
      e.template_id = *id;
      return e;
    }
  }
  return lookup(req.url);
}

std::optional<ReplayStore::Entry> ReplayStore::lookup(
    std::string_view url) const {
  if (auto id = instance_->find_by_url(url)) {
    Entry e;
    e.size = instance_->resource(*id).size;
    e.type = instance_->model().resource(*id).type;
    e.current = true;
    e.template_id = *id;
    return e;
  }
  // Stale realization of a known slot.
  if (auto size = web::servable_size(instance_->model(), url)) {
    auto parsed = web::parse_url(url);
    Entry e;
    e.size = *size;
    e.type = instance_->model().resource(parsed->resource_id).type;
    e.current = false;
    e.template_id = parsed->resource_id;
    return e;
  }
  return std::nullopt;
}

}  // namespace vroom::server
