// Origin web server for one domain.
//
// Serves recorded content from the ReplayStore and, when configured as
// VROOM-compliant, consults a DependencyProvider on document requests to
// attach dependency hints and schedule same-domain content pushes. Pushes
// are filtered against the client's cache digest (footnote 2 of the paper:
// clients summarize cache contents in a cookie so servers skip pushing
// cached resources).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "http/message.h"
#include "server/replay_store.h"
#include "trace/trace.h"

namespace vroom::server {

struct DependencyAdvice {
  http::HintSet hints;
  std::vector<http::PushItem> pushes;  // must be same-domain content
  sim::Time extra_delay = 0;           // e.g. on-the-fly HTML analysis
  // Label of the push-selection policy that produced `pushes`; surfaced in
  // push.decision trace events.
  const char* push_policy = "none";
};

// Implemented by core/VroomServerPolicy and the baseline providers.
class DependencyProvider {
 public:
  virtual ~DependencyProvider() = default;
  // `domain` is the origin consulting the provider; `req.url` the document
  // being served.
  virtual DependencyAdvice advise(const std::string& domain,
                                  const http::Request& req) = 0;
};

class OriginServer : public http::RequestHandler {
 public:
  using CacheDigest = std::function<bool(const std::string& url)>;

  OriginServer(std::string domain, const ReplayStore& store);

  const std::string& domain() const { return domain_; }

  // nullptr disables server aid (plain HTTP/1.1-or-2 origin).
  void set_provider(DependencyProvider* provider) { provider_ = provider; }
  void set_cache_digest(CacheDigest digest) { digest_ = std::move(digest); }
  // Additional backend latency per request (ad exchanges run auctions).
  void set_extra_think(sim::Time t) { extra_think_ = t; }
  // nullptr (the default) disables tracing; the recorder outlives the farm.
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

  http::ServerReply handle(const http::Request& req) override;

  int requests_served() const { return requests_served_; }
  std::int64_t push_bytes() const { return push_bytes_; }

 private:
  std::string domain_;
  const ReplayStore& store_;
  DependencyProvider* provider_ = nullptr;
  CacheDigest digest_;
  trace::Recorder* recorder_ = nullptr;
  sim::Time extra_think_ = 0;
  int requests_served_ = 0;
  std::int64_t push_bytes_ = 0;
};

// All origins participating in one page load, keyed by domain.
class ServerFarm {
 public:
  explicit ServerFarm(const ReplayStore& store) : store_(store) {}

  // Lazily creates the origin for a domain.
  OriginServer& server(const std::string& domain);

  // Applies a provider/digest to every origin created now or later.
  void set_provider_for_all(DependencyProvider* provider);
  // Restricts server aid to the first-party organization of the page
  // (incremental-deployment study, §6.1).
  void set_provider_first_party_only(DependencyProvider* provider);
  void set_cache_digest(OriginServer::CacheDigest digest);
  // Applies a trace recorder to every origin created now or later.
  void set_recorder(trace::Recorder* recorder);

 private:
  void configure(OriginServer& s, const std::string& domain);

  const ReplayStore& store_;
  std::map<std::string, std::unique_ptr<OriginServer>> servers_;
  DependencyProvider* provider_ = nullptr;
  bool first_party_only_ = false;
  OriginServer::CacheDigest digest_;
  trace::Recorder* recorder_ = nullptr;
};

}  // namespace vroom::server
