#include "net/network.h"

#include <algorithm>

namespace vroom::net {

NetworkConfig NetworkConfig::lte() { return NetworkConfig{}; }

NetworkConfig NetworkConfig::lte_loaded() {
  NetworkConfig c;
  c.downlink_bps = 3e6;
  c.uplink_bps = 1.5e6;
  c.cellular_rtt = sim::ms(90);
  return c;
}

NetworkConfig NetworkConfig::wifi() {
  NetworkConfig c;
  c.downlink_bps = 40e6;
  c.uplink_bps = 20e6;
  c.cellular_rtt = sim::ms(10);
  return c;
}

NetworkConfig NetworkConfig::threeg() {
  NetworkConfig c;
  c.downlink_bps = 1.6e6;
  c.uplink_bps = 0.8e6;
  c.cellular_rtt = sim::ms(150);
  return c;
}

NetworkConfig NetworkConfig::local_usb() {
  NetworkConfig c;
  c.downlink_bps = 1e9;
  c.uplink_bps = 1e9;
  c.cellular_rtt = sim::us(200);
  c.dns_lookup = 0;
  c.tls_handshake_rtts = 0;
  c.server_think = 0;
  c.domain_rtt_median = sim::us(100);
  c.domain_rtt_min = sim::us(50);
  c.domain_rtt_max = sim::us(200);
  return c;
}

Network::Network(sim::EventLoop& loop, NetworkConfig config,
                 std::uint64_t rtt_seed)
    : loop_(loop),
      config_(config),
      downlink_(loop, config.downlink_bps, "downlink"),
      uplink_(loop, config.uplink_bps, "uplink"),
      rtt_seed_(rtt_seed) {
  if (config_.loss_rate > 0) {
    loss_rng_ = std::make_unique<sim::Rng>(rtt_seed, "segment-loss");
  }
}

sim::Time Network::radio_wakeup_delay() {
  if (config_.radio_promotion <= 0) return 0;
  const sim::Time now = loop_.now();
  const sim::Time delay =
      now > radio_active_until_ + config_.radio_idle_timeout
          ? config_.radio_promotion
          : 0;
  radio_active_until_ = now + delay;
  return delay;
}

bool Network::draw_loss() {
  if (!loss_rng_) return false;
  return loss_rng_->chance(config_.loss_rate);
}

sim::Time Network::rtt(const std::string& domain) {
  auto it = rtt_cache_.find(domain);
  if (it != rtt_cache_.end()) return it->second;
  sim::Rng rng(rtt_seed_, "domain_rtt:" + domain);
  auto wide_area = static_cast<sim::Time>(
      rng.lognormal(static_cast<double>(config_.domain_rtt_median),
                    config_.domain_rtt_sigma));
  wide_area = std::clamp(wide_area, config_.domain_rtt_min,
                         config_.domain_rtt_max);
  const sim::Time total = config_.cellular_rtt + wide_area;
  rtt_cache_.emplace(domain, total);
  return total;
}

namespace {
constexpr sim::Time kRttUnset = INT64_MIN;
}  // namespace

sim::Time Network::rtt(std::uint32_t domain_id, const std::string& domain) {
  if (domain_id == 0xffffffffu) return rtt(domain);
  if (domain_id < rtt_by_id_.size() && rtt_by_id_[domain_id] != kRttUnset) {
    return rtt_by_id_[domain_id];
  }
  const sim::Time total = rtt(domain);
  if (domain_id >= rtt_by_id_.size()) {
    rtt_by_id_.resize(domain_id + 1, kRttUnset);
  }
  rtt_by_id_[domain_id] = total;
  return total;
}

void Network::set_rtt(const std::string& domain, sim::Time rtt) {
  rtt_cache_[domain] = rtt;
  // Drop the id overlay: ids are not recorded against domains here, so the
  // conservative invalidation is to forget every memoized entry.
  rtt_by_id_.assign(rtt_by_id_.size(), kRttUnset);
}

}  // namespace vroom::net
