// TCP connection model with stream-aware send scheduling.
//
// Models the pieces of TCP that shape page-load timing on an LTE access
// link: DNS lookup, 3-way handshake, TLS setup RTTs, slow start from an
// initial window, and in-order byte delivery through the shared bottleneck
// (`Network::downlink`). Loss is not modeled — the paper's replay runs over
// a good-signal LTE hotspot where retransmissions are rare; see DESIGN.md.
//
// Server-to-client data is enqueued as `Chunk`s tagged with a stream id.
// Two writer disciplines are supported:
//   * RoundRobin — segments alternate across active streams, approximating
//     HTTP/2 frame multiplexing (the baseline behaviour);
//   * Ordered   — streams drain strictly in first-write order, the ordered
//     response writer Vroom adds to Mahimahi (§5.1).
// HTTP/1.1 uses a single stream per connection, where the two coincide.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.h"

namespace vroom::net {

enum class WriterDiscipline : std::uint8_t { RoundRobin, Ordered };

class TcpConnection {
 public:
  struct Chunk {
    std::int64_t bytes = 0;
    std::function<void()> on_first_byte;  // first segment delivered (headers)
    std::function<void()> on_delivered;   // all bytes delivered
  };

  // `needs_dns` should be true for the first connection to a domain within a
  // page load. `domain_id` (an interner id, see web/intern.h) lets the RTT
  // lookup skip the string map; 0xffffffff means "unknown" and falls back.
  TcpConnection(Network& net, std::string domain, bool needs_dns,
                WriterDiscipline discipline = WriterDiscipline::Ordered,
                std::uint32_t domain_id = 0xffffffffu);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  const std::string& domain() const { return domain_; }
  sim::Time rtt() const { return rtt_; }
  bool established() const { return established_; }
  // Trace lane for this connection ("conn#<n>"), stable across worker
  // counts because connection ids follow event-loop creation order.
  const std::string& lane() const { return lane_; }

  // Performs DNS + TCP handshake + TLS setup, then fires `on_established`.
  // Must be called exactly once.
  void connect(std::function<void()> on_established);

  // Per-stream flow-control window; defaults to the network config's value.
  // Multi-stream (HTTP/2) connections enforce it; single-stream HTTP/1.1
  // connections pass 0 to disable.
  void set_stream_window(std::int64_t bytes) { stream_window_ = bytes; }

  // Client -> server. `deliver_at_server` fires when the request reaches the
  // origin (uplink serialization + half RTT). Valid once established.
  void send_request(std::int64_t bytes,
                    std::function<void()> deliver_at_server);

  // Server -> client. Chunks within one stream drain FIFO; across streams
  // the writer discipline decides: RoundRobin serves the highest-priority
  // active streams first (HTTP/2 priority tree), cycling within a priority;
  // Ordered ignores priority and drains streams in first-write order.
  void send_chunk(std::uint32_t stream_id, int priority, Chunk chunk);
  void send_chunk(Chunk chunk) { send_chunk(0, 0, std::move(chunk)); }

  std::int64_t bytes_delivered() const { return bytes_delivered_total_; }

 private:
  struct PendingChunk {
    Chunk chunk;
    std::int64_t to_send;
    std::int64_t to_deliver;
    bool first_byte_fired = false;
  };
  struct Stream {
    std::uint32_t id = 0;
    int priority = 0;
    std::deque<PendingChunk> chunks;
    std::size_t send_cursor = 0;     // first chunk with to_send > 0
    std::size_t deliver_cursor = 0;  // first chunk with to_deliver > 0
    std::int64_t inflight = 0;       // un-acknowledged bytes (flow control)
    // Exact "no bytes left to send": chunks after send_cursor always have
    // to_send > 0 (pump drains strictly in order), so checking the cursor
    // chunk suffices. Transitions are tracked in `active_` — pick_stream()
    // scans only non-exhausted streams per pumped segment.
    bool exhausted() const {
      return send_cursor >= chunks.size() ||
             (send_cursor == chunks.size() - 1 &&
              chunks[send_cursor].to_send == 0);
    }
  };

  Stream& stream_for(std::uint32_t id, int priority);
  Stream* pick_stream();
  // Maintain `active_` (sorted indices of non-exhausted streams) across the
  // two transitions: a send_chunk() on a drained stream re-activates it, a
  // pump() that takes a stream's last pending byte exhausts it.
  void activate(std::size_t stream_index);
  void deactivate(std::size_t stream_index);
  void pump();
  void on_segment_at_client(std::size_t stream_index, std::int64_t seg);
  void on_ack(std::size_t stream_index, std::int64_t seg);

  Network& net_;
  std::string domain_;
  std::string lane_;
  bool needs_dns_;
  WriterDiscipline discipline_;
  sim::Time rtt_;
  bool established_ = false;

  std::vector<Stream> streams_;  // in first-write order
  // Stream id -> index into streams_ (stream_for without the linear scan).
  std::unordered_map<std::uint32_t, std::size_t> stream_index_;
  // Sorted indices of non-exhausted streams; the subsequence of streams_
  // both writer disciplines actually consider, so scanning it preserves
  // their pick order exactly while skipping the drained (typical) majority.
  std::vector<std::size_t> active_;
  std::size_t rr_next_ = 0;

  std::int64_t cwnd_ = 0;
  std::int64_t max_cwnd_ = 0;
  std::int64_t inflight_ = 0;
  std::int64_t stream_window_ = 0;  // 0 = no per-stream flow control
  std::int64_t bytes_delivered_total_ = 0;
};

}  // namespace vroom::net
