// Byte-serialized FIFO link model.
//
// The client's cellular access link is the shared bottleneck in mobile page
// loads; every TCP connection's segments drain through one `Link` instance,
// which serializes them at the configured rate in arrival order. Contention
// between concurrently pushed/fetched resources — the effect Vroom's
// cooperative scheduler exists to manage (§4.3 of the paper) — emerges
// directly from this FIFO.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_loop.h"

namespace vroom::net {

class Link {
 public:
  // `bps` is the line rate in bits per second. `name` labels the link in
  // traces and counters ("downlink"/"uplink").
  Link(sim::EventLoop& loop, double bps, const char* name = "link");

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Serializes `bytes` through the link; `on_delivered` fires when the last
  // bit clears the link. Transmissions queue FIFO behind earlier ones.
  void transmit(std::int64_t bytes, std::function<void()> on_delivered);

  // transmit() minus the completion event: identical FIFO accounting
  // (busy_until/busy_time/total_bytes) and the identical trace counters,
  // but nothing is scheduled. Returns the time the last bit clears the
  // link. For direct-replay callers (deploy's macro pass) that only need
  // the queueing arithmetic — the FIFO story is busy_until_ plus tx_time,
  // so the heap event behind transmit() is pure overhead there.
  sim::Time enqueue(std::int64_t bytes);

  // Time the link becomes idle given everything queued so far.
  sim::Time busy_until() const { return busy_until_; }

  // Serialization delay of `bytes` on an idle link.
  sim::Time tx_time(std::int64_t bytes) const;

  std::int64_t total_bytes() const { return total_bytes_; }

  // Total time spent transmitting so far (the numerator of utilization());
  // equals the sum of tx_time over every transmit by construction, which
  // the macro-trace auditor cross-checks against the event stream.
  sim::Time busy_time() const { return busy_time_; }

  // Fraction of [0, now] during which the link was transmitting.
  double utilization() const;

 private:
  sim::EventLoop& loop_;
  double bps_;
  const char* name_;
  sim::Time busy_until_ = 0;
  std::int64_t total_bytes_ = 0;
  sim::Time busy_time_ = 0;
};

}  // namespace vroom::net
