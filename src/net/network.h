// Network topology and configuration profiles.
//
// A `Network` bundles the client's shared downlink/uplink with per-domain
// round-trip times, mirroring the paper's replay setup (Figure 12): traffic
// between phone and any web server experiences the cellular delay plus the
// median RTT recorded between the replay desktop and that origin.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

// (sim::Rng is used for deterministic loss draws.)

#include "net/link.h"
#include "sim/random.h"
#include "sim/time.h"

namespace vroom::net {

struct NetworkConfig {
  double downlink_bps = 10e6;  // LTE downlink, good signal
  double uplink_bps = 5e6;
  sim::Time cellular_rtt = sim::ms(90);  // radio + core network
  sim::Time dns_lookup = sim::ms(25);    // once per domain per page load
  int mss_bytes = 1460;
  int init_cwnd_segments = 10;
  int max_cwnd_segments = 128;  // ~BDP of LTE at these rates

  // HTTP/2 per-stream flow-control window (nghttpx serves 64 KB by default,
  // the reverse proxy the paper's replay fronts every origin with). A large
  // response can have at most this many un-acknowledged bytes in flight on
  // its stream; WINDOW_UPDATEs return with the ACKs. 0 disables.
  std::int64_t h2_stream_window_bytes = 64 * 1024;
  int tls_handshake_rtts = 2;   // TLS 1.2 full handshake (2017 deployment)
  sim::Time server_think = sim::ms(25);  // per-request origin processing

  // Per-domain wide-area RTT draw (desktop <-> origin in the replay setup):
  // lognormal with this median/sigma, clamped to [min, max].
  sim::Time domain_rtt_median = sim::ms(55);
  double domain_rtt_sigma = 0.6;
  sim::Time domain_rtt_min = sim::ms(5);
  sim::Time domain_rtt_max = sim::ms(400);

  // Random segment loss (deterministic per seed). A lost segment costs the
  // flow a retransmission timeout and halves its congestion window —
  // HTTP/2's single connection is far more exposed than HTTP/1.1's six
  // (Erman et al., CoNEXT'13, cited as [24] in the paper). Default off: the
  // paper's replay runs over a good-signal hotspot.
  double loss_rate = 0.0;
  sim::Time rto_min = sim::ms(250);

  // LTE RRC state machine: the radio drops to idle after `radio_idle_timeout`
  // without traffic and pays `radio_promotion` to come back up. Only the
  // start of a load (and long gaps) hit this. Zero disables it.
  sim::Time radio_promotion = 0;
  sim::Time radio_idle_timeout = sim::seconds(5);

  static NetworkConfig lte();
  static NetworkConfig lte_loaded();  // congested cell: lower rate, higher RTT
  static NetworkConfig wifi();
  static NetworkConfig threeg();
  // Zero-latency, (effectively) infinite-bandwidth profile for the
  // CPU-bottleneck lower bound of Figure 2.
  static NetworkConfig local_usb();
};

class Network {
 public:
  Network(sim::EventLoop& loop, NetworkConfig config, std::uint64_t rtt_seed);

  sim::EventLoop& loop() { return loop_; }
  const NetworkConfig& config() const { return config_; }
  Link& downlink() { return downlink_; }
  Link& uplink() { return uplink_; }

  // Full client<->origin RTT for a domain: cellular leg + per-domain wide-area
  // leg. Deterministic per (seed, domain).
  sim::Time rtt(const std::string& domain);

  // Id-keyed overlay on the RTT cache: `domain_id` is the caller's dense
  // interner id for `domain` (see web/intern.h). The draw stays a pure
  // function of (seed, domain string) — the id only indexes the memo, so
  // results are identical to the string path.
  sim::Time rtt(std::uint32_t domain_id, const std::string& domain);

  // Overrides the drawn RTT (used by tests and by record/replay fidelity
  // checks).
  void set_rtt(const std::string& domain, sim::Time rtt);

  // RRC model: extra delay the next transmission must absorb if the radio
  // has gone idle; also marks the radio active through `now + busy`.
  sim::Time radio_wakeup_delay();

  // Deterministic per-network loss draws for the TCP model.
  bool draw_loss();

  // Sequential connection ids for trace lane naming ("conn#<n>"); purely
  // cosmetic, derived from creation order, which the event loop makes
  // deterministic.
  int alloc_conn_id() { return ++conn_seq_; }

 private:
  sim::EventLoop& loop_;
  NetworkConfig config_;
  Link downlink_;
  Link uplink_;
  std::uint64_t rtt_seed_;
  int conn_seq_ = 0;
  std::map<std::string, sim::Time> rtt_cache_;
  std::vector<sim::Time> rtt_by_id_;  // kRttUnset where not yet drawn
  // Starts deep in the past: the radio is idle when a session begins.
  sim::Time radio_active_until_ = INT64_MIN / 2;
  std::unique_ptr<sim::Rng> loss_rng_;
};

}  // namespace vroom::net
