#include "net/link.h"

#include <algorithm>
#include <cassert>

#include "trace/trace.h"

namespace vroom::net {

Link::Link(sim::EventLoop& loop, double bps, const char* name)
    : loop_(loop), bps_(bps), name_(name) {
  assert(bps > 0);
}

sim::Time Link::tx_time(std::int64_t bytes) const {
  return static_cast<sim::Time>(static_cast<double>(bytes) * 8.0 / bps_ * 1e6 +
                                0.5);
}

sim::Time Link::enqueue(std::int64_t bytes) {
  const sim::Time start = std::max(loop_.now(), busy_until_);
  const sim::Time done = start + tx_time(bytes);
  busy_time_ += done - start;
  busy_until_ = done;
  total_bytes_ += bytes;
  if (trace::Recorder* tr = trace::of(loop_)) {
    // Queue-depth sample: time a byte arriving right now would wait behind
    // everything already queued — the access-link contention of §4.3.
    const sim::Time queued = busy_until_ - loop_.now();
    tr->counter(trace::Layer::Net, "net",
                std::string(name_) + ".queued_us", queued);
    tr->counters().add(std::string("net.") + name_ + "_bytes", bytes);
    tr->counters().set_max(std::string("net.") + name_ + "_max_queued_us",
                           queued);
  }
  return done;
}

void Link::transmit(std::int64_t bytes, std::function<void()> on_delivered) {
  const sim::Time done = enqueue(bytes);
  loop_.schedule_at(done, std::move(on_delivered));
}

double Link::utilization() const {
  if (loop_.now() == 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(loop_.now());
}

}  // namespace vroom::net
