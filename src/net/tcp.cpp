#include "net/tcp.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <utility>

#include "trace/trace.h"

namespace vroom::net {

TcpConnection::TcpConnection(Network& net, std::string domain, bool needs_dns,
                             WriterDiscipline discipline,
                             std::uint32_t domain_id)
    : net_(net),
      domain_(std::move(domain)),
      lane_("conn#" + std::to_string(net.alloc_conn_id())),
      needs_dns_(needs_dns),
      discipline_(discipline),
      rtt_(net_.rtt(domain_id, domain_)) {
  const auto& cfg = net_.config();
  cwnd_ = static_cast<std::int64_t>(cfg.init_cwnd_segments) * cfg.mss_bytes;
  max_cwnd_ = static_cast<std::int64_t>(cfg.max_cwnd_segments) * cfg.mss_bytes;
  stream_window_ = cfg.h2_stream_window_bytes;
}

void TcpConnection::connect(std::function<void()> on_established) {
  assert(!established_);
  const auto& cfg = net_.config();
  sim::Time setup = rtt_;  // TCP 3-way handshake (client sees 1 RTT)
  setup += net_.radio_wakeup_delay();  // RRC idle->connected promotion
  if (needs_dns_) setup += cfg.dns_lookup;
  setup += static_cast<sim::Time>(cfg.tls_handshake_rtts) * rtt_;
  const sim::Time started = net_.loop().now();
  net_.loop().schedule_in(setup, [this, started,
                                  cb = std::move(on_established)] {
    established_ = true;
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      tr->complete(trace::Layer::Net, domain_, lane_, "connect", started,
                   {trace::arg("rtt_ms", sim::to_ms(rtt_)),
                    trace::arg("dns", needs_dns_ ? "yes" : "no"),
                    trace::arg("tls_rtts", net_.config().tls_handshake_rtts)});
      tr->counters().add("net.connections");
      if (needs_dns_) tr->counters().add("net.dns_lookups");
    }
    cb();
  });
}

void TcpConnection::send_request(std::int64_t bytes,
                                 std::function<void()> deliver_at_server) {
  assert(established_);
  // Uplink serialization at the client, then propagation to the origin.
  const sim::Time half_rtt = rtt_ / 2;
  net_.uplink().transmit(bytes,
                         [this, half_rtt, cb = std::move(deliver_at_server)] {
                           net_.loop().schedule_in(half_rtt, cb);
                         });
}

TcpConnection::Stream& TcpConnection::stream_for(std::uint32_t id,
                                                 int priority) {
  const auto it = stream_index_.find(id);
  if (it != stream_index_.end()) return streams_[it->second];
  stream_index_.emplace(id, streams_.size());
  streams_.push_back(Stream{id, priority, {}, 0, 0});
  return streams_.back();
}

void TcpConnection::activate(std::size_t stream_index) {
  const auto it =
      std::lower_bound(active_.begin(), active_.end(), stream_index);
  if (it == active_.end() || *it != stream_index) {
    active_.insert(it, stream_index);
  }
}

void TcpConnection::deactivate(std::size_t stream_index) {
  const auto it =
      std::lower_bound(active_.begin(), active_.end(), stream_index);
  if (it != active_.end() && *it == stream_index) active_.erase(it);
}

void TcpConnection::send_chunk(std::uint32_t stream_id, int priority,
                               Chunk chunk) {
  assert(established_);
  const std::int64_t bytes = std::max<std::int64_t>(chunk.bytes, 1);
  Stream& s = stream_for(stream_id, priority);
  const bool was_exhausted = s.exhausted();
  s.chunks.push_back(PendingChunk{std::move(chunk), bytes, bytes});
  if (was_exhausted) {
    activate(static_cast<std::size_t>(&s - streams_.data()));
  }
  pump();
}

TcpConnection::Stream* TcpConnection::pick_stream() {
  if (active_.empty()) return nullptr;
  // HTTP/2 flow control: a stream with a full window cannot send even if
  // the connection's congestion window has room; another stream may.
  auto flow_open = [&](const Stream& s) {
    return stream_window_ <= 0 || streams_.size() < 2 ||
           s.inflight < stream_window_;
  };
  if (discipline_ == WriterDiscipline::Ordered) {
    for (const std::size_t idx : active_) {
      Stream& s = streams_[idx];
      if (flow_open(s)) return &s;
    }
    return nullptr;
  }
  // Highest-priority active streams first; round-robin within the tier.
  int best = INT_MIN;
  for (const std::size_t idx : active_) {
    const Stream& s = streams_[idx];
    if (flow_open(s)) best = std::max(best, s.priority);
  }
  if (best == INT_MIN) return nullptr;
  // Cyclic scan from rr_next_, restricted to the active subsequence: the
  // same stream the full positional scan would reach, since exhausted
  // streams never matched it anyway.
  const std::size_t n = streams_.size();
  const std::size_t m = active_.size();
  const std::size_t base = static_cast<std::size_t>(
      std::lower_bound(active_.begin(), active_.end(), rr_next_) -
      active_.begin());
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t idx = active_[(base + k) % m];
    Stream& s = streams_[idx];
    if (flow_open(s) && s.priority == best) {
      rr_next_ = (idx + 1) % n;
      return &s;
    }
  }
  return nullptr;
}

void TcpConnection::pump() {
  const std::int64_t mss = net_.config().mss_bytes;
  while (inflight_ < cwnd_) {
    Stream* s = pick_stream();
    if (s == nullptr) return;
    // Advance the stream's send cursor to a chunk with bytes left.
    while (s->send_cursor < s->chunks.size() &&
           s->chunks[s->send_cursor].to_send == 0) {
      ++s->send_cursor;
    }
    if (s->send_cursor >= s->chunks.size()) continue;
    PendingChunk& pc = s->chunks[s->send_cursor];
    const std::int64_t seg = std::min(mss, pc.to_send);
    pc.to_send -= seg;
    inflight_ += seg;
    s->inflight += seg;
    const std::size_t stream_index =
        static_cast<std::size_t>(s - streams_.data());
    if (s->exhausted()) deactivate(stream_index);
    // A lost segment is recovered after a retransmission timeout and costs
    // the flow half its window; the retransmit then takes the normal path.
    sim::Time extra = 0;
    if (net_.draw_loss()) {
      extra = std::max(net_.config().rto_min, 2 * rtt_);
      cwnd_ = std::max<std::int64_t>(cwnd_ / 2,
                                     2 * net_.config().mss_bytes);
      if (trace::Recorder* tr = trace::of(net_.loop())) {
        tr->instant(trace::Layer::Net, domain_, lane_, "rto",
                    {trace::arg("timeout_ms", sim::to_ms(extra)),
                     trace::arg("cwnd_after", cwnd_)});
        tr->counter(trace::Layer::Net, domain_, "cwnd." + lane_, cwnd_);
        tr->counters().add("net.rto_events");
      }
    }
    // Propagation from origin to the access-link bottleneck, then FIFO
    // serialization shared with every other connection.
    net_.loop().schedule_in(rtt_ / 2 + extra, [this, stream_index, seg] {
      net_.downlink().transmit(seg, [this, stream_index, seg] {
        on_segment_at_client(stream_index, seg);
      });
    });
  }
}

void TcpConnection::on_segment_at_client(std::size_t stream_index,
                                         std::int64_t seg) {
  bytes_delivered_total_ += seg;
  Stream& s = streams_[stream_index];
  std::int64_t remaining = seg;
  while (remaining > 0 && s.deliver_cursor < s.chunks.size()) {
    PendingChunk& pc = s.chunks[s.deliver_cursor];
    if (pc.to_deliver == 0) {
      ++s.deliver_cursor;
      continue;
    }
    if (!pc.first_byte_fired) {
      pc.first_byte_fired = true;
      if (pc.chunk.on_first_byte) pc.chunk.on_first_byte();
    }
    const std::int64_t credit = std::min(remaining, pc.to_deliver);
    pc.to_deliver -= credit;
    remaining -= credit;
    if (pc.to_deliver == 0) {
      if (pc.chunk.on_delivered) pc.chunk.on_delivered();
      ++s.deliver_cursor;
    }
  }
  // ACK (and the stream's WINDOW_UPDATE) travels back to the origin.
  net_.loop().schedule_in(rtt_ / 2, [this, stream_index, seg] {
    on_ack(stream_index, seg);
  });
}

void TcpConnection::on_ack(std::size_t stream_index, std::int64_t seg) {
  inflight_ -= seg;
  streams_[stream_index].inflight -= seg;
  // Slow start: cwnd grows by one MSS per acked segment (doubling per RTT)
  // up to the configured cap; no loss, so we never leave slow start.
  const std::int64_t before = cwnd_;
  cwnd_ = std::min(cwnd_ + net_.config().mss_bytes, max_cwnd_);
  if (cwnd_ != before) {
    if (trace::Recorder* tr = trace::of(net_.loop())) {
      tr->counter(trace::Layer::Net, domain_, "cwnd." + lane_, cwnd_);
      if (cwnd_ == max_cwnd_) {
        tr->instant(trace::Layer::Net, domain_, lane_, "slow_start_cap",
                    {trace::arg("cwnd", cwnd_)});
      }
    }
  }
  pump();
}

}  // namespace vroom::net
