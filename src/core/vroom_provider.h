// The VROOM dependency provider: what a compliant origin attaches to an HTML
// response (§4 end-to-end).
//
// Candidate resolution modes cover the paper's design and its strawmen:
//   OfflinePlusOnline — VROOM: hourly-crawl stable set + on-the-fly HTML scan
//   OfflineOnly       — strawman 2 (misses hour-scale flux)
//   OnlineOnly        — strawman 1 (full page load at serve time; server's
//                       own randomness leaks into the advice)
//   PreviousLoad      — Figure 17 baseline: everything seen in one crawl
// The same resolution core is reused by the accuracy study (Figure 21).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/hint_generator.h"
#include "core/offline_resolver.h"
#include "core/online_analyzer.h"
#include "server/origin_server.h"

namespace vroom::core {

enum class ResolutionMode : std::uint8_t {
  OfflinePlusOnline,
  OfflineOnly,
  OnlineOnly,
  PreviousLoad,
};

const char* resolution_mode_name(ResolutionMode m);

// Ordered (processing-order) candidate dependency list for a request for
// document `doc_id`, as computed by `serving_domain`. `hint_age` shifts the
// offline resolution back in time: the stable set is computed as of
// (serve time - hint_age), modelling a shared front-end serving hints from
// a crawl that happened `hint_age` ago (deploy::FrontEnd). Rotated
// resources then advise the *old* rotation's URLs, which clients fetch as
// ghosts — the staleness cost the deployment simulator measures.
std::vector<std::pair<std::uint32_t, std::string>> resolve_candidates(
    const web::PageInstance& served, std::uint32_t doc_id,
    const std::string& serving_domain, std::uint32_t user,
    ResolutionMode mode, const OfflineResolver& offline,
    sim::Time hint_age = 0);

struct VroomProviderConfig {
  ResolutionMode mode = ResolutionMode::OfflinePlusOnline;
  bool hints_enabled = true;
  PushSelection push = PushSelection::HighPriorityLocal;
  OfflineConfig offline;
  // Header-size budget: at most this many hint URLs per response (0 =
  // unlimited). When truncating, low-priority hints are dropped first —
  // the client discovers those on its own, at the smallest cost.
  int max_hints = 0;
  // Crawl lag of the advice: offline resolution happens at
  // (serve time - hint_age) instead of serve time. 0 = the paper's setup
  // (origin resolves against its freshest crawls). Deployment-scale runs
  // use this to price serving cached, possibly stale hints.
  sim::Time hint_age = 0;
};

class VroomProvider final : public server::DependencyProvider {
 public:
  VroomProvider(const server::ReplayStore& store, VroomProviderConfig config);

  server::DependencyAdvice advise(const std::string& domain,
                                  const http::Request& req) override;

  const OfflineResolver& offline() const { return offline_; }

 private:
  const server::ReplayStore& store_;
  VroomProviderConfig config_;
  OfflineResolver offline_;
};

}  // namespace vroom::core
