// Cross-page offline dependency resolution (§7 of the paper).
//
// Crawling every page of a large site hourly is onerous. The paper observes
// that pages of the same *type* (all article pages, all section fronts)
// share their stable infrastructure, and defers exploiting that to future
// work. This module implements it: the server crawls one representative
// page per type and serves, for any sibling page, the stable slots whose
// URLs are shared site-wide — falling back to online HTML analysis for the
// page-specific remainder. The trade: crawl cost divided by the number of
// siblings, versus the extra false negatives on page-specific stable
// content.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/offline_resolver.h"
#include "core/vroom_provider.h"

namespace vroom::core {

// Stable set computed from crawls of `crawled` (a sibling of the same site
// and page type), restricted to the slots whose realized URLs are valid on
// `target` too — i.e. the site-shared infrastructure.
std::map<std::uint32_t, std::string> shared_stable_set(
    const web::PageModel& target, const web::PageModel& crawled,
    sim::Time now, const web::DeviceProfile& device,
    const std::string& serving_domain, std::uint32_t user,
    const OfflineConfig& config);

struct TypeSharingSample {
  double fn_per_page_crawl = 0;   // full Vroom: crawl this page itself
  double fn_type_shared = 0;      // crawl one sibling, share infra slots
  double fn_online_only_scan = 0; // no offline knowledge at all
  int shared_slots = 0;           // slots transferable across siblings
  int scope_size = 0;
};

// Measures the false-negative cost of replacing per-page crawls with one
// sibling crawl plus online analysis, using the Fig-21 methodology
// (predictable subset of back-to-back loads of `target`).
TypeSharingSample measure_type_sharing(const web::PageModel& target,
                                       const web::PageModel& crawled_sibling,
                                       sim::Time when,
                                       const web::DeviceProfile& device,
                                       std::uint32_t user,
                                       const OfflineConfig& config);

}  // namespace vroom::core
