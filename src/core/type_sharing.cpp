#include "core/type_sharing.h"

#include <set>

#include "core/online_analyzer.h"
#include "sim/random.h"
#include "web/page_instance.h"

namespace vroom::core {

std::map<std::uint32_t, std::string> shared_stable_set(
    const web::PageModel& target, const web::PageModel& crawled,
    sim::Time now, const web::DeviceProfile& device,
    const std::string& serving_domain, std::uint32_t user,
    const OfflineConfig& config) {
  OfflineResolver resolver(crawled, config);
  auto stable = resolver.stable_set(now, device, serving_domain, user);
  std::map<std::uint32_t, std::string> out;
  for (const auto& [rid, url] : stable) {
    const web::Resource& r = crawled.resource(rid);
    if (r.url_page_override == web::Resource::kNoPageOverride) continue;
    // Shared slots occupy the same ids on every sibling; verify the target
    // really carries this slot (defensive against mismatched site builds).
    if (rid >= target.size()) continue;
    const web::Resource& t = target.resource(rid);
    if (t.url_page_override != r.url_page_override) continue;
    out.emplace(rid, url);
  }
  return out;
}

TypeSharingSample measure_type_sharing(const web::PageModel& target,
                                       const web::PageModel& crawled_sibling,
                                       sim::Time when,
                                       const web::DeviceProfile& device,
                                       std::uint32_t user,
                                       const OfflineConfig& config) {
  TypeSharingSample s;

  web::LoadIdentity id_a;
  id_a.wall_time = when;
  id_a.device = device;
  id_a.user = user;
  id_a.nonce = sim::derive_seed(when ^ target.page_id(), "ts-load-a");
  web::LoadIdentity id_b = id_a;
  id_b.nonce = sim::derive_seed(when ^ target.page_id(), "ts-load-b");
  const web::PageInstance load_a(target, id_a);
  const web::PageInstance load_b(target, id_b);

  const auto scope = target.hintable_descendants(0);
  s.scope_size = static_cast<int>(scope.size());
  std::set<std::string> predictable;
  for (std::uint32_t rid : scope) {
    if (load_a.resource(rid).url == load_b.resource(rid).url) {
      predictable.insert(std::string(load_a.resource(rid).url));
    }
  }
  if (predictable.empty()) return s;

  const OnlineScan scan = analyze_served_html(load_a, 0);
  auto fn_of = [&](const std::map<std::uint32_t, std::string>& offline_set) {
    std::set<std::string> advised;
    for (std::uint32_t rid : scope) {
      auto it = offline_set.find(rid);
      if (it != offline_set.end()) advised.insert(it->second);
    }
    for (const auto& [rid, url] : scan.links) advised.insert(url);
    int fn = 0;
    for (const auto& url : predictable) {
      if (!advised.count(url)) ++fn;
    }
    return static_cast<double>(fn) / static_cast<double>(predictable.size());
  };

  OfflineResolver own(target, config);
  const auto own_stable =
      own.stable_set(when, device, target.first_party(), user);
  s.fn_per_page_crawl = fn_of(own_stable);

  const auto shared = shared_stable_set(target, crawled_sibling, when, device,
                                        target.first_party(), user, config);
  s.shared_slots = static_cast<int>(shared.size());
  s.fn_type_shared = fn_of(shared);

  s.fn_online_only_scan = fn_of({});
  return s;
}

}  // namespace vroom::core
