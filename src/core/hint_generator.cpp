#include "core/hint_generator.h"

#include <algorithm>

#include "web/url.h"

namespace vroom::core {

const char* push_selection_name(PushSelection p) {
  switch (p) {
    case PushSelection::None: return "none";
    case PushSelection::HighPriorityLocal: return "high-priority-local";
    case PushSelection::AllLocal: return "all-local";
  }
  return "?";
}

void truncate_hints(http::HintSet& hints, int max_hints) {
  if (max_hints <= 0 ||
      hints.hints.size() <= static_cast<std::size_t>(max_hints)) {
    return;
  }
  std::stable_sort(hints.hints.begin(), hints.hints.end(),
                   [](const http::Hint& a, const http::Hint& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;  // Preload first
                     }
                     return a.order < b.order;
                   });
  hints.hints.resize(static_cast<std::size_t>(max_hints));
}

http::HintPriority classify_hint(const web::Resource& r) {
  if (r.in_iframe || r.type == web::ResourceType::Html) {
    return http::HintPriority::Unimportant;
  }
  if (web::is_processable(r.type)) {
    return r.async ? http::HintPriority::SemiImportant
                   : http::HintPriority::Preload;
  }
  return http::HintPriority::Unimportant;
}

AdviceBuild build_advice(
    const web::PageInstance& instance,
    const std::vector<std::pair<std::uint32_t, std::string>>& ordered,
    const std::string& serving_domain, bool hints_enabled,
    PushSelection push) {
  AdviceBuild out;
  int order = 0;
  for (const auto& [id, url] : ordered) {
    const web::Resource& r = instance.model().resource(id);
    const http::HintPriority prio = classify_hint(r);
    const bool local = web::url_domain_view(url) == serving_domain;

    bool do_push = false;
    switch (push) {
      case PushSelection::None: break;
      case PushSelection::HighPriorityLocal:
        do_push = local && prio == http::HintPriority::Preload;
        break;
      case PushSelection::AllLocal:
        do_push = local;
        break;
    }
    if (do_push) {
      std::int64_t bytes = 0;
      if (auto live = instance.find_by_url(url)) {
        bytes = instance.resource(*live).size;
      } else if (auto stale = web::servable_size(instance.model(), url)) {
        bytes = *stale;
      }
      out.pushes.push_back(http::PushItem{url, bytes});
      continue;  // pushed content needs no hint
    }
    if (hints_enabled) out.hints.add(url, prio, order++);
  }
  return out;
}

}  // namespace vroom::core
