// Accuracy of server-side dependency resolution (§6.2, Figure 21).
//
// Following the paper's methodology: a page is loaded twice back-to-back;
// the *predictable* subset is the URLs common to both loads, restricted to
// resources derived from the root HTML excluding everything below embedded
// iframes. Each resolution strategy's advice for the root request is scored
// as false negatives (predictable URLs it fails to identify) and false
// positives (advised URLs outside the predictable subset), both as
// fractions of the predictable subset's size.
#pragma once

#include <cstdint>

#include "core/vroom_provider.h"
#include "web/device.h"
#include "web/page_model.h"

namespace vroom::core {

struct AccuracySample {
  // Figure 21(a): the predictable subset's share of the advice scope.
  double predictable_count_frac = 0;
  double predictable_bytes_frac = 0;
  // Figure 21(b): missed predictable resources / |predictable|.
  double false_negative_frac = 0;
  // Figure 21(c): extraneous advised resources / |predictable|.
  double false_positive_frac = 0;
  int scope_size = 0;
  int predictable_size = 0;
  int advised_size = 0;
};

AccuracySample measure_accuracy(const web::PageModel& model, sim::Time when,
                                const web::DeviceProfile& device,
                                std::uint32_t user, ResolutionMode mode,
                                const OfflineConfig& offline_config);

// Fraction of one instance's URLs still present `gap` later (Figure 7).
double persistence_fraction(const web::PageModel& model, sim::Time when,
                            const web::DeviceProfile& device,
                            std::uint32_t user, sim::Time gap);

}  // namespace vroom::core
