// VROOM's client-side request scheduler (§5.2).
//
// Mirrors the JavaScript scheduler injected into pages: it watches hint
// headers on HTML responses and issues staged downloads — `Link preload`
// resources immediately and in listed order, `x-semi-important` once every
// known high-priority resource has been received and no document response
// is still pending, `x-unimportant` after that. Because the callbacks run
// as main-thread tasks, a long script execution delays stage transitions,
// exactly as the paper notes for its JS implementation.
//
// The unstaged variant ("Push All, Fetch ASAP", §4.3) requests every hinted
// URL the moment it is seen.
#pragma once

#include <unordered_set>
#include <vector>

#include "browser/browser.h"

namespace vroom::core {

class VroomClientScheduler : public browser::FetchPolicy {
 public:
  explicit VroomClientScheduler(bool staged = true) : staged_(staged) {}

  void on_discovered(browser::Browser& b, web::UrlId url,
                     bool processable) override;
  void on_hints(browser::Browser& b, const http::HintSet& hints) override;
  void on_fetch_complete(browser::Browser& b, web::UrlId url) override;

  int stage() const { return stage_; }

 private:
  void enqueue_hint(browser::Browser& b, web::UrlId url,
                    http::HintPriority priority);
  void advance_to(browser::Browser& b, int stage, std::int64_t released);
  void try_advance(browser::Browser& b);
  bool all_complete(browser::Browser& b,
                    const std::vector<web::UrlId>& urls) const;

  bool staged_;
  int stage_ = 0;  // 0: preload, 1: semi-important, 2: unimportant
  int pending_docs_ = 0;
  std::unordered_set<web::UrlId> counted_docs_;
  std::unordered_set<web::UrlId> seen_;
  std::vector<web::UrlId> preload_urls_;
  std::vector<web::UrlId> semi_q_;
  std::vector<web::UrlId> low_q_;
};

}  // namespace vroom::core
