// Offline server-side dependency resolution (§4.1.2).
//
// A VROOM-compliant origin periodically loads each page it serves (hourly in
// the paper's implementation) and, when a client requests the page, treats
// the URLs present in *all* recent loads as the stable set worth advising.
// The intersection automatically filters per-load ad churn and fast-rotating
// personalized content. Device-type customization is handled with
// equivalence classes so the server need not crawl with every handset model.
//
// Resolution is pure: the stable set is a function of (crawl time, crawl
// device, the serving organization's cookie view, user). A resolver
// memoizes each distinct combination, so the many advise() calls of one
// page load — per HTML document, per serving domain — recompute nothing.
// Mutable caches are safe because a resolver lives inside one page world,
// which is single-threaded (each fleet worker builds a private world).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "sim/time.h"
#include "web/device.h"
#include "web/page_instance.h"
#include "web/page_model.h"

namespace vroom::core {

enum class DeviceHandling : std::uint8_t {
  Exact,              // crawl with the client's exact device (upper bound)
  EquivalenceClasses, // cluster known devices by stable-set IoU (the paper)
  SingleClass,        // one crawl device for everyone (ablation)
};

struct OfflineConfig {
  int loads = 3;                        // recent crawls intersected
  sim::Time spacing = sim::hours(1);    // crawl period
  DeviceHandling device_handling = DeviceHandling::EquivalenceClasses;
  double iou_threshold = 0.80;          // cluster admission similarity
  std::vector<web::DeviceProfile> known_devices = web::all_devices();
};

// Whether `serving_domain` holds the user's cookie state for resources of
// `resource_domain` (same organization).
bool org_knows_user(const web::PageModel& model,
                    const std::string& serving_domain,
                    const std::string& resource_domain);

class OfflineResolver {
 public:
  OfflineResolver(const web::PageModel& model, OfflineConfig config);

  // Stable set as of `now`, from the perspective of `serving_domain` holding
  // `user`'s cookie for its own organization only. Keys are template ids;
  // values the URL consistently observed across the recent crawls. The
  // returned reference points into the resolver's cache and stays valid for
  // the resolver's lifetime.
  const std::map<std::uint32_t, std::string>& stable_set(
      sim::Time now, const web::DeviceProfile& client_device,
      const std::string& serving_domain, std::uint32_t user) const;

  // Crawl device chosen for a client device under the configured handling.
  const web::DeviceProfile& crawl_device(
      sim::Time now, const web::DeviceProfile& client_device) const;

  // Stable-set intersection-over-union between two devices (Figure 9).
  double device_iou(sim::Time now, const web::DeviceProfile& a,
                    const web::DeviceProfile& b) const;

  // All URLs observed in one crawl at `when` (the Figure 17 baseline:
  // "dependencies = everything seen in a prior load").
  std::map<std::uint32_t, std::string> single_load_urls(
      sim::Time when, const web::DeviceProfile& device,
      const std::string& serving_domain, std::uint32_t user,
      std::uint64_t nonce) const;

  const OfflineConfig& config() const { return config_; }

 private:
  const std::map<std::uint32_t, std::string>& crawl_intersection(
      sim::Time now, const web::DeviceProfile& crawl_dev,
      const std::string& serving_domain, std::uint32_t user) const;

  // Collapses serving_domain to what the crawl outcome actually depends on:
  // with no user cookie the domain is irrelevant; every first-party-org
  // domain shares the same cookie view; third parties see only themselves.
  std::string cookie_view_sig(const std::string& serving_domain,
                              std::uint32_t user) const;

  const web::PageModel* model_;
  OfflineConfig config_;

  // Memo keys: (now, device identity, cookie view, user). Device identity is
  // name + rendering axes — two profiles that differ in either never alias.
  using DevKey = std::tuple<std::string, int, int, int>;
  static DevKey dev_key(const web::DeviceProfile& d) {
    return {d.name, d.screen, d.dpi, d.width};
  }
  using IntersectKey = std::tuple<sim::Time, DevKey, std::string, std::uint32_t>;
  mutable std::map<IntersectKey, std::map<std::uint32_t, std::string>>
      intersect_cache_;
  mutable std::map<std::tuple<sim::Time, DevKey, DevKey>, double> iou_cache_;
  // Greedy clustering outcome per crawl time: index of each known device's
  // class representative.
  mutable std::map<sim::Time, std::vector<std::size_t>> cluster_cache_;
};

}  // namespace vroom::core
