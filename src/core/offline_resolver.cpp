#include "core/offline_resolver.h"

#include <algorithm>
#include <set>
#include <utility>

#include "sim/random.h"

namespace vroom::core {

bool org_knows_user(const web::PageModel& model,
                    const std::string& serving_domain,
                    const std::string& resource_domain) {
  if (serving_domain == resource_domain) return true;
  return model.is_first_party_org(serving_domain) &&
         model.is_first_party_org(resource_domain);
}

OfflineResolver::OfflineResolver(const web::PageModel& model,
                                 OfflineConfig config)
    : model_(&model), config_(std::move(config)) {}

std::string OfflineResolver::cookie_view_sig(const std::string& serving_domain,
                                             std::uint32_t user) const {
  if (user == 0) return std::string();  // cookieless: domain-independent
  if (model_->is_first_party_org(serving_domain)) return std::string("\x01fp");
  return serving_domain;
}

std::map<std::uint32_t, std::string> OfflineResolver::single_load_urls(
    sim::Time when, const web::DeviceProfile& device,
    const std::string& serving_domain, std::uint32_t user,
    std::uint64_t nonce) const {
  std::map<std::uint32_t, std::string> out;
  for (const web::Resource& r : model_->resources()) {
    web::LoadIdentity id;
    id.wall_time = when;
    id.device = device;
    id.nonce = nonce;
    // The crawler carries the client's cookie only for domains the serving
    // organization controls; everything else loads as a generic user.
    id.user = org_knows_user(*model_, serving_domain, r.domain) ? user : 0;
    out.emplace(r.id, web::realize_url(*model_, r, id));
  }
  return out;
}

const std::map<std::uint32_t, std::string>& OfflineResolver::crawl_intersection(
    sim::Time now, const web::DeviceProfile& crawl_dev,
    const std::string& serving_domain, std::uint32_t user) const {
  const IntersectKey key{now, dev_key(crawl_dev),
                         cookie_view_sig(serving_domain, user), user};
  auto cached = intersect_cache_.find(key);
  if (cached != intersect_cache_.end()) return cached->second;

  std::map<std::uint32_t, std::string> stable;
  for (int i = 1; i <= config_.loads; ++i) {
    const sim::Time when = now - static_cast<sim::Time>(i) * config_.spacing;
    const std::uint64_t nonce =
        sim::derive_seed(static_cast<std::uint64_t>(when) ^ model_->page_id(),
                         "offline-crawl");
    auto load = single_load_urls(when, crawl_dev, serving_domain, user, nonce);
    if (i == 1) {
      stable = std::move(load);
      continue;
    }
    for (auto it = stable.begin(); it != stable.end();) {
      auto found = load.find(it->first);
      if (found == load.end() || found->second != it->second) {
        it = stable.erase(it);
      } else {
        ++it;
      }
    }
  }
  return intersect_cache_.emplace(key, std::move(stable)).first->second;
}

double OfflineResolver::device_iou(sim::Time now, const web::DeviceProfile& a,
                                   const web::DeviceProfile& b) const {
  const auto key = std::make_tuple(now, dev_key(a), dev_key(b));
  auto cached = iou_cache_.find(key);
  if (cached != iou_cache_.end()) return cached->second;

  const auto& sa = crawl_intersection(now, a, model_->first_party(), 0);
  const auto& sb = crawl_intersection(now, b, model_->first_party(), 0);
  std::set<std::string> ua, ub;
  for (const auto& [id, url] : sa) ua.insert(url);
  for (const auto& [id, url] : sb) ub.insert(url);
  std::size_t inter = 0;
  for (const auto& u : ua) inter += ub.count(u);
  const std::size_t uni = ua.size() + ub.size() - inter;
  const double iou =
      uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
  iou_cache_.emplace(key, iou);
  return iou;
}

const web::DeviceProfile& OfflineResolver::crawl_device(
    sim::Time now, const web::DeviceProfile& client_device) const {
  switch (config_.device_handling) {
    case DeviceHandling::Exact:
      return client_device;
    case DeviceHandling::SingleClass:
      return config_.known_devices.front();
    case DeviceHandling::EquivalenceClasses:
      break;
  }
  auto cached = cluster_cache_.find(now);
  if (cached == cluster_cache_.end()) {
    // Greedy clustering: walk known devices in order; a device joins the
    // first existing class whose representative's stable set is similar
    // enough, otherwise founds a new class.
    std::vector<std::size_t> rep_of(config_.known_devices.size());
    std::vector<std::size_t> reps;
    for (std::size_t i = 0; i < config_.known_devices.size(); ++i) {
      bool placed = false;
      for (std::size_t rep : reps) {
        if (device_iou(now, config_.known_devices[i],
                       config_.known_devices[rep]) >= config_.iou_threshold) {
          rep_of[i] = rep;
          placed = true;
          break;
        }
      }
      if (!placed) {
        reps.push_back(i);
        rep_of[i] = i;
      }
    }
    cached = cluster_cache_.emplace(now, std::move(rep_of)).first;
  }
  const std::vector<std::size_t>& rep_of = cached->second;
  // Map the client's device to its class representative (by name, falling
  // back to rendering-equivalent axes for unknown handsets).
  for (std::size_t i = 0; i < config_.known_devices.size(); ++i) {
    if (config_.known_devices[i].name == client_device.name ||
        config_.known_devices[i].same_rendering(client_device)) {
      return config_.known_devices[rep_of[i]];
    }
  }
  return config_.known_devices.front();
}

const std::map<std::uint32_t, std::string>& OfflineResolver::stable_set(
    sim::Time now, const web::DeviceProfile& client_device,
    const std::string& serving_domain, std::uint32_t user) const {
  const web::DeviceProfile& dev = crawl_device(now, client_device);
  return crawl_intersection(now, dev, serving_domain, user);
}

}  // namespace vroom::core
