// Priority classification and ordering of dependency hints (Table 1, §4.3).
//
// Resources that must be parsed or executed go in `Link preload`; lazily
// processed ones (async scripts) in `x-semi-important`; everything that is
// never evaluated — plus embedded HTML documents and anything below them
// (footnote 4) — in `x-unimportant`. Within each header URLs keep the order
// the client will process them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "http/headers.h"
#include "http/message.h"
#include "web/page_instance.h"
#include "web/page_model.h"

namespace vroom::core {

http::HintPriority classify_hint(const web::Resource& r);

enum class PushSelection : std::uint8_t {
  None,
  HighPriorityLocal,  // Vroom: only Link-preload-class, same-domain content
  AllLocal,           // strawman: everything local
};

// Stable label for trace events ("none" / "high-priority-local" /
// "all-local").
const char* push_selection_name(PushSelection p);

struct AdviceBuild {
  http::HintSet hints;
  std::vector<http::PushItem> pushes;
};

// Assembles hints + pushes from an ordered candidate list.
// `ordered_candidates` must already be in processing order (template id,
// URL). Push bodies are sized via the current instance when the URL is
// live, else via the store's stale-version realization.
AdviceBuild build_advice(const web::PageInstance& instance,
                         const std::vector<std::pair<std::uint32_t,
                                                     std::string>>& ordered,
                         const std::string& serving_domain, bool hints_enabled,
                         PushSelection push);

// Truncates a hint set to at most `max_hints` entries, dropping the lowest
// priority class first and the latest processing positions within a class
// (header-budget control; 0 = unlimited, no-op).
void truncate_hints(http::HintSet& hints, int max_hints);

}  // namespace vroom::core
