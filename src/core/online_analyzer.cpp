#include "core/online_analyzer.h"

namespace vroom::core {

OnlineScan analyze_served_html(const web::PageInstance& instance,
                               std::uint32_t doc_id) {
  OnlineScan scan;
  for (const web::ScannedLink& link : web::scan_html(instance, doc_id)) {
    scan.links.emplace(link.template_id, link.url);
  }
  scan.cost = web::scan_cost(instance.resource(doc_id).size);
  return scan;
}

}  // namespace vroom::core
