// Online server-side dependency resolution (§4.1.2).
//
// When serving an HTML object, the origin parses it on the fly and returns
// every URL present in the markup. This catches content flux the hourly
// offline crawls miss (new stories, rotated modules) with exactly-current
// URLs, at a modeled serving delay of ~100 ms for a typical front page.
#pragma once

#include <map>
#include <string>

#include "sim/time.h"
#include "web/html_scanner.h"
#include "web/page_instance.h"

namespace vroom::core {

struct OnlineScan {
  // template id -> exact URL as present in the served HTML.
  std::map<std::uint32_t, std::string> links;
  sim::Time cost = 0;  // added serving delay
};

// Scans the HTML instance being served to the client.
OnlineScan analyze_served_html(const web::PageInstance& instance,
                               std::uint32_t doc_id);

}  // namespace vroom::core
