#include "core/client_scheduler.h"

#include "trace/trace.h"

namespace vroom::core {
namespace {

bool is_html_url(browser::Browser& b, web::UrlId url) {
  const web::UrlInfo& info = b.instance().interner().info(url);
  return info.parse_ok && info.type == web::ResourceType::Html;
}

}  // namespace

void VroomClientScheduler::on_discovered(browser::Browser& b, web::UrlId url,
                                         bool processable) {
  // Engine-discovered resources always go out right away (the browser's
  // native fetch path); hint-scheduled copies dedup against them.
  if (is_html_url(b, url) && !b.url_complete(url) &&
      counted_docs_.insert(url).second) {
    ++pending_docs_;
  }
  FetchPolicy::on_discovered(b, url, processable);
}

void VroomClientScheduler::on_hints(browser::Browser& b,
                                    const http::HintSet& hints) {
  int fresh = 0;
  for (const http::Hint& h : hints.hints) {
    const web::UrlId id = b.intern(h.url);
    b.note_hinted(id);
    if (!seen_.insert(id).second) continue;
    ++fresh;
    enqueue_hint(b, id, h.priority);
  }
  if (trace::Recorder* tr = trace::of(b.loop())) {
    tr->instant(trace::Layer::Vroom, "browser", "scheduler", "hints.acted",
                {trace::arg("fresh", fresh),
                 trace::arg("total",
                            static_cast<std::int64_t>(hints.hints.size())),
                 trace::arg("stage", stage_)});
    tr->counters().add("vroom.hints_acted_on", fresh);
  }
  try_advance(b);
}

void VroomClientScheduler::enqueue_hint(browser::Browser& b, web::UrlId url,
                                        http::HintPriority priority) {
  if (!staged_) {
    b.fetch_url(url, 0, browser::FetchReason::Hint);
    return;
  }
  switch (priority) {
    case http::HintPriority::Preload:
      preload_urls_.push_back(url);
      b.fetch_url(url, 2, browser::FetchReason::Hint);
      break;
    case http::HintPriority::SemiImportant:
      if (stage_ >= 1) {
        b.fetch_url(url, 1, browser::FetchReason::Hint);
      } else {
        semi_q_.push_back(url);
      }
      break;
    case http::HintPriority::Unimportant:
      if (stage_ >= 2) {
        b.fetch_url(url, 0, browser::FetchReason::Hint);
      } else {
        low_q_.push_back(url);
      }
      break;
  }
}

void VroomClientScheduler::on_fetch_complete(browser::Browser& b,
                                             web::UrlId url) {
  if (counted_docs_.erase(url) > 0) --pending_docs_;
  try_advance(b);
}

bool VroomClientScheduler::all_complete(
    browser::Browser& b, const std::vector<web::UrlId>& urls) const {
  for (web::UrlId u : urls) {
    if (!b.url_complete(u)) return false;
  }
  return true;
}

void VroomClientScheduler::advance_to(browser::Browser& b, int stage,
                                      std::int64_t released) {
  stage_ = stage;
  if (trace::Recorder* tr = trace::of(b.loop())) {
    tr->instant(trace::Layer::Vroom, "browser", "scheduler", "stage_advance",
                {trace::arg("from", stage - 1), trace::arg("to", stage),
                 trace::arg("released", released)});
    tr->counters().add("vroom.stage_advances");
  }
}

void VroomClientScheduler::try_advance(browser::Browser& b) {
  if (!staged_) return;
  if (stage_ == 0) {
    // "Once resource discovery from servers is complete and all high
    // priority resources learned via hints have been received…"
    if (pending_docs_ > 0 || !all_complete(b, preload_urls_)) return;
    advance_to(b, 1, static_cast<std::int64_t>(semi_q_.size()));
    for (web::UrlId u : semi_q_) {
      b.fetch_url(u, 1, browser::FetchReason::Hint);
    }
  }
  if (stage_ == 1) {
    if (!all_complete(b, semi_q_)) return;
    advance_to(b, 2, static_cast<std::int64_t>(low_q_.size()));
    for (web::UrlId u : low_q_) {
      b.fetch_url(u, 0, browser::FetchReason::Hint);
    }
  }
}

}  // namespace vroom::core
