#include "core/vroom_provider.h"

#include <map>

#include "sim/random.h"
#include "web/url.h"

namespace vroom::core {

const char* resolution_mode_name(ResolutionMode m) {
  switch (m) {
    case ResolutionMode::OfflinePlusOnline: return "vroom";
    case ResolutionMode::OfflineOnly: return "offline-only";
    case ResolutionMode::OnlineOnly: return "online-only";
    case ResolutionMode::PreviousLoad: return "previous-load";
  }
  return "?";
}

std::vector<std::pair<std::uint32_t, std::string>> resolve_candidates(
    const web::PageInstance& served, std::uint32_t doc_id,
    const std::string& serving_domain, std::uint32_t user,
    ResolutionMode mode, const OfflineResolver& offline,
    sim::Time hint_age) {
  const web::PageModel& model = served.model();
  const sim::Time now = served.identity().wall_time;
  // Offline knowledge is as fresh as the last crawl: a shared front-end
  // serving cached hints resolves against crawls `hint_age` old.
  const sim::Time crawl_now = now - (hint_age > 0 ? hint_age : 0);
  const web::DeviceProfile& device = served.identity().device;

  // Advice scope: descendants of the requested document, pruned below
  // embedded HTML documents (§4.2).
  const std::vector<std::uint32_t> scope = model.hintable_descendants(doc_id);

  std::map<std::uint32_t, std::string> by_id;
  switch (mode) {
    case ResolutionMode::OfflinePlusOnline:
    case ResolutionMode::OfflineOnly: {
      const auto& stable =
          offline.stable_set(crawl_now, device, serving_domain, user);
      for (std::uint32_t id : scope) {
        auto it = stable.find(id);
        if (it != stable.end()) by_id.emplace(id, it->second);
      }
      if (mode == ResolutionMode::OfflinePlusOnline) {
        // Exact URLs from the served markup win over (possibly stale)
        // crawl-derived URLs for the same slot.
        OnlineScan scan = analyze_served_html(served, doc_id);
        for (auto& [id, url] : scan.links) by_id[id] = url;
      }
      break;
    }
    case ResolutionMode::OnlineOnly: {
      // Full page load at the server, right now: current time and device,
      // but the *server's* load nonce and only its own cookies.
      const std::uint64_t server_nonce = sim::derive_seed(
          served.identity().nonce ^ 0x5eedf00dULL, "server-online-load");
      web::LoadIdentity id;
      id.wall_time = now;
      id.device = device;
      id.nonce = server_nonce;
      for (std::uint32_t rid : scope) {
        const web::Resource& r = model.resource(rid);
        id.user = org_knows_user(model, serving_domain, r.domain) ? user : 0;
        by_id.emplace(rid, web::realize_url(model, r, id));
      }
      break;
    }
    case ResolutionMode::PreviousLoad: {
      // Everything seen in a single crawl within the past hour, per-load
      // churn included.
      const sim::Time when = now - sim::minutes(55);
      const std::uint64_t nonce = sim::derive_seed(
          static_cast<std::uint64_t>(when) ^ model.page_id(), "prev-load");
      auto prev = offline.single_load_urls(when, device, serving_domain, user,
                                           nonce);
      for (std::uint32_t id : scope) {
        auto it = prev.find(id);
        if (it != prev.end()) by_id.emplace(id, it->second);
      }
      break;
    }
  }

  std::vector<std::pair<std::uint32_t, std::string>> ordered;
  ordered.reserve(by_id.size());
  for (std::uint32_t id : scope) {  // scope is already in processing order
    auto it = by_id.find(id);
    if (it != by_id.end()) ordered.emplace_back(id, it->second);
  }
  return ordered;
}

VroomProvider::VroomProvider(const server::ReplayStore& store,
                             VroomProviderConfig config)
    : store_(store),
      config_(std::move(config)),
      offline_(store.instance().model(), config_.offline) {}

server::DependencyAdvice VroomProvider::advise(const std::string& domain,
                                               const http::Request& req) {
  server::DependencyAdvice advice;
  const web::PageInstance& inst = store_.instance();
  auto entry = store_.lookup(req);
  if (!entry || entry->type != web::ResourceType::Html) return advice;
  const std::uint32_t doc_id = entry->template_id;

  auto ordered = resolve_candidates(inst, doc_id, domain, req.user,
                                    config_.mode, offline_, config_.hint_age);
  AdviceBuild build = build_advice(inst, ordered, domain,
                                   config_.hints_enabled, config_.push);
  truncate_hints(build.hints, config_.max_hints);
  advice.hints = std::move(build.hints);
  advice.pushes = std::move(build.pushes);
  advice.push_policy = push_selection_name(config_.push);

  switch (config_.mode) {
    case ResolutionMode::OfflinePlusOnline:
      advice.extra_delay = web::scan_cost(inst.resource(doc_id).size);
      break;
    case ResolutionMode::OnlineOnly:
      // A full on-the-fly page load costs far more than an HTML scan.
      advice.extra_delay = sim::ms(400);
      break;
    case ResolutionMode::OfflineOnly:
    case ResolutionMode::PreviousLoad:
      advice.extra_delay = 0;
      break;
  }
  return advice;
}

}  // namespace vroom::core
