#include "core/accuracy.h"

#include <set>
#include <string>

#include "sim/random.h"
#include "web/page_instance.h"

namespace vroom::core {

AccuracySample measure_accuracy(const web::PageModel& model, sim::Time when,
                                const web::DeviceProfile& device,
                                std::uint32_t user, ResolutionMode mode,
                                const OfflineConfig& offline_config) {
  AccuracySample s;

  web::LoadIdentity id_a;
  id_a.wall_time = when;
  id_a.device = device;
  id_a.user = user;
  id_a.nonce = sim::derive_seed(when ^ model.page_id(), "acc-load-a");
  web::LoadIdentity id_b = id_a;
  id_b.nonce = sim::derive_seed(when ^ model.page_id(), "acc-load-b");

  const web::PageInstance load_a(model, id_a);
  const web::PageInstance load_b(model, id_b);

  const std::vector<std::uint32_t> scope = model.hintable_descendants(0);
  s.scope_size = static_cast<int>(scope.size());

  std::set<std::string> predictable;
  std::int64_t scope_bytes = 0, predictable_bytes = 0;
  for (std::uint32_t rid : scope) {
    scope_bytes += load_a.resource(rid).size;
    if (load_a.resource(rid).url == load_b.resource(rid).url) {
      predictable.insert(std::string(load_a.resource(rid).url));
      predictable_bytes += load_a.resource(rid).size;
    }
  }
  s.predictable_size = static_cast<int>(predictable.size());
  if (!scope.empty()) {
    s.predictable_count_frac =
        static_cast<double>(predictable.size()) /
        static_cast<double>(scope.size());
    s.predictable_bytes_frac =
        scope_bytes > 0 ? static_cast<double>(predictable_bytes) /
                              static_cast<double>(scope_bytes)
                        : 0.0;
  }

  OfflineResolver offline(model, offline_config);
  auto ordered = resolve_candidates(load_a, /*doc_id=*/0,
                                    model.first_party(), user, mode, offline);
  std::set<std::string> advised;
  for (const auto& [rid, url] : ordered) advised.insert(url);
  s.advised_size = static_cast<int>(advised.size());

  if (!predictable.empty()) {
    int fn = 0, fp = 0;
    for (const auto& url : predictable) {
      if (!advised.count(url)) ++fn;
    }
    for (const auto& url : advised) {
      if (!predictable.count(url)) ++fp;
    }
    s.false_negative_frac =
        static_cast<double>(fn) / static_cast<double>(predictable.size());
    s.false_positive_frac =
        static_cast<double>(fp) / static_cast<double>(predictable.size());
  }
  return s;
}

double persistence_fraction(const web::PageModel& model, sim::Time when,
                            const web::DeviceProfile& device,
                            std::uint32_t user, sim::Time gap) {
  web::LoadIdentity id_a;
  id_a.wall_time = when;
  id_a.device = device;
  id_a.user = user;
  id_a.nonce = sim::derive_seed(when ^ model.page_id(), "persist-a");
  web::LoadIdentity id_b = id_a;
  id_b.wall_time = when + gap;
  id_b.nonce = sim::derive_seed(when ^ model.page_id(), "persist-b");

  const web::PageInstance a(model, id_a);
  const web::PageInstance b(model, id_b);
  std::set<std::string> later;
  for (const auto& ir : b.resources()) later.insert(std::string(ir.url));
  std::size_t kept = 0;
  for (const auto& ir : a.resources()) kept += later.count(std::string(ir.url));
  return a.size() == 0
             ? 0.0
             : static_cast<double>(kept) / static_cast<double>(a.size());
}

}  // namespace vroom::core
