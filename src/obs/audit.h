// Macro-trace auditor (DESIGN.md §12): cross-load invariants over the
// deployment scenario's Deploy-layer trace.
//
// Per-load trace assertions (tests/trace_test.cpp, tests/deploy_test.cpp)
// check one simulated world at a time. The deployment macro pass is the one
// place where *loads interact* — thousands of page views contending for the
// same per-origin links — and its correctness properties are relations
// *between* events of different loads:
//
//   * arrival monotonicity — `deploy.page_view` events appear in
//     non-decreasing virtual-time order (the population stream is sorted
//     and the event loop must not reorder same-time arrivals);
//   * per-origin FIFO — every origin link serves transmissions in arrival
//     order, each starting exactly when the link frees (or the bytes
//     arrive, whichever is later): start_i == max(enqueue_i, end_{i-1});
//   * link-utilization conservation — an origin's reported busy time and
//     byte total equal the sum of its transmissions, and busy time never
//     exceeds elapsed virtual time (a link cannot be >100% utilized).
//
// audit_macro_trace re-derives all three from the raw event stream alone —
// it shares no state with the scenario, so a scheduling bug cannot hide by
// also corrupting the checker's inputs. The simulation is deterministic,
// so every check is exact (integer equality), not tolerance-banded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace vroom::obs {

struct MacroAuditReport {
  std::int64_t page_views = 0;
  std::int64_t transmissions = 0;
  std::int64_t origins = 0;
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
  // One line per error (capped at 20), or "ok" with the totals.
  std::string to_string() const;
};

// Audits `events` (any order-preserving slice of a macro-pass recorder's
// event stream). `track_names` maps Recorder track ids to display names for
// error messages; out-of-range ids degrade to "track<N>".
MacroAuditReport audit_macro_trace(
    const std::vector<trace::Recorder::Event>& events,
    const std::vector<std::string>& track_names);

// Convenience: audits everything `recorder` captured.
MacroAuditReport audit_macro_trace(const trace::Recorder& recorder);

}  // namespace vroom::obs
